//! End-to-end test of the analysis daemon: concurrent clients over real
//! TCP must see responses byte-identical to the one-shot CLI, served
//! partly from the memoized artifact store.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use rtserver::json::Json;
use rtserver::Server;

const SPEC: &str = "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n";
const TASK_HI: &str = ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nli r3, 4\nloop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\nbne r3, r0, loop\n.bound loop, 4\nhalt\n";
const TASK_LO: &str = ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nld r4, 4(r1)\nadd r2, r2, r4\nhalt\n";

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 3;

fn request_line(id: u64) -> String {
    Json::obj([
        ("id", Json::from(id)),
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from(SPEC)),
        ("sources", Json::obj([("hi.s", Json::from(TASK_HI)), ("lo.s", Json::from(TASK_LO))])),
    ])
    .encode()
}

fn roundtrip(addr: std::net::SocketAddr, lines: &[String]) -> Vec<Json> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|line| {
            writeln!(writer, "{line}").and_then(|()| writer.flush()).expect("send");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("recv");
            Json::parse(reply.trim_end()).expect("reply parses as json")
        })
        .collect()
}

/// The reference output, computed in-process through the same code path
/// `trisc wcrt system.spec` uses.
fn one_shot_reference() -> String {
    let dir = std::env::temp_dir().join(format!("rtserver-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("hi.s"), TASK_HI).expect("write hi.s");
    std::fs::write(dir.join("lo.s"), TASK_LO).expect("write lo.s");
    let spec_path = dir.join("system.spec");
    std::fs::write(&spec_path, SPEC).expect("write spec");
    let spec = rtcli::SystemSpec::load(&spec_path).expect("spec parses");
    let output = rtcli::cmd_wcrt(&spec).expect("one-shot analysis succeeds");
    std::fs::remove_dir_all(&dir).ok();
    output
}

#[test]
fn concurrent_clients_get_cli_identical_memoized_responses() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 4,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    let expected = one_shot_reference();
    assert!(expected.contains("WCRT"), "reference output looks wrong: {expected}");

    // >= 4 clients hammer the same spec concurrently, pipelining a few
    // requests each over their own connection.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let lines: Vec<String> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| request_line((c * REQUESTS_PER_CLIENT + r) as u64))
                    .collect();
                roundtrip(addr, &lines)
            })
        })
        .collect();

    for (c, client) in clients.into_iter().enumerate() {
        let replies = client.join().expect("client thread");
        for (r, reply) in replies.iter().enumerate() {
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(true),
                "client {c} request {r}: {reply:?}"
            );
            let id = reply.get("id").and_then(Json::as_u64).expect("id echoed");
            assert_eq!(id, (c * REQUESTS_PER_CLIENT + r) as u64);
            let output = reply.get("output").and_then(Json::as_str).expect("output");
            assert_eq!(output, expected, "server output must be byte-identical to the CLI");
        }
    }

    // The artifact store must have served most of those analyses from
    // memory: 2 distinct artifacts, everything else hits.
    let replies = roundtrip(addr, &[r#"{"cmd":"metrics"}"#.to_string()]);
    let metrics = replies[0].get("metrics").expect("metrics payload");
    let cache = metrics.get("artifact_cache").expect("artifact_cache");
    let hits = cache.get("hits").and_then(Json::as_u64).expect("hits");
    let entries = cache.get("entries").and_then(Json::as_u64).expect("entries");
    assert!(hits > 0, "repeated identical requests must hit the memo store");
    assert_eq!(entries, 2, "one artifact per distinct task");
    // The staged DAG is visible over the wire: both pipeline stages hold
    // the two artifacts, the repeats hit, and `artifact_cache` above is
    // the `analyze` stage under its historic name.
    let stages = metrics.get("stages").expect("stage-level cache stats");
    for stage in ["assemble", "analyze"] {
        let s = stages.get(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
        assert_eq!(s.get("entries").and_then(Json::as_u64), Some(2), "{stage} entries");
        assert_eq!(s.get("misses").and_then(Json::as_u64), Some(2), "{stage} misses");
        assert!(s.get("hits").and_then(Json::as_u64).expect("hits") > 0, "{stage} hits");
    }
    let analyze = stages.get("analyze").expect("analyze stage");
    assert_eq!(analyze.get("hits").and_then(Json::as_u64), Some(hits));
    let cells = stages.get("crpd_cell").expect("crpd_cell stage");
    assert!(
        cells.get("hits").and_then(Json::as_u64).expect("cell hits") > 0,
        "repeated WCRT requests must hit the pairwise CRPD cell cache"
    );
    let wcrt = metrics.get("endpoints").and_then(|e| e.get("wcrt")).expect("wcrt endpoint stats");
    assert_eq!(
        wcrt.get("requests").and_then(Json::as_u64),
        Some((CLIENTS * REQUESTS_PER_CLIENT) as u64)
    );
    assert_eq!(wcrt.get("errors").and_then(Json::as_u64), Some(0));

    // Graceful shutdown: ack, drain, exit.
    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server exits cleanly after shutdown");
}

/// `--threads` is the server's single parallelism knob: it sizes the
/// `rtpar` analysis pool as well as the connection workers, responses are
/// byte-identical between a 1-thread and an 8-thread server, and a
/// `--threads 1` server truly single-threads its analysis (its pool
/// spawns zero background workers — the regression guard for the old
/// split between server threads and analysis threads).
#[test]
fn wcrt_responses_are_thread_count_invariant_over_the_wire() {
    let mut outputs = Vec::new();
    for threads in [1usize, 8] {
        let opts = rtcli::ServeOptions {
            host: "127.0.0.1".to_string(),
            port: 0,
            threads,
            ..rtcli::ServeOptions::default()
        };
        let handle = Server::spawn(&opts).expect("bind ephemeral port");
        let replies = roundtrip(
            handle.addr(),
            &[
                request_line(1),
                r#"{"cmd":"metrics"}"#.to_string(),
                r#"{"cmd":"shutdown"}"#.to_string(),
            ],
        );
        assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
        outputs.push(replies[0].get("output").and_then(Json::as_str).expect("output").to_string());

        let pool = replies[1]
            .get("metrics")
            .and_then(|m| m.get("analysis_pool"))
            .expect("metrics exposes the analysis pool");
        assert_eq!(
            pool.get("threads").and_then(Json::as_u64),
            Some(threads as u64),
            "the analysis pool must be sized by --threads"
        );
        assert_eq!(
            pool.get("background_workers").and_then(Json::as_u64),
            Some(threads as u64 - 1),
            "--threads 1 must spawn no analysis workers; N threads spawn N-1"
        );
        handle.join().expect("clean exit");
    }
    assert_eq!(outputs[0], outputs[1], "1-thread and 8-thread servers must agree byte-for-byte");
    assert_eq!(outputs[0], one_shot_reference(), "and both must match the one-shot CLI");
}

/// `metrics_prom` returns a well-formed Prometheus text exposition over
/// the wire: HELP/TYPE headers, request counters reflecting the traffic
/// just served, and internally consistent histograms (cumulative
/// monotone buckets whose `+Inf` bucket equals `_count`).
#[test]
fn metrics_prom_returns_consistent_prometheus_text() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let replies = roundtrip(
        handle.addr(),
        &[
            request_line(1),
            request_line(2),
            r#"{"cmd":"metrics_prom"}"#.to_string(),
            r#"{"cmd":"shutdown"}"#.to_string(),
        ],
    );
    assert_eq!(replies[2].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[2]);
    let text = replies[2].get("output").and_then(Json::as_str).expect("exposition text");

    for family in [
        "rtserver_uptime_seconds",
        "rtserver_artifact_cache_entries",
        "rtserver_requests_total",
        "rtserver_request_duration_microseconds",
        "rtserver_analysis_pool_threads",
        "rtserver_stage_cache_hits_total",
        "rtserver_stage_cache_misses_total",
        "rtserver_stage_cache_entries",
        "rtserver_stage_single_flight_waits_total",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "missing HELP for {family}");
        assert!(text.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
    }
    assert!(
        text.contains(r#"rtserver_stage_cache_misses_total{stage="analyze"} 2"#),
        "analyze stage missed once per distinct task:\n{text}"
    );
    assert!(
        text.contains(r#"rtserver_stage_cache_hits_total{stage="crpd_cell"}"#),
        "crpd_cell stage exported:\n{text}"
    );
    assert!(
        text.contains(r#"rtserver_requests_total{endpoint="wcrt"} 2"#),
        "wcrt request counter must reflect the two requests served:\n{text}"
    );

    // Histogram consistency for the wcrt endpoint: buckets are cumulative
    // and monotone, `+Inf` equals `_count`, and `_sum`/`_count` exist.
    let bucket_value = |line: &str| -> u64 {
        line.rsplit(' ').next().and_then(|v| v.parse().ok()).expect("bucket value")
    };
    let mut last = 0u64;
    let mut inf = None;
    for line in text.lines() {
        if !line.starts_with(r#"rtserver_request_duration_microseconds_bucket{endpoint="wcrt""#) {
            continue;
        }
        let value = bucket_value(line);
        assert!(value >= last, "buckets must be cumulative and monotone: {line}");
        last = value;
        if line.contains(r#"le="+Inf""#) {
            inf = Some(value);
        }
    }
    let count_line = text
        .lines()
        .find(|l| l.starts_with(r#"rtserver_request_duration_microseconds_count{endpoint="wcrt""#))
        .expect("wcrt _count line");
    let count = bucket_value(count_line);
    assert_eq!(count, 2, "two wcrt requests observed");
    assert_eq!(inf, Some(count), "+Inf bucket must equal _count");
    assert!(
        text.lines().any(|l| l
            .starts_with(r#"rtserver_request_duration_microseconds_sum{endpoint="wcrt""#)),
        "wcrt _sum line present"
    );

    assert_eq!(replies[3].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("clean exit");
}

/// Error paths must degrade per-request, never per-server: a malformed
/// explore grid, an oversized spec payload and a client that vanishes
/// mid-stream each produce a typed error (or nothing), while the same
/// server keeps answering, and every failure is visible in the metrics
/// error counters.
#[test]
fn error_paths_leave_the_server_serving() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    // A malformed explore grid (bogus axis) errors on that request only:
    // the same connection then serves an explore with a good grid.
    let bad_grid = Json::obj([
        ("id", Json::from(1u64)),
        ("cmd", Json::from("explore")),
        ("spec", Json::from(SPEC)),
        ("sources", Json::obj([("hi.s", Json::from(TASK_HI)), ("lo.s", Json::from(TASK_LO))])),
        ("grid", Json::from("sets 32 64\nfrobnicate 1 2\n")),
    ])
    .encode();
    let replies = roundtrip(addr, &[bad_grid, r#"{"id":2,"cmd":"ping"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(false), "{:?}", replies[0]);
    let error = replies[0].get("error").and_then(Json::as_str).expect("typed error");
    assert!(error.contains("frobnicate"), "error should name the bad axis: {error}");
    assert_eq!(replies[1].get("output").and_then(Json::as_str), Some("pong"));

    // An oversized spec is rejected before any parsing or analysis work.
    let oversized = Json::obj([
        ("id", Json::from(3u64)),
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from("x".repeat(rtserver::proto::MAX_SPEC_BYTES + 1).as_str())),
    ])
    .encode();
    let replies = roundtrip(addr, &[oversized, r#"{"id":4,"cmd":"ping"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(false));
    let error = replies[0].get("error").and_then(Json::as_str).expect("typed error");
    assert!(error.contains("exceeds"), "oversized spec must be rejected by size: {error}");
    assert_eq!(replies[1].get("output").and_then(Json::as_str), Some("pong"));

    // A client that writes half a request and disconnects mid-stream must
    // not wedge the worker: new connections still get served.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream);
        write!(writer, r#"{{"id":5,"cmd":"wcrt","spec":"#).expect("partial write");
        writer.flush().expect("flush");
        // Drop without a newline: the connection dies with the request
        // unterminated.
    }
    let replies = roundtrip(addr, &[r#"{"id":6,"cmd":"ping"}"#.to_string()]);
    assert_eq!(replies[0].get("output").and_then(Json::as_str), Some("pong"));

    // Both request failures are on the books, attributed per endpoint.
    let replies = roundtrip(addr, &[r#"{"cmd":"metrics"}"#.to_string()]);
    let endpoints =
        replies[0].get("metrics").and_then(|m| m.get("endpoints")).expect("metrics endpoint stats");
    let errors = |ep: &str| {
        endpoints.get(ep).and_then(|e| e.get("errors")).and_then(Json::as_u64).unwrap_or(0)
    };
    assert_eq!(errors("explore"), 1, "the malformed grid counts as an explore error");
    // The oversized spec never produces a `Command`, so it is booked
    // under the parse-stage `invalid` endpoint — as is the disconnected
    // client's unterminated half-request, which the worker reads at EOF,
    // fails to parse, and then cannot answer.
    assert_eq!(errors("invalid"), 2, "oversized spec + truncated request are parse-stage errors");

    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server exits cleanly after the error traffic");
}

/// The wire spec format is the on-disk spec format: a spec that parses
/// from disk must be accepted verbatim over the wire (with sources
/// resolved from the server's filesystem as the fallback).
#[test]
fn wire_spec_falls_back_to_server_filesystem_sources() {
    let dir = std::env::temp_dir().join(format!("rtserver-fs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let hi = dir.join("hi.s");
    std::fs::write(&hi, TASK_HI).expect("write hi.s");

    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 4,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind");
    // No `sources` map: the task file is an absolute path on the server.
    let line = Json::obj([
        ("cmd", Json::from("wcet")),
        ("spec", Json::from(format!("cache 64 2 16\ntask hi {} 5000 1\n", hi.display()).as_str())),
    ])
    .encode();
    let replies = roundtrip(handle.addr(), &[line, r#"{"cmd":"shutdown"}"#.to_string()]);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
    assert!(replies[0].get("output").and_then(Json::as_str).unwrap().contains("WCET ="));
    handle.join().expect("clean exit");
}

/// The tentpole e2e for the rtflight ops plane: with `--slow-ms 0` every
/// request is captured, `statusz` exposes per-endpoint quantiles and
/// stage attribution, `journal` shows the ring wrapped at
/// `--flight-capacity`, and `flight` returns full span trees.
#[test]
fn flight_endpoints_expose_statusz_journal_and_black_box() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        slow_ms: Some(0),
        flight_capacity: 4,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    // Six requests on one connection: flight record ids 0..=4 are pings,
    // id 5 is the wcrt (commit order is serve order on one connection).
    let mut lines: Vec<String> = (0..5).map(|i| format!(r#"{{"id":{i},"cmd":"ping"}}"#)).collect();
    lines.push(request_line(90));
    for reply in roundtrip(addr, &lines) {
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{reply:?}");
    }

    let replies = roundtrip(
        addr,
        &[
            r#"{"cmd":"statusz"}"#.to_string(),
            r#"{"cmd":"journal","n":100}"#.to_string(),
            r#"{"cmd":"flight"}"#.to_string(),
        ],
    );
    let status = replies[0].get("status").expect("status payload");
    assert_eq!(status.get("flight_capacity").and_then(Json::as_u64), Some(4));
    assert_eq!(status.get("slow_ms").and_then(Json::as_u64), Some(0));
    assert!(status.get("records_total").and_then(Json::as_u64).unwrap() >= 6);
    let endpoints = status.get("endpoints").expect("endpoint summaries");
    let ping = endpoints.get("ping").expect("ping summary");
    assert_eq!(ping.get("count").and_then(Json::as_u64), Some(5));
    assert_eq!(ping.get("errors").and_then(Json::as_u64), Some(0));
    for q in ["p50_us", "p90_us", "p99_us", "max_us"] {
        assert!(ping.get(q).and_then(Json::as_u64).is_some(), "ping {q}");
    }
    let wcrt = endpoints.get("wcrt").expect("wcrt summary");
    assert_eq!(wcrt.get("count").and_then(Json::as_u64), Some(1));
    // Stage-cache hit rates and per-stage wall time are on the status page.
    assert!(status.get("stage_cache").and_then(|s| s.get("analyze")).is_some());
    let stage_ns = status.get("stage_ns").expect("stage wall time");
    assert!(stage_ns.get("wcrt").and_then(Json::as_u64).unwrap() > 0, "wcrt stage attributed");
    assert!(stage_ns.get("request").and_then(Json::as_u64).unwrap() > 0, "request span attributed");

    // Journal: the 4-slot ring holds records 3, 4 (pings), 5 (wcrt) and
    // 6 (the statusz request just served), oldest first.
    let Some(Json::Arr(records)) = replies[1].get("journal") else {
        panic!("journal payload: {:?}", replies[1])
    };
    let ids: Vec<u64> =
        records.iter().map(|r| r.get("id").and_then(Json::as_u64).expect("id")).collect();
    assert_eq!(ids, [3, 4, 5, 6], "ring wrapped at capacity, oldest first");
    let wcrt_record = &records[2];
    assert_eq!(wcrt_record.get("endpoint").and_then(Json::as_str), Some("wcrt"));
    assert_eq!(wcrt_record.get("ok").and_then(Json::as_bool), Some(true));
    // The cold wcrt request missed the analyze stage once per task.
    let misses = wcrt_record.get("stage_misses").expect("stage misses");
    assert_eq!(misses.get("analyze").and_then(Json::as_u64), Some(2), "{wcrt_record:?}");

    // Black box: with --slow-ms 0 every request qualifies; the wcrt
    // capture carries its full span tree rooted at the request span.
    let Some(Json::Arr(flights)) = replies[2].get("flights") else {
        panic!("flights payload: {:?}", replies[2])
    };
    assert!(flights.len() >= 6, "every request was captured: {}", flights.len());
    let wcrt_flight = flights
        .iter()
        .find(|f| {
            f.get("record").and_then(|r| r.get("endpoint")).and_then(Json::as_str) == Some("wcrt")
        })
        .expect("captured wcrt flight");
    let Some(Json::Arr(spans)) = wcrt_flight.get("spans") else { panic!("spans") };
    assert!(spans.len() > 1, "wcrt must capture nested pipeline spans");
    let stage_at = |s: &Json| s.get("stage").and_then(Json::as_str).unwrap().to_string();
    assert!(spans.iter().any(|s| stage_at(s) == "request"), "request root span captured");
    assert!(spans.iter().any(|s| stage_at(s) == "wcrt"), "wcrt pipeline span captured");
    assert!(
        spans.iter().any(|s| s.get("depth").and_then(Json::as_u64).unwrap() >= 2),
        "nesting depth recorded"
    );
    for s in spans {
        assert!(s.get("dur_ns").and_then(Json::as_u64).is_some(), "{s:?}");
        assert!(s.get("start_ns").and_then(Json::as_u64).is_some(), "{s:?}");
    }

    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("clean exit");
}

/// Slow capture must trigger *only* for over-threshold requests: with an
/// unreachably high `--slow-ms` nothing lands in the black box (while the
/// journal still records everything), and without `--slow-ms` the flight
/// endpoint serves an empty list.
#[test]
fn slow_capture_triggers_only_over_threshold() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        slow_ms: Some(3_600_000),
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let replies = roundtrip(
        handle.addr(),
        &[
            request_line(1),
            r#"{"cmd":"flight"}"#.to_string(),
            r#"{"cmd":"statusz"}"#.to_string(),
            r#"{"cmd":"shutdown"}"#.to_string(),
        ],
    );
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
    let Some(Json::Arr(flights)) = replies[1].get("flights") else { panic!() };
    assert!(flights.is_empty(), "an hour-long threshold captures nothing: {flights:?}");
    let status = replies[2].get("status").expect("status");
    assert_eq!(status.get("slow_captures").and_then(Json::as_u64), Some(0));
    assert!(status.get("records_total").and_then(Json::as_u64).unwrap() >= 2, "journal still on");
    handle.join().expect("clean exit");
}
