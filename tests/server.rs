//! End-to-end test of the analysis daemon: concurrent clients over real
//! TCP must see responses byte-identical to the one-shot CLI, served
//! partly from the memoized artifact store.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use rtserver::json::Json;
use rtserver::Server;

const SPEC: &str = "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n";
const TASK_HI: &str = ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nli r3, 4\nloop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\nbne r3, r0, loop\n.bound loop, 4\nhalt\n";
const TASK_LO: &str = ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nld r4, 4(r1)\nadd r2, r2, r4\nhalt\n";

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 3;

fn request_line(id: u64) -> String {
    Json::obj([
        ("id", Json::from(id)),
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from(SPEC)),
        ("sources", Json::obj([("hi.s", Json::from(TASK_HI)), ("lo.s", Json::from(TASK_LO))])),
    ])
    .encode()
}

fn roundtrip(addr: std::net::SocketAddr, lines: &[String]) -> Vec<Json> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|line| {
            writeln!(writer, "{line}").and_then(|()| writer.flush()).expect("send");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("recv");
            Json::parse(reply.trim_end()).expect("reply parses as json")
        })
        .collect()
}

/// The reference output, computed in-process through the same code path
/// `trisc wcrt system.spec` uses.
fn one_shot_reference() -> String {
    let dir = std::env::temp_dir().join(format!("rtserver-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("hi.s"), TASK_HI).expect("write hi.s");
    std::fs::write(dir.join("lo.s"), TASK_LO).expect("write lo.s");
    let spec_path = dir.join("system.spec");
    std::fs::write(&spec_path, SPEC).expect("write spec");
    let spec = rtcli::SystemSpec::load(&spec_path).expect("spec parses");
    let output = rtcli::cmd_wcrt(&spec).expect("one-shot analysis succeeds");
    std::fs::remove_dir_all(&dir).ok();
    output
}

#[test]
fn concurrent_clients_get_cli_identical_memoized_responses() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 4,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    let expected = one_shot_reference();
    assert!(expected.contains("WCRT"), "reference output looks wrong: {expected}");

    // >= 4 clients hammer the same spec concurrently, pipelining a few
    // requests each over their own connection.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let lines: Vec<String> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| request_line((c * REQUESTS_PER_CLIENT + r) as u64))
                    .collect();
                roundtrip(addr, &lines)
            })
        })
        .collect();

    for (c, client) in clients.into_iter().enumerate() {
        let replies = client.join().expect("client thread");
        for (r, reply) in replies.iter().enumerate() {
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(true),
                "client {c} request {r}: {reply:?}"
            );
            let id = reply.get("id").and_then(Json::as_u64).expect("id echoed");
            assert_eq!(id, (c * REQUESTS_PER_CLIENT + r) as u64);
            let output = reply.get("output").and_then(Json::as_str).expect("output");
            assert_eq!(output, expected, "server output must be byte-identical to the CLI");
        }
    }

    // The artifact store must have served most of those analyses from
    // memory: 2 distinct artifacts, everything else hits.
    let replies = roundtrip(addr, &[r#"{"cmd":"metrics"}"#.to_string()]);
    let metrics = replies[0].get("metrics").expect("metrics payload");
    let cache = metrics.get("artifact_cache").expect("artifact_cache");
    let hits = cache.get("hits").and_then(Json::as_u64).expect("hits");
    let entries = cache.get("entries").and_then(Json::as_u64).expect("entries");
    assert!(hits > 0, "repeated identical requests must hit the memo store");
    assert_eq!(entries, 2, "one artifact per distinct task");
    // The staged DAG is visible over the wire: both pipeline stages hold
    // the two artifacts, the repeats hit, and `artifact_cache` above is
    // the `analyze` stage under its historic name.
    let stages = metrics.get("stages").expect("stage-level cache stats");
    for stage in ["assemble", "analyze"] {
        let s = stages.get(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
        assert_eq!(s.get("entries").and_then(Json::as_u64), Some(2), "{stage} entries");
        assert_eq!(s.get("misses").and_then(Json::as_u64), Some(2), "{stage} misses");
        assert!(s.get("hits").and_then(Json::as_u64).expect("hits") > 0, "{stage} hits");
    }
    let analyze = stages.get("analyze").expect("analyze stage");
    assert_eq!(analyze.get("hits").and_then(Json::as_u64), Some(hits));
    let cells = stages.get("crpd_cell").expect("crpd_cell stage");
    assert!(
        cells.get("hits").and_then(Json::as_u64).expect("cell hits") > 0,
        "repeated WCRT requests must hit the pairwise CRPD cell cache"
    );
    let wcrt = metrics.get("endpoints").and_then(|e| e.get("wcrt")).expect("wcrt endpoint stats");
    assert_eq!(
        wcrt.get("requests").and_then(Json::as_u64),
        Some((CLIENTS * REQUESTS_PER_CLIENT) as u64)
    );
    assert_eq!(wcrt.get("errors").and_then(Json::as_u64), Some(0));

    // Graceful shutdown: ack, drain, exit.
    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server exits cleanly after shutdown");
}

/// `--threads` is the server's single parallelism knob: it sizes the
/// `rtpar` analysis pool as well as the connection workers, responses are
/// byte-identical between a 1-thread and an 8-thread server, and a
/// `--threads 1` server truly single-threads its analysis (its pool
/// spawns zero background workers — the regression guard for the old
/// split between server threads and analysis threads).
#[test]
fn wcrt_responses_are_thread_count_invariant_over_the_wire() {
    let mut outputs = Vec::new();
    for threads in [1usize, 8] {
        let opts = rtcli::ServeOptions {
            host: "127.0.0.1".to_string(),
            port: 0,
            threads,
            ..rtcli::ServeOptions::default()
        };
        let handle = Server::spawn(&opts).expect("bind ephemeral port");
        let replies = roundtrip(
            handle.addr(),
            &[
                request_line(1),
                r#"{"cmd":"metrics"}"#.to_string(),
                r#"{"cmd":"shutdown"}"#.to_string(),
            ],
        );
        assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
        outputs.push(replies[0].get("output").and_then(Json::as_str).expect("output").to_string());

        let pool = replies[1]
            .get("metrics")
            .and_then(|m| m.get("analysis_pool"))
            .expect("metrics exposes the analysis pool");
        assert_eq!(
            pool.get("threads").and_then(Json::as_u64),
            Some(threads as u64),
            "the analysis pool must be sized by --threads"
        );
        assert_eq!(
            pool.get("background_workers").and_then(Json::as_u64),
            Some(threads as u64 - 1),
            "--threads 1 must spawn no analysis workers; N threads spawn N-1"
        );
        handle.join().expect("clean exit");
    }
    assert_eq!(outputs[0], outputs[1], "1-thread and 8-thread servers must agree byte-for-byte");
    assert_eq!(outputs[0], one_shot_reference(), "and both must match the one-shot CLI");
}

/// `metrics_prom` returns a well-formed Prometheus text exposition over
/// the wire: HELP/TYPE headers, request counters reflecting the traffic
/// just served, and internally consistent histograms (cumulative
/// monotone buckets whose `+Inf` bucket equals `_count`).
#[test]
fn metrics_prom_returns_consistent_prometheus_text() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let replies = roundtrip(
        handle.addr(),
        &[
            request_line(1),
            request_line(2),
            r#"{"cmd":"metrics_prom"}"#.to_string(),
            r#"{"cmd":"shutdown"}"#.to_string(),
        ],
    );
    assert_eq!(replies[2].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[2]);
    let text = replies[2].get("output").and_then(Json::as_str).expect("exposition text");

    for family in [
        "rtserver_uptime_seconds",
        "rtserver_artifact_cache_entries",
        "rtserver_requests_total",
        "rtserver_request_duration_microseconds",
        "rtserver_analysis_pool_threads",
        "rtserver_stage_cache_hits_total",
        "rtserver_stage_cache_misses_total",
        "rtserver_stage_cache_entries",
        "rtserver_stage_single_flight_waits_total",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "missing HELP for {family}");
        assert!(text.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
    }
    assert!(
        text.contains(r#"rtserver_stage_cache_misses_total{stage="analyze"} 2"#),
        "analyze stage missed once per distinct task:\n{text}"
    );
    assert!(
        text.contains(r#"rtserver_stage_cache_hits_total{stage="crpd_cell"}"#),
        "crpd_cell stage exported:\n{text}"
    );
    assert!(
        text.contains(r#"rtserver_requests_total{endpoint="wcrt"} 2"#),
        "wcrt request counter must reflect the two requests served:\n{text}"
    );

    // Histogram consistency for the wcrt endpoint: buckets are cumulative
    // and monotone, `+Inf` equals `_count`, and `_sum`/`_count` exist.
    let bucket_value = |line: &str| -> u64 {
        line.rsplit(' ').next().and_then(|v| v.parse().ok()).expect("bucket value")
    };
    let mut last = 0u64;
    let mut inf = None;
    for line in text.lines() {
        if !line.starts_with(r#"rtserver_request_duration_microseconds_bucket{endpoint="wcrt""#) {
            continue;
        }
        let value = bucket_value(line);
        assert!(value >= last, "buckets must be cumulative and monotone: {line}");
        last = value;
        if line.contains(r#"le="+Inf""#) {
            inf = Some(value);
        }
    }
    let count_line = text
        .lines()
        .find(|l| l.starts_with(r#"rtserver_request_duration_microseconds_count{endpoint="wcrt""#))
        .expect("wcrt _count line");
    let count = bucket_value(count_line);
    assert_eq!(count, 2, "two wcrt requests observed");
    assert_eq!(inf, Some(count), "+Inf bucket must equal _count");
    assert!(
        text.lines().any(|l| l
            .starts_with(r#"rtserver_request_duration_microseconds_sum{endpoint="wcrt""#)),
        "wcrt _sum line present"
    );

    assert_eq!(replies[3].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("clean exit");
}

/// Error paths must degrade per-request, never per-server: a malformed
/// explore grid, an oversized spec payload and a client that vanishes
/// mid-stream each produce a typed error (or nothing), while the same
/// server keeps answering, and every failure is visible in the metrics
/// error counters.
#[test]
fn error_paths_leave_the_server_serving() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    // A malformed explore grid (bogus axis) errors on that request only:
    // the same connection then serves an explore with a good grid.
    let bad_grid = Json::obj([
        ("id", Json::from(1u64)),
        ("cmd", Json::from("explore")),
        ("spec", Json::from(SPEC)),
        ("sources", Json::obj([("hi.s", Json::from(TASK_HI)), ("lo.s", Json::from(TASK_LO))])),
        ("grid", Json::from("sets 32 64\nfrobnicate 1 2\n")),
    ])
    .encode();
    let replies = roundtrip(addr, &[bad_grid, r#"{"id":2,"cmd":"ping"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(false), "{:?}", replies[0]);
    let error = replies[0].get("error").and_then(Json::as_str).expect("typed error");
    assert!(error.contains("frobnicate"), "error should name the bad axis: {error}");
    assert_eq!(replies[1].get("output").and_then(Json::as_str), Some("pong"));

    // An oversized spec is rejected before any parsing or analysis work.
    let oversized = Json::obj([
        ("id", Json::from(3u64)),
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from("x".repeat(rtserver::proto::MAX_SPEC_BYTES + 1).as_str())),
    ])
    .encode();
    let replies = roundtrip(addr, &[oversized, r#"{"id":4,"cmd":"ping"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(false));
    let error = replies[0].get("error").and_then(Json::as_str).expect("typed error");
    assert!(error.contains("exceeds"), "oversized spec must be rejected by size: {error}");
    assert_eq!(replies[1].get("output").and_then(Json::as_str), Some("pong"));

    // A client that writes half a request and disconnects mid-stream must
    // not wedge the worker: new connections still get served.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream);
        write!(writer, r#"{{"id":5,"cmd":"wcrt","spec":"#).expect("partial write");
        writer.flush().expect("flush");
        // Drop without a newline: the connection dies with the request
        // unterminated.
    }
    let replies = roundtrip(addr, &[r#"{"id":6,"cmd":"ping"}"#.to_string()]);
    assert_eq!(replies[0].get("output").and_then(Json::as_str), Some("pong"));

    // Both request failures are on the books, attributed per endpoint.
    let replies = roundtrip(addr, &[r#"{"cmd":"metrics"}"#.to_string()]);
    let endpoints =
        replies[0].get("metrics").and_then(|m| m.get("endpoints")).expect("metrics endpoint stats");
    let errors = |ep: &str| {
        endpoints.get(ep).and_then(|e| e.get("errors")).and_then(Json::as_u64).unwrap_or(0)
    };
    assert_eq!(errors("explore"), 1, "the malformed grid counts as an explore error");
    // The oversized spec never produces a `Command`, so it is booked
    // under the parse-stage `invalid` endpoint — as is the disconnected
    // client's unterminated half-request, which the worker reads at EOF,
    // fails to parse, and then cannot answer.
    assert_eq!(errors("invalid"), 2, "oversized spec + truncated request are parse-stage errors");

    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server exits cleanly after the error traffic");
}

/// The wire spec format is the on-disk spec format: a spec that parses
/// from disk must be accepted verbatim over the wire (with sources
/// resolved from the server's filesystem as the fallback).
#[test]
fn wire_spec_falls_back_to_server_filesystem_sources() {
    let dir = std::env::temp_dir().join(format!("rtserver-fs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let hi = dir.join("hi.s");
    std::fs::write(&hi, TASK_HI).expect("write hi.s");

    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 4,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind");
    // No `sources` map: the task file is an absolute path on the server.
    let line = Json::obj([
        ("cmd", Json::from("wcet")),
        ("spec", Json::from(format!("cache 64 2 16\ntask hi {} 5000 1\n", hi.display()).as_str())),
    ])
    .encode();
    let replies = roundtrip(handle.addr(), &[line, r#"{"cmd":"shutdown"}"#.to_string()]);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
    assert!(replies[0].get("output").and_then(Json::as_str).unwrap().contains("WCET ="));
    handle.join().expect("clean exit");
}

/// The tentpole e2e for the rtflight ops plane: with `--slow-ms 0` every
/// request is captured, `statusz` exposes per-endpoint quantiles and
/// stage attribution, `journal` shows the ring wrapped at
/// `--flight-capacity`, and `flight` returns full span trees.
#[test]
fn flight_endpoints_expose_statusz_journal_and_black_box() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        slow_ms: Some(0),
        flight_capacity: 4,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    // Six requests on one connection: flight record ids 0..=4 are pings,
    // id 5 is the wcrt (commit order is serve order on one connection).
    let mut lines: Vec<String> = (0..5).map(|i| format!(r#"{{"id":{i},"cmd":"ping"}}"#)).collect();
    lines.push(request_line(90));
    for reply in roundtrip(addr, &lines) {
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{reply:?}");
    }

    let replies = roundtrip(
        addr,
        &[
            r#"{"cmd":"statusz"}"#.to_string(),
            r#"{"cmd":"journal","n":100}"#.to_string(),
            r#"{"cmd":"flight"}"#.to_string(),
        ],
    );
    let status = replies[0].get("status").expect("status payload");
    assert_eq!(status.get("flight_capacity").and_then(Json::as_u64), Some(4));
    assert_eq!(status.get("slow_ms").and_then(Json::as_u64), Some(0));
    assert!(status.get("records_total").and_then(Json::as_u64).unwrap() >= 6);
    let endpoints = status.get("endpoints").expect("endpoint summaries");
    let ping = endpoints.get("ping").expect("ping summary");
    assert_eq!(ping.get("count").and_then(Json::as_u64), Some(5));
    assert_eq!(ping.get("errors").and_then(Json::as_u64), Some(0));
    for q in ["p50_us", "p90_us", "p99_us", "max_us"] {
        assert!(ping.get(q).and_then(Json::as_u64).is_some(), "ping {q}");
    }
    let wcrt = endpoints.get("wcrt").expect("wcrt summary");
    assert_eq!(wcrt.get("count").and_then(Json::as_u64), Some(1));
    // Stage-cache hit rates and per-stage wall time are on the status page.
    assert!(status.get("stage_cache").and_then(|s| s.get("analyze")).is_some());
    let stage_ns = status.get("stage_ns").expect("stage wall time");
    assert!(stage_ns.get("wcrt").and_then(Json::as_u64).unwrap() > 0, "wcrt stage attributed");
    assert!(stage_ns.get("request").and_then(Json::as_u64).unwrap() > 0, "request span attributed");

    // Journal: the 4-slot ring holds records 3, 4 (pings), 5 (wcrt) and
    // 6 (the statusz request just served), oldest first.
    let Some(Json::Arr(records)) = replies[1].get("journal") else {
        panic!("journal payload: {:?}", replies[1])
    };
    let ids: Vec<u64> =
        records.iter().map(|r| r.get("id").and_then(Json::as_u64).expect("id")).collect();
    assert_eq!(ids, [3, 4, 5, 6], "ring wrapped at capacity, oldest first");
    let wcrt_record = &records[2];
    assert_eq!(wcrt_record.get("endpoint").and_then(Json::as_str), Some("wcrt"));
    assert_eq!(wcrt_record.get("ok").and_then(Json::as_bool), Some(true));
    // The cold wcrt request missed the analyze stage once per task.
    let misses = wcrt_record.get("stage_misses").expect("stage misses");
    assert_eq!(misses.get("analyze").and_then(Json::as_u64), Some(2), "{wcrt_record:?}");

    // Black box: with --slow-ms 0 every request qualifies; the wcrt
    // capture carries its full span tree rooted at the request span.
    let Some(Json::Arr(flights)) = replies[2].get("flights") else {
        panic!("flights payload: {:?}", replies[2])
    };
    assert!(flights.len() >= 6, "every request was captured: {}", flights.len());
    let wcrt_flight = flights
        .iter()
        .find(|f| {
            f.get("record").and_then(|r| r.get("endpoint")).and_then(Json::as_str) == Some("wcrt")
        })
        .expect("captured wcrt flight");
    let Some(Json::Arr(spans)) = wcrt_flight.get("spans") else { panic!("spans") };
    assert!(spans.len() > 1, "wcrt must capture nested pipeline spans");
    let stage_at = |s: &Json| s.get("stage").and_then(Json::as_str).unwrap().to_string();
    assert!(spans.iter().any(|s| stage_at(s) == "request"), "request root span captured");
    assert!(spans.iter().any(|s| stage_at(s) == "wcrt"), "wcrt pipeline span captured");
    assert!(
        spans.iter().any(|s| s.get("depth").and_then(Json::as_u64).unwrap() >= 2),
        "nesting depth recorded"
    );
    for s in spans {
        assert!(s.get("dur_ns").and_then(Json::as_u64).is_some(), "{s:?}");
        assert!(s.get("start_ns").and_then(Json::as_u64).is_some(), "{s:?}");
    }

    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("clean exit");
}

/// Admission control end-to-end: at the cap (`--max-inflight 0` pins the
/// server at it permanently) every analysis request is shed with a typed
/// `overloaded` error while the ops plane keeps answering, the sheds are
/// on the books in `statusz` and the Prometheus exposition, and a
/// server-wide `--deadline-ms` (or the request's own `deadline_ms`)
/// rejects queued-too-long analyses as `deadline_exceeded` before any
/// analysis runs.
#[test]
fn admission_control_sheds_and_enforces_deadlines() {
    // A zero cap means `inflight >= max_inflight` always holds: the
    // deterministic worst case of an overloaded server.
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        max_inflight: 0,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    let replies = roundtrip(addr, &[request_line(7), r#"{"id":8,"cmd":"ping"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(false), "{:?}", replies[0]);
    assert_eq!(replies[0].get("id").and_then(Json::as_u64), Some(7), "id echoed on a shed");
    assert_eq!(
        replies[0].get("code").and_then(Json::as_str),
        Some("overloaded"),
        "sheds carry a machine-readable code: {:?}",
        replies[0]
    );
    let error = replies[0].get("error").and_then(Json::as_str).expect("shed error text");
    assert!(error.contains("max-inflight 0"), "shed error names the cap: {error}");
    // The ops plane is exempt precisely because the server is saturated.
    assert_eq!(replies[1].get("output").and_then(Json::as_str), Some("pong"));

    let replies = roundtrip(
        addr,
        &[r#"{"cmd":"statusz"}"#.to_string(), r#"{"cmd":"metrics_prom"}"#.to_string()],
    );
    let status = replies[0].get("status").expect("status payload");
    assert_eq!(status.get("max_inflight").and_then(Json::as_u64), Some(0));
    assert_eq!(status.get("shed_total").and_then(Json::as_u64), Some(1));
    let wcrt = status.get("endpoints").and_then(|e| e.get("wcrt")).expect("shed-only endpoint");
    assert_eq!(wcrt.get("shed").and_then(Json::as_u64), Some(1), "{wcrt:?}");
    let text = replies[1].get("output").and_then(Json::as_str).expect("prometheus text");
    assert!(
        text.contains(r#"rtserver_shed_total{endpoint="wcrt"} 1"#),
        "shed counter exported:\n{text}"
    );
    assert!(text.contains("rtserver_max_inflight 0"), "cap gauge exported:\n{text}");

    // Shutdown is ops-plane too: it must get through a saturated server.
    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("clean exit");

    // Deadlines: a zero server-wide deadline is already exceeded by any
    // queue wait, so every analysis is rejected before it runs...
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        deadline_ms: Some(0),
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();
    let mut generous = Json::parse(&request_line(9)).expect("request json");
    if let Json::Obj(fields) = &mut generous {
        fields.insert("deadline_ms".to_string(), Json::from(600_000u64));
    }
    let replies = roundtrip(addr, &[request_line(9), generous.encode()]);
    assert_eq!(
        replies[0].get("code").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "{:?}",
        replies[0]
    );
    // ...unless the request raises its own deadline: the per-request
    // field overrides the server default in both directions.
    assert_eq!(replies[1].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[1]);
    let replies = roundtrip(addr, &[r#"{"cmd":"statusz"}"#.to_string()]);
    let wcrt = replies[0]
        .get("status")
        .and_then(|s| s.get("endpoints"))
        .and_then(|e| e.get("wcrt"))
        .expect("wcrt endpoint stats");
    assert_eq!(wcrt.get("deadline_misses").and_then(Json::as_u64), Some(1), "{wcrt:?}");
    let replies = roundtrip(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("clean exit");

    // And with no server default, a request-level zero deadline is
    // enforced all the same.
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let mut strict = Json::parse(&request_line(10)).expect("request json");
    if let Json::Obj(fields) = &mut strict {
        fields.insert("deadline_ms".to_string(), Json::from(0u64));
    }
    let replies = roundtrip(handle.addr(), &[strict.encode(), r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("code").and_then(Json::as_str), Some("deadline_exceeded"));
    handle.join().expect("clean exit");
}

/// One batch request fans its items out over the analysis pool and
/// streams back one `result` frame per item — indexed, in order, each
/// sharing the request id — then a `done` frame with the tallies. Item
/// errors are per-item, and the whole exchange is byte-identical between
/// a 1-thread and an 8-thread server.
#[test]
fn batch_results_are_indexed_ordered_and_thread_count_invariant() {
    let expected = one_shot_reference();
    let wcrt_item = Json::obj([
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from(SPEC)),
        ("sources", Json::obj([("hi.s", Json::from(TASK_HI)), ("lo.s", Json::from(TASK_LO))])),
    ]);
    let bad_item =
        Json::obj([("cmd", Json::from("wcet")), ("spec", Json::from("not a spec at all"))]);
    let batch = Json::obj([
        ("id", Json::from(42u64)),
        ("cmd", Json::from("batch")),
        ("items", Json::Arr(vec![wcrt_item.clone(), bad_item, wcrt_item])),
    ])
    .encode();

    let mut transcripts = Vec::new();
    for threads in [1usize, 8] {
        let opts = rtcli::ServeOptions {
            host: "127.0.0.1".to_string(),
            port: 0,
            threads,
            ..rtcli::ServeOptions::default()
        };
        let handle = Server::spawn(&opts).expect("bind ephemeral port");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{batch}").and_then(|()| writer.flush()).expect("send batch");
        // One frame per item, then the done frame.
        let frames: Vec<Json> = (0..4)
            .map(|_| {
                let mut line = String::new();
                reader.read_line(&mut line).expect("frame");
                Json::parse(line.trim_end()).expect("frame parses")
            })
            .collect();

        for (index, frame) in frames[..3].iter().enumerate() {
            assert_eq!(frame.get("event").and_then(Json::as_str), Some("result"), "{frame:?}");
            assert_eq!(frame.get("index").and_then(Json::as_u64), Some(index as u64));
            assert_eq!(frame.get("id").and_then(Json::as_u64), Some(42), "frames share the id");
        }
        assert_eq!(frames[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", frames[0]);
        assert_eq!(
            frames[0].get("output").and_then(Json::as_str),
            Some(expected.as_str()),
            "batch items run the same pipeline as standalone requests"
        );
        assert_eq!(frames[1].get("ok").and_then(Json::as_bool), Some(false));
        assert!(frames[1].get("error").and_then(Json::as_str).is_some(), "{:?}", frames[1]);
        assert_eq!(frames[2].get("output").and_then(Json::as_str), Some(expected.as_str()));
        let done = &frames[3];
        assert_eq!(done.get("event").and_then(Json::as_str), Some("done"), "{done:?}");
        assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(done.get("results").and_then(Json::as_u64), Some(3));
        assert_eq!(done.get("errors").and_then(Json::as_u64), Some(1));

        // The connection is still in sync after a multi-frame response.
        writeln!(writer, r#"{{"cmd":"shutdown"}}"#)
            .and_then(|()| writer.flush())
            .expect("send shutdown");
        let mut line = String::new();
        reader.read_line(&mut line).expect("shutdown ack");
        assert!(line.contains("\"ok\":true"), "{line}");
        handle.join().expect("clean exit");

        transcripts.push(frames.iter().map(Json::encode).collect::<Vec<_>>().join("\n"));
    }
    assert_eq!(transcripts[0], transcripts[1], "batch output is thread-count invariant");
}

/// A slowloris connection — dribbling a frame byte by byte, then going
/// quiet — is reaped by `--idle-timeout-ms` without ever stalling other
/// clients, who are served concurrently throughout.
#[test]
fn slowloris_is_idle_timed_out_without_stalling_others() {
    use std::io::Read as _;

    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        idle_timeout_ms: Some(150),
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    let mut dribbler = TcpStream::connect(addr).expect("connect dribbler");
    for chunk in [r#"{"id""#, ":11,", r#""cmd""#] {
        dribbler.write_all(chunk.as_bytes()).expect("dribble");
        dribbler.flush().expect("flush dribble");
        // Partial frames must not hold an event thread hostage: a full
        // round-trip succeeds between dribbles.
        let replies = roundtrip(addr, &[r#"{"id":12,"cmd":"ping"}"#.to_string()]);
        assert_eq!(replies[0].get("output").and_then(Json::as_str), Some("pong"));
        std::thread::sleep(std::time::Duration::from_millis(30));
    }

    // The dribbler goes quiet; the idle sweep closes it within a couple
    // of timeout periods.
    dribbler.set_read_timeout(Some(std::time::Duration::from_secs(10))).expect("read timeout");
    let mut buf = [0u8; 16];
    match dribbler.read(&mut buf) {
        Ok(0) => {} // clean close
        Err(e)
            if e.kind() != std::io::ErrorKind::WouldBlock
                && e.kind() != std::io::ErrorKind::TimedOut => {} // reset also fine
        other => panic!("expected the idle server to close the dribbler, got {other:?}"),
    }

    // The reap was surgical: everyone else is still being served.
    let replies = roundtrip(addr, &[request_line(13), r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
    assert_eq!(replies[1].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("clean exit");
}

/// A client that pipelines requests and vanishes before reading any
/// responses (its socket resets, because it closes with unread data)
/// exercises the server's dead-socket write path: the failure stays on
/// that connection, and the server keeps serving and shuts down cleanly.
#[test]
fn mid_write_disconnect_leaves_the_server_serving() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let addr = handle.addr();

    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream);
        // Two full requests, zero reads: closing now leaves unread
        // response data in the socket, which turns the close into a RST.
        writeln!(writer, "{}", request_line(20)).expect("send");
        writeln!(writer, r#"{{"id":21,"cmd":"ping"}}"#).expect("send");
        writer.flush().expect("flush");
    }

    // Whatever instant the reset lands — before, during or after the
    // response write — other clients never notice.
    let replies = roundtrip(addr, &[request_line(22), r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
    assert_eq!(
        replies[0].get("output").and_then(Json::as_str),
        Some(one_shot_reference().as_str())
    );
    assert_eq!(replies[1].get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("server survives the reset and drains cleanly");
}

/// `--poller poll` swaps the epoll backend for portable `poll(2)` with
/// identical observable behavior: same bytes, same shutdown.
#[test]
fn poll_backend_serves_identically() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        poller: "poll".to_string(),
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let replies =
        roundtrip(handle.addr(), &[request_line(30), r#"{"cmd":"shutdown"}"#.to_string()]);
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
    assert_eq!(
        replies[0].get("output").and_then(Json::as_str),
        Some(one_shot_reference().as_str()),
        "poll backend must serve byte-identical analysis"
    );
    handle.join().expect("clean exit");
}

/// Slow capture must trigger *only* for over-threshold requests: with an
/// unreachably high `--slow-ms` nothing lands in the black box (while the
/// journal still records everything), and without `--slow-ms` the flight
/// endpoint serves an empty list.
#[test]
fn slow_capture_triggers_only_over_threshold() {
    let opts = rtcli::ServeOptions {
        host: "127.0.0.1".to_string(),
        port: 0,
        threads: 2,
        slow_ms: Some(3_600_000),
        ..rtcli::ServeOptions::default()
    };
    let handle = Server::spawn(&opts).expect("bind ephemeral port");
    let replies = roundtrip(
        handle.addr(),
        &[
            request_line(1),
            r#"{"cmd":"flight"}"#.to_string(),
            r#"{"cmd":"statusz"}"#.to_string(),
            r#"{"cmd":"shutdown"}"#.to_string(),
        ],
    );
    assert_eq!(replies[0].get("ok").and_then(Json::as_bool), Some(true), "{:?}", replies[0]);
    let Some(Json::Arr(flights)) = replies[1].get("flights") else { panic!() };
    assert!(flights.is_empty(), "an hour-long threshold captures nothing: {flights:?}");
    let status = replies[2].get("status").expect("status");
    assert_eq!(status.get("slow_captures").and_then(Json::as_u64), Some(0));
    assert!(status.get("records_total").and_then(Json::as_u64).unwrap() >= 2, "journal still on");
    handle.join().expect("clean exit");
}
