//! Integration tests asserting the *shape* of the paper's results on
//! scaled-down experiments: the orderings among the four approaches
//! (Table II), the WCRT orderings (Tables III/V) and the worked examples
//! (Examples 2–4).

use preempt_wcrt::analysis::{
    analyze_all, reload_lines, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::{CacheGeometry, Ciip};
use preempt_wcrt::wcet::TimingModel;

fn analyze(p: &preempt_wcrt::program::Program, period: u64, priority: u32) -> AnalyzedTask {
    AnalyzedTask::analyze(
        p,
        TaskParams { period, priority },
        CacheGeometry::paper_l1(),
        TimingModel::default(),
    )
    .expect("workload analyzes")
}

/// A scaled-down Experiment I (small image and FFT keep debug-mode tests
/// fast) in priority order MR, ED, OFDM.
fn small_exp1() -> Vec<AnalyzedTask> {
    vec![
        analyze(&preempt_wcrt::workloads::mobile_robot(), 100_000, 2),
        analyze(&preempt_wcrt::workloads::edge_detection_with_dim(12), 400_000, 3),
        analyze(&preempt_wcrt::workloads::ofdm_transmitter_with_points(16), 2_000_000, 4),
    ]
}

#[test]
fn table2_shape_combined_is_tightest() {
    let tasks = small_exp1();
    // Every preemption pair of the experiment.
    for (i, j) in [(2usize, 0usize), (2, 1), (1, 0)] {
        let (lo, hi) = (&tasks[i], &tasks[j]);
        let a1 = reload_lines(CrpdApproach::AllPreemptingLines, lo, hi);
        let a2 = reload_lines(CrpdApproach::InterTask, lo, hi);
        let a3 = reload_lines(CrpdApproach::UsefulBlocks, lo, hi);
        let a4 = reload_lines(CrpdApproach::Combined, lo, hi);
        assert!(a4 <= a2, "pair ({i},{j}): App4 {a4} > App2 {a2}");
        assert!(a4 <= a3, "pair ({i},{j}): App4 {a4} > App3 {a3}");
        assert!(
            a2 <= a1,
            "pair ({i},{j}): App2 {a2} > App1 {a1} (Eq.2 is bounded by the preemptor footprint)"
        );
        assert!(a1 > 0 && a4 > 0, "pair ({i},{j}): overlapping tasks must conflict");
    }
}

#[test]
fn wcrt_ordering_across_approaches() {
    let tasks = small_exp1();
    let params = WcrtParams { miss_penalty: 40, ctx_switch: 400, max_iterations: 10_000 };
    let results: Vec<Vec<_>> = CrpdApproach::ALL
        .iter()
        .map(|a| analyze_all(&tasks, &CrpdMatrix::compute(*a, &tasks), &params))
        .collect();
    for t in 0..tasks.len() {
        // All converged here, so monotonicity must hold exactly.
        for r in &results {
            assert!(r[t].schedulable, "small experiment must be schedulable");
        }
        assert!(results[3][t].cycles <= results[1][t].cycles);
        assert!(results[3][t].cycles <= results[2][t].cycles);
        assert!(results[3][t].cycles <= results[0][t].cycles);
    }
    // The highest-priority task is never preempted: its WCRT is its WCET
    // under every approach.
    for r in &results {
        assert_eq!(r[0].cycles, tasks[0].wcet());
    }
}

#[test]
fn wcrt_grows_with_miss_penalty() {
    let tasks = small_exp1();
    let mut last = 0;
    for cmiss in [10u64, 20, 30, 40] {
        let params = WcrtParams { miss_penalty: cmiss, ctx_switch: 400, max_iterations: 10_000 };
        let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
        let r = analyze_all(&tasks, &matrix, &params);
        assert!(r[2].cycles >= last, "OFDM WCRT must grow with Cmiss");
        last = r[2].cycles;
    }
}

#[test]
fn paper_example2_cache_split() {
    let g = CacheGeometry::example2();
    assert_eq!(g.size_bytes(), 1024);
    assert_eq!(g.index_of_addr(0x011).as_u32(), 1);
    assert_eq!(g.block_of_addr(0x011).number(), 1);
}

#[test]
fn paper_example4_bound_is_four() {
    let g = CacheGeometry::example2();
    let m1 = Ciip::from_addrs(g, [0x000u64, 0x100, 0x010, 0x110, 0x210]);
    let m2 = Ciip::from_addrs(g, [0x200u64, 0x310, 0x410, 0x510]);
    assert_eq!(m1.overlap_bound(&m2), 4);
}

#[test]
fn section2_counterexample_disjoint_tasks() {
    // §II: "if the cache lines used by the preempted task and the
    // preempting task are completely disjoint, the cache reload cost is
    // zero" — yet Lee's approach (App. 3) still charges the useful blocks.
    use preempt_wcrt::workloads::synthetic::{synthetic_task, SyntheticSpec};
    let g = CacheGeometry::paper_l1();
    let model = TimingModel::default();
    let mut lo_spec = SyntheticSpec::new("lo", 0x0001_0000, 0x0010_0000);
    lo_spec.two_paths = false;
    let mut hi_spec = SyntheticSpec::new("hi", 0x0001_1000, 0x0010_1000);
    hi_spec.two_paths = false;
    let lo = AnalyzedTask::analyze(
        &synthetic_task(&lo_spec),
        TaskParams { period: 1_000_000, priority: 3 },
        g,
        model,
    )
    .expect("analyzes");
    let hi = AnalyzedTask::analyze(
        &synthetic_task(&hi_spec),
        TaskParams { period: 100_000, priority: 2 },
        g,
        model,
    )
    .expect("analyzes");
    assert_eq!(reload_lines(CrpdApproach::Combined, &lo, &hi), 0);
    assert_eq!(reload_lines(CrpdApproach::InterTask, &lo, &hi), 0);
    assert!(reload_lines(CrpdApproach::UsefulBlocks, &lo, &hi) > 0);
    assert!(reload_lines(CrpdApproach::AllPreemptingLines, &lo, &hi) > 0);
}

#[test]
fn ed_paths_have_different_footprints() {
    // Fig. 4 / Example 5: only one of the Sobel/Cauchy SFP-Prs executes
    // per run, and they touch different memory.
    let ed = analyze(&preempt_wcrt::workloads::edge_detection_with_dim(12), 400_000, 3);
    let paths = ed.paths();
    assert_eq!(paths.len(), 2);
    let sobel = &paths[0].blocks;
    let cauchy = &paths[1].blocks;
    assert!(cauchy.block_count() > sobel.block_count(), "cauchy reads extra tables");
}
