//! The kernel library driven through the whole pipeline: WCET, CRPD
//! bounds, WCRT and measured responses — including the stress cases the
//! paper's analysis must stay sound on (data-dependent addressing in the
//! histogram, data-dependent control flow in the sort).

use preempt_wcrt::analysis::{
    analyze_all, reload_lines, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::sched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use preempt_wcrt::wcet::{estimate_wcet, structural_wcet_bound, TimingModel};
use preempt_wcrt::workloads::kernels;

const DATA_LO: u64 = 0x0030_0000;
const DATA_HI: u64 = 0x0030_0400; // overlapping index range on small caches

fn all_kernels() -> Vec<preempt_wcrt::program::Program> {
    vec![
        kernels::fir_filter(0x0005_0000, DATA_LO, 8, 32),
        kernels::matrix_multiply(0x0005_4000, DATA_LO, 8),
        kernels::crc32(0x0005_8000, DATA_LO, 64),
        kernels::histogram(0x0005_c000, DATA_LO, 128, 16),
        kernels::insertion_sort(0x0006_0000, DATA_LO, 32),
    ]
}

#[test]
fn kernels_have_sound_wcet_bounds() {
    let g = CacheGeometry::new(64, 2, 16).unwrap();
    let model = TimingModel::default();
    for p in all_kernels() {
        let est = estimate_wcet(&p, g, model).unwrap();
        let bound = structural_wcet_bound(&p, model, 1).unwrap();
        assert!(
            bound >= est.cycles,
            "{}: structural {} < simulated {}",
            p.name(),
            bound,
            est.cycles
        );
    }
}

#[test]
fn sort_wcet_comes_from_the_scrambled_path() {
    let g = CacheGeometry::new(64, 2, 16).unwrap();
    let p = kernels::insertion_sort(0x0006_0000, DATA_LO, 32);
    let est = estimate_wcet(&p, g, TimingModel::default()).unwrap();
    assert_eq!(est.worst_variant, "scrambled");
}

#[test]
fn kernel_crpd_orderings_hold() {
    let g = CacheGeometry::new(64, 2, 16).unwrap();
    let model = TimingModel::default();
    let hi = AnalyzedTask::analyze(
        &kernels::fir_filter(0x0007_0000, DATA_HI, 4, 16),
        TaskParams { period: 20_000, priority: 1 },
        g,
        model,
    )
    .unwrap();
    for p in all_kernels() {
        let lo =
            AnalyzedTask::analyze(&p, TaskParams { period: 10_000_000, priority: 2 }, g, model)
                .unwrap();
        let a1 = reload_lines(CrpdApproach::AllPreemptingLines, &lo, &hi);
        let a2 = reload_lines(CrpdApproach::InterTask, &lo, &hi);
        let a3 = reload_lines(CrpdApproach::UsefulBlocks, &lo, &hi);
        let a4 = reload_lines(CrpdApproach::Combined, &lo, &hi);
        assert!(a4 <= a2 && a4 <= a3 && a2 <= a1, "{}: {a1}/{a2}/{a3}/{a4}", p.name());
    }
}

#[test]
fn kernel_system_art_within_bounds() {
    let g = CacheGeometry::new(64, 2, 16).unwrap();
    let model = TimingModel::default();
    let programs = [
        kernels::fir_filter(0x0007_0000, DATA_HI, 4, 16),
        kernels::histogram(0x0005_c000, DATA_LO, 128, 16),
        kernels::insertion_sort(0x0006_0000, DATA_LO + 0x1000, 32),
    ];
    // Periods sized from solo WCETs.
    let wcets: Vec<u64> =
        programs.iter().map(|p| estimate_wcet(p, g, model).unwrap().cycles).collect();
    let periods = [wcets[0] * 6, wcets[1] * 10, wcets[2] * 30];
    let tasks: Vec<AnalyzedTask> = programs
        .iter()
        .zip(periods)
        .zip([1u32, 2, 3])
        .map(|((p, period), priority)| {
            AnalyzedTask::analyze(p, TaskParams { period, priority }, g, model).unwrap()
        })
        .collect();
    let params = WcrtParams { miss_penalty: 20, ctx_switch: 200, max_iterations: 10_000 };
    let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
    let bounds = analyze_all(&tasks, &matrix, &params);
    let config = SchedConfig {
        geometry: g,
        model,
        ctx_switch: 200,
        horizon: periods[2] * 3,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let sched: Vec<SchedTask> = programs
        .iter()
        .zip(periods)
        .zip([1u32, 2, 3])
        .map(|((p, period), priority)| SchedTask::new(p.clone(), period, priority))
        .collect();
    let report = simulate(&sched, &config).unwrap();
    let slack = model.cpi + 2 * model.miss_penalty;
    for (i, r) in bounds.iter().enumerate() {
        assert!(report.tasks[i].completed > 0);
        if r.schedulable {
            assert!(
                report.tasks[i].max_response <= r.cycles + slack,
                "{}: ART {} > bound {}",
                report.tasks[i].name,
                report.tasks[i].max_response,
                r.cycles
            );
        }
    }
    assert!(
        report.tasks.iter().skip(1).any(|t| t.preemptions > 0),
        "the system must actually preempt for this test to mean anything"
    );
}
