//! Thread-count invariance: every analysis artifact and rendered report
//! must be byte-identical whether the `rtpar` pool runs 1, 2 or 8
//! threads. This is the hard determinism contract of the parallel
//! runtime — reductions merge in index order, so the pool size may only
//! change wall-clock time, never a single output byte.

use std::fmt::Write as _;

use preempt_wcrt::analysis::{
    analyze_all, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::wcet::TimingModel;
use preempt_wcrt::workloads::synthetic::{system, SystemParams};

const POOL_SIZES: [usize; 3] = [1, 2, 8];

/// Builds a three-task synthetic system and renders *everything* the
/// analysis produces — task artifacts, all four CRPD matrices and the
/// WCRT fixpoints — into one string, so a single byte comparison covers
/// every parallelized stage (`AnalyzedTask::analyze`,
/// `CrpdMatrix::compute`, `analyze_all`).
fn analysis_report() -> String {
    let geometry = CacheGeometry::new(64, 2, 16).unwrap();
    let model = TimingModel::default();
    let params = SystemParams {
        name_prefix: "inv".to_string(),
        seed: 0xBEEF,
        code_stride: 0x0800,
        data_stride: 0x0140,
        data_words_base: 128,
        data_words_step: 32,
        outer_base: 2,
        inner_iters: 32,
        stride_words: 2,
        ..SystemParams::default()
    };
    let tasks: Vec<AnalyzedTask> = system(&params)
        .iter()
        .enumerate()
        .map(|(i, program)| {
            AnalyzedTask::analyze(
                program,
                TaskParams { period: 200_000 << i, priority: 2 + i as u32 },
                geometry,
                model,
            )
            .expect("synthetic tasks analyze cleanly")
        })
        .collect();
    let params = WcrtParams { miss_penalty: 20, ctx_switch: 120, max_iterations: 10_000 };
    let mut out = String::new();
    for t in &tasks {
        let _ = writeln!(out, "{t} mumbs={} useful={}", t.mumbs(), t.useful_line_bound());
    }
    for approach in CrpdApproach::ALL {
        let matrix = CrpdMatrix::compute(approach, &tasks);
        for i in 0..tasks.len() {
            for j in 0..tasks.len() {
                let _ = write!(out, "{approach}[{i}][{j}]={} ", matrix.reload(i, j));
            }
        }
        let _ = writeln!(out);
        for r in analyze_all(&tasks, &matrix, &params) {
            let _ = writeln!(out, "{approach}: {} {} {}", r.cycles, r.schedulable, r.iterations);
        }
    }
    out
}

/// The full `trisc wcrt` pipeline (spec file -> assembled programs ->
/// analysis -> rendered table) under one explicit pool.
fn cli_report(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("rt-invariance-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(
        dir.join("hi.s"),
        ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nli r3, 4\n\
         loop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\nbne r3, r0, loop\n\
         .bound loop, 4\nhalt\n",
    )
    .expect("write hi.s");
    std::fs::write(
        dir.join("lo.s"),
        ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\n\
         ld r4, 4(r1)\nadd r2, r2, r4\nhalt\n",
    )
    .expect("write lo.s");
    let spec_path = dir.join("system.spec");
    std::fs::write(
        &spec_path,
        "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n",
    )
    .expect("write spec");
    let spec = rtcli::SystemSpec::load(&spec_path).expect("spec parses");
    let output = rtcli::cmd_wcrt(&spec).expect("wcrt succeeds");
    std::fs::remove_dir_all(&dir).ok();
    output
}

#[test]
fn analysis_artifacts_are_byte_identical_at_any_pool_size() {
    let reference = rtpar::Pool::new(1).install(analysis_report);
    assert!(reference.contains("App. 4"), "report looks wrong: {reference}");
    for threads in POOL_SIZES {
        let pool = rtpar::Pool::new(threads);
        assert_eq!(pool.background_workers(), threads - 1);
        let report = pool.install(analysis_report);
        assert_eq!(report, reference, "pool of {threads} threads changed the analysis output");
    }
}

#[test]
fn cli_wcrt_report_is_byte_identical_at_any_pool_size() {
    let reference = rtpar::Pool::new(1).install(|| cli_report("ref"));
    assert!(reference.contains("WCRT"), "report looks wrong: {reference}");
    for threads in POOL_SIZES {
        let report = rtpar::Pool::new(threads).install(|| cli_report(&threads.to_string()));
        assert_eq!(report, reference, "pool of {threads} threads changed the rendered report");
    }
}

/// The full `trisc explore` sweep (grid file -> plan -> batched parallel
/// evaluation -> streamed rows, Pareto front and explanations) under one
/// explicit pool.
fn explore_report(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("rt-inv-explore-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(
        dir.join("hi.s"),
        ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nli r3, 4\n\
         loop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\nbne r3, r0, loop\n\
         .bound loop, 4\nhalt\n",
    )
    .expect("write hi.s");
    std::fs::write(
        dir.join("lo.s"),
        ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\n\
         ld r4, 4(r1)\nadd r2, r2, r4\nhalt\n",
    )
    .expect("write lo.s");
    std::fs::write(
        dir.join("system.spec"),
        "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n",
    )
    .expect("write spec");
    std::fs::write(
        dir.join("sweep.grid"),
        "spec system.spec\nsets 32 64\nways 1 2\ncmiss 20 40\nperiod-scale 0.5 1\n\
         priority-rot 0 1\napproach all\n",
    )
    .expect("write grid");
    let report = rtexplore::cmd_explore(&dir.join("sweep.grid")).expect("sweep succeeds");
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// Satellite: the sweep's entire output — every per-point row, the
/// Pareto-front membership and ordering, and the binding-constraint
/// explanations — is byte-identical at 1, 2 and 8 threads.
#[test]
fn explore_report_is_byte_identical_at_any_pool_size() {
    let reference = rtpar::Pool::new(1).install(|| explore_report("ref"));
    assert!(reference.contains("explore: 128 points"), "report looks wrong: {reference}");
    assert!(reference.contains("Pareto front ("), "report looks wrong: {reference}");
    for threads in POOL_SIZES {
        let report = rtpar::Pool::new(threads).install(|| explore_report(&threads.to_string()));
        assert_eq!(report, reference, "pool of {threads} threads changed the explore report");
    }
}

/// Repeating the *same* analysis on the *same* multi-threaded pool is
/// also stable run-to-run (no scheduling-order leak into the artifacts).
#[test]
fn repeated_runs_on_one_pool_are_stable() {
    let pool = rtpar::Pool::new(8);
    let first = pool.install(analysis_report);
    for _ in 0..3 {
        assert_eq!(pool.install(analysis_report), first);
    }
}

/// The rtobs determinism contract: an installed recorder observes the
/// pipeline but never perturbs it, so every report is byte-identical
/// with tracing on and off, at every pool size. (`rtobs::env_session`
/// honors `RTOBS=1`, so CI re-runs this whole suite with an extra
/// ambient recorder installed as well.)
#[test]
fn reports_are_byte_identical_with_tracing_on_and_off() {
    let _ambient = rtobs::env_session();
    let plain_analysis = rtpar::Pool::new(1).install(analysis_report);
    let plain_cli = rtpar::Pool::new(1).install(|| cli_report("obs-ref"));
    let session = rtobs::begin();
    for threads in POOL_SIZES {
        let pool = rtpar::Pool::new(threads);
        assert_eq!(
            pool.install(analysis_report),
            plain_analysis,
            "tracing at {threads} threads changed the analysis output"
        );
        assert_eq!(
            pool.install(|| cli_report(&format!("obs-{threads}"))),
            plain_cli,
            "tracing at {threads} threads changed the rendered report"
        );
    }
    // The recorder actually saw the runs: every pipeline stage left spans.
    let stages = session.recorder().stage_durations();
    for stage in ["assemble", "trace", "ciip", "mumbs", "crpd", "wcrt"] {
        assert!(stages.contains_key(stage), "no spans recorded for stage `{stage}`");
    }
}

/// The rtflight determinism contract: an installed flight frame observes
/// the pipeline (span durations, stage-cache lookups) but never perturbs
/// it — reports are byte-identical with the flight recorder on and off,
/// at 1 and 8 threads — while the frame demonstrably attributed the work
/// it watched, including work stolen by pool helper threads.
#[test]
fn reports_are_byte_identical_with_the_flight_recorder_on_and_off() {
    let plain_analysis = rtpar::Pool::new(1).install(analysis_report);
    let plain_cli = rtpar::Pool::new(1).install(|| cli_report("flight-ref"));
    let recorder = rtobs::flight::FlightRecorder::new(8);
    for threads in [1usize, 8] {
        let pool = rtpar::Pool::new(threads);
        let scope = recorder.begin("invariance", 0, true);
        let (analysis, cli) =
            pool.install(|| (analysis_report(), cli_report(&format!("flight-{threads}"))));
        let finished = scope.finish(true);
        assert_eq!(
            analysis, plain_analysis,
            "a flight frame at {threads} threads changed the analysis output"
        );
        assert_eq!(
            cli, plain_cli,
            "a flight frame at {threads} threads changed the rendered report"
        );
        // The frame saw the pipeline: every major stage has attributed
        // wall time, at any pool size (adoption carries the frame onto
        // helper threads).
        for stage in ["assemble", "trace", "ciip", "mumbs", "crpd", "wcrt"] {
            let idx = rtobs::flight::stage_index(stage).expect("registered stage");
            assert!(
                finished.record.stage_ns[idx] > 0,
                "no wall time attributed to `{stage}` at {threads} threads"
            );
        }
        assert!(!finished.spans.is_empty(), "span capture recorded the pipeline");
    }
    assert_eq!(recorder.records_total(), 2);
}
