//! End-to-end pipeline tests: assembly text → program → trace → analysis
//! → scheduling, exercising the public API the way a downstream user
//! would.

use preempt_wcrt::analysis::{
    analyze_all, reload_lines, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::program::asm::assemble;
use preempt_wcrt::program::Simulator;
use preempt_wcrt::sched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use preempt_wcrt::wcet::{estimate_wcet, structural_wcet_bound, TimingModel};

/// A memset-style task written in assembly.
const WRITER: &str = r#"
    .text 0x40000
    .data 0x160000
buf: .space 128
    .text
start:
    li   r1, buf
    li   r2, 128
loop:
    st   r2, 0(r1)
    addi r1, r1, 4
    addi r2, r2, -1
    bne  r2, r0, loop
    .bound loop, 128
    halt
"#;

/// A checksum task over the same index range (different tag).
const READER: &str = r#"
    .text 0x42000
    .data 0x162000
src: .word 5, 4, 3, 2, 1
acc: .space 1
    .text
start:
    li   r1, src
    li   r2, 0
    li   r3, 5
loop:
    ld   r4, 0(r1)
    add  r2, r2, r4
    addi r1, r1, 4
    addi r3, r3, -1
    bne  r3, r0, loop
    .bound loop, 5
    li   r5, acc
    st   r2, 0(r5)
    ; second pass re-reads the words (creates useful blocks)
    li   r1, src
    li   r3, 5
loop2:
    ld   r4, 0(r1)
    xor  r2, r2, r4
    addi r1, r1, 4
    addi r3, r3, -1
    bne  r3, r0, loop2
    .bound loop2, 5
    st   r2, 0(r5)
    halt
"#;

#[test]
fn assemble_analyze_schedule_round_trip() {
    let geometry = CacheGeometry::new(64, 2, 16).unwrap();
    let model = TimingModel::default();

    let writer = assemble("writer", WRITER).expect("assembles");
    let reader = assemble("reader", READER).expect("assembles");

    // Functional check through the simulator.
    let mut sim = Simulator::new(&reader);
    sim.run_to_halt().expect("runs");
    assert_eq!(sim.memory().read(reader.symbol("acc").unwrap()).unwrap(), 15 ^ 5 ^ 4 ^ 3 ^ 2 ^ 1);

    // WCET estimates are consistent.
    let w = estimate_wcet(&writer, geometry, model).expect("estimates");
    assert_eq!(w.instructions, 2 + 128 * 4 + 1); // li, li, 128x(st,addi,addi,bne), halt
    let bound = structural_wcet_bound(&writer, model, 1).expect("bounds");
    assert!(bound >= w.cycles);

    // Cross-task CRPD: both tasks' data lands in overlapping sets (bases
    // 0x160000 vs 0x162000 differ by exactly two index periods of the
    // 1 KiB cache => fully aliased).
    let lo = AnalyzedTask::analyze(
        &writer,
        TaskParams { period: 100_000, priority: 2 },
        geometry,
        model,
    )
    .expect("analyzes");
    let hi =
        AnalyzedTask::analyze(&reader, TaskParams { period: 10_000, priority: 1 }, geometry, model)
            .expect("analyzes");
    let a4 = reload_lines(CrpdApproach::Combined, &lo, &hi);
    let a1 = reload_lines(CrpdApproach::AllPreemptingLines, &lo, &hi);
    assert!(a4 <= a1);

    // WCRT and a matching simulation.
    let tasks = vec![hi, lo];
    let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
    let params = WcrtParams { miss_penalty: 20, ctx_switch: 100, max_iterations: 1000 };
    let results = analyze_all(&tasks, &matrix, &params);
    assert!(results.iter().all(|r| r.schedulable));

    let config = SchedConfig {
        geometry,
        model,
        ctx_switch: 100,
        horizon: 200_000,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let report = simulate(
        &[SchedTask::new(reader.clone(), 10_000, 1), SchedTask::new(writer.clone(), 100_000, 2)],
        &config,
    )
    .expect("simulates");
    let slack = model.cpi + 2 * model.miss_penalty;
    for (i, tr) in report.tasks.iter().enumerate() {
        assert!(tr.completed > 0);
        assert!(tr.max_response <= results[i].cycles + slack, "{}", tr.name);
    }
}

#[test]
fn umbrella_reexports_are_consistent() {
    // The umbrella crate's modules are the workspace crates.
    let g = preempt_wcrt::cache::CacheGeometry::paper_l1();
    assert_eq!(g, rtcache::CacheGeometry::paper_l1());
    let p = preempt_wcrt::workloads::mobile_robot();
    assert_eq!(p.name(), "mr");
}

#[test]
fn experiment_builders_return_priority_ordered_sets() {
    let e1 = preempt_wcrt::workloads::experiment1();
    assert_eq!(e1.iter().map(|p| p.name()).collect::<Vec<_>>(), vec!["mr", "ed", "ofdm"]);
    let e2 = preempt_wcrt::workloads::experiment2();
    assert_eq!(e2.iter().map(|p| p.name()).collect::<Vec<_>>(), vec!["idct", "adpcmd", "adpcmc"]);
}
