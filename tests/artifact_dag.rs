//! The staged artifact DAG's incremental-invalidation contract, end to
//! end: a period/priority-only edit to a cached system re-runs **zero**
//! pipeline stages (no `assemble`/`trace`/`wcet`/`ciip`/`analyze` spans,
//! only cache hits), repeated WCRT requests hit the `CrpdMatrix` cell
//! cache, and every cached report stays byte-identical to a cold one.

use std::path::Path;
use std::sync::{Mutex, MutexGuard, OnceLock};

use crpd::{AnalyzedTask, TaskParams};
use proptest::prelude::*;
use rtcli::SystemSpec;
use rtserver::store::ArtifactStore;

const SPEC: &str = "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n";
const TASK_HI: &str = ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nli r3, 4\nloop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\nbne r3, r0, loop\n.bound loop, 4\nhalt\n";
const TASK_LO: &str = ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nld r4, 4(r1)\nadd r2, r2, r4\nhalt\n";

/// The `rtobs` recorder is process-global, and the pipeline records into
/// it whenever a session is live — so every test in this binary (even
/// those that don't record) serializes here to keep span/counter
/// assertions honest.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(Mutex::default).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn spec() -> SystemSpec {
    SystemSpec::parse(SPEC, Path::new("")).expect("spec parses")
}

/// Analyzes both tasks through `store` under explicit params.
fn tasks_via_store(
    store: &ArtifactStore,
    spec: &SystemSpec,
    params: [TaskParams; 2],
) -> Vec<AnalyzedTask> {
    let geometry = spec.cache.geometry().unwrap();
    let model = spec.cache.model();
    let [hi, lo] = params;
    vec![
        store.analyzed("hi", TASK_HI, hi, geometry, model).expect("hi analyzes"),
        store.analyzed("lo", TASK_LO, lo, geometry, model).expect("lo analyzes"),
    ]
}

/// Cold reference: fresh (storeless, cacheless) analysis and rendering.
fn cold_report(spec: &SystemSpec, params: [TaskParams; 2]) -> String {
    let geometry = spec.cache.geometry().unwrap();
    let model = spec.cache.model();
    let [hi, lo] = params;
    let assemble = |name: &str, source: &str| rtprogram::asm::assemble(name, source).unwrap();
    let tasks = vec![
        AnalyzedTask::analyze(&assemble("hi", TASK_HI), hi, geometry, model).unwrap(),
        AnalyzedTask::analyze(&assemble("lo", TASK_LO), lo, geometry, model).unwrap(),
    ];
    rtcli::cmd_wcrt_with(spec, &tasks).unwrap()
}

#[test]
fn param_only_change_reruns_zero_pipeline_stages() {
    let _serial = obs_lock();
    let spec = spec();
    let p1 =
        [TaskParams { period: 5_000, priority: 1 }, TaskParams { period: 50_000, priority: 2 }];
    // A period-only edit to task `hi`; priorities (and thus the set of
    // feasible preemption pairs) are unchanged.
    let p2 =
        [TaskParams { period: 4_000, priority: 1 }, TaskParams { period: 50_000, priority: 2 }];

    // Warm the DAG at P1 and render once, so every stage is cached.
    let store = ArtifactStore::default();
    let warm_tasks = tasks_via_store(&store, &spec, p1.clone());
    rtcli::cmd_wcrt_cached(&spec, &warm_tasks, store.cells()).unwrap();
    assert_eq!(store.misses(), 2, "cold run analyzes both tasks");
    let cells_before = store.cells().misses();
    assert!(cells_before > 0, "the warm render bounded some preemption pairs");

    // Re-request with P2 under a recorder: the only work left is the
    // WCRT fixpoint itself.
    let session = rtobs::begin();
    let rebound = tasks_via_store(&store, &spec, p2.clone());
    let warm_report = rtcli::cmd_wcrt_cached(&spec, &rebound, store.cells()).unwrap();
    let spans = session.recorder().spans();
    let counters = session.recorder().counters();
    drop(session);

    for stage in ["assemble", "trace", "wcet", "ciip", "analyze", "mumbs"] {
        assert!(
            !spans.iter().any(|s| s.stage == stage),
            "a param-only change must re-run zero `{stage}` spans, got: {:?}",
            spans.iter().map(|s| s.stage).collect::<Vec<_>>()
        );
    }
    assert!(spans.iter().any(|s| s.stage == "wcrt"), "the fixpoint itself re-runs");
    let lookups = |stage: &str| counters.stage_lookups.get(stage).copied().unwrap_or_default();
    assert_eq!((lookups("assemble").hits, lookups("assemble").misses), (2, 0));
    assert_eq!((lookups("analyze").hits, lookups("analyze").misses), (2, 0));
    assert_eq!(lookups("crpd_cell").misses, 0, "all pairwise bounds come from the cell cache");
    assert!(lookups("crpd_cell").hits > 0);
    assert_eq!(store.cells().misses(), cells_before, "no cell recomputed");
    assert_eq!((store.hits(), store.misses()), (2, 2));

    // And the cached P2 report matches a cold P2 analysis byte-for-byte.
    assert_eq!(warm_report, cold_report(&spec, p2));
}

#[test]
fn repeated_wcrt_requests_hit_the_cell_cache() {
    let _serial = obs_lock();
    let spec = spec();
    let params =
        [TaskParams { period: 5_000, priority: 1 }, TaskParams { period: 50_000, priority: 2 }];
    let store = ArtifactStore::default();
    let tasks = tasks_via_store(&store, &spec, params.clone());

    let first = rtcli::cmd_wcrt_cached(&spec, &tasks, store.cells()).unwrap();
    let (hits_1, misses_1) = (store.cells().hits(), store.cells().misses());
    // One feasible pair (lo preempted by hi) under four approaches.
    assert_eq!(misses_1, 4, "each approach bounds the one feasible pair once");
    assert_eq!(hits_1, 0);

    let second = rtcli::cmd_wcrt_cached(&spec, &tasks, store.cells()).unwrap();
    assert_eq!(second, first, "identical requests render identical bytes");
    assert_eq!(store.cells().misses(), misses_1, "no cell recomputed on the repeat");
    assert_eq!(store.cells().hits(), hits_1 + 4, "every cell served from cache");

    // The cached report matches the uncached rendering path too.
    assert_eq!(first, rtcli::cmd_wcrt_with(&spec, &tasks).unwrap());
    assert_eq!(first, cold_report(&spec, params));
}

/// Strategy for one system's `[hi, lo]` params. Priorities are derived
/// from a base plus a non-zero offset — the recurrence rejects duplicate
/// priorities.
fn arb_system() -> impl Strategy<Value = [TaskParams; 2]> {
    (1_000u64..1_000_000, 1_000u64..1_000_000, 1u32..5, 1u32..5).prop_map(
        |(period_a, period_b, prio, offset)| {
            [
                TaskParams { period: period_a, priority: prio },
                TaskParams { period: period_b, priority: prio + offset },
            ]
        },
    )
}

/// Strategy for a randomized sweep grid plus a point-picking seed: each
/// axis draws a small value list (cache shape, miss penalty, period
/// scaling, priority rotation), and every grid sweeps all four CRPD
/// approaches and two context-switch costs.
fn arb_sweep_grid() -> impl Strategy<Value = (rtexplore::Grid, u64)> {
    (
        prop::sample::select(vec![vec![32u32], vec![32, 64], vec![64, 128]]),
        prop::sample::select(vec![vec![1u32], vec![1, 2], vec![2, 4]]),
        prop::sample::select(vec![vec![10u64], vec![20, 40]]),
        prop::sample::select(vec![vec![1.0f64], vec![0.5, 2.0]]),
        prop::sample::select(vec![vec![0u32], vec![0, 1]]),
        0u64..1_000_000,
    )
        .prop_map(|(sets, ways, cmiss, period_scale, priority_rot, seed)| {
            let grid = rtexplore::Grid {
                sets,
                ways,
                cmiss,
                period_scale,
                priority_rot,
                ccs: vec![50, 150],
                approach: crpd::CrpdApproach::ALL.to_vec(),
                ..rtexplore::Grid::default()
            };
            (grid, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: rebinding a random point of a randomized sweep grid
    /// through the warmed artifact DAG is bit-identical to a fresh
    /// from-scratch analysis of that point — same WCRT vector, same
    /// schedulability — and re-evaluating the point stays bit-identical.
    #[test]
    fn sweep_point_rebind_matches_fresh_analysis(case in arb_sweep_grid()) {
        let _serial = obs_lock();
        let (grid, seed) = case;
        let spec = spec();
        let plan = rtexplore::Plan::new(&spec, &grid).unwrap();
        let index = (seed % plan.len() as u64) as usize;

        // Warm the DAG at the base configuration first, like a server
        // that has already served plain `wcrt` traffic for this system.
        let store = ArtifactStore::default();
        tasks_via_store(&store, &spec, [
            TaskParams { period: 5_000, priority: 1 },
            TaskParams { period: 50_000, priority: 2 },
        ]);

        // The sweep point, evaluated by rebinding through the DAG.
        let tasks = [("hi", TASK_HI), ("lo", TASK_LO)];
        let provider = |task: usize, geometry, model| {
            let (name, source) = tasks[task];
            store.analyzed_program(name, source, geometry, model)
        };
        let outcome =
            rtexplore::evaluate_point(&plan, &provider, store.cells(), index).unwrap();

        // The same point, analyzed from scratch with no store anywhere.
        let config = plan.point(index);
        let params = plan.params_for(&config);
        let fresh: Vec<AnalyzedTask> = tasks
            .iter()
            .zip(&params)
            .map(|((name, source), p)| {
                AnalyzedTask::analyze(
                    &rtprogram::asm::assemble(name, source).unwrap(),
                    p.clone(),
                    config.geometry,
                    config.model(),
                )
                .unwrap()
            })
            .collect();
        let matrix = crpd::CrpdMatrix::compute(config.approach, &fresh);
        let wcrt = crpd::analyze_all(&fresh, &matrix, &crpd::WcrtParams {
            miss_penalty: config.cmiss,
            ctx_switch: config.ccs,
            max_iterations: 10_000,
        });
        prop_assert_eq!(&outcome.wcrt, &wcrt,
            "DAG-rebound point {} must match a from-scratch analysis", index);

        // A second evaluation through the (now fully warm) DAG changes
        // nothing — not the WCRT vector, not the derived objectives.
        let again =
            rtexplore::evaluate_point(&plan, &provider, store.cells(), index).unwrap();
        prop_assert_eq!(outcome, again);
    }

    /// Satellite: analyzing under params P1 and rebinding the cached
    /// `AnalyzedProgram`s to P2 yields a report byte-identical to a
    /// fresh analysis at P2 — at 1 and at 8 threads.
    #[test]
    fn rebinding_matches_fresh_analysis_at_any_thread_count(
        p1 in arb_system(), p2 in arb_system(),
    ) {
        let _serial = obs_lock();
        let spec = spec();
        for threads in [1usize, 8] {
            let pool = rtpar::Pool::new(threads);
            let (via_rebind, fresh) = pool.install(|| {
                let store = ArtifactStore::default();
                // Analyze under P1, then rebind the cached artifacts to P2.
                tasks_via_store(&store, &spec, p1.clone());
                let rebound = tasks_via_store(&store, &spec, p2.clone());
                let via_rebind =
                    rtcli::cmd_wcrt_cached(&spec, &rebound, store.cells()).unwrap();
                (via_rebind, cold_report(&spec, p2.clone()))
            });
            prop_assert_eq!(
                &via_rebind, &fresh,
                "threads={}: rebound P1->P2 report must equal a fresh P2 analysis", threads
            );
        }
    }
}
