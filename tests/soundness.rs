//! Ground-truth soundness checks: WCRT estimates must dominate measured
//! actual response times, per-preemption reload bounds must dominate
//! measured reloads, and the dataflow useful-block formulation must
//! dominate the exact one.

use preempt_wcrt::analysis::{
    analyze_all, dataflow_useful, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::sched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use preempt_wcrt::wcet::TimingModel;
use preempt_wcrt::workloads::synthetic::{synthetic_task, system, SyntheticSpec, SystemParams};

/// Builds a three-task synthetic system with heavy index overlap (data
/// bases staggered within one index period) and tight periods. The
/// program family lives in `workloads::synthetic::system`; this wrapper
/// probes solo WCETs to size the periods (hp shortest).
fn synthetic_system(seed: u64) -> Vec<(preempt_wcrt::program::Program, u64, u32)> {
    let g = CacheGeometry::new(64, 2, 16).unwrap();
    let model = TimingModel::default();
    system(&SystemParams { seed, ..SystemParams::default() })
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let wcet = preempt_wcrt::wcet::estimate_wcet(&p, g, model).expect("analyzes").cycles;
            // Periods 4x/8x/16x the WCET: plenty of preemption, still
            // schedulable.
            let period = wcet * (4 << i);
            (p, period, 2 + i as u32)
        })
        .collect()
}

/// The central guarantee: for every approach, on every geometry tried, no
/// measured response exceeds a converged WCRT estimate (plus the
/// one-instruction blocking slack: releases take effect at instruction
/// boundaries, so a releasing task can wait out one in-flight instruction
/// — at most `cpi + 2·Cmiss` cycles — which Eq. 6/7, like the paper,
/// does not model).
#[test]
fn art_never_exceeds_converged_wcrt() {
    for (geom_sets, geom_ways) in [(64u32, 2u32), (128, 4), (512, 4)] {
        let geometry = CacheGeometry::new(geom_sets, geom_ways, 16).unwrap();
        let model = TimingModel::default();
        for seed in [1u64, 42, 2026] {
            let system = synthetic_system(seed);
            let tasks: Vec<AnalyzedTask> = system
                .iter()
                .map(|(p, period, prio)| {
                    AnalyzedTask::analyze(
                        p,
                        TaskParams { period: *period, priority: *prio },
                        geometry,
                        model,
                    )
                    .expect("analyzes")
                })
                .collect();
            let sched: Vec<SchedTask> = system
                .iter()
                .map(|(p, period, prio)| SchedTask::new(p.clone(), *period, *prio))
                .collect();
            let config = SchedConfig {
                geometry,
                model,
                ctx_switch: 300,
                horizon: system.last().unwrap().1 * 3,
                variant_policy: VariantPolicy::Worst,
                cache_mode: CacheMode::Shared,
                replacement: Default::default(),
                l2: None,
            };
            let report = simulate(&sched, &config).expect("simulates");
            let params = WcrtParams { miss_penalty: 20, ctx_switch: 300, max_iterations: 10_000 };
            for approach in CrpdApproach::ALL {
                let matrix = CrpdMatrix::compute(approach, &tasks);
                let results = analyze_all(&tasks, &matrix, &params);
                let blocking_slack = model.cpi + 2 * model.miss_penalty;
                for (i, r) in results.iter().enumerate() {
                    if r.schedulable {
                        assert!(
                            report.tasks[i].max_response <= r.cycles + blocking_slack,
                            "seed {seed}, {geom_sets}x{geom_ways}, {}: \
                             ART {} > {approach} WCRT {} (+slack {blocking_slack})",
                            report.tasks[i].name,
                            report.tasks[i].max_response,
                            r.cycles
                        );
                    }
                }
            }
        }
    }
}

/// Per-preemption reload measurements must respect the Eq. 4 bound when a
/// single preemptor is involved (two-task systems avoid nesting).
#[test]
fn measured_reloads_respect_combined_bound() {
    let geometry = CacheGeometry::new(64, 2, 16).unwrap();
    let model = TimingModel::default();
    for seed in [7u64, 99, 12345] {
        let system = synthetic_system(seed);
        // Two tasks only: the high and the low, so every preemption is
        // un-nested and pairwise attribution is exact.
        let (hi_p, _, _) = &system[0];
        let (lo_p, lo_period, _) = &system[2];
        let hi_period = system[0].1 / 2; // press harder
        let hi = AnalyzedTask::analyze(
            hi_p,
            TaskParams { period: hi_period, priority: 1 },
            geometry,
            model,
        )
        .expect("analyzes");
        let lo = AnalyzedTask::analyze(
            lo_p,
            TaskParams { period: *lo_period, priority: 2 },
            geometry,
            model,
        )
        .expect("analyzes");
        let bound = preempt_wcrt::analysis::reload_lines(CrpdApproach::Combined, &lo, &hi);
        let config = SchedConfig {
            geometry,
            model,
            ctx_switch: 0,
            horizon: lo_period * 3,
            variant_policy: VariantPolicy::Worst,
            cache_mode: CacheMode::Shared,
            replacement: Default::default(),
            l2: None,
        };
        let report = simulate(
            &[
                SchedTask::new(hi_p.clone(), hi_period, 1),
                SchedTask::new(lo_p.clone(), *lo_period, 2),
            ],
            &config,
        )
        .expect("simulates");
        assert!(report.tasks[1].preemptions > 0, "seed {seed}: the test needs real preemptions");
        for p in &report.preemptions {
            assert!(
                p.reloaded_lines <= bound,
                "seed {seed}: measured reload {} > combined bound {bound}",
                p.reloaded_lines
            );
        }
    }
}

/// A tiny SplitMix64 so the randomized differential test below is
/// self-seeding and reproducible without any external PRNG crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `lo..=hi`.
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Differential soundness over *random* task pairs: generate synthetic
/// preempted/preempting programs with randomized footprints, loop shapes
/// and strides, replay the actual preemptions on the cache simulator, and
/// check that no measured useful-block reload cost ever exceeds the
/// analyzed per-preemption CRPD — for the combined approach (the paper's
/// App. 4) and, by the tightness ordering also asserted here, for every
/// coarser approach.
#[test]
fn random_pairs_measured_reloads_never_exceed_analyzed_crpd() {
    let geometries =
        [CacheGeometry::new(32, 2, 16).unwrap(), CacheGeometry::new(64, 2, 16).unwrap()];
    let model = TimingModel::default();
    let mut total_preemptions = 0usize;
    for seed in 0u64..8 {
        let mut rng = SplitMix64(0xC0FF_EE00 + seed);
        let geometry = geometries[(rng.next() % geometries.len() as u64) as usize];
        let mut make = |name: &str, slot: u64| {
            let mut spec = SyntheticSpec::new(
                name.to_string(),
                0x0001_0000 + 0x0800 * slot,
                // Stagger data bases within one index period so the pair
                // genuinely conflicts in the cache.
                0x0010_0000 + 0x0100 * slot + 16 * rng.in_range(0, 8),
            );
            spec.seed = rng.next();
            // The scan arm must stay inside half the (two-path) buffer:
            // inner_iters * stride_words <= data_words / 2.
            spec.stride_words = rng.in_range(1, 3) as usize;
            spec.data_words = spec.stride_words * rng.in_range(64, 160) as usize;
            spec.outer_iters = rng.in_range(2, 5) as u32;
            spec.inner_iters = rng.in_range(8, 32) as u32;
            synthetic_task(&spec)
        };
        let hi_p = make("rhi", 0);
        let lo_p = make("rlo", 1);
        let wcet = |p| preempt_wcrt::wcet::estimate_wcet(p, geometry, model).unwrap().cycles;
        // High-priority period at ~2x its WCET presses hard enough to
        // preempt; the low task gets room to actually run (and be hit).
        let hi_period = wcet(&hi_p) * 2;
        let lo_period = (wcet(&lo_p) + wcet(&hi_p) * 4) * 2;
        let analyze = |p: &_, period, priority| {
            AnalyzedTask::analyze(p, TaskParams { period, priority }, geometry, model)
                .expect("analyzes")
        };
        let hi = analyze(&hi_p, hi_period, 1);
        let lo = analyze(&lo_p, lo_period, 2);
        let bound = |approach| preempt_wcrt::analysis::reload_lines(approach, &lo, &hi);
        let combined = bound(CrpdApproach::Combined);
        for coarser in
            [CrpdApproach::AllPreemptingLines, CrpdApproach::InterTask, CrpdApproach::UsefulBlocks]
        {
            assert!(
                combined <= bound(coarser),
                "seed {seed}: combined {combined} above {coarser} bound {}",
                bound(coarser)
            );
        }
        let config = SchedConfig {
            geometry,
            model,
            ctx_switch: 0,
            horizon: lo_period * 3,
            variant_policy: VariantPolicy::Worst,
            cache_mode: CacheMode::Shared,
            replacement: Default::default(),
            l2: None,
        };
        let report = simulate(
            &[SchedTask::new(hi_p, hi_period, 1), SchedTask::new(lo_p, lo_period, 2)],
            &config,
        )
        .expect("simulates");
        for p in &report.preemptions {
            assert!(
                p.reloaded_lines <= combined,
                "seed {seed} ({geometry}): measured reload {} > analyzed CRPD {combined}",
                p.reloaded_lines
            );
        }
        total_preemptions += report.tasks[1].preemptions as usize;
    }
    assert!(total_preemptions > 0, "the random systems must actually preempt");
}

/// Every committed fuzz reproducer in `tests/corpus/` must replay clean
/// through the farm's full oracle stack (CRPD dominance, sound-reference
/// WCRT dominance, packed-kernel equivalence) on every `cargo test`.
/// These are shrunk regression specs: each one once exposed — or guards
/// against — a soundness gap.
#[test]
fn fuzz_corpus_replays_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let report = rtfuzz::replay_corpus(&dir).expect("corpus parses");
    assert!(!report.files.is_empty(), "tests/corpus must not be empty");
    assert!(
        report.failures.is_empty(),
        "corpus regressions: {:?}",
        report
            .failures
            .iter()
            .map(|(p, v)| format!("{}: [{}] {}", p.display(), v.kind.label(), v.detail))
            .collect::<Vec<_>>()
    );
    assert!(report.counts.crpd_records > 0, "corpus must exercise real preemptions");
}

/// Lee's RMB/LMB dataflow over-approximates the exact useful blocks *at
/// basic-block entry points* (the only execution points it evaluates).
/// The exact sweep also sees mid-block points, so the comparison is made
/// per node entry: every exact-useful block at a node entry must be in
/// the dataflow's useful set for that node.
#[test]
fn dataflow_contains_exact_useful_at_node_entries() {
    use preempt_wcrt::analysis::UsefulTrace;
    use preempt_wcrt::program::cfg::Cfg;
    use preempt_wcrt::program::AccessKind;

    let geometry = CacheGeometry::new(128, 2, 16).unwrap();
    let mut programs =
        vec![preempt_wcrt::workloads::mobile_robot(), preempt_wcrt::workloads::context_switch()];
    for seed in [3u64, 17, 404] {
        let mut spec = SyntheticSpec::new("s", 0x0001_0000, 0x0010_0000);
        spec.seed = seed;
        programs.push(synthetic_task(&spec));
    }
    for p in programs {
        let cfg = Cfg::from_program(&p);
        let df = dataflow_useful(&p, geometry).expect("analyzes");
        for variant in p.variants() {
            let trace = preempt_wcrt::program::sim::trace_variant(&p, variant).expect("runs");
            let exact = UsefulTrace::from_trace(&trace, geometry);
            // Positions in the trace where a basic block is entered.
            let entries: Vec<(usize, preempt_wcrt::program::BlockId)> = trace
                .accesses
                .iter()
                .enumerate()
                .filter(|(_, a)| a.kind == AccessKind::Fetch)
                .filter_map(|(pos, a)| {
                    let b = cfg.block_containing(a.pc)?;
                    (cfg.block(b).start == a.pc).then_some((pos, b))
                })
                .collect();
            // Sample up to 200 entries spread over the trace.
            let step = (entries.len() / 200).max(1);
            for (pos, node) in entries.into_iter().step_by(step) {
                let exact_set = exact.useful_at(pos);
                let df_set = df
                    .points
                    .iter()
                    .find(|(b, _)| *b == node)
                    .map(|(_, c)| c)
                    .unwrap_or_else(|| panic!("{}: node {node} missing", p.name()));
                for block in exact_set.blocks() {
                    assert!(
                        df_set.contains(block),
                        "{} variant {}: exact useful block {block} at {node} \
                         entry (pos {pos}) missing from dataflow set",
                        p.name(),
                        variant.name
                    );
                }
            }
        }
    }
}
