//! `preempt-wcrt` — a complete reproduction of *"Timing Analysis for
//! Preemptive Multi-tasking Real-Time Systems with Caches"* (Tan &
//! Mooney, DATE 2004) as a Rust workspace.
//!
//! This umbrella crate re-exports the workspace's crates under one roof:
//!
//! * [`cache`] (`rtcache`) — set-associative cache model, simulator and
//!   the Cache Index Induced Partition (CIIP) with the Eq. 2/3 conflict
//!   bounds.
//! * [`program`] (`rtprogram`) — the TRISC-16 ISA, assembler, structured
//!   program builder, instruction-set simulator, CFGs and path
//!   enumeration.
//! * [`workloads`] (`rtworkloads`) — the paper's six benchmark tasks
//!   re-implemented for TRISC, plus synthetic task generators.
//! * [`wcet`] (`rtwcet`) — SYMTA-style WCET estimation.
//! * [`analysis`] (`crpd`) — the paper's contribution: useful-block
//!   (intra-task) analysis, inter-task CIIP eviction analysis, path
//!   analysis of the preempting task, the four CRPD approaches, and the
//!   Eq. 7 WCRT recurrence.
//! * [`sched`] (`rtsched`) — the preemptive fixed-priority co-simulation
//!   measuring actual response times.
//!
//! # Quick start
//!
//! ```
//! use preempt_wcrt::analysis::{reload_lines, AnalyzedTask, CrpdApproach, TaskParams};
//! use preempt_wcrt::cache::CacheGeometry;
//! use preempt_wcrt::wcet::TimingModel;
//!
//! # fn main() -> Result<(), preempt_wcrt::analysis::AnalysisError> {
//! let geometry = CacheGeometry::paper_l1();
//! let model = TimingModel::default();
//! // The preempted task (low priority) and the preempting task (high).
//! let ofdm = AnalyzedTask::analyze(
//!     &preempt_wcrt::workloads::ofdm_transmitter_with_points(16),
//!     TaskParams { period: 4_000_000, priority: 4 },
//!     geometry,
//!     model,
//! )?;
//! let mr = AnalyzedTask::analyze(
//!     &preempt_wcrt::workloads::mobile_robot(),
//!     TaskParams { period: 350_000, priority: 2 },
//!     geometry,
//!     model,
//! )?;
//! // How many cache lines must OFDM reload after one MR preemption?
//! let bound = reload_lines(CrpdApproach::Combined, &ofdm, &mr);
//! assert!(bound <= reload_lines(CrpdApproach::AllPreemptingLines, &ofdm, &mr));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and the `repro` binary
//! (`cargo run --release -p rtbench --bin repro -- all`) for the paper's
//! tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The CRPD/WCRT analysis (re-export of the `crpd` crate).
pub use crpd as analysis;
/// Cache modelling (re-export of `rtcache`).
pub use rtcache as cache;
/// Program substrate (re-export of `rtprogram`).
pub use rtprogram as program;
/// Scheduler co-simulation (re-export of `rtsched`).
pub use rtsched as sched;
/// WCET estimation (re-export of `rtwcet`).
pub use rtwcet as wcet;
/// Benchmark workloads (re-export of `rtworkloads`).
pub use rtworkloads as workloads;
