//! Offline drop-in replacement for the subset of the [`rand` 0.9 API] this
//! workspace uses.
//!
//! The build container has no registry access, so depending on the real
//! `rand` crate would make even `cargo build --offline` fail at dependency
//! resolution. This crate is aliased to the `rand` name in the workspace
//! manifest and provides [`rngs::StdRng`], [`SeedableRng`] and [`Rng`]
//! with identical call syntax. The generator is SplitMix64 — not the real
//! crate's ChaCha12 — so *sequences differ* from upstream `rand`, but all
//! in-repo consumers only require determinism for a fixed seed, which
//! SplitMix64 provides.
//!
//! [`rand` 0.9 API]: https://docs.rs/rand/0.9
//!
//! ```
//! // Consumers write `use rand::...` thanks to the manifest alias; inside
//! // this crate's own doctests the real package name is visible instead.
//! use rand_lite::rngs::StdRng;
//! use rand_lite::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a: i32 = rng.random_range(-100..100);
//! assert!((-100..100).contains(&a));
//! let b: u64 = rng.random();
//! let mut again = StdRng::seed_from_u64(7);
//! assert_eq!(again.random_range(-100..100), a);
//! assert_eq!(again.random::<u64>(), b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (API mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from a 64-bit entropy source.
    fn draw(next: &mut dyn FnMut() -> u64) -> Self;
}

/// Ranges that [`Rng::random_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from a 64-bit entropy source.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// The user-facing generator methods (API mirror of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(&mut || self.next_u64())
    }

    /// A uniform value over `T`'s full domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(&mut || self.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::SeedableRng;

    /// The workspace's standard generator: SplitMix64 (Steele et al.,
    /// "Fast splittable pseudorandom number generators", OOPSLA 2014).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Advances the state and returns the next 64 output bits.
        pub fn next_output(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_output()
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn draw(next: &mut dyn FnMut() -> u64) -> Self {
                next() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn draw(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

/// Uniform draw in `[0, span)` by modulo reduction (the slight bias for
/// huge spans is irrelevant for test-data generation).
fn below(next: &mut dyn FnMut() -> u64, span: u64) -> u64 {
    assert!(span > 0, "cannot sample an empty range");
    next() % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(below(next, span))) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                (start as i128 + i128::from(below(next, span + 1))) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-100..100);
            assert!((-100..100).contains(&v));
            let w: u32 = rng.random_range(2..6);
            assert!((2..6).contains(&w));
            let x: usize = rng.random_range(1..=3);
            assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn full_domain_draws() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_high_bit = false;
        for _ in 0..64 {
            let v: u64 = rng.random();
            seen_high_bit |= v >> 63 == 1;
        }
        assert!(seen_high_bit, "full u64 domain must be reachable");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u32 = rng.random_range(5..5);
    }
}
