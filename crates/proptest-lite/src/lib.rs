//! Offline drop-in replacement for the subset of the [`proptest`] API this
//! workspace uses.
//!
//! The build container has no registry access, so the real `proptest`
//! crate cannot be resolved even for `cargo build --offline`. This crate
//! is aliased to the `proptest` name in the workspace manifest and keeps
//! the property-test sources compiling unchanged: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`prop_oneof!`], [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! and [`ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **No automatic shrinking.** A failing case panics with the generated
//!   inputs in the assertion message (via the usual `assert!` formatting);
//!   it is not minimized first. Consumers that minimize failing inputs
//!   themselves can build on the [`shrink`] candidate generators and
//!   greedy driver instead.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly across runs.
//! * **Simple rejection handling.** `prop_assume!` discards the case; a
//!   bounded number of extra attempts replaces upstream's global rejection
//!   bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256; the suite favours fast
    /// offline runs and every consumer can raise it per block.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by [`prop_assume!`].
    Reject,
}

/// The per-test deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a, so each property
    /// gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        self.next_u64() % span
    }
}

/// A generator of test inputs (mirror of `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (values become cheaply clonable closures).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }

    /// Builds recursive structures: level 0 generates from `self` (the
    /// leaf strategy); each deeper level feeds the previous level to
    /// `recurse` and mixes leaves back in 50/50 so average size stays
    /// bounded. `_desired_size` and `_expected_branch_size` are accepted
    /// for signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let mix_leaf = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    mix_leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies ([`prop_oneof!`] backend).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
    BoxedStrategy(Rc::new(move |rng| {
        let pick = rng.below(options.len() as u64) as usize;
        options[pick].generate(rng)
    }))
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(rng.below(span))) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + i128::from(rng.below(span + 1))) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// The `prop::` namespace (mirror of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Generates `Vec`s of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "cannot sample an empty length range");
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from `options`.
        ///
        /// # Panics
        ///
        /// Panics at generation time if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }

        /// The strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.options.is_empty(), "cannot select from no options");
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Integrated shrinking primitives.
///
/// The [`proptest!`] runner itself deliberately does not shrink (failing
/// cases panic with their inputs), but consumers that minimize failing
/// inputs themselves — notably the rtfuzz reducer — share these
/// candidate generators and the greedy [`minimize`](shrink::minimize)
/// driver instead of re-inventing them.
pub mod shrink {
    /// Candidate replacements for an integer, most aggressive first:
    /// `min` itself, then values binary-searching up from `min` toward
    /// `v` (`v - Δ/2`, `v - Δ/4`, …, `v - 1`). Returns an empty vector
    /// when `v` is already minimal.
    ///
    /// ```
    /// assert_eq!(proptest_lite::shrink::int_toward(12, 0), [0, 6, 9, 11]);
    /// assert_eq!(proptest_lite::shrink::int_toward(3, 3), []);
    /// ```
    pub fn int_toward(v: u64, min: u64) -> Vec<u64> {
        if v <= min {
            return Vec::new();
        }
        let mut out = vec![min];
        let mut delta = (v - min) / 2;
        while delta > 0 {
            let candidate = v - delta;
            if candidate != *out.last().expect("seeded with min") {
                out.push(candidate);
            }
            delta /= 2;
        }
        out
    }

    /// Candidate replacements shrinking toward zero — [`int_toward`] with
    /// `min = 0`.
    pub fn int_toward_zero(v: u64) -> Vec<u64> {
        int_toward(v, 0)
    }

    /// Subsequence candidates for a vector, most aggressive first: drop
    /// contiguous chunks of half the length, then quarters, …, down to
    /// single-element removals. Candidates that would leave fewer than
    /// `min_len` elements are not produced, and the input order of the
    /// surviving elements is preserved.
    pub fn subsequences<T: Clone>(v: &[T], min_len: usize) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        if v.len() <= min_len {
            return out;
        }
        let mut chunk = v.len() / 2;
        while chunk >= 1 {
            for start in (0..v.len()).step_by(chunk) {
                let end = (start + chunk).min(v.len());
                if v.len() - (end - start) < min_len {
                    continue;
                }
                let mut candidate = Vec::with_capacity(v.len() - (end - start));
                candidate.extend_from_slice(&v[..start]);
                candidate.extend_from_slice(&v[end..]);
                out.push(candidate);
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        out
    }

    /// Greedy fixpoint minimizer: repeatedly asks `candidates` for
    /// smaller variants of the current value and accepts the first one
    /// `keep` approves (for a fuzz reducer: "still fails the oracle"),
    /// until no candidate is accepted or `max_steps` acceptances have
    /// happened. Returns the minimized value and the number of accepted
    /// shrink steps.
    ///
    /// Termination is the caller's contract: every accepted candidate
    /// must be strictly smaller under whatever measure `candidates`
    /// shrinks, which all generators in this module guarantee.
    pub fn minimize<T, C, K>(
        mut current: T,
        max_steps: usize,
        candidates: C,
        mut keep: K,
    ) -> (T, usize)
    where
        C: Fn(&T) -> Vec<T>,
        K: FnMut(&T) -> bool,
    {
        let mut steps = 0;
        'outer: while steps < max_steps {
            for candidate in candidates(&current) {
                if keep(&candidate) {
                    current = candidate;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (current, steps)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::shrink;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a property holds for the current case (panics on failure; this
/// shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { ::std::assert!($($tokens)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { ::std::assert_eq!($($tokens)*) };
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among the given same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "property `{}` rejected too many cases ({} attempts for {} passes)",
                        stringify!($name),
                        attempts,
                        passed,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    // An immediately-called closure gives `$body` a `?`/
                    // early-return boundary, like upstream proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        let strat = (0u32..=5, 1u32..=8, 2u32..=6);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a <= 5 && (1..=8).contains(&b) && (2..=6).contains(&c));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_name("vecs");
        let strat = prop::collection::vec(0u64..256, 1..30);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..30).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 256));
        }
    }

    #[test]
    fn select_only_yields_options() {
        let mut rng = TestRng::from_name("select");
        let strat = prop::sample::select(vec!["a", "b", "c"]);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&strat.generate(&mut rng)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 16, "leaves come from the 0..16 strategy");
                    1
                }
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..16).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_name("recursive");
        for _ in 0..100 {
            // Depth 3 recursion + the vec wrapper bounds total depth by 4.
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, assumptions and assertions.
        #[test]
        fn macro_end_to_end(x in 0u32..100, v in prop::collection::vec(0u8..10, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|b| *b < 10));
        }
    }

    proptest! {
        /// Default config applies when no attribute is given.
        #[test]
        fn macro_without_config(flag in prop_oneof![0u8..1, 1u8..2]) {
            prop_assert!(flag <= 1);
        }
    }

    #[test]
    fn int_candidates_shrink_strictly_and_lead_with_min() {
        assert_eq!(shrink::int_toward_zero(12), [0, 6, 9, 11]);
        assert_eq!(shrink::int_toward(12, 4), [4, 8, 10, 11]);
        assert_eq!(shrink::int_toward(5, 4), [4]);
        assert!(shrink::int_toward(4, 4).is_empty());
        assert!(shrink::int_toward_zero(0).is_empty());
        for v in 1u64..200 {
            let candidates = shrink::int_toward_zero(v);
            assert_eq!(candidates[0], 0);
            assert!(candidates.iter().all(|c| *c < v), "{v}: {candidates:?}");
            assert!(candidates.windows(2).all(|w| w[0] < w[1]), "{v}: {candidates:?}");
        }
    }

    #[test]
    fn subsequences_preserve_order_and_min_len() {
        let v = [1, 2, 3, 4];
        let candidates = shrink::subsequences(&v, 1);
        // Most aggressive first: halves before single removals.
        assert_eq!(candidates[0], vec![3, 4]);
        assert_eq!(candidates[1], vec![1, 2]);
        for c in &candidates {
            assert!(c.len() < v.len() && !c.is_empty());
            assert!(c.windows(2).all(|w| w[0] < w[1]), "order broken: {c:?}");
        }
        // Single removals are all present.
        for drop in 0..v.len() {
            let expect: Vec<i32> = v.iter().copied().filter(|x| *x != v[drop]).collect();
            assert!(candidates.contains(&expect), "missing {expect:?}");
        }
        assert!(shrink::subsequences(&v, 4).is_empty());
        assert!(shrink::subsequences(&v, 5).is_empty());
    }

    #[test]
    fn minimize_reaches_a_fixpoint() {
        // Minimize an integer that must stay >= 17: the greedy driver
        // should land exactly on 17.
        let (min, steps) =
            shrink::minimize(1000u64, 64, |v| shrink::int_toward_zero(*v), |v| *v >= 17);
        assert_eq!(min, 17);
        assert!(steps > 0);
        // A budget of zero steps returns the input untouched.
        let (same, steps) =
            shrink::minimize(1000u64, 0, |v| shrink::int_toward_zero(*v), |v| *v >= 17);
        assert_eq!((same, steps), (1000, 0));
    }
}
