//! `rtobs`: zero-dependency, opt-in observability for the analysis pipeline.
//!
//! The crate provides three things, all gated behind one global switch:
//!
//! * **Spans** — scoped wall-clock timings with stable identifiers derived
//!   from span nesting (a `/`-joined path of enclosing stage names plus an
//!   occurrence index), emitted as Chrome `trace_event` JSON.
//! * **Typed counters** — recorded at the source by the analysis crates:
//!   per-set cache hits/misses/evictions, per-set CIIP overlap
//!   contributions (and which term of `min(|m̂a,r|, |m̂b,r|, L)` saturated),
//!   RMB/LMB dataflow fixpoint rounds, per-(i,j) CRPD matrix cell costs and
//!   per-iteration `R_i^k` values of the Eq. 7 recurrence.
//! * **A determinism contract** — timestamps and counters are *attached* to
//!   a run, never consumed by it. Analysis code may write into the
//!   recorder but must never read it back, so enabling collection cannot
//!   perturb a single output byte. When no recorder is installed every
//!   entry point is a single relaxed atomic load and a no-op.
//!
//! Recording is scoped: [`begin`] installs a process-global [`Recorder`]
//! and returns a [`Session`] guard; dropping the last live session
//! uninstalls it. Sessions nest (they share one recorder), which keeps
//! concurrent tests in one process from fighting over the switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Fast-path switch: `true` while at least one [`Session`] is live.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Slow-path state behind the switch: the installed recorder plus a
/// session refcount so nested/concurrent sessions share one recorder.
fn global() -> &'static Mutex<GlobalState> {
    static GLOBAL: OnceLock<Mutex<GlobalState>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(GlobalState { recorder: None, sessions: 0 }))
}

struct GlobalState {
    recorder: Option<Arc<Recorder>>,
    sessions: usize,
}

thread_local! {
    /// Stack of enclosing span stage names on this thread; the source of
    /// the stable span path.
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Returns `true` when a recorder is installed. One relaxed atomic load;
/// instrumentation sites use it to skip all argument construction.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The recorder currently installed, if any.
fn active() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    global().lock().expect("rtobs global state poisoned").recorder.clone()
}

/// Installs a process-global recorder (or joins the one already
/// installed) and returns a guard that keeps it alive.
pub fn begin() -> Session {
    let mut state = global().lock().expect("rtobs global state poisoned");
    state.sessions += 1;
    let recorder = state.recorder.get_or_insert_with(|| Arc::new(Recorder::new())).clone();
    ENABLED.store(true, Ordering::Relaxed);
    Session { recorder }
}

/// Starts a session only when the `RTOBS` environment variable is `1`.
/// CI uses this to re-run the invariance suite with collection enabled.
pub fn env_session() -> Option<Session> {
    (std::env::var("RTOBS").as_deref() == Ok("1")).then(begin)
}

/// Guard for one recording scope. All live sessions share the same
/// [`Recorder`]; when the last one drops, collection switches off.
pub struct Session {
    recorder: Arc<Recorder>,
}

impl Session {
    /// The recorder this session writes into.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let mut state = global().lock().expect("rtobs global state poisoned");
        state.sessions -= 1;
        if state.sessions == 0 {
            ENABLED.store(false, Ordering::Relaxed);
            state.recorder = None;
        }
    }
}

/// One finished span, in recorder-relative microseconds.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Pipeline stage name (`assemble`, `trace`, `ciip`, `mumbs`,
    /// `crpd`, `wcrt`, ...).
    pub stage: &'static str,
    /// Free-form detail label (task name, matrix cell, ...).
    pub label: String,
    /// `/`-joined stage names of the enclosing spans on the recording
    /// thread, ending in this span's own stage. Stable across runs.
    pub path: String,
    /// Start offset since the recorder was created, microseconds.
    pub ts_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Small dense thread id (registration order, starting at 1).
    pub tid: u64,
}

/// Per-cache-set hit/miss/eviction tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetTally {
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses that displaced a resident line.
    pub evictions: u64,
}

/// Which term of the Def. 3 bound `min(|m̂a,r|, |m̂b,r|, L)` produced the
/// per-set overlap contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverlapCap {
    /// The preempted task's useful lines in the set were the minimum.
    Preempted,
    /// The preempting task's footprint in the set was the minimum.
    Preempting,
    /// The associativity `L` saturated the bound.
    Ways,
}

impl OverlapCap {
    /// Short human-readable name of the binding term, for reports.
    pub fn label(self) -> &'static str {
        match self {
            OverlapCap::Preempted => "useful lines",
            OverlapCap::Preempting => "preempting footprint",
            OverlapCap::Ways => "associativity",
        }
    }
}

/// Aggregated CIIP overlap contributions for one cache set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapTally {
    /// Total lines this set contributed across all overlap evaluations.
    pub contributed: u64,
    /// Evaluations where the preempted side was the binding term.
    pub capped_by_preempted: u64,
    /// Evaluations where the preempting side was the binding term.
    pub capped_by_preempting: u64,
    /// Evaluations where associativity saturated the bound.
    pub capped_by_ways: u64,
}

/// Tally of useful-trace skyline pruning: how many candidate Pareto
/// points the packed-footprint builds saw, and how many survived
/// dominance pruning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkylineTally {
    /// Pareto-maximal points kept across all skyline builds.
    pub kept: u64,
    /// Candidate points discarded as dominated.
    pub pruned: u64,
}

/// Tally of one design-space exploration sweep: how many grid points were
/// evaluated and how large the final Pareto front was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreTally {
    /// Sweep points evaluated across all explore runs.
    pub points: u64,
    /// Size of the most recently recorded Pareto front.
    pub front_size: u64,
}

/// Hit/miss tallies of one content-addressed artifact-cache stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLookupTally {
    /// Lookups served from the stage cache (no recompute).
    pub hits: u64,
    /// Lookups that had to run the stage.
    pub misses: u64,
}

/// Snapshot of every typed counter in the recorder.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    /// Cache-sim tallies keyed by set index.
    pub cache_sets: BTreeMap<u32, SetTally>,
    /// CIIP overlap contributions keyed by set index.
    pub overlap_sets: BTreeMap<u32, OverlapTally>,
    /// Number of RMB/LMB dataflow analyses recorded.
    pub dataflow_runs: u64,
    /// Total RMB (reaching memory blocks) fixpoint rounds.
    pub rmb_rounds: u64,
    /// Total LMB (live memory blocks) fixpoint rounds.
    pub lmb_rounds: u64,
    /// CRPD matrix cell costs keyed by (approach label, preempted index,
    /// preempting index); values are reloaded cache lines.
    pub crpd_cells: BTreeMap<(String, usize, usize), u64>,
    /// Successive `R_i^k` iterates of the Eq. 7 recurrence keyed by
    /// (context label, task index).
    pub wcrt_iterations: BTreeMap<(String, usize), Vec<u64>>,
    /// Artifact-cache lookups keyed by pipeline stage (`"assemble"`,
    /// `"analyze"`, `"crpd_cell"`, …): stage hits vs. recomputes.
    pub stage_lookups: BTreeMap<&'static str, StageLookupTally>,
    /// Useful-trace skyline pruning effectiveness across all packed
    /// footprint builds (`ciip_pack` stage).
    pub skyline: SkylineTally,
    /// Design-space exploration progress (`explore` stage): points
    /// evaluated plus the latest Pareto front size.
    pub explore: ExploreTally,
}

/// Thread-safe store for spans and counters. Created by [`begin`];
/// analysis code only ever appends, readers come after the run.
pub struct Recorder {
    start: Instant,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    threads: BTreeMap<String, u64>,
    counters: Counters,
}

impl Recorder {
    fn new() -> Self {
        Recorder { start: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("rtobs recorder poisoned")
    }

    fn tid(inner: &mut Inner) -> u64 {
        let key = format!("{:?}", std::thread::current().id());
        let next = inner.threads.len() as u64 + 1;
        *inner.threads.entry(key).or_insert(next)
    }

    /// All finished spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// A copy of every typed counter.
    pub fn counters(&self) -> Counters {
        self.lock().counters.clone()
    }

    /// Per-stage `(span count, total duration in µs)`, for bench reports.
    pub fn stage_durations(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let inner = self.lock();
        let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for span in &inner.spans {
            let entry = out.entry(span.stage).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += span.dur_us;
        }
        out
    }

    /// Renders the whole recorder as Chrome `trace_event` JSON (the
    /// "JSON object format": a `traceEvents` array plus metadata).
    /// Span identifiers (`args.id`) are `path#occurrence` and stable
    /// across runs; timestamps are wall-clock and are not.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.lock();
        let mut order: Vec<usize> = (0..inner.spans.len()).collect();
        order.sort_by_key(|&i| (inner.spans[i].ts_us, i));
        let mut seen: BTreeMap<&str, u64> = BTreeMap::new();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (n, &i) in order.iter().enumerate() {
            let span = &inner.spans[i];
            let occurrence = seen.entry(span.path.as_str()).or_insert(0);
            let id = format!("{}#{}", span.path, occurrence);
            *occurrence += 1;
            if n > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"rtobs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"label\":{}}}}}",
                json_string(span.stage),
                span.ts_us,
                span.dur_us,
                span.tid,
                json_string(&id),
                json_string(&span.label),
            );
        }
        out.push_str("],\"rtobsCounters\":");
        write_counters_json(&mut out, &inner.counters);
        out.push('}');
        out
    }

    /// Writes [`Recorder::chrome_trace_json`] to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }
}

fn write_counters_json(out: &mut String, counters: &Counters) {
    out.push_str("{\"cacheSets\":[");
    for (n, (set, tally)) in counters.cache_sets.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"set\":{set},\"hits\":{},\"misses\":{},\"evictions\":{}}}",
            tally.hits, tally.misses, tally.evictions
        );
    }
    out.push_str("],\"overlapSets\":[");
    for (n, (set, tally)) in counters.overlap_sets.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"set\":{set},\"contributed\":{},\"cappedByPreempted\":{},\
             \"cappedByPreempting\":{},\"cappedByWays\":{}}}",
            tally.contributed,
            tally.capped_by_preempted,
            tally.capped_by_preempting,
            tally.capped_by_ways
        );
    }
    let _ = write!(
        out,
        "],\"dataflow\":{{\"runs\":{},\"rmbRounds\":{},\"lmbRounds\":{}}},\"crpdCells\":[",
        counters.dataflow_runs, counters.rmb_rounds, counters.lmb_rounds
    );
    for (n, ((approach, i, j), lines)) in counters.crpd_cells.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"approach\":{},\"preempted\":{i},\"preempting\":{j},\"lines\":{lines}}}",
            json_string(approach)
        );
    }
    out.push_str("],\"wcrtIterations\":[");
    for (n, ((ctx, task), values)) in counters.wcrt_iterations.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"context\":{},\"task\":{task},\"r\":[", json_string(ctx));
        for (m, v) in values.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}");
    }
    out.push_str("],\"stageCache\":[");
    for (n, (stage, tally)) in counters.stage_lookups.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stage\":{},\"hits\":{},\"misses\":{}}}",
            json_string(stage),
            tally.hits,
            tally.misses
        );
    }
    let _ = write!(
        out,
        "],\"skyline\":{{\"kept\":{},\"pruned\":{}}},\
         \"explore\":{{\"points\":{},\"frontSize\":{}}}}}",
        counters.skyline.kept,
        counters.skyline.pruned,
        counters.explore.points,
        counters.explore.front_size
    );
}

/// Minimal JSON string escaping (control characters, quotes, backslash).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// RAII guard for one span. Inert (no allocation, no lock) when no
/// recorder is installed and no [`flight`] frame is on the thread.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    recorder: Option<Arc<Recorder>>,
    flight: Option<Arc<flight::ActiveFlight>>,
    stage: &'static str,
    label: String,
    path: String,
    ts_us: u64,
    started: Instant,
    depth: u32,
}

/// Opens an unlabeled span for `stage`. See [`span_labeled`].
pub fn span(stage: &'static str) -> SpanGuard {
    span_labeled(stage, String::new)
}

/// Opens a span for `stage` with a lazily-built detail label. The label
/// closure only runs when a recorder is installed, so call sites may
/// `format!` freely without taxing disabled runs. When only a [`flight`]
/// frame is active (always-on production mode) the span attributes its
/// duration to the frame without building the label or path, so the hot
/// path stays allocation-free.
pub fn span_labeled(stage: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    let recorder = active();
    let flight = flight::context();
    if recorder.is_none() && flight.is_none() {
        return SpanGuard { active: None };
    }
    let want_path = recorder.is_some();
    let (depth, path) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(stage);
        let path = if want_path { stack.join("/") } else { String::new() };
        (stack.len() as u32, path)
    });
    let started = Instant::now();
    let ts_us = recorder.as_ref().map_or(0, |r| started.duration_since(r.start).as_micros() as u64);
    let label = if want_path { label() } else { String::new() };
    SpanGuard {
        active: Some(ActiveSpan { recorder, flight, stage, label, path, ts_us, started, depth }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur = span.started.elapsed();
        if let Some(flight) = &span.flight {
            flight.note_span(span.stage, span.depth, span.started, dur);
        }
        let Some(recorder) = &span.recorder else { return };
        let dur_us = dur.as_micros() as u64;
        let mut inner = recorder.lock();
        let tid = Recorder::tid(&mut inner);
        inner.spans.push(SpanRecord {
            stage: span.stage,
            label: span.label,
            path: span.path,
            ts_us: span.ts_us,
            dur_us,
            tid,
        });
    }
}

/// Adds a cache-sim tally for one set (hits/misses/evictions merge-add).
pub fn record_cache_set(set: u32, hits: u64, misses: u64, evictions: u64) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    let tally = inner.counters.cache_sets.entry(set).or_default();
    tally.hits += hits;
    tally.misses += misses;
    tally.evictions += evictions;
}

/// Adds one per-set CIIP overlap contribution and notes which term of
/// the Def. 3 `min` bound it was capped by.
pub fn record_overlap_set(set: u32, contribution: u64, cap: OverlapCap) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    let tally = inner.counters.overlap_sets.entry(set).or_default();
    tally.contributed += contribution;
    match cap {
        OverlapCap::Preempted => tally.capped_by_preempted += 1,
        OverlapCap::Preempting => tally.capped_by_preempting += 1,
        OverlapCap::Ways => tally.capped_by_ways += 1,
    }
}

/// Records the fixpoint round counts of one RMB/LMB dataflow analysis.
pub fn record_dataflow_rounds(rmb_rounds: u64, lmb_rounds: u64) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    inner.counters.dataflow_runs += 1;
    inner.counters.rmb_rounds += rmb_rounds;
    inner.counters.lmb_rounds += lmb_rounds;
}

/// Records the cost (reloaded lines) of one CRPD matrix cell.
pub fn record_crpd_cell(approach: &str, preempted: usize, preempting: usize, lines: u64) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    inner.counters.crpd_cells.insert((approach.to_string(), preempted, preempting), lines);
}

/// Records the successive `R_i^k` iterates of one Eq. 7 fixpoint run.
pub fn record_wcrt_iterations(context: &str, task: usize, values: &[u64]) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    inner.counters.wcrt_iterations.insert((context.to_string(), task), values.to_vec());
}

/// Records the outcome of one useful-trace skyline build: how many
/// Pareto-maximal points were kept and how many candidates were pruned
/// as dominated.
pub fn record_skyline_points(kept: u64, pruned: u64) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    inner.counters.skyline.kept += kept;
    inner.counters.skyline.pruned += pruned;
}

/// Records a batch of evaluated design-space exploration points
/// (accumulates across batches and runs).
pub fn record_explore_points(points: u64) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    inner.counters.explore.points += points;
}

/// Records the current Pareto front size of a design-space exploration
/// (stores the latest value — the front only matters at its final size).
pub fn record_explore_front(size: u64) {
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    inner.counters.explore.front_size = size;
}

/// Records one lookup against a content-addressed pipeline-stage cache:
/// `hit` means the artifact was reused, `!hit` means the stage re-ran.
/// Also attributed to the thread's [`flight`] frame, if one is active.
pub fn record_stage_lookup(stage: &'static str, hit: bool) {
    if let Some(frame) = flight::context() {
        frame.note_lookup(stage, hit);
    }
    let Some(recorder) = active() else { return };
    let mut inner = recorder.lock();
    let tally = inner.counters.stage_lookups.entry(stage).or_default();
    if hit {
        tally.hits += 1;
    } else {
        tally.misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global switch is process-wide, so tests that install a
    /// session serialize on this lock to stay independent.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default).lock().expect("test lock")
    }

    #[test]
    fn disabled_by_default_and_recording_is_scoped() {
        let _serial = test_lock();
        assert!(!enabled());
        record_cache_set(0, 1, 2, 3); // silently dropped
        let session = begin();
        assert!(enabled());
        record_cache_set(7, 10, 4, 1);
        record_cache_set(7, 1, 0, 0);
        let counters = session.recorder().counters();
        assert_eq!(
            counters.cache_sets.get(&7),
            Some(&SetTally { hits: 11, misses: 4, evictions: 1 })
        );
        assert!(!counters.cache_sets.contains_key(&0));
        drop(session);
        assert!(!enabled());
    }

    #[test]
    fn nested_sessions_share_one_recorder() {
        let _serial = test_lock();
        let outer = begin();
        let inner = begin();
        record_dataflow_rounds(3, 4);
        drop(inner);
        assert!(enabled(), "outer session keeps recording on");
        let counters = outer.recorder().counters();
        assert_eq!((counters.dataflow_runs, counters.rmb_rounds, counters.lmb_rounds), (1, 3, 4));
    }

    #[test]
    fn spans_nest_into_stable_paths() {
        let _serial = test_lock();
        let session = begin();
        {
            let _outer = span_labeled("wcrt", || "task0".into());
            let _inner = span("crpd");
        }
        {
            let _again = span("wcrt");
        }
        let spans = session.recorder().spans();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["wcrt/crpd", "wcrt", "wcrt"]);
        let json = session.recorder().chrome_trace_json();
        assert!(json.contains("\"traceEvents\":["), "trace json: {json}");
        assert!(json.contains("\"id\":\"wcrt#0\""), "first occurrence: {json}");
        assert!(json.contains("\"id\":\"wcrt#1\""), "second occurrence: {json}");
        assert!(json.contains("\"id\":\"wcrt/crpd#0\""), "nested id: {json}");
    }

    #[test]
    fn counters_render_into_trace_metadata() {
        let _serial = test_lock();
        let session = begin();
        record_overlap_set(3, 2, OverlapCap::Ways);
        record_crpd_cell("App. 4", 1, 0, 24);
        record_wcrt_iterations("App. 4", 1, &[100, 250, 250]);
        let json = session.recorder().chrome_trace_json();
        assert!(json.contains("\"overlapSets\":[{\"set\":3,\"contributed\":2"), "{json}");
        assert!(json.contains("\"cappedByWays\":1"), "{json}");
        assert!(
            json.contains(
                "{\"approach\":\"App. 4\",\"preempted\":1,\"preempting\":0,\"lines\":24}"
            ),
            "{json}"
        );
        assert!(json.contains("\"r\":[100,250,250]"), "{json}");
    }

    #[test]
    fn stage_lookups_tally_hits_and_misses() {
        let _serial = test_lock();
        record_stage_lookup("analyze", true); // silently dropped: no session
        let session = begin();
        record_stage_lookup("analyze", false);
        record_stage_lookup("analyze", true);
        record_stage_lookup("analyze", true);
        record_stage_lookup("crpd_cell", false);
        let counters = session.recorder().counters();
        assert_eq!(
            counters.stage_lookups.get("analyze"),
            Some(&StageLookupTally { hits: 2, misses: 1 })
        );
        assert_eq!(
            counters.stage_lookups.get("crpd_cell"),
            Some(&StageLookupTally { hits: 0, misses: 1 })
        );
        let json = session.recorder().chrome_trace_json();
        assert!(
            json.contains("\"stageCache\":[{\"stage\":\"analyze\",\"hits\":2,\"misses\":1}"),
            "{json}"
        );
        assert!(json.contains("{\"stage\":\"crpd_cell\",\"hits\":0,\"misses\":1}"), "{json}");
    }

    #[test]
    fn skyline_tallies_accumulate_and_render() {
        let _serial = test_lock();
        record_skyline_points(5, 100); // silently dropped: no session
        let session = begin();
        record_skyline_points(3, 40);
        record_skyline_points(2, 10);
        let counters = session.recorder().counters();
        assert_eq!(counters.skyline, SkylineTally { kept: 5, pruned: 50 });
        let json = session.recorder().chrome_trace_json();
        assert!(json.contains("\"skyline\":{\"kept\":5,\"pruned\":50}"), "{json}");
    }

    #[test]
    fn explore_tallies_accumulate_points_and_track_the_latest_front() {
        let _serial = test_lock();
        record_explore_points(9); // silently dropped: no session
        let session = begin();
        record_explore_points(128);
        record_explore_points(72);
        record_explore_front(11);
        record_explore_front(7);
        let counters = session.recorder().counters();
        assert_eq!(counters.explore, ExploreTally { points: 200, front_size: 7 });
        let json = session.recorder().chrome_trace_json();
        assert!(json.contains("\"explore\":{\"points\":200,\"frontSize\":7}"), "{json}");
    }

    #[test]
    fn span_guard_is_inert_when_disabled() {
        let _serial = test_lock();
        let guard = span_labeled("wcrt", || panic!("label must not be built when disabled"));
        assert!(guard.active.is_none());
    }

    #[test]
    fn spans_and_lookups_attribute_to_flight_frames_without_a_recorder() {
        let _serial = test_lock();
        assert!(!enabled());
        let recorder = flight::FlightRecorder::new(2);
        let scope = recorder.begin("wcrt", 0, true);
        {
            let _outer =
                span_labeled("wcrt", || panic!("label must not be built without a recorder"));
            let _inner = span("crpd");
        }
        record_stage_lookup("analyze", true);
        let finished = scope.finish(true);
        let events: Vec<(&str, u32)> = finished.spans.iter().map(|e| (e.stage, e.depth)).collect();
        assert_eq!(events, [("crpd", 2), ("wcrt", 1)], "completion order, nesting depths");
        let analyze = flight::stage_index("analyze").unwrap();
        assert_eq!(finished.record.stage_hits[analyze], 1);
        SPAN_STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
