//! `rtflight`: an always-on, lock-light flight recorder for production
//! request observability.
//!
//! The opt-in [`Recorder`](crate::Recorder) (PR 3) is a debugging tool:
//! it stores every span with a heap-allocated label and path, so it is
//! off by default. This module is the production counterpart — cheap
//! enough to leave on for every request a server handles:
//!
//! * **[`FlightRecord`]** — one fixed-size, allocation-free summary per
//!   request: per-stage wall time, stage-cache hit/miss attribution,
//!   queue wait and outcome, with stages resolved to indices in the
//!   static [`STAGES`] registry.
//! * **[`FlightRecorder`]** — a fixed-capacity ring buffer of the most
//!   recent records plus per-endpoint log₂-bucket latency histograms
//!   ([`LogHistogram`]) with p50/p90/p99 readout. Committing a record is
//!   O(capacity-independent): one atomic fetch-add for the sequence
//!   number and one uncontended per-slot mutex store.
//! * **Flight context propagation** — a request installs its
//!   [`ActiveFlight`] frame thread-locally ([`FlightScope`]); spans
//!   opened anywhere under it attribute their duration to the frame.
//!   [`rtpar`](../../par) captures the submitting thread's context at
//!   batch creation ([`context`]) and re-installs it on helper threads
//!   ([`adopt`]), so work stolen by pool workers still attributes to the
//!   request that spawned it, at any thread count.
//!
//! The determinism contract of the parent crate extends here: analysis
//! code only ever *writes* into a flight frame, so recording cannot
//! perturb a single output byte (`tests/invariance.rs` pins this at 1
//! and 8 threads).
//!
//! Hot-path cost: when no frame is installed, a span probe is one
//! thread-local read. With a frame installed, attribution is two
//! `Instant` reads and one relaxed atomic add per span; optional span
//! capture (for slow-request black boxes) appends a fixed-size
//! [`SpanEvent`] into a buffer preallocated at frame creation, so
//! nothing allocates between `begin` and `finish`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Every pipeline stage a flight frame attributes, sorted so lookups can
/// binary-search. Span stages and stage-cache lookup stages share the
/// registry (`assemble`/`analyze` are both; `crpd_cell` is lookup-only;
/// `request` is the server's whole-request span).
pub const STAGES: [&str; 14] = [
    "analyze",
    "assemble",
    "ciip",
    "ciip_pack",
    "crpd",
    "crpd_cell",
    "dataflow",
    "explore",
    "mumbs",
    "peer_fetch",
    "request",
    "trace",
    "wcet",
    "wcrt",
];

/// Number of registered stages.
pub const STAGE_COUNT: usize = STAGES.len();

/// Resolves a stage name to its index in [`STAGES`]. Unregistered
/// stages return `None` and are simply not attributed (the opt-in
/// recorder still sees them).
pub fn stage_index(stage: &str) -> Option<usize> {
    STAGES.binary_search(&stage).ok()
}

/// Upper bound on captured [`SpanEvent`]s per flight frame; beyond it
/// events are counted as dropped instead of grown into.
pub const SPAN_EVENT_CAP: usize = 512;

/// One captured span inside a flight frame: fixed-size, no strings
/// beyond the `'static` stage name. The span tree is reconstructed from
/// `(depth, completion order)` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (a [`STAGES`] member).
    pub stage: &'static str,
    /// Nesting depth on the recording thread (1 = top-level).
    pub depth: u32,
    /// Start offset since the flight frame began, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

/// The live per-request collector. Shared (`Arc`) between the request
/// thread and any pool workers that execute batches on its behalf; all
/// fields are independently thread-safe so attribution never takes a
/// frame-wide lock on the timing path.
#[derive(Debug)]
pub struct ActiveFlight {
    started: Instant,
    capture_spans: bool,
    stage_ns: [AtomicU64; STAGE_COUNT],
    stage_hits: [AtomicU64; STAGE_COUNT],
    stage_misses: [AtomicU64; STAGE_COUNT],
    spans: Mutex<Vec<SpanEvent>>,
    spans_dropped: AtomicU64,
}

fn zeroed() -> [AtomicU64; STAGE_COUNT] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

fn load(a: &[AtomicU64; STAGE_COUNT]) -> [u64; STAGE_COUNT] {
    std::array::from_fn(|i| a[i].load(Ordering::Relaxed))
}

impl ActiveFlight {
    fn new(capture_spans: bool) -> ActiveFlight {
        ActiveFlight {
            started: Instant::now(),
            capture_spans,
            stage_ns: zeroed(),
            stage_hits: zeroed(),
            stage_misses: zeroed(),
            // The black-box buffer is preallocated at full capacity so
            // the span hot path never reallocates.
            spans: Mutex::new(Vec::with_capacity(if capture_spans { SPAN_EVENT_CAP } else { 0 })),
            spans_dropped: AtomicU64::new(0),
        }
    }

    fn lock_spans(&self) -> MutexGuard<'_, Vec<SpanEvent>> {
        self.spans.lock().expect("flight span buffer poisoned")
    }

    /// Attributes one finished span to this frame.
    pub(crate) fn note_span(&self, stage: &'static str, depth: u32, start: Instant, dur: Duration) {
        let Some(idx) = stage_index(stage) else { return };
        self.stage_ns[idx].fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        if self.capture_spans {
            let start_ns =
                start.checked_duration_since(self.started).unwrap_or_default().as_nanos() as u64;
            let mut spans = self.lock_spans();
            if spans.len() < SPAN_EVENT_CAP {
                spans.push(SpanEvent { stage, depth, start_ns, dur_ns: dur.as_nanos() as u64 });
            } else {
                self.spans_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Attributes one stage-cache lookup to this frame.
    pub(crate) fn note_lookup(&self, stage: &'static str, hit: bool) {
        let Some(idx) = stage_index(stage) else { return };
        let tally = if hit { &self.stage_hits } else { &self.stage_misses };
        tally[idx].fetch_add(1, Ordering::Relaxed);
    }
}

thread_local! {
    /// The flight frame requests on this thread attribute into.
    static CURRENT: RefCell<Option<Arc<ActiveFlight>>> = const { RefCell::new(None) };
}

/// The flight frame installed on this thread, if any. `rtpar` calls this
/// on the submitting thread when a batch is created, so the frame can
/// follow the work onto helper threads.
pub fn context() -> Option<Arc<ActiveFlight>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `flight` as this thread's frame for the guard's lifetime,
/// restoring the previous frame on drop. `adopt(None)` is a no-op guard
/// that leaves the thread's frame untouched.
pub fn adopt(flight: Option<Arc<ActiveFlight>>) -> AdoptGuard {
    match flight {
        None => AdoptGuard { previous: None, installed: false },
        Some(f) => {
            let previous = CURRENT.with(|c| c.borrow_mut().replace(f));
            AdoptGuard { previous, installed: true }
        }
    }
}

/// Guard returned by [`adopt`]; restores the thread's previous flight
/// frame when dropped.
pub struct AdoptGuard {
    previous: Option<Arc<ActiveFlight>>,
    installed: bool,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if self.installed {
            let previous = self.previous.take();
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
    }
}

/// One committed per-request record: fixed-size plain data, cheap to
/// copy in and out of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotone request sequence number (recorder-wide).
    pub id: u64,
    /// Endpoint label (`"wcrt"`, `"ping"`, …).
    pub endpoint: &'static str,
    /// Request start offset since the recorder was created, microseconds.
    pub start_us: u64,
    /// Wait between request readiness (line framed off the socket) and
    /// worker pickup, microseconds: the admission/queue latency.
    pub queue_us: u64,
    /// Whole-request wall time, microseconds.
    pub total_us: u64,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Per-stage attributed wall time, nanoseconds, indexed by [`STAGES`].
    pub stage_ns: [u64; STAGE_COUNT],
    /// Per-stage cache hits, indexed by [`STAGES`].
    pub stage_hits: [u64; STAGE_COUNT],
    /// Per-stage cache misses (stage re-ran), indexed by [`STAGES`].
    pub stage_misses: [u64; STAGE_COUNT],
    /// Span events dropped because the black-box buffer was full.
    pub spans_dropped: u64,
}

/// Number of log₂ latency buckets; bucket `i` holds durations in
/// `[2^i, 2^(i+1))` microseconds, the last bucket is open-ended.
pub const HIST_BUCKETS: usize = 40;

/// A lock-free fixed-log₂-bucket latency histogram over microsecond
/// durations. All updates are relaxed atomic adds; readers take a
/// point-in-time [`HistSnapshot`].
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one duration in microseconds. Lock-free.
    pub fn record(&self, micros: u64) {
        let idx = (63 - u64::leading_zeros(micros.max(1)) as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
        self.max_us.fetch_max(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (`buckets[i]` covers `[2^i, 2^(i+1))` µs).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
}

impl HistSnapshot {
    /// Upper bound (inclusive, in µs) of the bucket containing the
    /// `q`-quantile sample, or 0 when empty. Exact in the sense that the
    /// true quantile is guaranteed ≤ the returned bound and ≥ half of it.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (1u64 << (i + 1)) - 1;
            }
        }
        self.max_us
    }
}

/// Per-endpoint latency/error statistics, snapshotted out of a
/// [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct EndpointSummary {
    /// Endpoint label.
    pub endpoint: &'static str,
    /// Requests recorded.
    pub count: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Median latency upper bound, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency upper bound, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
    /// Largest observed latency, microseconds.
    pub max_us: u64,
    /// The full histogram snapshot (for Prometheus bucket families).
    pub hist: HistSnapshot,
}

#[derive(Debug, Default)]
struct EndpointStats {
    hist: LogHistogram,
    errors: AtomicU64,
}

/// The result of [`FlightScope::finish`]: the committed record plus the
/// captured span events (empty unless span capture was requested).
#[derive(Debug, Clone)]
pub struct FinishedFlight {
    /// The committed flight record (also stored in the ring).
    pub record: FlightRecord,
    /// Captured span events in completion order.
    pub spans: Vec<SpanEvent>,
}

/// The always-on flight recorder: a fixed-capacity ring of the most
/// recent [`FlightRecord`]s, per-endpoint [`LogHistogram`]s, cumulative
/// per-stage totals and an inflight gauge.
#[derive(Debug)]
pub struct FlightRecorder {
    started: Instant,
    capacity: usize,
    seq: AtomicU64,
    inflight: AtomicU64,
    slots: Box<[Mutex<Option<FlightRecord>>]>,
    endpoints: Mutex<BTreeMap<&'static str, Arc<EndpointStats>>>,
    stage_ns_total: [AtomicU64; STAGE_COUNT],
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` records
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            started: Instant::now(),
            capacity,
            seq: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            endpoints: Mutex::new(BTreeMap::new()),
            stage_ns_total: zeroed(),
        }
    }

    /// Opens a flight frame for one request and installs it on the
    /// calling thread. `capture_spans` additionally buffers up to
    /// [`SPAN_EVENT_CAP`] span events for black-box retrieval.
    pub fn begin(
        &self,
        endpoint: &'static str,
        queue_us: u64,
        capture_spans: bool,
    ) -> FlightScope<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let flight = Arc::new(ActiveFlight::new(capture_spans));
        let guard = adopt(Some(flight.clone()));
        FlightScope {
            recorder: self,
            endpoint,
            queue_us,
            inner: Some(ScopeInner { flight, _adopt: guard }),
        }
    }

    /// Total records ever committed (the next record's id).
    pub fn records_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Requests currently between `begin` and `finish`.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Seconds since the recorder was created.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The most recent `last` records, oldest first. At most
    /// [`FlightRecorder::capacity`] records exist at any time.
    pub fn journal(&self, last: usize) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("flight ring slot poisoned").clone())
            .collect();
        records.sort_by_key(|r| r.id);
        let skip = records.len().saturating_sub(last);
        records.split_off(skip)
    }

    /// Per-endpoint latency/error summaries, endpoint-name order.
    pub fn endpoints(&self) -> Vec<EndpointSummary> {
        let stats: Vec<(&'static str, Arc<EndpointStats>)> = {
            let map = self.endpoints.lock().expect("flight endpoint map poisoned");
            map.iter().map(|(k, v)| (*k, v.clone())).collect()
        };
        stats
            .into_iter()
            .map(|(endpoint, s)| {
                let hist = s.hist.snapshot();
                EndpointSummary {
                    endpoint,
                    count: hist.count,
                    errors: s.errors.load(Ordering::Relaxed),
                    p50_us: hist.quantile_upper_bound(0.50),
                    p90_us: hist.quantile_upper_bound(0.90),
                    p99_us: hist.quantile_upper_bound(0.99),
                    max_us: hist.max_us,
                    hist,
                }
            })
            .collect()
    }

    /// Cumulative attributed wall time per stage across all committed
    /// records, `(stage, nanoseconds)` pairs in [`STAGES`] order.
    pub fn stage_totals(&self) -> Vec<(&'static str, u64)> {
        let totals = load(&self.stage_ns_total);
        STAGES.iter().zip(totals).map(|(s, ns)| (*s, ns)).collect()
    }

    fn commit(
        &self,
        flight: &ActiveFlight,
        endpoint: &'static str,
        queue_us: u64,
        ok: bool,
    ) -> FlightRecord {
        let total_us = flight.started.elapsed().as_micros() as u64;
        let start_us =
            flight.started.checked_duration_since(self.started).unwrap_or_default().as_micros()
                as u64;
        let id = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = FlightRecord {
            id,
            endpoint,
            start_us,
            queue_us,
            total_us,
            ok,
            stage_ns: load(&flight.stage_ns),
            stage_hits: load(&flight.stage_hits),
            stage_misses: load(&flight.stage_misses),
            spans_dropped: flight.spans_dropped.load(Ordering::Relaxed),
        };
        for (total, ns) in self.stage_ns_total.iter().zip(record.stage_ns) {
            total.fetch_add(ns, Ordering::Relaxed);
        }
        *self.slots[(id as usize) % self.capacity].lock().expect("flight ring slot poisoned") =
            Some(record.clone());
        let stats = {
            let mut map = self.endpoints.lock().expect("flight endpoint map poisoned");
            map.entry(endpoint).or_default().clone()
        };
        stats.hist.record(total_us);
        if !ok {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        record
    }
}

struct ScopeInner {
    flight: Arc<ActiveFlight>,
    _adopt: AdoptGuard,
}

/// One request's open flight frame; created by [`FlightRecorder::begin`].
/// Dropping without [`FlightScope::finish`] (a panicking request)
/// abandons the frame without committing a record.
pub struct FlightScope<'a> {
    recorder: &'a FlightRecorder,
    endpoint: &'static str,
    queue_us: u64,
    inner: Option<ScopeInner>,
}

impl FlightScope<'_> {
    /// The live frame, for tests and cross-thread adoption.
    pub fn flight(&self) -> Arc<ActiveFlight> {
        self.inner.as_ref().expect("flight scope already finished").flight.clone()
    }

    /// Ends the frame: uninstalls it from the thread, commits the record
    /// into the ring and histograms, and returns it together with any
    /// captured span events.
    pub fn finish(mut self, ok: bool) -> FinishedFlight {
        let ScopeInner { flight, _adopt } = self.inner.take().expect("flight scope finished twice");
        // Uninstall from the thread before reading, so no further spans
        // land in the frame while the record is being assembled.
        drop(_adopt);
        let record = self.recorder.commit(&flight, self.endpoint, self.queue_us, ok);
        let spans = std::mem::take(&mut *flight.lock_spans());
        FinishedFlight { record, spans }
    }
}

impl Drop for FlightScope<'_> {
    fn drop(&mut self) {
        // Panic path: `finish` never ran. Release the inflight slot but
        // commit nothing.
        if self.inner.take().is_some() {
            self.recorder.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Rate/ETA heartbeat for long-running campaigns: [`Heartbeat::poll`]
/// returns a formatted progress line at most once per interval.
pub struct Heartbeat {
    every: Duration,
    started: Instant,
    next_at: Duration,
}

impl Heartbeat {
    /// A heartbeat that fires every `every` (first fire after one full
    /// interval).
    pub fn new(every: Duration) -> Heartbeat {
        Heartbeat {
            every: every.max(Duration::from_millis(1)),
            started: Instant::now(),
            next_at: every,
        }
    }

    /// Reports progress: `done` units finished, with an optional known
    /// `total`. Returns a line like `1280/4096 points (31.2%), 412/s,
    /// ETA 6.8s` when the interval has elapsed, `None` otherwise.
    pub fn poll(&mut self, done: u64, total: Option<u64>) -> Option<String> {
        let elapsed = self.started.elapsed();
        if elapsed < self.next_at {
            return None;
        }
        while self.next_at <= elapsed {
            self.next_at += self.every;
        }
        let rate = done as f64 / elapsed.as_secs_f64().max(1e-9);
        Some(match total {
            Some(total) if total > 0 => {
                let pct = 100.0 * done as f64 / total as f64;
                let eta = total.saturating_sub(done) as f64 / rate.max(1e-9);
                format!("{done}/{total} points ({pct:.1}%), {rate:.0}/s, ETA {eta:.1}s")
            }
            _ => {
                format!("{done} points, {rate:.0}/s, elapsed {:.1}s", elapsed.as_secs_f64())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_registry_is_sorted_and_resolves() {
        let mut sorted = STAGES;
        sorted.sort_unstable();
        assert_eq!(sorted, STAGES, "STAGES must stay sorted for binary search");
        for (i, stage) in STAGES.iter().enumerate() {
            assert_eq!(stage_index(stage), Some(i));
        }
        assert_eq!(stage_index("no-such-stage"), None);
    }

    #[test]
    fn frames_attribute_spans_and_lookups() {
        let recorder = FlightRecorder::new(8);
        let scope = recorder.begin("wcrt", 42, true);
        assert_eq!(recorder.inflight(), 1);
        let flight = scope.flight();
        let t0 = Instant::now();
        flight.note_span("crpd", 2, t0, Duration::from_nanos(1_500));
        flight.note_span("crpd", 2, t0, Duration::from_nanos(500));
        flight.note_span("unknown-stage", 1, t0, Duration::from_nanos(999));
        flight.note_lookup("analyze", true);
        flight.note_lookup("analyze", false);
        flight.note_lookup("crpd_cell", true);
        let finished = scope.finish(true);
        assert_eq!(recorder.inflight(), 0);
        let crpd = stage_index("crpd").unwrap();
        let analyze = stage_index("analyze").unwrap();
        let cell = stage_index("crpd_cell").unwrap();
        assert_eq!(finished.record.stage_ns[crpd], 2_000);
        assert_eq!(finished.record.stage_hits[analyze], 1);
        assert_eq!(finished.record.stage_misses[analyze], 1);
        assert_eq!(finished.record.stage_hits[cell], 1);
        assert_eq!(finished.record.queue_us, 42);
        assert!(finished.record.ok);
        assert_eq!(finished.spans.len(), 2, "unknown stages are not captured");
        assert_eq!(finished.spans[0].dur_ns, 1_500);
        assert_eq!(recorder.stage_totals()[crpd], ("crpd", 2_000));
    }

    #[test]
    fn ring_keeps_only_the_newest_records() {
        let recorder = FlightRecorder::new(4);
        for k in 0..7 {
            let scope = recorder.begin("ping", 0, false);
            scope.finish(k % 2 == 0);
        }
        assert_eq!(recorder.records_total(), 7);
        let journal = recorder.journal(100);
        let ids: Vec<u64> = journal.iter().map(|r| r.id).collect();
        assert_eq!(ids, [3, 4, 5, 6], "ring wraps, keeps newest, oldest first");
        let ids: Vec<u64> = recorder.journal(2).iter().map(|r| r.id).collect();
        assert_eq!(ids, [5, 6], "journal(n) trims to the newest n");
    }

    #[test]
    fn endpoint_histograms_expose_quantiles_and_errors() {
        let hist = LogHistogram::new();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5_000] {
            hist.record(us);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.max_us, 5_000);
        // p50 rank 5 lands in the [64,128) bucket -> bound 127.
        assert_eq!(snap.quantile_upper_bound(0.50), 127);
        assert_eq!(snap.quantile_upper_bound(0.99), 8_191);
        assert_eq!(snap.quantile_upper_bound(0.0), 1, "rank clamps to the first sample");
        assert_eq!(
            HistSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum_us: 0, max_us: 0 }
                .quantile_upper_bound(0.5),
            0
        );

        let recorder = FlightRecorder::new(2);
        recorder.begin("wcrt", 0, false).finish(true);
        recorder.begin("wcrt", 0, false).finish(false);
        recorder.begin("ping", 0, false).finish(true);
        let endpoints = recorder.endpoints();
        let names: Vec<&str> = endpoints.iter().map(|e| e.endpoint).collect();
        assert_eq!(names, ["ping", "wcrt"]);
        assert_eq!(endpoints[1].count, 2);
        assert_eq!(endpoints[1].errors, 1);
        assert!(endpoints[1].p99_us >= endpoints[1].p50_us);
    }

    #[test]
    fn span_capture_is_bounded() {
        let recorder = FlightRecorder::new(1);
        let scope = recorder.begin("wcrt", 0, true);
        let flight = scope.flight();
        let t0 = Instant::now();
        for _ in 0..(SPAN_EVENT_CAP + 10) {
            flight.note_span("crpd", 1, t0, Duration::from_nanos(1));
        }
        let finished = scope.finish(true);
        assert_eq!(finished.spans.len(), SPAN_EVENT_CAP);
        assert_eq!(finished.record.spans_dropped, 10);
    }

    #[test]
    fn capture_off_records_no_spans() {
        let recorder = FlightRecorder::new(1);
        let scope = recorder.begin("wcrt", 0, false);
        let flight = scope.flight();
        flight.note_span("crpd", 1, Instant::now(), Duration::from_nanos(7));
        let finished = scope.finish(true);
        assert!(finished.spans.is_empty());
        assert_eq!(finished.record.stage_ns[stage_index("crpd").unwrap()], 7);
    }

    #[test]
    fn adoption_nests_and_restores() {
        assert!(context().is_none());
        let recorder = FlightRecorder::new(1);
        let scope = recorder.begin("wcrt", 0, false);
        let outer = scope.flight();
        assert!(Arc::ptr_eq(&context().unwrap(), &outer));
        {
            let inner = Arc::new(ActiveFlight::new(false));
            let _guard = adopt(Some(inner.clone()));
            assert!(Arc::ptr_eq(&context().unwrap(), &inner));
            let _noop = adopt(None);
            assert!(Arc::ptr_eq(&context().unwrap(), &inner), "adopt(None) leaves the frame");
        }
        assert!(Arc::ptr_eq(&context().unwrap(), &outer), "previous frame restored");
        scope.finish(true);
        assert!(context().is_none(), "finish uninstalls the frame");
    }

    #[test]
    fn abandoned_scope_releases_inflight_without_a_record() {
        let recorder = FlightRecorder::new(4);
        {
            let _scope = recorder.begin("wcrt", 0, false);
            assert_eq!(recorder.inflight(), 1);
        }
        assert_eq!(recorder.inflight(), 0);
        assert_eq!(recorder.records_total(), 0);
        assert!(recorder.journal(10).is_empty());
    }

    #[test]
    fn heartbeat_formats_rate_and_eta() {
        let mut hb = Heartbeat::new(Duration::from_secs(0));
        let line = hb.poll(50, Some(200)).expect("zero interval fires immediately");
        assert!(line.starts_with("50/200 points (25.0%), "), "{line}");
        assert!(line.contains("ETA"), "{line}");
        let mut hb = Heartbeat::new(Duration::from_secs(3600));
        assert!(hb.poll(1, None).is_none(), "long interval has not elapsed");
        let mut hb = Heartbeat::new(Duration::from_secs(0));
        let line = hb.poll(7, None).expect("fires");
        assert!(line.starts_with("7 points, "), "{line}");
    }
}
