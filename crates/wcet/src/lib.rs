//! WCET estimation for TRISC-16 task programs — the role SYMTA \[9\] plays
//! in the paper.
//!
//! Two estimators are provided:
//!
//! * [`estimate_wcet`] — the paper's method: simulate every feasible path
//!   (input variant) against a cold cache and take the slowest
//!   (`cycles = instructions × CPI + misses × Cmiss`). This is what feeds
//!   `C_i` in the WCRT recurrence (Eq. 6/7).
//! * [`structural_wcet_bound`] — a simulation-free all-accesses-miss bound
//!   from the CFG: longest entry→exit path with loop bodies weighted by
//!   their declared iteration bounds. It always dominates the simulated
//!   estimate and serves as a sanity cross-check.
//!
//! # Example
//!
//! ```
//! use rtcache::CacheGeometry;
//! use rtprogram::asm::assemble;
//! use rtwcet::{estimate_wcet, TimingModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble("t", "li r1, 2\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n")?;
//! let est = estimate_wcet(&p, CacheGeometry::paper_l1(), TimingModel::default())?;
//! assert_eq!(est.instructions, 1 + 2 * 2 + 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use rtcache::{CacheGeometry, CacheHierarchy, CacheSim, HierarchyError};
use rtprogram::cfg::Cfg;
use rtprogram::paths::{self, PathEnumError};
use rtprogram::sim::Simulator;
use rtprogram::{ExecError, Instr, Program};

/// The processor timing model: one instruction per `cpi` cycles plus
/// `miss_penalty` cycles per cache miss (the paper's ARM9 setup uses a
/// 20-cycle penalty, varied 10–40 in Tables III/V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingModel {
    /// Cycles per issued instruction.
    pub cpi: u64,
    /// Extra cycles per cache miss (`Cmiss`).
    pub miss_penalty: u64,
}

impl TimingModel {
    /// A model with the given miss penalty and single-cycle issue.
    pub fn with_miss_penalty(miss_penalty: u64) -> Self {
        TimingModel { cpi: 1, miss_penalty }
    }
}

impl Default for TimingModel {
    /// Single-cycle issue, 20-cycle miss penalty (paper Example 6).
    fn default() -> Self {
        TimingModel { cpi: 1, miss_penalty: 20 }
    }
}

impl fmt::Display for TimingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpi={}, Cmiss={}", self.cpi, self.miss_penalty)
    }
}

/// Timing of a single feasible path (input variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantTiming {
    /// Variant name.
    pub name: String,
    /// Cold-cache cycle count.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Cold-cache misses.
    pub misses: u64,
}

/// The result of [`estimate_wcet`]: the worst path plus every path's
/// timing (exposed so callers can see the spread — C-INTERMEDIATE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetEstimate {
    /// Worst-case cycles over all feasible paths.
    pub cycles: u64,
    /// Instruction count of the worst path.
    pub instructions: u64,
    /// Miss count of the worst path.
    pub misses: u64,
    /// Name of the worst path's variant.
    pub worst_variant: String,
    /// Per-variant breakdown.
    pub per_variant: Vec<VariantTiming>,
}

/// Errors from WCET estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WcetError {
    /// A path simulation faulted.
    Exec {
        /// The variant that faulted.
        variant: String,
        /// The underlying fault.
        source: ExecError,
    },
    /// Structural analysis failed (irreducible CFG).
    Paths(PathEnumError),
    /// The L1/L2 pair was ill-formed.
    Hierarchy(HierarchyError),
}

impl fmt::Display for WcetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcetError::Exec { variant, source } => {
                write!(f, "simulating variant `{variant}`: {source}")
            }
            WcetError::Paths(e) => write!(f, "structural analysis: {e}"),
            WcetError::Hierarchy(e) => write!(f, "cache hierarchy: {e}"),
        }
    }
}

impl std::error::Error for WcetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WcetError::Exec { source, .. } => Some(source),
            WcetError::Paths(e) => Some(e),
            WcetError::Hierarchy(e) => Some(e),
        }
    }
}

impl From<PathEnumError> for WcetError {
    fn from(e: PathEnumError) -> Self {
        WcetError::Paths(e)
    }
}

impl From<HierarchyError> for WcetError {
    fn from(e: HierarchyError) -> Self {
        WcetError::Hierarchy(e)
    }
}

/// Simulates one variant against a cold cache and returns its timing.
///
/// # Errors
///
/// Returns [`WcetError::Exec`] if the simulation faults.
pub fn time_variant(
    program: &Program,
    variant_index: usize,
    geometry: CacheGeometry,
    model: TimingModel,
) -> Result<VariantTiming, WcetError> {
    let variant = &program.variants()[variant_index];
    let wrap = |source: ExecError| WcetError::Exec { variant: variant.name.clone(), source };
    let mut sim = Simulator::with_variant(program, variant)
        .map_err(|source| wrap(ExecError::Mem { pc: program.entry(), source }))?;
    let mut cache = CacheSim::new(geometry);
    sim.run_with_limit(rtprogram::sim::DEFAULT_STEP_LIMIT, |access| {
        cache.access(access.addr);
    })
    .map_err(wrap)?;
    let stats = cache.stats();
    Ok(VariantTiming {
        name: variant.name.clone(),
        cycles: sim.steps() * model.cpi + stats.misses * model.miss_penalty,
        instructions: sim.steps(),
        misses: stats.misses,
    })
}

/// Estimates the WCET of a program: the slowest feasible path under a
/// cold cache (the paper's SYMTA-style simulation method, §III-A).
///
/// # Errors
///
/// Returns [`WcetError::Exec`] if any variant's simulation faults.
pub fn estimate_wcet(
    program: &Program,
    geometry: CacheGeometry,
    model: TimingModel,
) -> Result<WcetEstimate, WcetError> {
    let mut per_variant = Vec::with_capacity(program.variants().len());
    for i in 0..program.variants().len() {
        per_variant.push(time_variant(program, i, geometry, model)?);
    }
    let worst = per_variant
        .iter()
        .max_by_key(|v| v.cycles)
        .expect("programs always have at least one variant")
        .clone();
    Ok(WcetEstimate {
        cycles: worst.cycles,
        instructions: worst.instructions,
        misses: worst.misses,
        worst_variant: worst.name,
        per_variant,
    })
}

/// Timing model for a two-level hierarchy: an L1 miss that hits L2 costs
/// `l2_penalty`; a miss in both levels costs `mem_penalty` (the paper's
/// future-work configuration, §IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyTimingModel {
    /// Cycles per issued instruction.
    pub cpi: u64,
    /// Extra cycles for an access satisfied by the L2.
    pub l2_penalty: u64,
    /// Extra cycles for an access that goes to memory.
    pub mem_penalty: u64,
}

impl Default for HierarchyTimingModel {
    /// Single-cycle issue, 6-cycle L2 hits, 40-cycle memory accesses.
    fn default() -> Self {
        HierarchyTimingModel { cpi: 1, l2_penalty: 6, mem_penalty: 40 }
    }
}

/// Per-variant timing under a two-level hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyVariantTiming {
    /// Variant name.
    pub name: String,
    /// Cold-hierarchy cycle count.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Accesses satisfied by the L2.
    pub l2_hits: u64,
    /// Accesses that reached memory.
    pub mem_misses: u64,
}

/// Result of [`estimate_wcet_hierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyWcetEstimate {
    /// Worst-case cycles over all feasible paths.
    pub cycles: u64,
    /// Name of the worst path's variant.
    pub worst_variant: String,
    /// Per-variant breakdown.
    pub per_variant: Vec<HierarchyVariantTiming>,
}

/// Estimates the WCET of a program over a cold two-level hierarchy: the
/// slowest feasible path with `cycles = instrs·cpi + l2_hits·l2_penalty +
/// mem_misses·mem_penalty`.
///
/// # Errors
///
/// Returns [`WcetError::Exec`] if a variant simulation faults, or
/// [`WcetError::Hierarchy`] for an ill-formed L1/L2 pair.
pub fn estimate_wcet_hierarchy(
    program: &Program,
    l1: CacheGeometry,
    l2: CacheGeometry,
    model: HierarchyTimingModel,
) -> Result<HierarchyWcetEstimate, WcetError> {
    let mut per_variant = Vec::with_capacity(program.variants().len());
    for variant in program.variants() {
        let wrap = |source: ExecError| WcetError::Exec { variant: variant.name.clone(), source };
        let mut sim = Simulator::with_variant(program, variant)
            .map_err(|source| wrap(ExecError::Mem { pc: program.entry(), source }))?;
        let mut hierarchy = CacheHierarchy::new(l1, l2)?;
        let (mut l2_hits, mut mem_misses) = (0u64, 0u64);
        sim.run_with_limit(rtprogram::sim::DEFAULT_STEP_LIMIT, |access| {
            match hierarchy.access(access.addr) {
                rtcache::LevelOutcome::L1Hit => {}
                rtcache::LevelOutcome::L2Hit => l2_hits += 1,
                rtcache::LevelOutcome::MemMiss => mem_misses += 1,
            }
        })
        .map_err(wrap)?;
        per_variant.push(HierarchyVariantTiming {
            name: variant.name.clone(),
            cycles: sim.steps() * model.cpi
                + l2_hits * model.l2_penalty
                + mem_misses * model.mem_penalty,
            instructions: sim.steps(),
            l2_hits,
            mem_misses,
        });
    }
    let worst = per_variant
        .iter()
        .max_by_key(|v| v.cycles)
        .expect("programs always have at least one variant")
        .clone();
    Ok(HierarchyWcetEstimate { cycles: worst.cycles, worst_variant: worst.name, per_variant })
}

/// A structural, simulation-free WCET bound: every access (fetch and
/// load/store) is charged a miss, block costs are weighted by loop
/// iteration factors, and the longest entry→exit path of the
/// back-edge-free CFG is taken.
///
/// The bound is loose but sound for any cache contents, so
/// `structural_wcet_bound >= estimate_wcet(...).cycles` always holds; the
/// test suite checks this on every benchmark workload.
///
/// Loops without a declared bound are assumed to iterate `default_bound`
/// times.
///
/// # Errors
///
/// Returns [`WcetError::Paths`] for irreducible control flow.
pub fn structural_wcet_bound(
    program: &Program,
    model: TimingModel,
    default_bound: u32,
) -> Result<u64, WcetError> {
    let cfg = Cfg::from_program(program);
    let loops = paths::natural_loops(&cfg, program)?;
    let factors = paths::iteration_factors(&cfg, &loops, default_bound);
    // Per-block all-miss cost.
    let cost: Vec<u64> = cfg
        .blocks()
        .iter()
        .zip(&factors)
        .map(|(block, factor)| {
            let instrs = block.instr_count();
            let ldst = block
                .addrs()
                .filter_map(|a| program.instr_at(a))
                .filter(|i| matches!(i, Instr::Ld { .. } | Instr::St { .. }))
                .count() as u64;
            factor * (instrs * model.cpi + (instrs + ldst) * model.miss_penalty)
        })
        .collect();
    // Longest path over the residual DAG via DFS with memoization (the
    // graph is acyclic after back-edge removal, which natural_loops
    // verified).
    let back_edges: std::collections::BTreeSet<(rtprogram::BlockId, rtprogram::BlockId)> =
        loops.iter().flat_map(|l| l.tails.iter().map(move |t| (*t, l.header))).collect();
    let mut memo: Vec<Option<u64>> = vec![None; cfg.len()];
    let mut stack = vec![cfg.entry()];
    while let Some(&b) = stack.last() {
        if memo[b.index()].is_some() {
            stack.pop();
            continue;
        }
        let succs: Vec<_> =
            cfg.block(b).succs.iter().copied().filter(|s| !back_edges.contains(&(b, *s))).collect();
        let unresolved: Vec<_> =
            succs.iter().copied().filter(|s| memo[s.index()].is_none()).collect();
        if unresolved.is_empty() {
            let tail = succs.iter().map(|s| memo[s.index()].expect("resolved")).max().unwrap_or(0);
            memo[b.index()] = Some(cost[b.index()] + tail);
            stack.pop();
        } else {
            stack.extend(unresolved);
        }
    }
    Ok(memo[cfg.entry().index()].expect("entry resolved"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::asm::assemble;

    fn small_geom() -> CacheGeometry {
        CacheGeometry::new(16, 2, 16).unwrap()
    }

    #[test]
    fn straight_line_exact() {
        // 3 instructions in 0x1000..0x100c span one 16-byte block boundary:
        // fetches touch blocks 0x100 and... all three at 0x1000,0x1004,0x1008
        // share block 0x100 -> 1 miss.
        let p = assemble("t", ".text 0x1000\nnop\nnop\nhalt\n").unwrap();
        let est = estimate_wcet(&p, small_geom(), TimingModel::with_miss_penalty(10)).unwrap();
        assert_eq!(est.instructions, 3);
        assert_eq!(est.misses, 1);
        assert_eq!(est.cycles, 3 + 10);
    }

    #[test]
    fn loop_reuses_code_lines() {
        let p = assemble(
            "t",
            ".text 0x1000\nstart: li r1, 100\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n",
        )
        .unwrap();
        let est = estimate_wcet(&p, small_geom(), TimingModel::with_miss_penalty(10)).unwrap();
        assert_eq!(est.instructions, 1 + 200 + 1);
        // Code spans 4 instructions = 1 block: a single cold miss.
        assert_eq!(est.misses, 1);
    }

    #[test]
    fn wcet_is_max_over_variants() {
        let p = rtworkloads::edge_detection_with_dim(8);
        let est = estimate_wcet(&p, CacheGeometry::paper_l1(), TimingModel::default()).unwrap();
        assert_eq!(est.per_variant.len(), 2);
        assert_eq!(est.worst_variant, "cauchy", "the cauchy arm is the longer path");
        let max = est.per_variant.iter().map(|v| v.cycles).max().unwrap();
        assert_eq!(est.cycles, max);
        assert!(est.per_variant[0].cycles < est.per_variant[1].cycles);
    }

    #[test]
    fn miss_penalty_scales_cycles() {
        let p = rtworkloads::mobile_robot();
        let g = CacheGeometry::paper_l1();
        let e10 = estimate_wcet(&p, g, TimingModel::with_miss_penalty(10)).unwrap();
        let e40 = estimate_wcet(&p, g, TimingModel::with_miss_penalty(40)).unwrap();
        assert_eq!(e10.instructions, e40.instructions);
        assert_eq!(e40.cycles - e10.cycles, 30 * e10.misses);
    }

    #[test]
    fn structural_bound_dominates_simulation_on_all_workloads() {
        let model = TimingModel::default();
        let g = CacheGeometry::paper_l1();
        for p in rtworkloads::experiment1().iter().chain(rtworkloads::experiment2().iter()) {
            let est = estimate_wcet(p, g, model).unwrap();
            let bound = structural_wcet_bound(p, model, 1).unwrap();
            assert!(
                bound >= est.cycles,
                "{}: structural {} < simulated {}",
                p.name(),
                bound,
                est.cycles
            );
        }
    }

    #[test]
    fn structural_bound_counts_loops() {
        let p = assemble(
            "t",
            ".text 0x1000\nstart: li r1, 8\nloop: addi r1, r1, -1\nbne r1, r0, loop\n.bound loop, 8\nhalt\n",
        )
        .unwrap();
        let model = TimingModel { cpi: 1, miss_penalty: 0 };
        let bound = structural_wcet_bound(&p, model, 1).unwrap();
        // 1 (li) + 8 * 2 (loop body) + 1 (halt) instructions.
        assert_eq!(bound, 18);
    }

    #[test]
    fn context_switch_wcet_is_constant_and_small() {
        // The paper's Example 6 measures 1049 cycles on ARM9; ours is of
        // the same order of magnitude under the default model.
        let p = rtworkloads::context_switch();
        let est = estimate_wcet(&p, CacheGeometry::paper_l1(), TimingModel::default()).unwrap();
        assert!(est.cycles > 100 && est.cycles < 2000, "Ccs = {}", est.cycles);
        assert_eq!(est.per_variant.len(), 1);
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = WcetError::Paths(PathEnumError::Irreducible);
        assert!(e.to_string().contains("structural"));
        assert!(e.source().is_some());
    }

    #[test]
    fn hierarchy_wcet_between_l1_only_bounds() {
        // With an L2, the WCET must lie between the all-L1-hit lower bound
        // and the single-level estimate at the memory penalty.
        let p = rtworkloads::mobile_robot();
        let l1 = CacheGeometry::new(64, 2, 16).unwrap();
        let l2 = CacheGeometry::new(1024, 8, 16).unwrap();
        let model = HierarchyTimingModel { cpi: 1, l2_penalty: 6, mem_penalty: 40 };
        let h = estimate_wcet_hierarchy(&p, l1, l2, model).unwrap();
        let single = estimate_wcet(&p, l1, TimingModel { cpi: 1, miss_penalty: 40 }).unwrap();
        assert!(h.cycles <= single.cycles, "an L2 can only help");
        assert!(h.cycles >= single.instructions, "at least one cycle per instruction");
        let worst = &h.per_variant[0];
        assert!(worst.mem_misses <= single.misses);
    }

    #[test]
    fn hierarchy_l2_hits_appear_when_l1_thrashes() {
        // ED's image scan thrashes a tiny L1 but fits a big L2.
        let p = rtworkloads::edge_detection_with_dim(10);
        let l1 = CacheGeometry::new(4, 1, 16).unwrap();
        let l2 = CacheGeometry::new(2048, 8, 16).unwrap();
        let h = estimate_wcet_hierarchy(&p, l1, l2, HierarchyTimingModel::default()).unwrap();
        assert!(h.per_variant.iter().all(|v| v.l2_hits > 0));
    }

    #[test]
    fn hierarchy_rejects_bad_pair() {
        let p = rtworkloads::mobile_robot();
        let l1 = CacheGeometry::new(64, 2, 16).unwrap();
        let l2 = CacheGeometry::new(64, 2, 32).unwrap();
        assert!(matches!(
            estimate_wcet_hierarchy(&p, l1, l2, HierarchyTimingModel::default()),
            Err(WcetError::Hierarchy(_))
        ));
    }

    #[test]
    fn timing_model_display() {
        assert_eq!(TimingModel::default().to_string(), "cpi=1, Cmiss=20");
    }
}
