//! Property-based tests for the cache model: LRU residency invariants,
//! CIIP partition laws, and the Eq. 2 bound against simulated evictions.

use proptest::prelude::*;
use rtcache::{CacheGeometry, CacheSim, Ciip, MemoryBlock, ReplacementPolicy};
use std::collections::BTreeSet;

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    (0u32..=5, 1u32..=8, 2u32..=6).prop_map(|(set_log, ways, line_log)| {
        CacheGeometry::new(1 << set_log, ways, 1 << line_log).expect("valid geometry")
    })
}

fn arb_blocks(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..256, 0..max_len)
}

proptest! {
    /// A set never holds more than `ways` distinct blocks, and every block
    /// just accessed is resident.
    #[test]
    fn residency_invariants(geom in arb_geometry(), refs in arb_blocks(200),
                            policy in prop::sample::select(ReplacementPolicy::ALL.to_vec())) {
        let mut cache = CacheSim::with_policy(geom, policy);
        for r in refs {
            let block = MemoryBlock::new(r);
            cache.access_block(block);
            prop_assert!(cache.is_resident(block));
        }
        let snap = cache.snapshot();
        for idx in geom.set_indices() {
            let in_set: Vec<_> = snap.blocks()
                .filter(|b| geom.index_of_block(*b) == idx)
                .collect();
            prop_assert!(in_set.len() <= geom.ways() as usize);
            for b in in_set {
                prop_assert_eq!(geom.index_of_block(b), idx);
            }
        }
    }

    /// Re-running an identical trace on a fresh cache reproduces identical
    /// statistics (the simulator is deterministic).
    #[test]
    fn deterministic_replay(geom in arb_geometry(), refs in arb_blocks(150)) {
        let mut a = CacheSim::new(geom);
        let mut b = CacheSim::new(geom);
        for r in &refs {
            a.access_block(MemoryBlock::new(*r));
        }
        for r in &refs {
            b.access_block(MemoryBlock::new(*r));
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.snapshot(), b.snapshot());
    }

    /// Accessing the same trace twice in a row yields all hits the second
    /// time when the distinct footprint per set fits in the ways (LRU).
    #[test]
    fn fitting_working_set_all_hits(geom in arb_geometry(), refs in arb_blocks(100)) {
        let distinct: BTreeSet<_> = refs.iter().map(|r| MemoryBlock::new(*r)).collect();
        let fits = geom.set_indices().all(|idx| {
            distinct.iter().filter(|b| geom.index_of_block(**b) == idx).count()
                <= geom.ways() as usize
        });
        prop_assume!(fits);
        let mut cache = CacheSim::new(geom);
        for r in &refs {
            cache.access_block(MemoryBlock::new(*r));
        }
        cache.reset_stats();
        for b in &distinct {
            prop_assert!(cache.access_block(*b).is_hit());
        }
        prop_assert_eq!(cache.stats().misses, 0);
    }

    /// CIIP is a partition: subsets are disjoint, non-empty, cover all
    /// blocks, and each block lands in the subset of its own index.
    #[test]
    fn ciip_is_a_partition(geom in arb_geometry(), refs in arb_blocks(100)) {
        let blocks: BTreeSet<_> = refs.iter().map(|r| MemoryBlock::new(*r)).collect();
        let ciip = Ciip::from_blocks(geom, blocks.iter().copied());
        prop_assert_eq!(ciip.block_count(), blocks.len());
        let mut seen = BTreeSet::new();
        for (idx, subset) in ciip.iter() {
            prop_assert!(!subset.is_empty(), "empty subsets must not be stored");
            for b in subset {
                prop_assert_eq!(geom.index_of_block(*b), idx);
                prop_assert!(seen.insert(*b), "subsets must be disjoint");
            }
        }
        prop_assert_eq!(seen, blocks);
    }

    /// Eq. 2 bound properties: symmetric, bounded by both line bounds,
    /// zero against the empty set, and monotone under union.
    #[test]
    fn overlap_bound_laws(geom in arb_geometry(), a in arb_blocks(80), b in arb_blocks(80),
                          c in arb_blocks(40)) {
        let ma = Ciip::from_blocks(geom, a.iter().map(|r| MemoryBlock::new(*r)));
        let mb = Ciip::from_blocks(geom, b.iter().map(|r| MemoryBlock::new(*r)));
        let mc = Ciip::from_blocks(geom, c.iter().map(|r| MemoryBlock::new(*r)));
        let s = ma.overlap_bound(&mb);
        prop_assert_eq!(s, mb.overlap_bound(&ma));
        prop_assert!(s <= ma.line_bound());
        prop_assert!(s <= mb.line_bound());
        prop_assert_eq!(ma.overlap_bound(&Ciip::empty(geom)), 0);
        // Monotone: growing one side can only grow the bound.
        let mb_grown = mb.union(&mc);
        prop_assert!(ma.overlap_bound(&mb_grown) >= s);
        // Bounded by total lines.
        prop_assert!(s as u64 <= geom.total_lines());
    }

    /// Definition 3 reference model: `S(Ma, Mb)` equals the hand-computed
    /// `Σ_r min(|m̂a,r|, |m̂b,r|, L)` over every cache set `r`, and is
    /// therefore bounded by `L × N` (associativity × sets).
    #[test]
    fn overlap_bound_matches_definition3(geom in arb_geometry(),
                                         a in arb_blocks(120), b in arb_blocks(120)) {
        let ma = Ciip::from_blocks(geom, a.iter().map(|r| MemoryBlock::new(*r)));
        let mb = Ciip::from_blocks(geom, b.iter().map(|r| MemoryBlock::new(*r)));
        let count_per_set = |refs: &[u64]| {
            let mut counts = std::collections::BTreeMap::new();
            for block in refs.iter().map(|r| MemoryBlock::new(*r)).collect::<BTreeSet<_>>() {
                *counts.entry(geom.index_of_block(block)).or_insert(0usize) += 1;
            }
            counts
        };
        let (ca, cb) = (count_per_set(&a), count_per_set(&b));
        let ways = geom.ways() as usize;
        let expected: usize = geom
            .set_indices()
            .map(|r| {
                ca.get(&r).copied().unwrap_or(0).min(cb.get(&r).copied().unwrap_or(0)).min(ways)
            })
            .sum();
        prop_assert_eq!(ma.overlap_bound(&mb), expected);
        prop_assert!(expected as u64 <= geom.ways() as u64 * geom.sets() as u64);
    }

    /// Stepwise monotonicity: adding blocks to either operand one at a
    /// time never decreases the bound, and each step grows it by at most
    /// one (each new block adds at most one conflicting line).
    #[test]
    fn overlap_bound_monotone_per_block(geom in arb_geometry(),
                                        a in arb_blocks(60), grow in arb_blocks(40)) {
        let ma = Ciip::from_blocks(geom, a.iter().map(|r| MemoryBlock::new(*r)));
        let mut mb = Ciip::empty(geom);
        let mut previous = 0;
        for r in grow {
            mb.extend([MemoryBlock::new(r)]);
            let bound = ma.overlap_bound(&mb);
            prop_assert!(bound >= previous, "bound {bound} dropped below {previous}");
            prop_assert!(bound <= previous + 1, "one block added {} lines", bound - previous);
            // Symmetry at every step, not just on final operands.
            prop_assert_eq!(bound, mb.overlap_bound(&ma));
            previous = bound;
        }
    }

    /// Ground truth check for Eq. 2: load task A's blocks, then task B's;
    /// the number of A-blocks evicted during B's execution never exceeds
    /// `S(Ma, Mb)` under LRU.
    #[test]
    fn eq2_bounds_simulated_evictions(geom in arb_geometry(),
                                      a in arb_blocks(120), b in arb_blocks(120)) {
        let mut cache = CacheSim::new(geom);
        for r in &a {
            cache.access_block(MemoryBlock::new(*r));
        }
        let before = cache.snapshot();
        for r in &b {
            cache.access_block(MemoryBlock::new(*r));
        }
        let after = cache.snapshot();
        let evicted = before.evicted_in(&after);
        let ma = Ciip::from_blocks(geom, a.iter().map(|r| MemoryBlock::new(*r)));
        let mb = Ciip::from_blocks(geom, b.iter().map(|r| MemoryBlock::new(*r)));
        prop_assert!(
            evicted.len() <= ma.overlap_bound(&mb),
            "evicted {} > bound {}", evicted.len(), ma.overlap_bound(&mb)
        );
    }

    /// Intersection/union algebra.
    #[test]
    fn ciip_algebra(geom in arb_geometry(), a in arb_blocks(60), b in arb_blocks(60)) {
        let ma = Ciip::from_blocks(geom, a.iter().map(|r| MemoryBlock::new(*r)));
        let mb = Ciip::from_blocks(geom, b.iter().map(|r| MemoryBlock::new(*r)));
        let i = ma.intersection(&mb);
        let u = ma.union(&mb);
        prop_assert_eq!(i.block_count() + u.block_count(), ma.block_count() + mb.block_count());
        for blk in i.blocks() {
            prop_assert!(ma.contains(blk) && mb.contains(blk));
        }
        for blk in ma.blocks() {
            prop_assert!(u.contains(blk));
        }
        // The overlap bound of the intersection with anything is no larger
        // than the original bound.
        prop_assert!(i.overlap_bound(&mb) <= ma.overlap_bound(&mb));
    }
}

mod packed_props {
    use super::*;
    use rtcache::PackedFootprint;

    /// The ISSUE's differential envelope: 4–64 sets, 1–8 ways.
    fn arb_packed_geometry() -> impl Strategy<Value = CacheGeometry> {
        (2u32..=6, 1u32..=8, 2u32..=6).prop_map(|(set_log, ways, line_log)| {
            CacheGeometry::new(1 << set_log, ways, 1 << line_log).expect("valid geometry")
        })
    }

    proptest! {
        /// The packed min-sum kernel is bit-identical to the tree-walk
        /// Eq. 2 bound, and the packed line bound to the tree line bound,
        /// on arbitrary footprints.
        #[test]
        fn packed_bound_equals_tree_bound(geom in arb_packed_geometry(),
                                          a in arb_blocks(120), b in arb_blocks(120)) {
            let ma = Ciip::from_blocks(geom, a.iter().map(|r| MemoryBlock::new(*r)));
            let mb = Ciip::from_blocks(geom, b.iter().map(|r| MemoryBlock::new(*r)));
            let pa = PackedFootprint::from_ciip(&ma).expect("ways <= 8 packs");
            let pb = PackedFootprint::from_ciip(&mb).expect("ways <= 8 packs");
            prop_assert_eq!(pa.overlap_bound(&pb), ma.overlap_bound(&mb));
            prop_assert_eq!(pb.overlap_bound(&pa), mb.overlap_bound(&ma));
            prop_assert_eq!(pa.line_bound(), ma.line_bound());
            prop_assert_eq!(pb.line_bound(), mb.line_bound());
        }

        /// Dominance is what the skyline pruning relies on: if `a`
        /// dominates `b`, then `S(a, mb) >= S(b, mb)` for every `mb`.
        #[test]
        fn dominance_implies_pointwise_bound_order(geom in arb_packed_geometry(),
                                                   a in arb_blocks(80), grow in arb_blocks(40),
                                                   probe in arb_blocks(80)) {
            let small = Ciip::from_blocks(geom, a.iter().map(|r| MemoryBlock::new(*r)));
            let big = small.union(&Ciip::from_blocks(geom, grow.iter().map(|r| MemoryBlock::new(*r))));
            let p_small = PackedFootprint::from_ciip(&small).expect("packs");
            let p_big = PackedFootprint::from_ciip(&big).expect("packs");
            prop_assert!(p_big.dominates(&p_small), "a superset footprint dominates");
            let mb = PackedFootprint::from_ciip(
                &Ciip::from_blocks(geom, probe.iter().map(|r| MemoryBlock::new(*r)))
            ).expect("packs");
            prop_assert!(p_big.overlap_bound(&mb) >= p_small.overlap_bound(&mb));
        }
    }
}

mod hierarchy_props {
    use super::*;
    use rtcache::{CacheHierarchy, LevelOutcome};

    proptest! {
        /// Hierarchy invariants: an access never hits L1 without being
        /// resident there afterwards; every block touched is resident in
        /// both levels afterwards; the memory-miss count equals the
        /// distinct-block count when the L2 holds the whole footprint.
        #[test]
        fn hierarchy_residency_and_memory_traffic(refs in prop::collection::vec(0u64..64, 1..300)) {
            let l1 = CacheGeometry::new(4, 1, 16).expect("valid geometry");
            let l2 = CacheGeometry::new(64, 2, 16).expect("valid geometry");
            let mut h = CacheHierarchy::new(l1, l2).expect("valid pair");
            let mut mem_misses = 0u64;
            for r in &refs {
                let block = MemoryBlock::new(*r);
                match h.access_block(block) {
                    LevelOutcome::MemMiss => mem_misses += 1,
                    LevelOutcome::L2Hit | LevelOutcome::L1Hit => {}
                }
                prop_assert!(h.l1().is_resident(block));
                prop_assert!(h.l2().is_resident(block));
            }
            // 64 sets x 2 ways holds all 64 possible blocks: each block
            // faults exactly once.
            let distinct: BTreeSet<_> = refs.iter().collect();
            prop_assert_eq!(mem_misses as usize, distinct.len());
        }

        /// With an L2 at least as effective as the L1, L1 hits under the
        /// hierarchy match a standalone L1 fed the same references.
        #[test]
        fn hierarchy_l1_behaves_like_standalone_l1(refs in prop::collection::vec(0u64..128, 1..200)) {
            let l1 = CacheGeometry::new(8, 2, 16).expect("valid geometry");
            let l2 = CacheGeometry::new(128, 4, 16).expect("valid geometry");
            let mut h = CacheHierarchy::new(l1, l2).expect("valid pair");
            let mut alone = CacheSim::new(l1);
            for r in &refs {
                let block = MemoryBlock::new(*r);
                let hier_l1_hit = matches!(h.access_block(block), LevelOutcome::L1Hit);
                let alone_hit = alone.access_block(block).is_hit();
                prop_assert_eq!(hier_l1_hit, alone_hit, "L1 is unaffected by the L2 behind it");
            }
        }
    }
}
