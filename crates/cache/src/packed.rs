//! Dense, pre-saturated footprint vectors for the Eq. 2 / Eq. 3 kernel.
//!
//! [`Ciip::overlap_bound`] walks two `BTreeMap`s and pays a tree lookup
//! per non-empty set. Inside the Approach 4 quadruple loop (preempting
//! path × preempted path × trace point × cache set) that walk dominates a
//! cold analysis. A [`PackedFootprint`] flattens the partition into one
//! byte per cache set holding `min(|m̂_r|, L)` — the only quantity the
//! bound ever reads — so the overlap bound becomes a branchless min-sum
//! over two byte slices (2 KB each for the paper's 32 KiB / 4-way
//! geometry) that the compiler autovectorizes.
//!
//! Saturating at `L` during construction is lossless for every consumer:
//! the per-set term is `min(|m̂a,r|, |m̂b,r|, L) = min(sat_a[r], sat_b[r])`
//! with `sat[r] = min(|m̂_r|, L)`, and the line bound `Σ_r min(|m̂_r|, L)`
//! is just the vector's element sum, precomputed at build time.

use std::fmt;

use crate::{CacheGeometry, Ciip, SetIndex};

/// A footprint packed for the hot CRPD kernel: one byte per cache set
/// holding the saturated count `min(|m̂_r|, L)`, plus the precomputed
/// line bound `Σ_r min(|m̂_r|, L)`.
///
/// Construction fails (returns `None`) only when the geometry's way count
/// does not fit a byte (`L > 255`) — the saturated counts would alias and
/// the bound could under-count. Callers fall back to the exact
/// [`Ciip`] path in that (purely theoretical) case.
///
/// ```
/// use rtcache::{CacheGeometry, Ciip, PackedFootprint};
///
/// // Paper Example 4: S(M1, M2) = 4.
/// let geom = CacheGeometry::example2();
/// let m1 = Ciip::from_addrs(geom, [0x000u64, 0x100, 0x010, 0x110, 0x210]);
/// let m2 = Ciip::from_addrs(geom, [0x200u64, 0x310, 0x410, 0x510]);
/// let p1 = PackedFootprint::from_ciip(&m1).unwrap();
/// let p2 = PackedFootprint::from_ciip(&m2).unwrap();
/// assert_eq!(p1.overlap_bound(&p2), m1.overlap_bound(&m2));
/// assert_eq!(p1.line_bound(), m1.line_bound());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedFootprint {
    geometry: CacheGeometry,
    /// `counts[r] = min(|m̂_r|, L)`; length is exactly `geometry.sets()`.
    counts: Vec<u8>,
    /// `Σ_r counts[r]`, the Eq. 1 line bound, fixed at build time.
    line_bound: usize,
}

impl PackedFootprint {
    /// Packs a [`Ciip`] into its dense saturated-count vector.
    ///
    /// Returns `None` when `geometry.ways() > 255` (the saturated count
    /// would not fit a byte; use the exact [`Ciip`] bound instead).
    pub fn from_ciip(ciip: &Ciip) -> Option<Self> {
        Self::from_counts(ciip.geometry(), ciip.iter().map(|(idx, subset)| (idx, subset.len())))
    }

    /// Packs explicit per-set block counts (absent sets count zero),
    /// saturating each at the way count.
    ///
    /// Returns `None` when `geometry.ways() > 255`.
    pub fn from_counts<I>(geometry: CacheGeometry, counts: I) -> Option<Self>
    where
        I: IntoIterator<Item = (SetIndex, usize)>,
    {
        let ways = u8::try_from(geometry.ways()).ok()?;
        let mut packed = vec![0u8; geometry.sets() as usize];
        let mut line_bound = 0usize;
        for (idx, count) in counts {
            let sat = count.min(ways as usize) as u8;
            let slot = &mut packed[idx.as_usize()];
            line_bound = line_bound - *slot as usize + sat as usize;
            *slot = sat;
        }
        Some(PackedFootprint { geometry, counts: packed, line_bound })
    }

    /// The geometry the footprint was packed for.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The saturated per-set counts, one byte per cache set.
    pub fn counts(&self) -> &[u8] {
        &self.counts
    }

    /// `min(|m̂_index|, L)` for one set.
    pub fn count(&self, index: SetIndex) -> u8 {
        self.counts[index.as_usize()]
    }

    /// The precomputed line bound `Σ_r min(|m̂_r|, L)` (Eq. 1 / Approach
    /// 1's charge). Equals [`Ciip::line_bound`] of the source partition.
    pub fn line_bound(&self) -> usize {
        self.line_bound
    }

    /// Eq. 2 / Eq. 3: `S(Ma, Mb) = Σ_r min(|m̂a,r|, |m̂b,r|, L)` as a dense
    /// min-sum over the two saturated vectors. Bit-identical to
    /// [`Ciip::overlap_bound`] on the source partitions.
    ///
    /// # Panics
    ///
    /// Panics if the footprints were packed for different geometries.
    pub fn overlap_bound(&self, other: &PackedFootprint) -> usize {
        assert_eq!(
            self.geometry, other.geometry,
            "packed footprints from different cache geometries cannot be compared"
        );
        min_sum(&self.counts, &other.counts)
    }

    /// `true` if `self` is element-wise `>=` `other`: then for *every*
    /// preempting footprint `mb`, `S(self, mb) >= S(other, mb)`, so
    /// `other` can never win a `max_overlap_bound` search — the dominance
    /// relation behind the useful-trace skyline pruning.
    ///
    /// # Panics
    ///
    /// Panics if the footprints were packed for different geometries.
    pub fn dominates(&self, other: &PackedFootprint) -> bool {
        assert_eq!(
            self.geometry, other.geometry,
            "packed footprints from different cache geometries cannot be compared"
        );
        // Cheap rejection: element-wise dominance implies sum dominance.
        self.line_bound >= other.line_bound
            && self.counts.iter().zip(&other.counts).all(|(a, b)| a >= b)
    }
}

/// Branchless chunked min-sum: 16-byte blocks (two `u64` lanes' worth,
/// autovectorized to byte-min + horizontal-add) with a scalar tail.
fn min_sum(a: &[u8], b: &[u8]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut a_chunks = a.chunks_exact(16);
    let mut b_chunks = b.chunks_exact(16);
    let mut total = 0u64;
    for (ca, cb) in a_chunks.by_ref().zip(b_chunks.by_ref()) {
        // A fixed-size inner loop keeps the per-chunk accumulator in u32
        // (16 × 255 can't overflow it) and vectorizes cleanly.
        let mut chunk = 0u32;
        for i in 0..16 {
            chunk += u32::from(ca[i].min(cb[i]));
        }
        total += u64::from(chunk);
    }
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += u64::from(*x.min(y));
    }
    total as usize
}

impl fmt::Display for PackedFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackedFootprint({} lines over {} sets)",
            self.line_bound,
            self.counts.iter().filter(|c| **c > 0).count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::example2()
    }

    fn example3() -> Ciip {
        Ciip::from_addrs(geom(), [0x000u64, 0x100, 0x010, 0x110, 0x210])
    }

    #[test]
    fn example4_matches_tree_bound() {
        let m1 = example3();
        let m2 = Ciip::from_addrs(geom(), [0x200u64, 0x310, 0x410, 0x510]);
        let p1 = PackedFootprint::from_ciip(&m1).unwrap();
        let p2 = PackedFootprint::from_ciip(&m2).unwrap();
        assert_eq!(p1.overlap_bound(&p2), 4);
        assert_eq!(p2.overlap_bound(&p1), 4, "bound is symmetric");
        assert_eq!(p1.line_bound(), m1.line_bound());
        assert_eq!(p2.line_bound(), m2.line_bound());
    }

    #[test]
    fn counts_saturate_at_ways() {
        let g = CacheGeometry::new(4, 2, 16).unwrap();
        // Five blocks in set 0 saturate at 2 ways.
        let m = Ciip::from_blocks(g, (0..5u64).map(|i| crate::MemoryBlock::new(i * 4)));
        let p = PackedFootprint::from_ciip(&m).unwrap();
        assert_eq!(p.count(SetIndex::new(0)), 2);
        assert_eq!(p.count(SetIndex::new(1)), 0);
        assert_eq!(p.line_bound(), 2);
        assert_eq!(p.counts().len(), 4);
    }

    #[test]
    fn long_vectors_exercise_chunks_and_tail() {
        // 512 sets: 32 full 16-byte chunks; 8 sets: scalar tail only.
        for sets in [512u32, 32, 8] {
            let g = CacheGeometry::new(sets, 4, 16).unwrap();
            let a = Ciip::from_blocks(g, (0..600u64).map(crate::MemoryBlock::new));
            let b = Ciip::from_blocks(g, (300..700u64).map(|i| crate::MemoryBlock::new(i * 3)));
            let pa = PackedFootprint::from_ciip(&a).unwrap();
            let pb = PackedFootprint::from_ciip(&b).unwrap();
            assert_eq!(pa.overlap_bound(&pb), a.overlap_bound(&b), "{sets} sets");
            assert_eq!(pa.line_bound(), a.line_bound());
        }
    }

    #[test]
    fn wide_geometry_is_rejected() {
        let g = CacheGeometry::new(4, 300, 16).unwrap();
        assert!(PackedFootprint::from_ciip(&Ciip::empty(g)).is_none());
        // 255 ways still packs.
        let g = CacheGeometry::new(4, 255, 16).unwrap();
        assert!(PackedFootprint::from_ciip(&Ciip::empty(g)).is_some());
    }

    #[test]
    fn single_set_geometry_packs_and_matches_tree() {
        // 1 set: every block collides; the packed kernel is a single
        // saturating min against the way count.
        let g = CacheGeometry::new(1, 4, 16).unwrap();
        let a = Ciip::from_blocks(g, (0..7u64).map(crate::MemoryBlock::new));
        let b = Ciip::from_blocks(g, (5..8u64).map(crate::MemoryBlock::new));
        let pa = PackedFootprint::from_ciip(&a).unwrap();
        let pb = PackedFootprint::from_ciip(&b).unwrap();
        assert_eq!(pa.count(SetIndex::new(0)), 4, "7 blocks saturate at 4 ways");
        assert_eq!(pa.overlap_bound(&pb), a.overlap_bound(&b));
        assert_eq!(pa.overlap_bound(&pb), 3, "min(4, 3, L=4)");
    }

    #[test]
    fn way_count_boundary_is_exactly_u8() {
        // 255 ways is the last packable width: counts fit u8 unsaturated
        // and the packed bound still equals the tree walk.
        let g = CacheGeometry::new(2, 255, 16).unwrap();
        let a = Ciip::from_blocks(g, (0..300u64).map(crate::MemoryBlock::new));
        let b = Ciip::from_blocks(g, (100..500u64).map(crate::MemoryBlock::new));
        let pa = PackedFootprint::from_ciip(&a).unwrap();
        let pb = PackedFootprint::from_ciip(&b).unwrap();
        assert_eq!(pa.overlap_bound(&pb), a.overlap_bound(&b));
        // 256 ways no longer fits a u8 lane: packing declines, the tree
        // walk remains the only kernel.
        let g = CacheGeometry::new(2, 256, 16).unwrap();
        let wide = Ciip::from_blocks(g, (0..300u64).map(crate::MemoryBlock::new));
        assert!(PackedFootprint::from_ciip(&wide).is_none());
        assert!(wide.overlap_bound(&wide) > 0, "the tree bound still works at 256 ways");
    }

    #[test]
    fn zero_footprint_overlaps_nothing_both_ways() {
        let g = geom();
        let empty = PackedFootprint::from_ciip(&Ciip::empty(g)).unwrap();
        let full = PackedFootprint::from_ciip(&example3()).unwrap();
        assert_eq!(empty.overlap_bound(&full), 0);
        assert_eq!(full.overlap_bound(&empty), 0);
        assert_eq!(empty.overlap_bound(&empty), 0);
        assert_eq!(empty.line_bound(), 0);
        assert!(full.dominates(&empty), "anything dominates the zero footprint");
    }

    #[test]
    fn dominance_is_elementwise() {
        let g = geom();
        let small = PackedFootprint::from_ciip(&Ciip::from_addrs(g, [0x000u64, 0x010])).unwrap();
        let big = PackedFootprint::from_ciip(&Ciip::from_addrs(
            g,
            [0x000u64, 0x100, 0x010, 0x110, 0x020],
        ))
        .unwrap();
        assert!(big.dominates(&small));
        assert!(!small.dominates(&big));
        assert!(big.dominates(&big), "dominance is reflexive");
        // Incomparable vectors: each has a set the other lacks.
        let left = PackedFootprint::from_ciip(&Ciip::from_addrs(g, [0x000u64])).unwrap();
        let right = PackedFootprint::from_ciip(&Ciip::from_addrs(g, [0x010u64])).unwrap();
        assert!(!left.dominates(&right) && !right.dominates(&left));
    }

    #[test]
    fn dominated_point_never_beats_dominator_on_any_preemptor() {
        let g = geom();
        let small = PackedFootprint::from_ciip(&Ciip::from_addrs(g, [0x000u64, 0x010])).unwrap();
        let big = PackedFootprint::from_ciip(&Ciip::from_addrs(
            g,
            [0x000u64, 0x100, 0x010, 0x110, 0x020],
        ))
        .unwrap();
        for seed in 0..16u64 {
            let mb = PackedFootprint::from_ciip(&Ciip::from_blocks(
                g,
                (0..20).map(|i| crate::MemoryBlock::new(i * seed + i)),
            ))
            .unwrap();
            assert!(small.overlap_bound(&mb) <= big.overlap_bound(&mb));
        }
    }

    #[test]
    fn from_counts_accepts_duplicates_last_wins() {
        let g = geom();
        let p = PackedFootprint::from_counts(
            g,
            [(SetIndex::new(1), 7), (SetIndex::new(1), 1), (SetIndex::new(2), 3)],
        )
        .unwrap();
        assert_eq!(p.count(SetIndex::new(1)), 1);
        assert_eq!(p.count(SetIndex::new(2)), 3);
        assert_eq!(p.line_bound(), 4);
    }

    #[test]
    #[should_panic(expected = "different cache geometries")]
    fn geometry_mismatch_panics() {
        let a = PackedFootprint::from_ciip(&Ciip::empty(geom())).unwrap();
        let b = PackedFootprint::from_ciip(&Ciip::empty(CacheGeometry::new(32, 4, 16).unwrap()))
            .unwrap();
        let _ = a.overlap_bound(&b);
    }

    #[test]
    fn display_summarizes() {
        let p = PackedFootprint::from_ciip(&example3()).unwrap();
        assert_eq!(p.to_string(), "PackedFootprint(5 lines over 2 sets)");
    }
}
