//! The Cache Index Induced Partition (CIIP) and the per-set conflict
//! bounds of the paper's Eq. 2 and Eq. 3.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{CacheGeometry, MemoryBlock, SetIndex};

/// The *Cache Index Induced Partition* of a memory-block set (paper
/// Definition 3).
///
/// Given a set of memory blocks `M` and a cache geometry, the CIIP groups
/// the blocks by the cache set they map to: `m̂_i = { m ∈ M | idx(m) = i }`.
/// Blocks in different subsets can never conflict in the cache; blocks in
/// the same subset contend for that set's `L` ways. The partition is the
/// basis of the inter-task eviction bound [`Ciip::overlap_bound`] (Eq. 2).
///
/// Empty subsets are not stored, matching the paper's definition
/// (`m̂_i ≠ ∅`).
///
/// ```
/// use rtcache::{CacheGeometry, Ciip};
///
/// # fn main() -> Result<(), rtcache::GeometryError> {
/// // Paper Example 3.
/// let geom = CacheGeometry::example2();
/// let m = Ciip::from_addrs(geom, [0x000u64, 0x100, 0x010, 0x110, 0x210]);
/// assert_eq!(m.subset_count(), 2); // indices 0 and 1
/// assert_eq!(m.subset_len(rtcache::SetIndex::new(0)), 2);
/// assert_eq!(m.subset_len(rtcache::SetIndex::new(1)), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciip {
    geometry: CacheGeometry,
    parts: BTreeMap<SetIndex, BTreeSet<MemoryBlock>>,
}

impl Ciip {
    /// Builds the CIIP of a collection of memory blocks.
    pub fn from_blocks<I>(geometry: CacheGeometry, blocks: I) -> Self
    where
        I: IntoIterator<Item = MemoryBlock>,
    {
        let mut parts: BTreeMap<SetIndex, BTreeSet<MemoryBlock>> = BTreeMap::new();
        for block in blocks {
            parts.entry(geometry.index_of_block(block)).or_default().insert(block);
        }
        Ciip { geometry, parts }
    }

    /// Builds the CIIP of the blocks containing the given byte addresses.
    pub fn from_addrs<I>(geometry: CacheGeometry, addrs: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        Ciip::from_blocks(geometry, addrs.into_iter().map(|a| geometry.block_of_addr(a)))
    }

    /// An empty partition.
    pub fn empty(geometry: CacheGeometry) -> Self {
        Ciip { geometry, parts: BTreeMap::new() }
    }

    /// The geometry the partition was built for.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of non-empty subsets.
    pub fn subset_count(&self) -> usize {
        self.parts.len()
    }

    /// Total number of distinct blocks across all subsets (`|M|`).
    pub fn block_count(&self) -> usize {
        self.parts.values().map(BTreeSet::len).sum()
    }

    /// `true` if no blocks are present.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The blocks mapped to cache set `index` (empty slice semantics: an
    /// absent subset yields `None`).
    pub fn subset(&self, index: SetIndex) -> Option<&BTreeSet<MemoryBlock>> {
        self.parts.get(&index)
    }

    /// `|m̂_index|`, zero when the subset is empty.
    pub fn subset_len(&self, index: SetIndex) -> usize {
        self.parts.get(&index).map_or(0, BTreeSet::len)
    }

    /// Iterates over the non-empty subsets in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SetIndex, &BTreeSet<MemoryBlock>)> {
        self.parts.iter().map(|(i, s)| (*i, s))
    }

    /// Iterates over every block in the partition.
    pub fn blocks(&self) -> impl Iterator<Item = MemoryBlock> + '_ {
        self.parts.values().flat_map(|s| s.iter().copied())
    }

    /// `true` if `block` is in the partition.
    pub fn contains(&self, block: MemoryBlock) -> bool {
        self.parts.get(&self.geometry.index_of_block(block)).is_some_and(|s| s.contains(&block))
    }

    /// The number of cache lines the blocks can occupy at once:
    /// `Σ_r min(|m̂_r|, L)`.
    ///
    /// This is the quantity Approach 1 (Busquets-Mataix \[20\]) charges for a
    /// preemption — every line the preempting task can touch — and the cap
    /// Approach 3 (Lee \[21\]) applies to the useful-block set.
    pub fn line_bound(&self) -> usize {
        let ways = self.geometry.ways() as usize;
        self.parts.values().map(|s| s.len().min(ways)).sum()
    }

    /// Eq. 2 / Eq. 3: `S(Ma, Mb) = Σ_r min(|m̂a,r|, |m̂b,r|, L)`, the upper
    /// bound on the number of cache lines used by `self`'s blocks that can
    /// be displaced when `other`'s blocks are loaded (and vice versa — the
    /// bound is symmetric).
    ///
    /// When an `rtobs` recorder is installed, every non-zero per-set term
    /// is recorded together with the `min` argument that produced it.
    ///
    /// # Panics
    ///
    /// Panics if the two partitions were built for different geometries;
    /// the per-set pairing is meaningless across geometries.
    pub fn overlap_bound(&self, other: &Ciip) -> usize {
        assert_eq!(
            self.geometry, other.geometry,
            "CIIPs from different cache geometries cannot be compared"
        );
        if rtobs::enabled() {
            let mut total = 0;
            self.for_each_overlap_term(other, |c| {
                rtobs::record_overlap_set(c.set.as_u32(), c.lines as u64, c.cap);
                total += c.lines;
            });
            return total;
        }
        let ways = self.geometry.ways() as usize;
        // Iterate the smaller map for efficiency; the bound is symmetric.
        let (small, large) =
            if self.parts.len() <= other.parts.len() { (self, other) } else { (other, self) };
        small.parts.iter().map(|(idx, s)| s.len().min(large.subset_len(*idx)).min(ways)).sum()
    }

    /// Visits every non-zero per-set term of the bound in set-index order
    /// without allocating; the shared core of [`Ciip::overlap_bound`]'s
    /// recording path and [`Ciip::overlap_contributions`].
    fn for_each_overlap_term(&self, other: &Ciip, mut visit: impl FnMut(OverlapContribution)) {
        let ways = self.geometry.ways() as usize;
        for (idx, subset) in &self.parts {
            let a = subset.len();
            let b = other.subset_len(*idx);
            let lines = a.min(b).min(ways);
            if lines == 0 {
                continue;
            }
            // Tie-breaking favours the hard architectural cap first,
            // then the preempted side, mirroring the order the paper
            // states the bound in.
            let cap = if ways <= a && ways <= b {
                rtobs::OverlapCap::Ways
            } else if a <= b {
                rtobs::OverlapCap::Preempted
            } else {
                rtobs::OverlapCap::Preempting
            };
            visit(OverlapContribution { set: *idx, lines, cap });
        }
    }

    /// The per-set terms of [`Ciip::overlap_bound`], in set-index order,
    /// each annotated with the binding argument of
    /// `min(|m̂a,r|, |m̂b,r|, L)`. `self` plays the preempted side (`a`),
    /// `other` the preempting side (`b`); the total equals the bound.
    /// Zero terms are omitted.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn overlap_contributions(&self, other: &Ciip) -> Vec<OverlapContribution> {
        assert_eq!(
            self.geometry, other.geometry,
            "CIIPs from different cache geometries cannot be compared"
        );
        let mut contributions = Vec::new();
        self.for_each_overlap_term(other, |c| contributions.push(c));
        contributions
    }

    /// Per-set occupancy histogram: `histogram[k]` counts the cache sets
    /// holding exactly `k` of the partition's blocks (`k` ranges from 0
    /// to the largest subset size). Useful for seeing how evenly a task's
    /// footprint spreads over the index space.
    ///
    /// ```
    /// use rtcache::{CacheGeometry, Ciip};
    ///
    /// # fn main() -> Result<(), rtcache::GeometryError> {
    /// let geom = CacheGeometry::example2(); // 16 sets
    /// let m = Ciip::from_addrs(geom, [0x000u64, 0x100, 0x010]);
    /// let h = m.occupancy_histogram();
    /// assert_eq!(h, vec![14, 1, 1]); // 14 empty sets, one 1-block, one 2-block
    /// # Ok(())
    /// # }
    /// ```
    pub fn occupancy_histogram(&self) -> Vec<u32> {
        // One pass: grow the vector as larger subsets appear instead of
        // pre-scanning the map for the maximum.
        let mut histogram = vec![0u32; 1];
        for subset in self.parts.values() {
            let len = subset.len();
            if len >= histogram.len() {
                histogram.resize(len + 1, 0);
            }
            histogram[len] += 1;
        }
        histogram[0] = self.geometry.sets() - self.parts.len() as u32;
        histogram
    }

    /// The largest number of blocks mapped to any single set (the
    /// worst-case pressure; self-eviction is possible once it exceeds the
    /// way count).
    pub fn max_set_pressure(&self) -> usize {
        self.parts.values().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Block-wise intersection of two partitions (blocks present in both).
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn intersection(&self, other: &Ciip) -> Ciip {
        assert_eq!(
            self.geometry, other.geometry,
            "CIIPs from different cache geometries cannot be intersected"
        );
        Ciip::from_blocks(self.geometry, self.blocks().filter(|b| other.contains(*b)))
    }

    /// Block-wise union of two partitions.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn union(&self, other: &Ciip) -> Ciip {
        assert_eq!(
            self.geometry, other.geometry,
            "CIIPs from different cache geometries cannot be merged"
        );
        Ciip::from_blocks(self.geometry, self.blocks().chain(other.blocks()))
    }
}

/// One non-zero per-set term of the Eq. 2 / Eq. 3 overlap bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapContribution {
    /// The cache set the term belongs to.
    pub set: SetIndex,
    /// `min(|m̂a,r|, |m̂b,r|, L)` for that set.
    pub lines: usize,
    /// Which argument of the `min` was binding.
    pub cap: rtobs::OverlapCap,
}

impl fmt::Display for Ciip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CIIP({} blocks over {} sets)", self.block_count(), self.subset_count())
    }
}

impl Extend<MemoryBlock> for Ciip {
    fn extend<T: IntoIterator<Item = MemoryBlock>>(&mut self, iter: T) {
        for block in iter {
            self.parts.entry(self.geometry.index_of_block(block)).or_default().insert(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::example2()
    }

    /// Paper Example 3: M = {0x000, 0x100, 0x010, 0x110, 0x210}.
    fn example3() -> Ciip {
        Ciip::from_addrs(geom(), [0x000u64, 0x100, 0x010, 0x110, 0x210])
    }

    #[test]
    fn example3_partition_shape() {
        let m = example3();
        assert_eq!(m.subset_count(), 2);
        assert_eq!(m.block_count(), 5);
        assert_eq!(m.subset_len(SetIndex::new(0)), 2);
        assert_eq!(m.subset_len(SetIndex::new(1)), 3);
        assert_eq!(m.subset_len(SetIndex::new(2)), 0);
        assert!(m.subset(SetIndex::new(5)).is_none());
    }

    #[test]
    fn example4_overlap_bound_is_four() {
        // Paper Example 4: M1 as Example 3, M2 = {0x200, 0x310, 0x410, 0x510}.
        let m1 = example3();
        let m2 = Ciip::from_addrs(geom(), [0x200u64, 0x310, 0x410, 0x510]);
        // Set 0: min(2, 1, 4) = 1; set 1: min(3, 3, 4) = 3; total 4.
        assert_eq!(m1.overlap_bound(&m2), 4);
        assert_eq!(m2.overlap_bound(&m1), 4, "bound is symmetric");
    }

    #[test]
    fn overlap_contributions_match_the_bound_and_name_the_cap() {
        let m1 = example3();
        let m2 = Ciip::from_addrs(geom(), [0x200u64, 0x310, 0x410, 0x510]);
        let contributions = m1.overlap_contributions(&m2);
        let total: usize = contributions.iter().map(|c| c.lines).sum();
        assert_eq!(total, m1.overlap_bound(&m2));
        // Set 0: min(2, 1, 4) = 1 capped by the preempting side;
        // set 1: min(3, 3, 4) = 3 capped by the (tied) preempted side.
        assert_eq!(
            contributions,
            vec![
                OverlapContribution {
                    set: SetIndex::new(0),
                    lines: 1,
                    cap: rtobs::OverlapCap::Preempting,
                },
                OverlapContribution {
                    set: SetIndex::new(1),
                    lines: 3,
                    cap: rtobs::OverlapCap::Preempted,
                },
            ]
        );
        // Direct-mapped: associativity saturates every non-empty set.
        let g = CacheGeometry::new(16, 1, 16).unwrap();
        let a = Ciip::from_addrs(g, [0x000u64, 0x100, 0x200]);
        let b = Ciip::from_addrs(g, [0x300u64, 0x400]);
        let caps: Vec<_> = a.overlap_contributions(&b).iter().map(|c| c.cap).collect();
        assert_eq!(caps, vec![rtobs::OverlapCap::Ways]);
    }

    #[test]
    fn overlap_bound_is_unchanged_by_an_installed_recorder() {
        let m1 = example3();
        let m2 = Ciip::from_addrs(geom(), [0x200u64, 0x310, 0x410, 0x510]);
        let plain = m1.overlap_bound(&m2);
        let session = rtobs::begin();
        assert_eq!(m1.overlap_bound(&m2), plain);
        let counters = session.recorder().counters();
        drop(session);
        let recorded: u64 = counters.overlap_sets.values().map(|t| t.contributed).sum();
        assert_eq!(recorded, plain as u64);
    }

    #[test]
    fn overlap_bound_caps_at_ways() {
        // Direct-mapped: L = 1 caps every set's contribution at 1.
        let g = CacheGeometry::new(16, 1, 16).unwrap();
        let a = Ciip::from_addrs(g, [0x000u64, 0x100, 0x200]);
        let b = Ciip::from_addrs(g, [0x300u64, 0x400]);
        assert_eq!(a.overlap_bound(&b), 1);
    }

    #[test]
    fn disjoint_indices_never_conflict() {
        let a = Ciip::from_addrs(geom(), [0x000u64, 0x100]);
        let b = Ciip::from_addrs(geom(), [0x010u64, 0x110]);
        assert_eq!(a.overlap_bound(&b), 0);
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn line_bound_counts_occupancy() {
        let m = example3();
        // Set 0 holds 2 lines, set 1 holds 3 (<= 4 ways): 5 lines total.
        assert_eq!(m.line_bound(), 5);
        // With 2 ways the same blocks occupy at most 2 + 2 = 4 lines.
        let g2 = CacheGeometry::new(16, 2, 16).unwrap();
        let m2 = Ciip::from_addrs(g2, [0x000u64, 0x100, 0x010, 0x110, 0x210]);
        assert_eq!(m2.line_bound(), 4);
    }

    #[test]
    fn intersection_and_union() {
        let a = Ciip::from_addrs(geom(), [0x000u64, 0x010, 0x020]);
        let b = Ciip::from_addrs(geom(), [0x010u64, 0x020, 0x030]);
        let i = a.intersection(&b);
        assert_eq!(i.block_count(), 2);
        let u = a.union(&b);
        assert_eq!(u.block_count(), 4);
        for blk in i.blocks() {
            assert!(a.contains(blk) && b.contains(blk));
        }
    }

    #[test]
    fn duplicates_collapse() {
        let m = Ciip::from_addrs(geom(), [0x000u64, 0x001, 0x00f, 0x000]);
        assert_eq!(m.block_count(), 1);
    }

    #[test]
    fn extend_adds_blocks() {
        let mut m = Ciip::empty(geom());
        assert!(m.is_empty());
        m.extend([MemoryBlock::new(0), MemoryBlock::new(1)]);
        assert_eq!(m.block_count(), 2);
    }

    #[test]
    #[should_panic(expected = "different cache geometries")]
    fn geometry_mismatch_panics() {
        let a = Ciip::empty(geom());
        let b = Ciip::empty(CacheGeometry::new(32, 4, 16).unwrap());
        let _ = a.overlap_bound(&b);
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(example3().to_string(), "CIIP(5 blocks over 2 sets)");
    }

    #[test]
    fn occupancy_histogram_partitions_the_sets() {
        let m = example3();
        let h = m.occupancy_histogram();
        assert_eq!(h, vec![14, 0, 1, 1]);
        assert_eq!(h.iter().sum::<u32>(), m.geometry().sets());
        assert_eq!(m.max_set_pressure(), 3);
        let empty = Ciip::empty(geom());
        assert_eq!(empty.occupancy_histogram(), vec![16]);
        assert_eq!(empty.max_set_pressure(), 0);
    }
}
