//! A two-level cache hierarchy (L1 + L2) — the paper's stated future
//! work ("we plan to expand our analysis approach for systems with more
//! than two-level memory hierarchy", §IX).
//!
//! The model is a non-inclusive lookup hierarchy: every access probes L1;
//! on an L1 miss the L2 is probed; on an L2 miss both levels fill. L2
//! recency is only updated by L1 misses, as in real hardware.

use std::fmt;

use crate::{CacheGeometry, CacheSim, GeometryError, MemoryBlock, ReplacementPolicy};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelOutcome {
    /// Satisfied by the L1.
    L1Hit,
    /// Missed L1, satisfied by the L2.
    L2Hit,
    /// Missed both levels (memory access).
    MemMiss,
}

impl LevelOutcome {
    /// `true` unless the access hit in L1.
    pub const fn is_l1_miss(self) -> bool {
        !matches!(self, LevelOutcome::L1Hit)
    }

    /// `true` if main memory was accessed.
    pub const fn is_mem_miss(self) -> bool {
        matches!(self, LevelOutcome::MemMiss)
    }
}

/// Errors from [`CacheHierarchy::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// L1 and L2 must share a line size (no sectoring).
    LineSizeMismatch {
        /// L1 line bytes.
        l1: u32,
        /// L2 line bytes.
        l2: u32,
    },
    /// The L2 must be at least as large as the L1.
    L2SmallerThanL1,
    /// An underlying geometry was invalid.
    Geometry(GeometryError),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::LineSizeMismatch { l1, l2 } => {
                write!(f, "L1 ({l1} B) and L2 ({l2} B) line sizes must match")
            }
            HierarchyError::L2SmallerThanL1 => write!(f, "L2 must be at least as large as L1"),
            HierarchyError::Geometry(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HierarchyError {}

impl From<GeometryError> for HierarchyError {
    fn from(e: GeometryError) -> Self {
        HierarchyError::Geometry(e)
    }
}

/// An executable L1 + L2 hierarchy.
///
/// ```
/// use rtcache::{CacheGeometry, CacheHierarchy, LevelOutcome};
///
/// # fn main() -> Result<(), rtcache::HierarchyError> {
/// let l1 = CacheGeometry::new(2, 1, 16)?;
/// let l2 = CacheGeometry::new(8, 2, 16)?;
/// let mut h = CacheHierarchy::new(l1, l2)?;
/// assert_eq!(h.access(0x000), LevelOutcome::MemMiss);
/// assert_eq!(h.access(0x000), LevelOutcome::L1Hit);
/// // Evict from the tiny L1 (same set), then re-touch: the L2 holds it.
/// h.access(0x020);
/// h.access(0x040);
/// assert_eq!(h.access(0x000), LevelOutcome::L2Hit);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheSim,
    l2: CacheSim,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy with LRU at both levels.
    ///
    /// # Errors
    ///
    /// Returns a [`HierarchyError`] if the line sizes differ or the L2 is
    /// smaller than the L1.
    pub fn new(l1: CacheGeometry, l2: CacheGeometry) -> Result<Self, HierarchyError> {
        CacheHierarchy::with_policy(l1, l2, ReplacementPolicy::Lru)
    }

    /// Creates an empty hierarchy with the given replacement policy at
    /// both levels.
    ///
    /// # Errors
    ///
    /// Returns a [`HierarchyError`] if the line sizes differ or the L2 is
    /// smaller than the L1.
    pub fn with_policy(
        l1: CacheGeometry,
        l2: CacheGeometry,
        policy: ReplacementPolicy,
    ) -> Result<Self, HierarchyError> {
        if l1.line_bytes() != l2.line_bytes() {
            return Err(HierarchyError::LineSizeMismatch {
                l1: l1.line_bytes(),
                l2: l2.line_bytes(),
            });
        }
        if l2.size_bytes() < l1.size_bytes() {
            return Err(HierarchyError::L2SmallerThanL1);
        }
        Ok(CacheHierarchy {
            l1: CacheSim::with_policy(l1, policy),
            l2: CacheSim::with_policy(l2, policy),
        })
    }

    /// Accesses the block containing `addr`.
    pub fn access(&mut self, addr: u64) -> LevelOutcome {
        self.access_block(self.l1.geometry().block_of_addr(addr))
    }

    /// Accesses a memory block.
    pub fn access_block(&mut self, block: MemoryBlock) -> LevelOutcome {
        if self.l1.access_block(block).is_hit() {
            return LevelOutcome::L1Hit;
        }
        if self.l2.access_block(block).is_hit() {
            LevelOutcome::L2Hit
        } else {
            LevelOutcome::MemMiss
        }
    }

    /// The L1 simulator (e.g. for snapshots).
    pub fn l1(&self) -> &CacheSim {
        &self.l1
    }

    /// The L2 simulator.
    pub fn l2(&self) -> &CacheSim {
        &self.l2
    }

    /// Invalidates both levels.
    pub fn invalidate_all(&mut self) {
        self.l1.invalidate_all();
        self.l2.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(
            CacheGeometry::new(2, 1, 16).unwrap(),
            CacheGeometry::new(8, 2, 16).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn miss_fills_both_levels() {
        let mut h = hierarchy();
        assert_eq!(h.access(0x00), LevelOutcome::MemMiss);
        assert!(h.l1().is_resident(h.l1().geometry().block_of_addr(0x00)));
        assert!(h.l2().is_resident(h.l2().geometry().block_of_addr(0x00)));
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = hierarchy();
        h.access(0x00);
        h.access(0x20); // same L1 set (2 sets), evicts 0x00 from L1
        assert_eq!(h.access(0x00), LevelOutcome::L2Hit);
    }

    #[test]
    fn l2_hits_do_not_touch_memory() {
        let mut h = hierarchy();
        // Thrash the direct-mapped L1 set 0 with three blocks; all stay in
        // the 8-set 2-way L2 (different L2 sets).
        for _ in 0..3 {
            for addr in [0x000u64, 0x020, 0x040] {
                h.access(addr);
            }
        }
        let mem_misses = h.l2().stats().misses;
        assert_eq!(mem_misses, 3, "each block fetched from memory exactly once");
    }

    #[test]
    fn l2_recency_updated_only_on_l1_miss() {
        let mut h = hierarchy();
        h.access(0x00);
        // 100 L1 hits on 0x00 leave the L2 untouched after the first fill.
        for _ in 0..100 {
            assert_eq!(h.access(0x00), LevelOutcome::L1Hit);
        }
        assert_eq!(h.l2().stats().accesses, 1);
    }

    #[test]
    fn rejects_mismatched_lines_and_small_l2() {
        let a = CacheGeometry::new(2, 1, 16).unwrap();
        let b = CacheGeometry::new(8, 2, 32).unwrap();
        assert!(matches!(CacheHierarchy::new(a, b), Err(HierarchyError::LineSizeMismatch { .. })));
        let tiny = CacheGeometry::new(1, 1, 16).unwrap();
        assert!(matches!(CacheHierarchy::new(a, tiny), Err(HierarchyError::L2SmallerThanL1)));
    }

    #[test]
    fn outcome_predicates() {
        assert!(!LevelOutcome::L1Hit.is_l1_miss());
        assert!(LevelOutcome::L2Hit.is_l1_miss());
        assert!(!LevelOutcome::L2Hit.is_mem_miss());
        assert!(LevelOutcome::MemMiss.is_mem_miss());
    }

    #[test]
    fn error_display() {
        let e = HierarchyError::LineSizeMismatch { l1: 16, l2: 32 };
        assert!(e.to_string().contains("line sizes"));
        assert!(HierarchyError::L2SmallerThanL1.to_string().contains("at least as large"));
    }
}
