//! Cache geometry and the tag/index/offset address split.

use std::fmt;

/// A line-sized, line-aligned block of memory, identified by its block
/// number (`address >> offset_bits`).
///
/// The paper (Example 2) notes that every cache operation is performed on
/// whole memory blocks: loading one byte pulls in the full surrounding
/// block. This newtype keeps block numbers distinct from raw byte
/// addresses ([C-NEWTYPE]).
///
/// ```
/// use rtcache::{CacheGeometry, MemoryBlock};
///
/// # fn main() -> Result<(), rtcache::GeometryError> {
/// let geom = CacheGeometry::new(16, 4, 16)?;
/// let block = geom.block_of_addr(0x011);
/// assert_eq!(block, MemoryBlock::new(1));
/// assert_eq!(geom.base_addr_of_block(block), 0x010);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MemoryBlock(u64);

impl MemoryBlock {
    /// Creates a block from its block number.
    pub const fn new(number: u64) -> Self {
        MemoryBlock(number)
    }

    /// The block number (`address >> offset_bits`).
    pub const fn number(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MemoryBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{:#x}", self.0)
    }
}

impl fmt::LowerHex for MemoryBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<MemoryBlock> for u64 {
    fn from(b: MemoryBlock) -> u64 {
        b.0
    }
}

/// The index of a cache set, `0 ..= sets - 1` (paper §III-A: "the sets in a
/// cache are indexed sequentially, starting from 0").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SetIndex(u32);

impl SetIndex {
    /// Creates a set index.
    pub const fn new(index: u32) -> Self {
        SetIndex(index)
    }

    /// The raw index value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index as a `usize`, for indexing per-set tables.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SetIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cs({})", self.0)
    }
}

/// Errors from [`CacheGeometry::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// The number of sets must be a non-zero power of two so the index can
    /// be carved out of the address bits.
    SetsNotPowerOfTwo(u32),
    /// At least one way is required.
    ZeroWays,
    /// The line size must be a power of two of at least 4 bytes (one
    /// instruction word).
    BadLineBytes(u32),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::SetsNotPowerOfTwo(n) => {
                write!(f, "number of cache sets must be a power of two, got {n}")
            }
            GeometryError::ZeroWays => write!(f, "cache must have at least one way"),
            GeometryError::BadLineBytes(n) => {
                write!(f, "line size must be a power of two >= 4 bytes, got {n}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Geometry of a set-associative cache: number of sets, number of ways
/// (lines per set) and line size in bytes (paper §III-A).
///
/// A direct-mapped cache is the special case `ways == 1`. The geometry
/// defines the split of a byte address into tag / index / offset (Fig. 2)
/// and the mapping from addresses to [`MemoryBlock`]s and [`SetIndex`]es.
///
/// ```
/// use rtcache::CacheGeometry;
///
/// # fn main() -> Result<(), rtcache::GeometryError> {
/// // The paper's experimental cache: 32 KiB, 4-way, 16-byte lines.
/// let geom = CacheGeometry::new(512, 4, 16)?;
/// assert_eq!(geom.size_bytes(), 32 * 1024);
/// assert_eq!(geom.total_lines(), 2048);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
    line_bytes: u32,
    offset_bits: u32,
    index_bits: u32,
}

impl CacheGeometry {
    /// Creates a geometry with `sets` cache sets, `ways` lines per set and
    /// `line_bytes` bytes per line.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if `sets` is not a power of two, `ways` is
    /// zero, or `line_bytes` is not a power of two of at least 4.
    pub fn new(sets: u32, ways: u32, line_bytes: u32) -> Result<Self, GeometryError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo(sets));
        }
        if ways == 0 {
            return Err(GeometryError::ZeroWays);
        }
        if line_bytes < 4 || !line_bytes.is_power_of_two() {
            return Err(GeometryError::BadLineBytes(line_bytes));
        }
        Ok(CacheGeometry {
            sets,
            ways,
            line_bytes,
            offset_bits: line_bytes.trailing_zeros(),
            index_bits: sets.trailing_zeros(),
        })
    }

    /// The paper's experimental L1 cache: 32 KiB, 4-way set associative,
    /// 16-byte lines (512 sets, 2048 lines total).
    pub fn paper_l1() -> Self {
        CacheGeometry::new(512, 4, 16).expect("paper cache geometry is valid")
    }

    /// The 1 KiB 4-way cache of the paper's Example 2 (16 sets).
    pub fn example2() -> Self {
        CacheGeometry::new(16, 4, 16).expect("example 2 geometry is valid")
    }

    /// Number of cache sets (`N` in the paper).
    pub const fn sets(&self) -> u32 {
        self.sets
    }

    /// Number of ways, i.e. lines per set (`L` in the paper).
    pub const fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub const fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Total cache capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes as u64
    }

    /// Total number of cache lines (`sets * ways`).
    pub const fn total_lines(&self) -> u64 {
        self.sets as u64 * self.ways as u64
    }

    /// Number of address bits consumed by the intra-line offset.
    pub const fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Number of address bits consumed by the set index.
    pub const fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// The memory block containing byte address `addr`.
    pub const fn block_of_addr(&self, addr: u64) -> MemoryBlock {
        MemoryBlock(addr >> self.offset_bits)
    }

    /// The first byte address of memory block `block`.
    pub const fn base_addr_of_block(&self, block: MemoryBlock) -> u64 {
        block.0 << self.offset_bits
    }

    /// `idx(a)`: the cache set a byte address maps to (paper §III-A).
    pub const fn index_of_addr(&self, addr: u64) -> SetIndex {
        self.index_of_block(self.block_of_addr(addr))
    }

    /// The cache set a memory block maps to.
    pub const fn index_of_block(&self, block: MemoryBlock) -> SetIndex {
        SetIndex((block.0 & (self.sets as u64 - 1)) as u32)
    }

    /// The tag of a memory block (the block number with the index bits
    /// stripped).
    pub const fn tag_of_block(&self, block: MemoryBlock) -> u64 {
        block.0 >> self.index_bits
    }

    /// Iterates over all set indices `0 .. sets`.
    pub fn set_indices(&self) -> impl Iterator<Item = SetIndex> {
        (0..self.sets).map(SetIndex)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B {}-way cache ({} sets x {} B lines)",
            self.size_bytes(),
            self.ways,
            self.sets,
            self.line_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example2_split() {
        // Example 2: 4-way, 16 B lines, 1 KiB => 16 sets, max index 15.
        let g = CacheGeometry::example2();
        assert_eq!(g.sets(), 16);
        assert_eq!(g.offset_bits(), 4);
        assert_eq!(g.index_bits(), 4);
        // Address 0x011 sits in the block starting at 0x010, index 1.
        assert_eq!(g.block_of_addr(0x011), MemoryBlock::new(1));
        assert_eq!(g.base_addr_of_block(MemoryBlock::new(1)), 0x010);
        assert_eq!(g.index_of_addr(0x011), SetIndex::new(1));
        assert_eq!(g.index_of_addr(0x010), SetIndex::new(1));
        assert_eq!(g.index_of_addr(0x01f), SetIndex::new(1));
        assert_eq!(g.index_of_addr(0x000), SetIndex::new(0));
    }

    #[test]
    fn paper_example3_indices() {
        // Example 3: 0x000 and 0x100 share index 0; 0x010, 0x110, 0x210
        // share index 1 in the Example 2 cache.
        let g = CacheGeometry::example2();
        assert_eq!(g.index_of_addr(0x000), g.index_of_addr(0x100));
        assert_eq!(g.index_of_addr(0x000).as_u32(), 0);
        for a in [0x010u64, 0x110, 0x210] {
            assert_eq!(g.index_of_addr(a).as_u32(), 1);
        }
        // ...but their tags differ, so they conflict rather than alias.
        let b1 = g.block_of_addr(0x010);
        let b2 = g.block_of_addr(0x110);
        assert_ne!(g.tag_of_block(b1), g.tag_of_block(b2));
    }

    #[test]
    fn paper_l1_dimensions() {
        let g = CacheGeometry::paper_l1();
        assert_eq!(g.size_bytes(), 32 * 1024);
        assert_eq!(g.total_lines(), 2048);
        assert_eq!(g.sets(), 512);
        assert_eq!(g.ways(), 4);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert_eq!(CacheGeometry::new(3, 4, 16).unwrap_err(), GeometryError::SetsNotPowerOfTwo(3));
        assert_eq!(CacheGeometry::new(0, 4, 16).unwrap_err(), GeometryError::SetsNotPowerOfTwo(0));
        assert_eq!(CacheGeometry::new(16, 0, 16).unwrap_err(), GeometryError::ZeroWays);
        assert_eq!(CacheGeometry::new(16, 4, 12).unwrap_err(), GeometryError::BadLineBytes(12));
        assert_eq!(CacheGeometry::new(16, 4, 2).unwrap_err(), GeometryError::BadLineBytes(2));
    }

    #[test]
    fn direct_mapped_is_one_way() {
        let g = CacheGeometry::new(64, 1, 32).unwrap();
        assert_eq!(g.ways(), 1);
        assert_eq!(g.total_lines(), 64);
    }

    #[test]
    fn block_addr_round_trip() {
        let g = CacheGeometry::paper_l1();
        for addr in [0u64, 0x11, 0x8000, 0xffff_fff3, 0x1_0000_0000] {
            let b = g.block_of_addr(addr);
            let base = g.base_addr_of_block(b);
            assert!(base <= addr && addr < base + u64::from(g.line_bytes()));
        }
    }

    #[test]
    fn display_formats() {
        let g = CacheGeometry::example2();
        assert_eq!(g.to_string(), "1024 B 4-way cache (16 sets x 16 B lines)");
        assert_eq!(MemoryBlock::new(0x1f).to_string(), "blk#0x1f");
        assert_eq!(SetIndex::new(3).to_string(), "cs(3)");
        assert_eq!(format!("{:x}", MemoryBlock::new(255)), "ff");
    }

    #[test]
    fn error_display() {
        let e = GeometryError::SetsNotPowerOfTwo(5);
        assert!(e.to_string().contains("power of two"));
        assert!(GeometryError::ZeroWays.to_string().contains("one way"));
        assert!(GeometryError::BadLineBytes(3).to_string().contains("line size"));
    }
}
