//! Set-associative cache modelling for real-time timing analysis.
//!
//! This crate provides the cache substrate of the Tan & Mooney (DATE 2004)
//! WCRT reproduction:
//!
//! * [`CacheGeometry`] — the (sets, ways, line size) description of a cache
//!   and the tag/index/offset split of a memory address (paper §III-A,
//!   Fig. 2).
//! * [`MemoryBlock`] — a line-sized, line-aligned block of memory; the unit
//!   every cache operation works on (paper Example 2).
//! * [`CacheSim`] — an executable cache with pluggable replacement
//!   ([`ReplacementPolicy`]), hit/miss/eviction accounting and snapshots.
//!   This is the ground-truth model used by the scheduler co-simulation.
//! * [`Ciip`] — the *Cache Index Induced Partition* of a memory-block set
//!   (paper Definition 3) together with the per-set conflict bound
//!   `S(Ma, Mb) = Σ_r min(|m̂a,r|, |m̂b,r|, L)` of Eq. 2/3.
//! * [`PackedFootprint`] — the same footprint flattened to one saturated
//!   byte per cache set, turning the Eq. 2/3 bound into a dense min-sum
//!   for the hot CRPD inner loop.
//!
//! # Example
//!
//! The cache of the paper's Example 2: 4-way set associative, 16-byte
//! lines, 1 KiB total (16 sets).
//!
//! ```
//! use rtcache::{CacheGeometry, CacheSim};
//!
//! # fn main() -> Result<(), rtcache::GeometryError> {
//! let geom = CacheGeometry::new(16, 4, 16)?;
//! assert_eq!(geom.size_bytes(), 1024);
//! assert_eq!(geom.index_of_addr(0x011).as_u32(), 1);
//!
//! let mut cache = CacheSim::new(geom);
//! assert!(cache.access(0x011).is_miss()); // cold
//! assert!(cache.access(0x01f).is_hit());  // same 16-byte block
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ciip;
mod geometry;
mod hierarchy;
mod packed;
mod replacement;
mod sim;

pub use ciip::{Ciip, OverlapContribution};
pub use geometry::{CacheGeometry, GeometryError, MemoryBlock, SetIndex};
pub use hierarchy::{CacheHierarchy, HierarchyError, LevelOutcome};
pub use packed::PackedFootprint;
pub use replacement::ReplacementPolicy;
pub use sim::{AccessOutcome, CacheSim, CacheSnapshot, CacheStats};
