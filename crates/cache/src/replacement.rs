//! Cache line replacement policies.

use std::fmt;

/// A cache line replacement policy.
///
/// The paper assumes LRU (§III-A: "we assume that LRU algorithm is used for
/// cache line replacement. However, our approach can also be applied to the
/// caches with other replacement algorithms with minor modifications").
/// FIFO and tree-based pseudo-LRU are provided so the ablation benches can
/// measure how far measured response times move under other policies while
/// the analysis keeps its LRU-based bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used: evict the line whose last access is oldest.
    #[default]
    Lru,
    /// First-in-first-out: evict the line that was filled earliest,
    /// regardless of hits.
    Fifo,
    /// Tree-based pseudo-LRU (requires a power-of-two way count; falls back
    /// to LRU otherwise).
    PseudoLru,
}

impl ReplacementPolicy {
    /// All supported policies, for sweeps.
    pub const ALL: [ReplacementPolicy; 3] =
        [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::PseudoLru];
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::PseudoLru => "PLRU",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::PseudoLru.to_string(), "PLRU");
    }
}
