//! An executable set-associative cache with accounting and snapshots.

use std::collections::BTreeSet;
use std::fmt;

use crate::{CacheGeometry, MemoryBlock, ReplacementPolicy, SetIndex};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was already resident.
    Hit,
    /// The block was filled; `evicted` is the block that was displaced, if
    /// the set was full.
    Miss {
        /// Block evicted to make room, if any.
        evicted: Option<MemoryBlock>,
    },
}

impl AccessOutcome {
    /// `true` if the access hit.
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// `true` if the access missed.
    pub const fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// The evicted block, if this was a miss that displaced a line.
    pub const fn evicted(self) -> Option<MemoryBlock> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => evicted,
        }
    }
}

/// Running hit/miss/eviction counters of a [`CacheSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled a line).
    pub misses: u64,
    /// Misses that displaced a valid line.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses, {} evictions ({:.1}% hit rate)",
            self.accesses,
            self.hits,
            self.misses,
            self.evictions,
            self.hit_rate() * 100.0
        )
    }
}

/// Per-set state: fixed way slots plus recency/fill metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SetState {
    lines: Vec<Option<MemoryBlock>>,
    /// Global access counter value of the most recent touch, per way.
    last_used: Vec<u64>,
    /// Global access counter value of the fill, per way.
    filled_at: Vec<u64>,
    /// Tree bits for pseudo-LRU (one bit per internal tree node).
    plru_bits: u64,
}

impl SetState {
    fn new(ways: u32) -> Self {
        SetState {
            lines: vec![None; ways as usize],
            last_used: vec![0; ways as usize],
            filled_at: vec![0; ways as usize],
            plru_bits: 0,
        }
    }

    fn find(&self, block: MemoryBlock) -> Option<usize> {
        self.lines.iter().position(|l| *l == Some(block))
    }

    /// Walks the PLRU tree bits toward the pseudo-least-recently-used leaf.
    fn plru_victim(&self) -> usize {
        let ways = self.lines.len();
        let mut node = 0usize; // root of the implicit binary tree
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let bit = (self.plru_bits >> node) & 1;
            let mid = (lo + hi) / 2;
            // bit == 0 means "go left next time", so the victim is on the
            // side the bit points to.
            if bit == 0 {
                hi = mid;
                node = 2 * node + 1;
            } else {
                lo = mid;
                node = 2 * node + 2;
            }
        }
        lo
    }

    /// Flips the PLRU tree bits along the path to `way` so the tree points
    /// away from it.
    fn plru_touch(&mut self, way: usize) {
        let ways = self.lines.len();
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed the left half: point the bit right (1).
                self.plru_bits |= 1 << node;
                hi = mid;
                node = 2 * node + 1;
            } else {
                self.plru_bits &= !(1 << node);
                lo = mid;
                node = 2 * node + 2;
            }
        }
    }
}

/// An executable set-associative cache.
///
/// Used both by the WCET estimator (cold-cache path timing) and by the
/// scheduler co-simulation that measures actual response times (paper
/// Fig. 5). All operations are at [`MemoryBlock`] granularity; byte-address
/// entry points convert first.
///
/// ```
/// use rtcache::{CacheGeometry, CacheSim};
///
/// # fn main() -> Result<(), rtcache::GeometryError> {
/// let mut cache = CacheSim::new(CacheGeometry::new(2, 2, 16)?);
/// // Three blocks map to set 0 in a 2-set cache: 0x00, 0x40, 0x80.
/// cache.access(0x00);
/// cache.access(0x40);
/// let out = cache.access(0x80); // evicts the LRU block 0x00
/// assert_eq!(out.evicted().map(|b| b.number()), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<SetState>,
    clock: u64,
    stats: CacheStats,
    /// Per-set counters, allocated only while an `rtobs` recorder is
    /// installed at construction time. Pure diagnostics: nothing in the
    /// analysis reads them back, so presence or absence cannot change a
    /// single output byte.
    set_stats: Option<Vec<CacheStats>>,
}

impl CacheSim {
    /// Creates an empty (all-invalid) cache with LRU replacement.
    pub fn new(geometry: CacheGeometry) -> Self {
        CacheSim::with_policy(geometry, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    pub fn with_policy(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        CacheSim {
            geometry,
            policy,
            sets: (0..geometry.sets()).map(|_| SetState::new(geometry.ways())).collect(),
            clock: 0,
            stats: CacheStats::default(),
            set_stats: rtobs::enabled()
                .then(|| vec![CacheStats::default(); geometry.sets() as usize]),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The replacement policy in effect.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        if let Some(per_set) = &mut self.set_stats {
            per_set.fill(CacheStats::default());
        }
    }

    /// Per-set statistics, present only when an `rtobs` recorder was
    /// installed when the simulator was created.
    pub fn set_stats(&self) -> Option<&[CacheStats]> {
        self.set_stats.as_deref()
    }

    /// Flushes the per-set counters (sets with activity only) into the
    /// installed `rtobs` recorder, if any. Call after a simulation pass;
    /// counters merge-add across flushes.
    pub fn flush_set_stats(&self) {
        let Some(per_set) = &self.set_stats else { return };
        for (idx, tally) in per_set.iter().enumerate() {
            if tally.accesses > 0 {
                rtobs::record_cache_set(idx as u32, tally.hits, tally.misses, tally.evictions);
            }
        }
    }

    /// Invalidates every line (cold cache) and clears recency state.
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            *set = SetState::new(self.geometry.ways());
        }
    }

    /// Accesses the block containing byte address `addr`.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.access_block(self.geometry.block_of_addr(addr))
    }

    /// Accesses a memory block directly.
    pub fn access_block(&mut self, block: MemoryBlock) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let idx = self.geometry.index_of_block(block).as_usize();
        let policy = self.effective_policy();
        if let Some(per_set) = &mut self.set_stats {
            per_set[idx].accesses += 1;
        }
        let set = &mut self.sets[idx];
        if let Some(way) = set.find(block) {
            self.stats.hits += 1;
            if let Some(per_set) = &mut self.set_stats {
                per_set[idx].hits += 1;
            }
            set.last_used[way] = self.clock;
            if policy == ReplacementPolicy::PseudoLru {
                set.plru_touch(way);
            }
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        if let Some(per_set) = &mut self.set_stats {
            per_set[idx].misses += 1;
        }
        // Prefer an invalid way; otherwise ask the policy for a victim.
        let way = match set.lines.iter().position(Option::is_none) {
            Some(w) => w,
            None => match policy {
                ReplacementPolicy::Lru => {
                    let (w, _) = set
                        .last_used
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .expect("ways >= 1");
                    w
                }
                ReplacementPolicy::Fifo => {
                    let (w, _) = set
                        .filled_at
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .expect("ways >= 1");
                    w
                }
                ReplacementPolicy::PseudoLru => set.plru_victim(),
            },
        };
        let evicted = set.lines[way];
        if evicted.is_some() {
            self.stats.evictions += 1;
            if let Some(per_set) = &mut self.set_stats {
                per_set[idx].evictions += 1;
            }
        }
        set.lines[way] = Some(block);
        set.last_used[way] = self.clock;
        set.filled_at[way] = self.clock;
        if policy == ReplacementPolicy::PseudoLru {
            set.plru_touch(way);
        }
        AccessOutcome::Miss { evicted }
    }

    /// PLRU needs a power-of-two way count; otherwise LRU semantics apply.
    fn effective_policy(&self) -> ReplacementPolicy {
        if self.policy == ReplacementPolicy::PseudoLru && !self.geometry.ways().is_power_of_two() {
            ReplacementPolicy::Lru
        } else {
            self.policy
        }
    }

    /// `true` if the block is currently resident.
    pub fn is_resident(&self, block: MemoryBlock) -> bool {
        let idx = self.geometry.index_of_block(block).as_usize();
        self.sets[idx].find(block).is_some()
    }

    /// The blocks currently resident in one set, most-recently-used first.
    pub fn set_contents(&self, index: SetIndex) -> Vec<MemoryBlock> {
        let set = &self.sets[index.as_usize()];
        let mut occupied: Vec<(u64, MemoryBlock)> = set
            .lines
            .iter()
            .enumerate()
            .filter_map(|(w, l)| l.map(|b| (set.last_used[w], b)))
            .collect();
        occupied.sort_by_key(|(age, _)| std::cmp::Reverse(*age));
        occupied.into_iter().map(|(_, b)| b).collect()
    }

    /// Captures the set of resident blocks per set.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            geometry: self.geometry,
            sets: self.sets.iter().map(|s| s.lines.iter().flatten().copied().collect()).collect(),
        }
    }
}

/// The resident blocks of a cache at one instant, per set.
///
/// Snapshots taken before and after a preemption let the co-simulation
/// count exactly which blocks of the preempted task were displaced —
/// the ground truth the paper's Eq. 2/3 bound is compared against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    geometry: CacheGeometry,
    sets: Vec<BTreeSet<MemoryBlock>>,
}

impl CacheSnapshot {
    /// The geometry the snapshot was taken under.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// `true` if `block` was resident when the snapshot was taken.
    pub fn is_resident(&self, block: MemoryBlock) -> bool {
        let idx = self.geometry.index_of_block(block).as_usize();
        self.sets[idx].contains(&block)
    }

    /// All resident blocks, in set order.
    pub fn blocks(&self) -> impl Iterator<Item = MemoryBlock> + '_ {
        self.sets.iter().flat_map(|s| s.iter().copied())
    }

    /// Number of valid lines.
    pub fn resident_count(&self) -> usize {
        self.sets.iter().map(BTreeSet::len).sum()
    }

    /// Blocks resident in `self` but no longer resident in `after`: the
    /// lines that were displaced between the two snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the two snapshots have different geometries.
    pub fn evicted_in(&self, after: &CacheSnapshot) -> BTreeSet<MemoryBlock> {
        assert_eq!(
            self.geometry, after.geometry,
            "snapshots from different cache geometries cannot be compared"
        );
        self.sets
            .iter()
            .zip(&after.sets)
            .flat_map(|(before, now)| before.difference(now).copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheGeometry {
        CacheGeometry::new(2, 2, 16).unwrap()
    }

    /// Block numbers that all map to set 0 of the 2-set cache.
    fn set0(n: u64) -> MemoryBlock {
        MemoryBlock::new(n * 2)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = CacheSim::new(small());
        assert!(c.access(0x00).is_miss());
        assert!(c.access(0x04).is_hit()); // same block
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = CacheSim::new(small());
        c.access_block(set0(0));
        c.access_block(set0(1));
        c.access_block(set0(0)); // block 0 now MRU
        let out = c.access_block(set0(2));
        assert_eq!(out.evicted(), Some(set0(1)));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut c = CacheSim::with_policy(small(), ReplacementPolicy::Fifo);
        c.access_block(set0(0));
        c.access_block(set0(1));
        c.access_block(set0(0)); // hit does not refresh FIFO order
        let out = c.access_block(set0(2));
        assert_eq!(out.evicted(), Some(set0(0)));
    }

    #[test]
    fn plru_four_way_basics() {
        let g = CacheGeometry::new(1, 4, 16).unwrap();
        let mut c = CacheSim::with_policy(g, ReplacementPolicy::PseudoLru);
        for n in 0..4 {
            assert!(c.access_block(MemoryBlock::new(n)).is_miss());
        }
        // All four resident; next distinct block must evict something.
        let out = c.access_block(MemoryBlock::new(4));
        assert!(out.evicted().is_some());
        // The just-filled block must be resident.
        assert!(c.is_resident(MemoryBlock::new(4)));
        // The most recently touched pre-existing block must survive one
        // eviction under tree-PLRU.
        let mut c = CacheSim::with_policy(g, ReplacementPolicy::PseudoLru);
        for n in 0..4 {
            c.access_block(MemoryBlock::new(n));
        }
        c.access_block(MemoryBlock::new(3)); // touch: tree points away
        let out = c.access_block(MemoryBlock::new(9));
        assert_ne!(out.evicted(), Some(MemoryBlock::new(3)));
    }

    #[test]
    fn set_isolation() {
        let mut c = CacheSim::new(small());
        // Fill set 0 far beyond capacity; set 1 must be untouched.
        for n in 0..10 {
            c.access_block(set0(n));
        }
        assert!(c.set_contents(SetIndex::new(1)).is_empty());
        assert_eq!(c.set_contents(SetIndex::new(0)).len(), 2);
    }

    #[test]
    fn set_contents_mru_order() {
        let mut c = CacheSim::new(small());
        c.access_block(set0(0));
        c.access_block(set0(1));
        assert_eq!(c.set_contents(SetIndex::new(0)), vec![set0(1), set0(0)]);
        c.access_block(set0(0));
        assert_eq!(c.set_contents(SetIndex::new(0)), vec![set0(0), set0(1)]);
    }

    #[test]
    fn snapshot_eviction_diff() {
        let mut c = CacheSim::new(small());
        c.access_block(set0(0));
        c.access_block(set0(1));
        let before = c.snapshot();
        assert_eq!(before.resident_count(), 2);
        assert!(before.is_resident(set0(0)));
        c.access_block(set0(2)); // evicts block 0 (LRU)
        let after = c.snapshot();
        let evicted = before.evicted_in(&after);
        assert_eq!(evicted.into_iter().collect::<Vec<_>>(), vec![set0(0)]);
    }

    #[test]
    #[should_panic(expected = "different cache geometries")]
    fn snapshot_geometry_mismatch_panics() {
        let a = CacheSim::new(small()).snapshot();
        let b = CacheSim::new(CacheGeometry::new(4, 2, 16).unwrap()).snapshot();
        let _ = a.evicted_in(&b);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = CacheSim::new(small());
        c.access(0x00);
        c.invalidate_all();
        assert_eq!(c.snapshot().resident_count(), 0);
        assert!(c.access(0x00).is_miss());
    }

    #[test]
    fn stats_display_and_rate() {
        let mut c = CacheSim::new(small());
        c.access(0x00);
        c.access(0x00);
        let s = c.stats();
        assert_eq!(s.hit_rate(), 0.5);
        assert!(s.to_string().contains("50.0% hit rate"));
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
