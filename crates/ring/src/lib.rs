//! A vendored, std-only consistent-hash ring for sharding content keys
//! across cluster nodes.
//!
//! Each node is projected onto a `u64` circle as `vnodes_per_node`
//! virtual nodes; a key is owned by the first virtual node at or after
//! its hash point (wrapping). Virtual nodes spread each physical node
//! around the circle so that adding or removing one node remaps only
//! about `1/N` of the key space instead of rehashing everything — the
//! property the ownership-stability proptest in this crate pins down.
//!
//! Two deliberate design points:
//!
//! - **Hashing is specified, not borrowed.** Ownership must agree across
//!   *processes* (every cluster node computes it independently), so the
//!   ring hashes with its own FNV-1a-64 + avalanche finish rather than
//!   `DefaultHasher`, whose algorithm is unspecified and may change
//!   between toolchains.
//! - **Position ties break by rendezvous hash.** If two virtual nodes of
//!   *different* physical nodes land on the same circle position (a
//!   64-bit collision — unlikely but possible), the owner among them is
//!   chosen by highest rendezvous score `hash(node, key)`, which is
//!   deterministic and independent of insertion order. Sort order alone
//!   would make ownership depend on the node list's permutation.
//!
//! The ring is immutable after construction and `Sync`; lookups are a
//! binary search plus (rarely) a bounded tie scan, no allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Virtual nodes per physical node. 64 keeps the expected per-node load
/// within a few percent of uniform for small clusters while the whole
/// ring for 16 nodes still fits in a couple of KiB.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, finished with a 64-bit avalanche mix
/// (splitmix64's finalizer) so nearby inputs — `node-0`, `node-1` … —
/// land far apart on the circle.
fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer: full avalanche, bijective.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Projects a 128-bit content key onto the ring circle.
fn hash_key(key: u128) -> u64 {
    hash_bytes(0x006b_6579, &key.to_le_bytes())
}

/// Rendezvous score of `(node, key)`: the tie-break orders candidate
/// owners by this, highest wins.
fn rendezvous(node: &str, key: u128) -> u64 {
    let mut bytes = Vec::with_capacity(node.len() + 16);
    bytes.extend_from_slice(node.as_bytes());
    bytes.extend_from_slice(&key.to_le_bytes());
    hash_bytes(0x7276, &bytes)
}

/// An immutable consistent-hash ring over a fixed set of named nodes.
///
/// Node names are usually `host:port` addresses; equality of the name
/// *is* identity on the ring, so every process that builds a ring from
/// the same (order-insensitive) name set computes identical ownership.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Node names, in the caller's declaration order. `owner` returns
    /// indices into this.
    nodes: Vec<String>,
    /// `(circle position, node index)`, sorted by position then index.
    vnodes: Vec<(u64, u32)>,
}

impl Ring {
    /// Builds a ring over `nodes` with [`DEFAULT_VNODES`] virtual nodes
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or contains a duplicate name.
    pub fn new<S: AsRef<str>>(nodes: &[S]) -> Ring {
        Ring::with_vnodes(nodes, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (tests use small
    /// counts to exercise tie handling).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, contains a duplicate name, or
    /// `vnodes_per_node` is zero.
    pub fn with_vnodes<S: AsRef<str>>(nodes: &[S], vnodes_per_node: usize) -> Ring {
        assert!(!nodes.is_empty(), "a ring needs at least one node");
        assert!(vnodes_per_node > 0, "vnodes_per_node must be positive");
        let nodes: Vec<String> = nodes.iter().map(|n| n.as_ref().to_string()).collect();
        for (i, n) in nodes.iter().enumerate() {
            assert!(!nodes[..i].contains(n), "duplicate ring node `{n}`");
        }
        let mut vnodes = Vec::with_capacity(nodes.len() * vnodes_per_node);
        for (index, name) in nodes.iter().enumerate() {
            for replica in 0..vnodes_per_node {
                let mut bytes = Vec::with_capacity(name.len() + 9);
                bytes.extend_from_slice(name.as_bytes());
                bytes.push(b'#');
                bytes.extend_from_slice(&(replica as u64).to_le_bytes());
                vnodes.push((hash_bytes(0x7672, &bytes), index as u32));
            }
        }
        vnodes.sort_unstable();
        Ring { nodes, vnodes }
    }

    /// The node names, in declaration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has exactly one node (it is never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The owning node's index (into [`Ring::nodes`]) for `key`.
    pub fn owner(&self, key: u128) -> usize {
        let point = hash_key(key);
        // First vnode at or after the key's point, wrapping at the top.
        let start = self.vnodes.partition_point(|&(pos, _)| pos < point) % self.vnodes.len();
        let (pos, index) = self.vnodes[start];
        // Bounded tie scan: successive vnodes sharing the successor
        // position compete by rendezvous score. Almost always a no-op.
        let ties = self.vnodes[start..].iter().take_while(|&&(p, _)| p == pos);
        let mut best = index;
        let mut best_score = rendezvous(&self.nodes[index as usize], key);
        for &(_, candidate) in ties.skip(1) {
            let score = rendezvous(&self.nodes[candidate as usize], key);
            if score > best_score || (score == best_score && candidate < best) {
                best = candidate;
                best_score = score;
            }
        }
        best as usize
    }

    /// The owning node's name for `key`.
    pub fn owner_name(&self, key: u128) -> &str {
        &self.nodes[self.owner(key)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7227")).collect()
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_panics() {
        let _ = Ring::new::<&str>(&[]);
    }

    #[test]
    #[should_panic(expected = "duplicate ring node")]
    fn duplicate_node_panics() {
        let _ = Ring::new(&["a", "a"]);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = Ring::new(&["solo:1"]);
        for key in 0..1000u128 {
            assert_eq!(ring.owner(key * 0x9e37_79b9_7f4a_7c15), 0);
        }
    }

    #[test]
    fn ownership_is_reproducible_across_ring_instances() {
        // Two independently built rings (same node set) must agree on
        // every key: this is the cross-process agreement contract.
        let a = Ring::new(&names(5));
        let b = Ring::new(&names(5));
        for key in 0..4096u128 {
            let key = key.wrapping_mul(0x1234_5678_9abc_def0_1111_2222_3333_4444);
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn load_is_roughly_uniform() {
        let ring = Ring::new(&names(4));
        let mut counts = [0usize; 4];
        let samples = 40_000u128;
        for key in 0..samples {
            counts[ring.owner(key.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_0c65_31b3_9c9d))] += 1;
        }
        let expect = samples as usize / 4;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "node {i} owns {c} of {samples} keys (expected ~{expect})"
            );
        }
    }

    #[test]
    fn position_ties_resolve_by_rendezvous_not_declaration_order() {
        // Same node set in two different declaration orders must agree
        // on ownership by *name* — including any positional ties, which
        // sort order alone would break differently per permutation.
        let fwd = Ring::with_vnodes(&names(6), 8);
        let mut reversed = names(6);
        reversed.reverse();
        let rev = Ring::with_vnodes(&reversed, 8);
        for key in 0..8192u128 {
            let key = key.wrapping_mul(0xdead_beef_cafe_f00d_0123_4567_89ab_cdef);
            assert_eq!(fwd.owner_name(key), rev.owner_name(key), "key {key:x}");
        }
    }

    proptest! {
        /// Adding one node to an N-node ring remaps roughly 1/(N+1) of
        /// the keys — the defining consistent-hashing property. The
        /// bound is generous (3x the ideal fraction) because small
        /// vnode counts wobble, but a modulo-style rehash would move
        /// ~N/(N+1) of the keys and fail by an order of magnitude.
        #[test]
        fn adding_a_node_remaps_about_one_nth(n in 2usize..8, seed in 0u64..1000) {
            let before = Ring::new(&names(n));
            let mut grown = names(n);
            grown.push("10.0.9.9:7227".to_string());
            let after = Ring::new(&grown);
            let samples = 4000u128;
            let mut moved = 0usize;
            for i in 0..samples {
                let key = (u128::from(seed) << 64 | i)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_0c65_31b3_9c9d);
                if before.owner_name(key) != after.owner_name(key) {
                    moved += 1;
                }
            }
            let ideal = samples as usize / (n + 1);
            prop_assert!(moved <= ideal * 3,
                "adding 1 node to {n} moved {moved}/{samples} keys (ideal ~{ideal})");
            // And removal is the mirror image: every moved key must now
            // be owned by the new node (keys never shuffle between
            // surviving nodes).
            for i in 0..samples {
                let key = (u128::from(seed) << 64 | i)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_0c65_31b3_9c9d);
                if before.owner_name(key) != after.owner_name(key) {
                    prop_assert_eq!(after.owner_name(key), "10.0.9.9:7227");
                }
            }
        }
    }
}
