//! Offline drop-in replacement for the subset of the [`criterion` 0.5 API]
//! this workspace's benches use.
//!
//! The build container has no registry access, so depending on the real
//! `criterion` crate would make even `cargo build --offline` fail at
//! dependency resolution. This crate is aliased to the `criterion` name in
//! the workspace manifest. It measures with [`std::time::Instant`] and a
//! doubling calibration loop (no statistics, no plots, no CLI filtering) —
//! enough to run the benches and print per-iteration wall time plus
//! throughput, while keeping them compiling against the upstream call
//! syntax.
//!
//! [`criterion` 0.5 API]: https://docs.rs/criterion/0.5

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum measurement window per benchmark. Short compared to upstream's
/// defaults on purpose: these benches are smoke-level, not statistical.
const TARGET_WINDOW: Duration = Duration::from_millis(200);

/// Top-level benchmark driver (API mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A named group of benchmarks sharing a throughput setting
/// (API mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how many elements/bytes one iteration processes, so results
    /// also report a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one_with_throughput(&label, f, self.throughput);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one_with_throughput(&label, |b| f(b, input), self.throughput);
        self
    }

    /// Ends the group. (Upstream consumes `self` here too.)
    pub fn finish(self) {}
}

/// Per-benchmark measurement handle (API mirror of `criterion::Bencher`).
pub struct Bencher {
    /// Mean wall time of one iteration of the most recent `iter` call.
    per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, doubling the iteration count until the measurement
    /// window is long enough to trust, then records the mean per-iteration
    /// time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: one untimed call so lazy initialisation and cold caches
        // don't land in the measured window.
        black_box(routine());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_WINDOW || iters >= 1 << 20 {
                self.per_iter = elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}

/// Units for rate reporting (API mirror of `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// One iteration processes this many logical elements.
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier inside a group (API mirror of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion into a benchmark label; lets group methods accept both
/// `&str` and [`BenchmarkId`], like upstream.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

fn run_one<F>(label: &str, f: F)
where
    F: FnMut(&mut Bencher),
{
    run_one_with_throughput(label, f, None);
}

fn run_one_with_throughput<F>(label: &str, mut f: F, throughput: Option<Throughput>)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { per_iter: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.per_iter;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("{label:<40} {per_iter:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("{label:<40} {per_iter:>12.2?}/iter  {rate:>14.0} B/s");
        }
        _ => println!("{label:<40} {per_iter:>12.2?}/iter"),
    }
}

/// Bundles benchmark functions into one runnable group function
/// (API mirror of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups
/// (API mirror of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("smoke/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("id", 128), &128u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter("param"), &8u64, |b, n| {
            b.iter(|| (0..*n).product::<u64>())
        });
        group.finish();
    }

    mod as_macro_target {
        use super::*;

        fn tiny(c: &mut Criterion) {
            c.bench_function("macro/tiny", |b| b.iter(|| 1u64 + 1));
        }

        criterion_group!(benches, tiny);

        #[test]
        fn group_macro_runs() {
            benches();
        }
    }
}
