//! The benchmark workloads — multi-segment, multi-KB programs — must
//! survive a disassemble/reassemble round trip and behave identically.

use rtprogram::asm::{assemble, disassemble};
use rtprogram::Simulator;

#[test]
fn all_workloads_round_trip_through_the_disassembler() {
    let programs = vec![
        rtworkloads::mobile_robot(),
        rtworkloads::edge_detection_with_dim(10),
        rtworkloads::ofdm_transmitter_with_points(16),
        rtworkloads::idct(),
        rtworkloads::adpcm_decoder(),
        rtworkloads::adpcm_encoder(),
        rtworkloads::context_switch(),
    ];
    for p in programs {
        let listing = disassemble(&p);
        let q = assemble(p.name(), &listing)
            .unwrap_or_else(|e| panic!("{}: reassembly failed: {e}", p.name()));
        assert_eq!(p.code(), q.code(), "{}", p.name());
        assert_eq!(p.entry(), q.entry(), "{}", p.name());
        assert_eq!(p.loop_bounds(), q.loop_bounds(), "{}", p.name());
        let p_data: Vec<(u64, &[i32])> =
            p.data_segments().iter().map(|s| (s.base, s.words.as_slice())).collect();
        let q_data: Vec<(u64, &[i32])> =
            q.data_segments().iter().map(|s| (s.base, s.words.as_slice())).collect();
        assert_eq!(p_data, q_data, "{}", p.name());
        // Identical traces (variants are lost in the listing, so compare
        // the default run only).
        let mut sp = Simulator::new(&p);
        let tp = sp.run_to_halt().expect("original runs");
        let mut sq = Simulator::new(&q);
        let tq = sq.run_to_halt().expect("reassembled runs");
        assert_eq!(tp.instructions, tq.instructions, "{}", p.name());
        assert_eq!(tp.accesses, tq.accesses, "{}", p.name());
    }
}
