//! OFDM — the transmitter task of Experiment I (paper Example 1).
//!
//! Models an OFDM modulator: 16-QAM symbol mapping, an N-point inverse DFT
//! with a twiddle table (fixed-point, scale 256), cyclic-prefix insertion
//! and output-energy accumulation. It is the largest task of Experiment I
//! and, having the lowest priority, the one whose WCRT the paper tracks.

use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::{InputVariant, Program};

use crate::layout;

/// Default number of subcarriers.
pub const POINTS: usize = 64;
/// Words in the transmit ring buffer (past frames kept for retransmit).
pub const RING_WORDS: usize = 768;
/// Cyclic prefix length.
pub const PREFIX: usize = 8;
/// 16-QAM amplitude levels (scaled by 64).
pub const QAM_LEVELS: [i32; 4] = [-192, -64, 64, 192];
/// Fixed-point scale of the twiddle table (2^8).
pub const TWIDDLE_SCALE: i32 = 256;

/// Twiddle factors `e^{i 2π k / n}` scaled by [`TWIDDLE_SCALE`].
pub fn twiddles(n: usize) -> (Vec<i32>, Vec<i32>) {
    let re = (0..n)
        .map(|k| {
            let th = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            (th.cos() * f64::from(TWIDDLE_SCALE)).round() as i32
        })
        .collect();
    let im = (0..n)
        .map(|k| {
            let th = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            (th.sin() * f64::from(TWIDDLE_SCALE)).round() as i32
        })
        .collect();
    (re, im)
}

/// Default input frame: one 4-bit symbol per subcarrier.
pub fn frame_a(n: usize) -> Vec<i32> {
    (0..n).map(|i| ((i * 5 + 3) % 16) as i32).collect()
}

/// Alternate input frame for the second variant.
pub fn frame_b(n: usize) -> Vec<i32> {
    (0..n).map(|i| ((i * 11 + 7) % 16) as i32).collect()
}

/// Integer reference model of the whole transmitter (tests compare the
/// simulated memory image against this bit-for-bit).
pub fn reference(symbols: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let n = symbols.len();
    let (tw_re, tw_im) = twiddles(n);
    let map_re: Vec<i32> = symbols.iter().map(|s| QAM_LEVELS[(s & 3) as usize]).collect();
    let map_im: Vec<i32> = symbols.iter().map(|s| QAM_LEVELS[((s >> 2) & 3) as usize]).collect();
    let mut out_re = vec![0i32; PREFIX + n];
    let mut out_im = vec![0i32; PREFIX + n];
    for k in 0..n {
        let (mut acc_re, mut acc_im) = (0i32, 0i32);
        for (j, (re, im)) in map_re.iter().zip(&map_im).enumerate() {
            let t = (k * j) & (n - 1);
            acc_re = acc_re
                .wrapping_add(re.wrapping_mul(tw_re[t]))
                .wrapping_sub(im.wrapping_mul(tw_im[t]));
            acc_im = acc_im
                .wrapping_add(re.wrapping_mul(tw_im[t]))
                .wrapping_add(im.wrapping_mul(tw_re[t]));
        }
        out_re[PREFIX + k] = acc_re >> 8;
        out_im[PREFIX + k] = acc_im >> 8;
    }
    for i in 0..PREFIX {
        out_re[i] = out_re[n + i];
        out_im[i] = out_im[n + i];
    }
    (out_re, out_im)
}

/// Builds the OFDM transmitter with the default [`POINTS`].
pub fn ofdm_transmitter() -> Program {
    ofdm_transmitter_with_points(POINTS)
}

/// Builds the OFDM transmitter with `n` subcarriers (`n` must be a power
/// of two so `k·j mod n` reduces to a mask).
///
/// Variants: `"frame_a"` and `"frame_b"`, two different symbol frames
/// (structurally the same path; the task has a single feasible path).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `n < PREFIX`.
pub fn ofdm_transmitter_with_points(n: usize) -> Program {
    assert!(n.is_power_of_two() && n >= PREFIX, "points must be a power of two >= PREFIX");
    assert!(2 * (PREFIX + n) <= RING_WORDS, "frame must fit in the transmit ring");
    let mut b = ProgramBuilder::new("ofdm", layout::OFDM_CODE, layout::OFDM_DATA);

    let syms = b.data_words("syms", &frame_a(n));
    let levels = b.data_words("levels", &QAM_LEVELS);
    let (tw_re_v, tw_im_v) = twiddles(n);
    let tw_re = b.data_words("tw_re", &tw_re_v);
    let tw_im = b.data_words("tw_im", &tw_im_v);
    let map_re = b.data_space("map_re", n);
    let map_im = b.data_space("map_im", n);
    let out_re = b.data_space("out_re", PREFIX + n);
    let out_im = b.data_space("out_im", PREFIX + n);
    let energy = b.data_space("energy", 1);
    let ring = b.data_space("ring", RING_WORDS);

    b.variant(InputVariant::named("frame_a"));
    let mut vb = InputVariant::named("frame_b");
    for (i, v) in frame_b(n).iter().enumerate() {
        vb = vb.with_write(syms + 4 * i as u64, *v);
    }
    b.variant(vb);

    b.li(R15, 2); // word-shift constant, live throughout

    // ---- 1. 16-QAM mapping ------------------------------------------------
    b.li_addr(R10, syms);
    b.li_addr(R11, levels);
    b.li_addr(R12, map_re);
    b.li_addr(R13, map_im);
    b.li(R14, 3); // level mask
    b.counted_loop(n as u32, R3, |b| {
        b.addi(R5, R3, -1); // i
        b.shl(R5, R5, R15); // 4*i
        b.add(R6, R10, R5);
        b.ld(R6, R6, 0); // s
        b.and(R7, R6, R14); // s & 3
        b.shl(R7, R7, R15);
        b.add(R7, R11, R7);
        b.ld(R7, R7, 0); // levels[s & 3]
        b.add(R8, R12, R5);
        b.st(R7, R8, 0);
        b.sra(R7, R6, R15); // s >> 2
        b.and(R7, R7, R14);
        b.shl(R7, R7, R15);
        b.add(R7, R11, R7);
        b.ld(R7, R7, 0);
        b.add(R8, R13, R5);
        b.st(R7, R8, 0);
    });

    // ---- 2. inverse DFT -----------------------------------------------------
    b.li_addr(R10, tw_re);
    b.li_addr(R11, tw_im);
    b.li(R14, (n - 1) as i32); // index mask
    b.counted_loop(n as u32, R2, |b| {
        b.li(R4, 0); // acc_re
        b.li(R5, 0); // acc_im
        b.counted_loop(n as u32, R3, |b| {
            b.addi(R6, R2, -1); // k
            b.addi(R7, R3, -1); // j
            b.mul(R6, R6, R7);
            b.and(R6, R6, R14); // t = (k*j) & (n-1)
            b.shl(R6, R6, R15);
            b.shl(R7, R7, R15); // 4*j
            b.add(R8, R10, R6);
            b.ld(R8, R8, 0); // wr
            b.add(R9, R11, R6);
            b.ld(R9, R9, 0); // wi
            b.li_addr(R6, map_re);
            b.add(R6, R6, R7);
            b.ld(R6, R6, 0); // re
            b.li_addr(R1, map_im);
            b.add(R7, R1, R7);
            b.ld(R7, R7, 0); // im
                             // acc_re += re*wr - im*wi
            b.mul(R1, R6, R8);
            b.add(R4, R4, R1);
            b.mul(R1, R7, R9);
            b.sub(R4, R4, R1);
            // acc_im += re*wi + im*wr
            b.mul(R1, R6, R9);
            b.add(R5, R5, R1);
            b.mul(R1, R7, R8);
            b.add(R5, R5, R1);
        });
        // out[PREFIX + k] = acc >> 8
        b.addi(R6, R2, -1);
        b.addi(R6, R6, PREFIX as i32);
        b.shl(R6, R6, R15);
        b.li(R7, 8);
        b.sra(R4, R4, R7);
        b.sra(R5, R5, R7);
        b.li_addr(R7, out_re);
        b.add(R7, R7, R6);
        b.st(R4, R7, 0);
        b.li_addr(R7, out_im);
        b.add(R7, R7, R6);
        b.st(R5, R7, 0);
    });

    // ---- 3. cyclic prefix: out[0..PREFIX] = out[n .. n+PREFIX] -----------
    b.li_addr(R10, out_re);
    b.li_addr(R11, out_im);
    b.counted_loop(PREFIX as u32, R3, |b| {
        b.addi(R5, R3, -1);
        b.shl(R5, R5, R15);
        b.add(R6, R10, R5);
        b.ld(R7, R6, 4 * n as i32);
        b.st(R7, R6, 0);
        b.add(R6, R11, R5);
        b.ld(R7, R6, 4 * n as i32);
        b.st(R7, R6, 0);
    });

    // ---- 3b. transmit ring: checksum the whole ring, then archive the
    // fresh frame (re/im interleaved) at its head.
    b.li_addr(R12, ring);
    b.li(R4, 0);
    b.counted_loop(RING_WORDS as u32, R3, |b| {
        b.ld(R5, R12, 0);
        b.add(R4, R4, R5);
        b.addi(R12, R12, 4);
    });
    b.li_addr(R12, ring);
    b.li_addr(R13, out_re);
    b.li_addr(R14, out_im);
    b.counted_loop((PREFIX + n) as u32, R3, |b| {
        b.ld(R5, R13, 0);
        b.st(R5, R12, 0);
        b.ld(R5, R14, 0);
        b.st(R5, R12, 4);
        b.addi(R12, R12, 8);
        b.addi(R13, R13, 4);
        b.addi(R14, R14, 4);
    });

    // ---- 4. output energy --------------------------------------------------
    b.li(R4, 0);
    b.li(R14, 6);
    b.counted_loop((PREFIX + n) as u32, R3, |b| {
        b.addi(R5, R3, -1);
        b.shl(R5, R5, R15);
        b.add(R6, R10, R5);
        b.ld(R6, R6, 0);
        b.mul(R6, R6, R6);
        b.add(R7, R11, R5);
        b.ld(R7, R7, 0);
        b.mul(R7, R7, R7);
        b.add(R6, R6, R7);
        b.sra(R6, R6, R14);
        b.add(R4, R4, R6);
    });
    b.li_addr(R6, energy);
    b.st(R4, R6, 0);

    b.build().expect("OFDM program is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::Simulator;

    fn run(variant: usize, n: usize) -> (Vec<i32>, Vec<i32>, i32) {
        let p = ofdm_transmitter_with_points(n);
        let v = p.variants()[variant].clone();
        let mut sim = Simulator::with_variant(&p, &v).unwrap();
        sim.run_to_halt().unwrap();
        let re_base = p.symbol("out_re").unwrap();
        let im_base = p.symbol("out_im").unwrap();
        let len = (PREFIX + n) as u64;
        let re = (0..len).map(|i| sim.memory().read(re_base + 4 * i).unwrap()).collect();
        let im = (0..len).map(|i| sim.memory().read(im_base + 4 * i).unwrap()).collect();
        let e = sim.memory().read(p.symbol("energy").unwrap()).unwrap();
        (re, im, e)
    }

    #[test]
    fn matches_reference_model_frame_a() {
        let n = 16;
        let (re, im, _) = run(0, n);
        let (want_re, want_im) = reference(&frame_a(n));
        assert_eq!(re, want_re);
        assert_eq!(im, want_im);
    }

    #[test]
    fn matches_reference_model_frame_b() {
        let n = 16;
        let (re, im, _) = run(1, n);
        let (want_re, want_im) = reference(&frame_b(n));
        assert_eq!(re, want_re);
        assert_eq!(im, want_im);
    }

    #[test]
    fn cyclic_prefix_mirrors_tail() {
        let n = 16;
        let (re, im, _) = run(0, n);
        assert_eq!(&re[..PREFIX], &re[n..n + PREFIX]);
        assert_eq!(&im[..PREFIX], &im[n..n + PREFIX]);
    }

    #[test]
    fn energy_is_positive() {
        let (_, _, e) = run(0, 16);
        assert!(e > 0, "modulated frame must carry energy, got {e}");
    }

    #[test]
    fn frames_produce_different_output() {
        let (a_re, _, _) = run(0, 16);
        let (b_re, _, _) = run(1, 16);
        assert_ne!(a_re, b_re);
    }

    #[test]
    fn default_size_is_biggest_exp1_task() {
        let p = ofdm_transmitter();
        let mut sim = Simulator::new(&p);
        let t = sim.run_to_halt().unwrap();
        assert!(t.instructions > 20_000, "got {}", t.instructions);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = ofdm_transmitter_with_points(24);
    }

    #[test]
    fn dft_of_dc_symbols_concentrates_at_k0() {
        // All-equal symbols => the IDFT has its peak at k = 0 (all twiddles
        // align) and near-zero elsewhere.
        let n = 16;
        let p = ofdm_transmitter_with_points(n);
        let mut v = InputVariant::named("dc");
        let syms = p.symbol("syms").unwrap();
        for i in 0..n as u64 {
            v = v.with_write(syms + 4 * i, 5);
        }
        let mut sim = Simulator::with_variant(&p, &v).unwrap();
        sim.run_to_halt().unwrap();
        let re_base = p.symbol("out_re").unwrap();
        let k0 = sim.memory().read(re_base + 4 * PREFIX as u64).unwrap();
        let k3 = sim.memory().read(re_base + 4 * (PREFIX as u64 + 3)).unwrap();
        assert!(k0.abs() > 10 * k3.abs().max(1), "k0={k0} k3={k3}");
    }
}
