//! The context-switch routine (paper Example 6).
//!
//! The paper measures the WCET of the Atalanta RTOS context switch with a
//! cold cache (1049 cycles on their ARM9 setup) and charges it twice per
//! preemption. This module provides the equivalent routine for TRISC-16:
//! store all sixteen registers of the outgoing task to its TCB save area,
//! then load all sixteen of the incoming task's. Its cold-cache WCET is
//! measured by `rtwcet` and used as `Ccs` in Eq. 7.

use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::isa::Reg;
use rtprogram::Program;

use crate::layout;

/// Builds the context-switch routine as a standalone measurable program.
pub fn context_switch() -> Program {
    let mut b = ProgramBuilder::new("ctxswitch", layout::CTX_CODE, layout::CTX_DATA);
    let tcb_old = b.data_space("tcb_old", 16);
    let tcb_new = b.data_words("tcb_new", &(0..16).map(|i| 1000 + i).collect::<Vec<i32>>());

    // Save the outgoing context. R15 is the last register stored, so it can
    // serve as the save-area pointer.
    b.li_addr(R15, tcb_old);
    for i in 0..16u8 {
        b.st(Reg::new(i), R15, 4 * i32::from(i));
    }
    // Restore the incoming context; R15 is loaded last.
    b.li_addr(R15, tcb_new);
    for i in 0..15u8 {
        b.ld(Reg::new(i), R15, 4 * i32::from(i));
    }
    // A real switch would jump through the restored pc; the standalone
    // measurement ends here (the final `ld r15` would clobber the base, so
    // load it through r14 which already holds its final value's slot).
    b.ld(R14, R15, 4 * 15);

    b.build().expect("context switch routine is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::{AccessKind, Simulator};

    #[test]
    fn saves_and_restores_all_registers() {
        let p = context_switch();
        let mut sim = Simulator::new(&p);
        // Give the outgoing task a recognizable context.
        for i in 1..16u8 {
            sim.set_reg(Reg::new(i), 70 + i32::from(i));
        }
        sim.run_to_halt().unwrap();
        let old = p.symbol("tcb_old").unwrap();
        // r1..r14 were saved before anything clobbered them.
        for i in 1..15u64 {
            assert_eq!(sim.memory().read(old + 4 * i).unwrap(), 70 + i as i32);
        }
        // The incoming context is live in the registers.
        for i in 1..14u8 {
            assert_eq!(sim.reg(Reg::new(i)), 1000 + i32::from(i));
        }
    }

    #[test]
    fn touches_both_save_areas() {
        let p = context_switch();
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt().unwrap();
        let stores = trace.accesses.iter().filter(|a| a.kind == AccessKind::Store).count();
        let loads = trace.accesses.iter().filter(|a| a.kind == AccessKind::Load).count();
        assert_eq!(stores, 16);
        assert_eq!(loads, 16);
    }

    #[test]
    fn is_short_and_loop_free() {
        let p = context_switch();
        assert!(p.len() < 50);
        assert!(p.loop_bounds().is_empty());
    }
}
