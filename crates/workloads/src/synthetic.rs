//! Parameterized synthetic task programs.
//!
//! Property tests and ablation benches need many tasks with controllable
//! cache footprints and path structure; this module generates them
//! deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::isa::Cond;
use rtprogram::{InputVariant, Program};

/// Specification of a synthetic task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Program name.
    pub name: String,
    /// Code base address.
    pub code_base: u64,
    /// Data base address.
    pub data_base: u64,
    /// Size of the scanned data buffer in words.
    pub data_words: usize,
    /// Outer loop iterations.
    pub outer_iters: u32,
    /// Inner loop iterations per outer iteration.
    pub inner_iters: u32,
    /// Stride between touched words.
    pub stride_words: usize,
    /// If `true`, an input-selected branch scans either the lower or the
    /// upper half of the buffer (two feasible paths, two variants).
    pub two_paths: bool,
    /// Straight-line padding instructions inflating the code footprint.
    pub padding_instrs: usize,
    /// Seed for the buffer contents.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A small default spec at the given bases.
    pub fn new(name: impl Into<String>, code_base: u64, data_base: u64) -> Self {
        SyntheticSpec {
            name: name.into(),
            code_base,
            data_base,
            data_words: 256,
            outer_iters: 4,
            inner_iters: 32,
            stride_words: 2,
            two_paths: true,
            padding_instrs: 16,
            seed: 0xC0FFEE,
        }
    }

    /// The words one scan arm may touch (half the buffer when
    /// `two_paths`).
    fn scan_span(&self) -> usize {
        if self.two_paths {
            self.data_words / 2
        } else {
            self.data_words
        }
    }
}

/// Generates a synthetic task program from a spec.
///
/// The task scans its buffer with the configured stride inside a
/// `outer × inner` loop nest, accumulating and writing back every touched
/// word. With [`SyntheticSpec::two_paths`] the `"low"` and `"high"`
/// variants select disjoint halves of the buffer — a task pair built from
/// shifted `data_base`s then exercises every interesting CIIP overlap
/// case.
///
/// # Panics
///
/// Panics if the scan would leave the buffer
/// (`inner_iters * stride_words > scan span`) or the buffer is empty.
pub fn synthetic_task(spec: &SyntheticSpec) -> Program {
    assert!(spec.data_words > 0, "buffer must be non-empty");
    assert!(
        spec.inner_iters as usize * spec.stride_words <= spec.scan_span(),
        "scan of {}x{} words leaves the {}-word span",
        spec.inner_iters,
        spec.stride_words,
        spec.scan_span()
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new(spec.name.clone(), spec.code_base, spec.data_base);

    let selector = b.data_words("selector", &[0]);
    let buffer = b.data_words(
        "buffer",
        &(0..spec.data_words).map(|_| rng.random_range(-100..100)).collect::<Vec<i32>>(),
    );
    let result = b.data_space("result", 1);

    if spec.two_paths {
        b.variant(InputVariant::named("low").with_write(selector, 0));
        b.variant(InputVariant::named("high").with_write(selector, 1));
    }

    let stride = (4 * spec.stride_words) as i32;
    let scan = |b: &mut ProgramBuilder, base: u64| {
        b.li(R4, 0); // acc
        b.counted_loop(spec.outer_iters, R2, |b| {
            b.li_addr(R1, base);
            b.counted_loop(spec.inner_iters, R3, |b| {
                b.ld(R5, R1, 0);
                b.add(R4, R4, R5);
                b.xor(R5, R5, R4);
                b.st(R5, R1, 0);
                b.addi(R1, R1, stride);
            });
        });
        b.li_addr(R6, result);
        b.st(R4, R6, 0);
    };

    if spec.two_paths {
        let upper = buffer + 4 * (spec.data_words / 2) as u64;
        b.li_addr(R7, selector);
        b.ld(R7, R7, 0);
        b.if_else(Cond::Eq, R7, R0, |b| scan(b, buffer), |b| scan(b, upper));
    } else {
        scan(&mut b, buffer);
    }

    // Straight-line padding to inflate the instruction-cache footprint.
    for i in 0..spec.padding_instrs {
        match i % 3 {
            0 => b.addi(R8, R8, 1),
            1 => b.xor(R9, R9, R8),
            _ => b.nop(),
        }
    }

    b.build().expect("synthetic program is well formed")
}

/// Generates a family of `count` mutually overlapping synthetic tasks,
/// highest priority first, with footprints shifted in cache-index space.
pub fn synthetic_task_set(count: usize, seed: u64) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut spec = SyntheticSpec::new(
                format!("syn{i}"),
                0x0003_0000 + 0x4000 * i as u64,
                0x0020_0000 + 0x4800 * i as u64, // 0x4800 % 0x2000 = 0x800 stagger
            );
            spec.data_words = 128 + 64 * i;
            spec.outer_iters = rng.random_range(2..6);
            spec.inner_iters = rng.random_range(8..32);
            spec.stride_words = rng.random_range(1..3);
            spec.seed = rng.random();
            // Keep the scan inside the buffer.
            let span = spec.data_words / 2;
            while spec.inner_iters as usize * spec.stride_words > span {
                spec.inner_iters /= 2;
            }
            synthetic_task(&spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::{AccessKind, Simulator};
    use std::collections::BTreeSet;

    #[test]
    fn runs_and_writes_result() {
        let spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        let p = synthetic_task(&spec);
        let mut sim = Simulator::new(&p);
        let t = sim.run_to_halt().unwrap();
        assert!(t.instructions > 100);
    }

    #[test]
    fn variants_touch_disjoint_buffer_halves() {
        let spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        let p = synthetic_task(&spec);
        let buffer = p.symbol("buffer").unwrap();
        let mid = buffer + 4 * (spec.data_words / 2) as u64;
        let data_addrs = |variant: usize| -> BTreeSet<u64> {
            let v = p.variants()[variant].clone();
            let mut sim = Simulator::with_variant(&p, &v).unwrap();
            let t = sim.run_to_halt().unwrap();
            t.accesses
                .iter()
                .filter(|a| a.kind != AccessKind::Fetch)
                .filter(|a| a.addr >= buffer && a.addr < buffer + 4 * spec.data_words as u64)
                .map(|a| a.addr)
                .collect()
        };
        let low = data_addrs(0);
        let high = data_addrs(1);
        assert!(!low.is_empty() && !high.is_empty());
        assert!(low.iter().all(|a| *a < mid));
        assert!(high.iter().all(|a| *a >= mid));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        assert_eq!(synthetic_task(&spec), synthetic_task(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec::new("s", 0x1000, 0x100000);
        let mut b2 = a.clone();
        b2.seed ^= 1;
        assert_ne!(synthetic_task(&a), synthetic_task(&b2));
    }

    #[test]
    #[should_panic(expected = "leaves the")]
    fn oversized_scan_rejected() {
        let mut spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        spec.inner_iters = 10_000;
        let _ = synthetic_task(&spec);
    }

    #[test]
    fn task_set_members_all_run() {
        for p in synthetic_task_set(4, 42) {
            let mut sim = Simulator::new(&p);
            sim.run_to_halt().unwrap();
        }
    }
}
