//! Parameterized synthetic task programs.
//!
//! Property tests and ablation benches need many tasks with controllable
//! cache footprints and path structure; this module generates them
//! deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::isa::Cond;
use rtprogram::{InputVariant, Program};

/// Specification of a synthetic task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Program name.
    pub name: String,
    /// Code base address.
    pub code_base: u64,
    /// Data base address.
    pub data_base: u64,
    /// Size of the scanned data buffer in words.
    pub data_words: usize,
    /// Outer loop iterations.
    pub outer_iters: u32,
    /// Inner loop iterations per outer iteration.
    pub inner_iters: u32,
    /// Stride between touched words.
    pub stride_words: usize,
    /// If `true`, an input-selected branch scans either the lower or the
    /// upper half of the buffer (two feasible paths, two variants).
    pub two_paths: bool,
    /// Straight-line padding instructions inflating the code footprint.
    pub padding_instrs: usize,
    /// Seed for the buffer contents.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A small default spec at the given bases.
    pub fn new(name: impl Into<String>, code_base: u64, data_base: u64) -> Self {
        SyntheticSpec {
            name: name.into(),
            code_base,
            data_base,
            data_words: 256,
            outer_iters: 4,
            inner_iters: 32,
            stride_words: 2,
            two_paths: true,
            padding_instrs: 16,
            seed: 0xC0FFEE,
        }
    }

    /// The words one scan arm may touch (half the buffer when
    /// `two_paths`).
    fn scan_span(&self) -> usize {
        if self.two_paths {
            self.data_words / 2
        } else {
            self.data_words
        }
    }
}

/// Generates a synthetic task program from a spec.
///
/// The task scans its buffer with the configured stride inside a
/// `outer × inner` loop nest, accumulating and writing back every touched
/// word. With [`SyntheticSpec::two_paths`] the `"low"` and `"high"`
/// variants select disjoint halves of the buffer — a task pair built from
/// shifted `data_base`s then exercises every interesting CIIP overlap
/// case.
///
/// # Panics
///
/// Panics if the scan would leave the buffer
/// (`inner_iters * stride_words > scan span`) or the buffer is empty.
pub fn synthetic_task(spec: &SyntheticSpec) -> Program {
    assert!(spec.data_words > 0, "buffer must be non-empty");
    assert!(
        spec.inner_iters as usize * spec.stride_words <= spec.scan_span(),
        "scan of {}x{} words leaves the {}-word span",
        spec.inner_iters,
        spec.stride_words,
        spec.scan_span()
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new(spec.name.clone(), spec.code_base, spec.data_base);

    let selector = b.data_words("selector", &[0]);
    let buffer = b.data_words(
        "buffer",
        &(0..spec.data_words).map(|_| rng.random_range(-100..100)).collect::<Vec<i32>>(),
    );
    let result = b.data_space("result", 1);

    if spec.two_paths {
        b.variant(InputVariant::named("low").with_write(selector, 0));
        b.variant(InputVariant::named("high").with_write(selector, 1));
    }

    let stride = (4 * spec.stride_words) as i32;
    let scan = |b: &mut ProgramBuilder, base: u64| {
        b.li(R4, 0); // acc
        b.counted_loop(spec.outer_iters, R2, |b| {
            b.li_addr(R1, base);
            b.counted_loop(spec.inner_iters, R3, |b| {
                b.ld(R5, R1, 0);
                b.add(R4, R4, R5);
                b.xor(R5, R5, R4);
                b.st(R5, R1, 0);
                b.addi(R1, R1, stride);
            });
        });
        b.li_addr(R6, result);
        b.st(R4, R6, 0);
    };

    if spec.two_paths {
        let upper = buffer + 4 * (spec.data_words / 2) as u64;
        b.li_addr(R7, selector);
        b.ld(R7, R7, 0);
        b.if_else(Cond::Eq, R7, R0, |b| scan(b, buffer), |b| scan(b, upper));
    } else {
        scan(&mut b, buffer);
    }

    // Straight-line padding to inflate the instruction-cache footprint.
    for i in 0..spec.padding_instrs {
        match i % 3 {
            0 => b.addi(R8, R8, 1),
            1 => b.xor(R9, R9, R8),
            _ => b.nop(),
        }
    }

    b.build().expect("synthetic program is well formed")
}

/// Parameters for [`system`]: a family of synthetic tasks with footprints
/// staggered in cache-index space and sizes/loop depths growing with the
/// task index (highest priority first).
///
/// Each task `i` gets `name_prefix{i}`, code at `code_base +
/// i·code_stride`, data at `data_base + i·data_stride`, a buffer of
/// `data_words_base + i·data_words_step` words, `outer_base + i` outer
/// iterations and seed `seed + i`; `inner_iters` and `stride_words` are
/// shared. The defaults reproduce the heavy-overlap three-task system the
/// soundness suite was built around (data bases staggered within one
/// index period).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemParams {
    /// Number of tasks.
    pub count: usize,
    /// Task-name prefix (task `i` is `{name_prefix}{i}`).
    pub name_prefix: String,
    /// Base seed; task `i` uses `seed + i`.
    pub seed: u64,
    /// Code base address of task 0.
    pub code_base: u64,
    /// Per-task code base stride.
    pub code_stride: u64,
    /// Data base address of task 0.
    pub data_base: u64,
    /// Per-task data base stride.
    pub data_stride: u64,
    /// Buffer words of task 0.
    pub data_words_base: usize,
    /// Per-task buffer growth in words.
    pub data_words_step: usize,
    /// Outer iterations of task 0 (task `i` runs `outer_base + i`).
    pub outer_base: u32,
    /// Inner iterations, shared by all tasks.
    pub inner_iters: u32,
    /// Scan stride in words, shared by all tasks.
    pub stride_words: usize,
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            count: 3,
            name_prefix: "syn".to_string(),
            seed: 1,
            code_base: 0x0001_0000,
            code_stride: 0x0400,
            data_base: 0x0010_0000,
            data_stride: 0x0300,
            data_words_base: 192,
            data_words_step: 64,
            outer_base: 3,
            inner_iters: 24,
            stride_words: 1,
        }
    }
}

/// Generates the mutually overlapping task family described by `params`,
/// highest priority first. The shared deduplicated builder behind the
/// soundness/invariance test systems and the fuzz farm's replay path.
pub fn system(params: &SystemParams) -> Vec<Program> {
    (0..params.count)
        .map(|i| {
            let mut spec = SyntheticSpec::new(
                format!("{}{i}", params.name_prefix),
                params.code_base + params.code_stride * i as u64,
                params.data_base + params.data_stride * i as u64,
            );
            spec.seed = params.seed.wrapping_add(i as u64);
            spec.data_words = params.data_words_base + params.data_words_step * i;
            spec.outer_iters = params.outer_base + i as u32;
            spec.inner_iters = params.inner_iters;
            spec.stride_words = params.stride_words;
            // Keep the scan arm inside the (two-path) buffer half.
            while spec.inner_iters > 1
                && spec.inner_iters as usize * spec.stride_words > spec.data_words / 2
            {
                spec.inner_iters /= 2;
            }
            synthetic_task(&spec)
        })
        .collect()
}

/// Generates a family of `count` mutually overlapping synthetic tasks,
/// highest priority first, with footprints shifted in cache-index space.
pub fn synthetic_task_set(count: usize, seed: u64) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut spec = SyntheticSpec::new(
                format!("syn{i}"),
                0x0003_0000 + 0x4000 * i as u64,
                0x0020_0000 + 0x4800 * i as u64, // 0x4800 % 0x2000 = 0x800 stagger
            );
            spec.data_words = 128 + 64 * i;
            spec.outer_iters = rng.random_range(2..6);
            spec.inner_iters = rng.random_range(8..32);
            spec.stride_words = rng.random_range(1..3);
            spec.seed = rng.random();
            // Keep the scan inside the buffer.
            let span = spec.data_words / 2;
            while spec.inner_iters as usize * spec.stride_words > span {
                spec.inner_iters /= 2;
            }
            synthetic_task(&spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::{AccessKind, Simulator};
    use std::collections::BTreeSet;

    #[test]
    fn runs_and_writes_result() {
        let spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        let p = synthetic_task(&spec);
        let mut sim = Simulator::new(&p);
        let t = sim.run_to_halt().unwrap();
        assert!(t.instructions > 100);
    }

    #[test]
    fn variants_touch_disjoint_buffer_halves() {
        let spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        let p = synthetic_task(&spec);
        let buffer = p.symbol("buffer").unwrap();
        let mid = buffer + 4 * (spec.data_words / 2) as u64;
        let data_addrs = |variant: usize| -> BTreeSet<u64> {
            let v = p.variants()[variant].clone();
            let mut sim = Simulator::with_variant(&p, &v).unwrap();
            let t = sim.run_to_halt().unwrap();
            t.accesses
                .iter()
                .filter(|a| a.kind != AccessKind::Fetch)
                .filter(|a| a.addr >= buffer && a.addr < buffer + 4 * spec.data_words as u64)
                .map(|a| a.addr)
                .collect()
        };
        let low = data_addrs(0);
        let high = data_addrs(1);
        assert!(!low.is_empty() && !high.is_empty());
        assert!(low.iter().all(|a| *a < mid));
        assert!(high.iter().all(|a| *a >= mid));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        assert_eq!(synthetic_task(&spec), synthetic_task(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec::new("s", 0x1000, 0x100000);
        let mut b2 = a.clone();
        b2.seed ^= 1;
        assert_ne!(synthetic_task(&a), synthetic_task(&b2));
    }

    #[test]
    #[should_panic(expected = "leaves the")]
    fn oversized_scan_rejected() {
        let mut spec = SyntheticSpec::new("s", 0x1000, 0x100000);
        spec.inner_iters = 10_000;
        let _ = synthetic_task(&spec);
    }

    #[test]
    fn task_set_members_all_run() {
        for p in synthetic_task_set(4, 42) {
            let mut sim = Simulator::new(&p);
            sim.run_to_halt().unwrap();
        }
    }

    #[test]
    fn system_builds_the_documented_family() {
        let params = SystemParams { seed: 7, ..SystemParams::default() };
        let programs = system(&params);
        assert_eq!(programs.len(), 3);
        for (i, p) in programs.iter().enumerate() {
            assert_eq!(p.name(), format!("syn{i}"));
            let mut sim = Simulator::new(p);
            sim.run_to_halt().unwrap();
        }
        // Deterministic: the same params rebuild identical programs.
        assert_eq!(system(&params), programs);
        // The builder matches the hand-rolled spec loop it replaced.
        let mut spec = SyntheticSpec::new("syn1", 0x0001_0000 + 0x0400, 0x0010_0000 + 0x0300);
        spec.seed = 8;
        spec.data_words = 256;
        spec.outer_iters = 4;
        spec.inner_iters = 24;
        spec.stride_words = 1;
        assert_eq!(programs[1], synthetic_task(&spec));
    }

    #[test]
    fn system_clamps_oversized_scans() {
        let params = SystemParams {
            data_words_base: 16,
            data_words_step: 0,
            inner_iters: 1000,
            stride_words: 1,
            ..SystemParams::default()
        };
        // Would panic in synthetic_task without the clamp.
        assert_eq!(system(&params).len(), 3);
    }
}
