//! ED — the Edge Detection task (paper Example 5 / Fig. 4, Experiment I).
//!
//! The program selects one of two convolution operators from an input
//! word — the Sobel pair or a Cauchy-style kernel — giving exactly the
//! two-feasible-path CFG of the paper's Fig. 4: only one of the two
//! operator SFP-Prs executes per run, and the two arms touch different
//! memory (the Cauchy arm reads kernel and offset tables the Sobel arm
//! never references).

use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::isa::Cond;
use rtprogram::{InputVariant, Program};

use crate::layout;

/// Default image dimension (DIM × DIM pixels).
pub const DIM: usize = 24;
/// Sobel magnitude threshold.
pub const SOBEL_THRESHOLD: i32 = 300;
/// Cauchy response threshold (on the normalized 0–255 scale).
pub const CAUCHY_THRESHOLD: i32 = 60;
/// The Cauchy-style 3×3 kernel.
pub const CAUCHY_KERNEL: [i32; 9] = [1, 2, 1, 2, -12, 2, 1, 2, 1];

/// The Cauchy response-normalization lookup table (compresses the raw
/// convolution response to 0–255). The table lives in data memory, so the
/// Cauchy path's footprint differs from the Sobel path's by a full KiB —
/// the property the paper's path analysis (Fig. 4 / Example 5) exploits.
pub fn cauchy_norm_table() -> Vec<i32> {
    (0..256i32).map(|i| (255.0 * (f64::from(i) / 255.0).sqrt()).round() as i32).collect()
}

/// Deterministic test image: a dark/bright vertical step plus texture.
pub fn image_pattern(dim: usize) -> Vec<i32> {
    (0..dim * dim)
        .map(|i| {
            let (y, x) = (i / dim, i % dim);
            let base = if x < dim / 2 { 20 } else { 200 };
            base + ((x * 7 + y * 13) % 17) as i32
        })
        .collect()
}

/// Reference Sobel pass (used by tests and documented in EXPERIMENTS.md).
pub fn reference_sobel(img: &[i32], dim: usize) -> Vec<i32> {
    let mut out = vec![0; dim * dim];
    let p = |y: usize, x: usize| img[y * dim + x];
    for y in 1..dim - 1 {
        for x in 1..dim - 1 {
            let gx = (p(y - 1, x + 1) + 2 * p(y, x + 1) + p(y + 1, x + 1))
                - (p(y - 1, x - 1) + 2 * p(y, x - 1) + p(y + 1, x - 1));
            let gy = (p(y + 1, x - 1) + 2 * p(y + 1, x) + p(y + 1, x + 1))
                - (p(y - 1, x - 1) + 2 * p(y - 1, x) + p(y - 1, x + 1));
            out[y * dim + x] = if gx.abs() + gy.abs() >= SOBEL_THRESHOLD { 255 } else { 0 };
        }
    }
    out
}

/// Reference Cauchy pass.
pub fn reference_cauchy(img: &[i32], dim: usize) -> Vec<i32> {
    let norm = cauchy_norm_table();
    let mut out = vec![0; dim * dim];
    for y in 1..dim - 1 {
        for x in 1..dim - 1 {
            let mut acc = 0i32;
            for (t, k) in CAUCHY_KERNEL.iter().enumerate() {
                let (dy, dx) = ((t / 3) as isize - 1, (t % 3) as isize - 1);
                let pix = img[(y as isize + dy) as usize * dim + (x as isize + dx) as usize];
                acc += k * pix;
            }
            let scaled = acc.abs() >> 2;
            let idx = (scaled >> 3).min(255);
            out[y * dim + x] = if norm[idx as usize] >= CAUCHY_THRESHOLD { 255 } else { 0 };
        }
    }
    out
}

/// Builds the ED task with the default [`DIM`].
pub fn edge_detection() -> Program {
    edge_detection_with_dim(DIM)
}

/// Builds the ED task over a `dim × dim` image.
///
/// Variants: `"sobel"` (operator word 0) and `"cauchy"` (operator word 1),
/// the two feasible paths of Fig. 4.
///
/// # Panics
///
/// Panics if `dim < 3`.
pub fn edge_detection_with_dim(dim: usize) -> Program {
    assert!(dim >= 3, "edge detection needs at least a 3x3 image");
    let d = dim as i32;
    let mut b = ProgramBuilder::new("ed", layout::ED_CODE, layout::ED_DATA);

    let operator = b.data_words("operator", &[0]);
    let img = b.data_words("img", &image_pattern(dim));
    let out = b.data_space("out", dim * dim);
    // Byte offsets of the 3x3 neighborhood around a center pointer.
    let neighborhood: Vec<i32> = (0..9)
        .map(|t| {
            let (dy, dx) = ((t / 3) - 1, (t % 3) - 1);
            4 * (dy * d + dx)
        })
        .collect();
    let coff = b.data_words("coff", &neighborhood);
    let ck = b.data_words("ck", &CAUCHY_KERNEL);
    let cnorm = b.data_words("cnorm", &cauchy_norm_table());

    b.variant(InputVariant::named("sobel").with_write(operator, 0));
    b.variant(InputVariant::named("cauchy").with_write(operator, 1));

    // Shared constants.
    b.li_addr(R12, img);
    b.li_addr(R13, out);
    b.li(R14, d);
    b.li(R15, 2);

    let off = |dy: i32, dx: i32| 4 * (dy * d + dx);
    let interior = (dim - 2) as u32;

    b.li_addr(R4, operator);
    b.ld(R4, R4, 0);
    b.if_else(
        Cond::Eq,
        R4,
        R0,
        // ---- Sobel arm (v3 of Fig. 4) -----------------------------------
        |b| {
            b.counted_loop(interior, R2, |b| {
                b.counted_loop(interior, R3, |b| {
                    // center = img + 4 * (y*dim + x); y = R2, x = R3 (both
                    // run dim-2 ..= 1, exactly the interior).
                    b.mul(R5, R2, R14);
                    b.add(R5, R5, R3);
                    b.shl(R5, R5, R15);
                    b.add(R4, R12, R5);
                    // gx
                    b.ld(R7, R4, off(-1, 1));
                    b.ld(R9, R4, off(0, 1));
                    b.add(R9, R9, R9);
                    b.add(R7, R7, R9);
                    b.ld(R9, R4, off(1, 1));
                    b.add(R7, R7, R9);
                    b.ld(R9, R4, off(-1, -1));
                    b.sub(R7, R7, R9);
                    b.ld(R9, R4, off(0, -1));
                    b.add(R9, R9, R9);
                    b.sub(R7, R7, R9);
                    b.ld(R9, R4, off(1, -1));
                    b.sub(R7, R7, R9);
                    // gy
                    b.ld(R8, R4, off(1, -1));
                    b.ld(R9, R4, off(1, 0));
                    b.add(R9, R9, R9);
                    b.add(R8, R8, R9);
                    b.ld(R9, R4, off(1, 1));
                    b.add(R8, R8, R9);
                    b.ld(R9, R4, off(-1, -1));
                    b.sub(R8, R8, R9);
                    b.ld(R9, R4, off(-1, 0));
                    b.add(R9, R9, R9);
                    b.sub(R8, R8, R9);
                    b.ld(R9, R4, off(-1, 1));
                    b.sub(R8, R8, R9);
                    // |gx| + |gy| vs threshold
                    b.if_then(Cond::Lt, R7, R0, |b| b.sub(R7, R0, R7));
                    b.if_then(Cond::Lt, R8, R0, |b| b.sub(R8, R0, R8));
                    b.add(R7, R7, R8);
                    b.li(R9, SOBEL_THRESHOLD);
                    b.add(R6, R13, R5);
                    b.if_else(
                        Cond::Ge,
                        R7,
                        R9,
                        |b| {
                            b.li(R9, 255);
                            b.st(R9, R6, 0);
                        },
                        |b| b.st(R0, R6, 0),
                    );
                });
            });
        },
        // ---- Cauchy arm (v4 of Fig. 4) ----------------------------------
        |b| {
            b.li_addr(R10, coff);
            b.li_addr(R11, ck);
            b.counted_loop(interior, R2, |b| {
                b.counted_loop(interior, R3, |b| {
                    b.mul(R5, R2, R14);
                    b.add(R5, R5, R3);
                    b.shl(R5, R5, R15);
                    b.add(R4, R12, R5);
                    b.li(R7, 0); // acc
                    b.counted_loop(9, R1, |b| {
                        b.addi(R9, R1, -1); // tap index 8..0
                        b.shl(R9, R9, R15);
                        b.add(R8, R10, R9);
                        b.ld(R8, R8, 0); // neighborhood byte offset
                        b.add(R8, R4, R8);
                        b.ld(R6, R8, 0); // pixel
                        b.add(R8, R11, R9);
                        b.ld(R8, R8, 0); // kernel coefficient
                        b.mul(R6, R6, R8);
                        b.add(R7, R7, R6);
                    });
                    b.if_then(Cond::Lt, R7, R0, |b| b.sub(R7, R0, R7));
                    b.sra(R7, R7, R15); // scale by >>2
                                        // normalize through the LUT: cnorm[min(acc >> 3, 255)]
                    b.li(R9, 3);
                    b.sra(R8, R7, R9);
                    b.li(R9, 255);
                    b.if_then(Cond::Lt, R9, R8, |b| b.add(R8, R9, R0));
                    b.shl(R8, R8, R15);
                    b.li_addr(R9, cnorm);
                    b.add(R8, R8, R9);
                    b.ld(R7, R8, 0);
                    b.li(R9, CAUCHY_THRESHOLD);
                    b.add(R6, R13, R5);
                    b.if_else(
                        Cond::Ge,
                        R7,
                        R9,
                        |b| {
                            b.li(R9, 255);
                            b.st(R9, R6, 0);
                        },
                        |b| b.st(R0, R6, 0),
                    );
                });
            });
        },
    );

    b.build().expect("ED program is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::Simulator;

    fn run_variant(idx: usize, dim: usize) -> Vec<i32> {
        let p = edge_detection_with_dim(dim);
        let variant = p.variants()[idx].clone();
        let mut sim = Simulator::with_variant(&p, &variant).unwrap();
        sim.run_to_halt().unwrap();
        let out = p.symbol("out").unwrap();
        (0..(dim * dim) as u64).map(|i| sim.memory().read(out + 4 * i).unwrap()).collect()
    }

    #[test]
    fn sobel_matches_reference() {
        let dim = 12; // smaller image keeps the test quick
        let got = run_variant(0, dim);
        let expect = reference_sobel(&image_pattern(dim), dim);
        assert_eq!(got, expect);
    }

    #[test]
    fn cauchy_matches_reference() {
        let dim = 12;
        let got = run_variant(1, dim);
        let expect = reference_cauchy(&image_pattern(dim), dim);
        assert_eq!(got, expect);
    }

    #[test]
    fn detects_the_vertical_step_edge() {
        let dim = 12;
        let out = run_variant(0, dim);
        // The bright/dark step at x = dim/2 must light up.
        let hits = (1..dim - 1).filter(|y| out[y * dim + dim / 2] == 255).count();
        assert_eq!(hits, dim - 2, "every interior row crosses the step");
        // Borders are untouched.
        assert!(out.iter().take(dim).all(|v| *v == 0));
    }

    #[test]
    fn arms_differ_in_memory_footprint() {
        // The cauchy arm must touch the kernel tables; the sobel arm must
        // not.
        let p = edge_detection_with_dim(8);
        let ck = p.symbol("ck").unwrap();
        for (idx, expect_touch) in [(0usize, false), (1usize, true)] {
            let variant = p.variants()[idx].clone();
            let mut sim = Simulator::with_variant(&p, &variant).unwrap();
            let trace = sim.run_to_halt().unwrap();
            let touched = trace.accesses.iter().any(|a| a.addr >= ck && a.addr < ck + 36);
            assert_eq!(touched, expect_touch, "variant {idx}");
        }
    }

    #[test]
    fn cauchy_is_the_longer_path() {
        let p = edge_detection_with_dim(8);
        let mut sobel = Simulator::with_variant(&p, &p.variants()[0].clone()).unwrap();
        let ts = sobel.run_to_halt().unwrap();
        let mut cauchy = Simulator::with_variant(&p, &p.variants()[1].clone()).unwrap();
        let tc = cauchy.run_to_halt().unwrap();
        assert!(tc.instructions > ts.instructions);
    }

    #[test]
    #[should_panic(expected = "at least a 3x3")]
    fn tiny_image_rejected() {
        let _ = edge_detection_with_dim(2);
    }

    #[test]
    fn default_dim_runs() {
        let p = edge_detection();
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt().unwrap();
        assert!(trace.instructions > 10_000);
    }
}
