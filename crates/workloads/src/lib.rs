//! Benchmark task programs for the Tan & Mooney (DATE 2004) WCRT
//! reproduction.
//!
//! The paper evaluates two task sets on an ARM9TDMI:
//!
//! * **Experiment I** (robotics): a Mobile Robot controller (MR), an Edge
//!   Detection application with a Sobel/Cauchy operator choice (ED, the
//!   CFG of Fig. 4) and an OFDM transmitter.
//! * **Experiment II** (media): the MediaBench ADPCM coder and decoder and
//!   an MPEG-2 IDCT kernel.
//!
//! Those C binaries are not reproducible here, so this crate re-implements
//! each algorithm in the TRISC-16 ISA via
//! [`ProgramBuilder`](rtprogram::builder::ProgramBuilder), preserving what
//! the analysis actually consumes: loop structure with declared bounds,
//! input-dependent feasible paths (exposed as
//! [`InputVariant`](rtprogram::InputVariant)s), and multi-KB code+data
//! cache footprints that partially overlap between tasks in index space.
//!
//! [`synthetic`] additionally provides parameterized random task programs
//! for property tests and ablation sweeps.
//!
//! # Example
//!
//! ```
//! use rtprogram::sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ed = rtworkloads::edge_detection();
//! assert_eq!(ed.variants().len(), 2); // Sobel and Cauchy paths
//! let mut sim = Simulator::with_variant(&ed, &ed.variants()[0])?;
//! let trace = sim.run_to_halt()?;
//! assert!(trace.instructions > 1_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adpcm;
mod ctxswitch;
mod edge;
mod idct;
pub mod kernels;
pub mod layout;
mod ofdm;
mod robot;
pub mod synthetic;

pub use adpcm::{
    adpcm_decoder, adpcm_encoder, reference as adpcm_reference, waveform_a, waveform_b,
    DECODER_CODES, ENCODER_SAMPLES, INDEX_TABLE, STEP_TABLE,
};
pub use ctxswitch::context_switch;
pub use edge::{
    edge_detection, edge_detection_with_dim, image_pattern, reference_cauchy, reference_sobel,
    CAUCHY_KERNEL, CAUCHY_THRESHOLD, DIM, SOBEL_THRESHOLD,
};
pub use idct::reference as idct_reference;
pub use idct::{
    coeff_pattern, coeff_sparse, cos_table, idct, idct_with_blocks, BLOCKS, FRAME_WORDS,
};
pub use ofdm::reference as ofdm_reference;
pub use ofdm::{
    frame_a, frame_b, ofdm_transmitter, ofdm_transmitter_with_points, twiddles, POINTS, PREFIX,
    QAM_LEVELS, RING_WORDS, TWIDDLE_SCALE,
};
pub use robot::{
    mobile_robot, reference_position, HISTORY, OBSTACLE_THRESHOLD, SENSORS, WAYPOINTS,
};

use rtprogram::Program;

/// The Experiment I task set in priority order `[MR, ED, OFDM]` (highest
/// priority first, matching the paper's Table I where MR has the highest
/// priority and OFDM the lowest).
pub fn experiment1() -> Vec<Program> {
    vec![mobile_robot(), edge_detection(), ofdm_transmitter()]
}

/// The Experiment II task set in priority order `[IDCT, ADPCMD, ADPCMC]`.
pub fn experiment2() -> Vec<Program> {
    vec![idct(), adpcm_decoder(), adpcm_encoder()]
}
