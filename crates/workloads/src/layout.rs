//! The shared address map of the benchmark tasks.
//!
//! All tasks of an experiment live in one address space (single processor,
//! one RTOS, as in the paper's Fig. 5). With the paper's L1 geometry
//! (512 sets × 16 B lines) two addresses contend for the same cache set
//! exactly when they are congruent modulo 8 KiB, so the bases below are
//! staggered by non-multiples of `0x2000`, and the task footprints are
//! sized so each experiment's tasks together exceed the 8 KiB index
//! period — every pair then *partially* overlaps, the regime in which
//! the four CRPD approaches separate (paper Table II).

/// Code base of the Mobile Robot task.
pub const MR_CODE: u64 = 0x0001_0000;
/// Code base of the Edge Detection task (staggered by `0x0400` in index
/// space relative to MR).
pub const ED_CODE: u64 = 0x0001_4400;
/// Code base of the OFDM transmitter (staggered by `0x0800`).
pub const OFDM_CODE: u64 = 0x0001_8800;

/// Data base of the Mobile Robot task.
pub const MR_DATA: u64 = 0x0010_0000;
/// Data base of the Edge Detection task (index offset `0x1000`).
pub const ED_DATA: u64 = 0x0010_5000;
/// Data base of the OFDM transmitter (index offset `0x1800`).
pub const OFDM_DATA: u64 = 0x0010_B800;

/// Code base of the IDCT task.
pub const IDCT_CODE: u64 = 0x0002_0000;
/// Code base of the ADPCM decoder (index offset `0x0400`).
pub const ADPCMD_CODE: u64 = 0x0002_4400;
/// Code base of the ADPCM encoder (index offset `0x0800`).
pub const ADPCMC_CODE: u64 = 0x0002_8800;

/// Data base of the IDCT task.
pub const IDCT_DATA: u64 = 0x0011_0000;
/// Data base of the ADPCM decoder (index offset `0x0400`).
pub const ADPCMD_DATA: u64 = 0x0011_2400;
/// Data base of the ADPCM encoder (index offset `0x1000`).
pub const ADPCMC_DATA: u64 = 0x0011_9000;

/// Code base of the context-switch routine (kept apart from all tasks; the
/// paper's context switch is measured with a cold cache, Example 6).
pub const CTX_CODE: u64 = 0x0000_8000;
/// Data base of the context-switch save areas.
pub const CTX_DATA: u64 = 0x0017_0000;

#[cfg(test)]
mod tests {
    use super::*;

    /// The index-space stagger claims in the doc comments must hold for
    /// the paper's 8 KiB index period.
    #[test]
    fn staggered_in_index_space() {
        const PERIOD: u64 = 0x2000;
        assert_eq!(ED_CODE % PERIOD, MR_CODE % PERIOD + 0x0400);
        assert_eq!(OFDM_CODE % PERIOD, MR_CODE % PERIOD + 0x0800);
        assert_eq!(ED_DATA % PERIOD, (MR_DATA + 0x1000) % PERIOD);
        assert_eq!(OFDM_DATA % PERIOD, (MR_DATA + 0x1800) % PERIOD);
        assert_eq!(ADPCMD_DATA % PERIOD, (IDCT_DATA + 0x0400) % PERIOD);
        assert_eq!(ADPCMC_DATA % PERIOD, (IDCT_DATA + 0x1000) % PERIOD);
    }

    #[test]
    fn regions_are_word_aligned() {
        for base in [
            MR_CODE,
            ED_CODE,
            OFDM_CODE,
            MR_DATA,
            ED_DATA,
            OFDM_DATA,
            IDCT_CODE,
            ADPCMD_CODE,
            ADPCMC_CODE,
            IDCT_DATA,
            ADPCMD_DATA,
            ADPCMC_DATA,
            CTX_CODE,
            CTX_DATA,
        ] {
            assert_eq!(base % 4, 0);
        }
    }
}
