//! IDCT — the 8×8 two-dimensional inverse DCT kernel of Experiment II
//! (the paper extracts it from an MPEG-2 decoder).
//!
//! Fixed-point separable implementation: a row pass into a temporary
//! block followed by a column pass, both driven by a 64-entry cosine
//! table (scale 2^10, with the `c(u)` normalization folded in).

use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::{InputVariant, Program};

use crate::layout;

/// Blocks transformed per activation.
pub const BLOCKS: usize = 1;
/// Words in the reconstructed-frame buffer the block is composed into.
pub const FRAME_WORDS: usize = 512;
/// Fixed-point shift of the cosine table.
pub const COS_SHIFT: i32 = 10;

/// The folded cosine table `K[u*8+x] = round(512 * c(u) * cos((2x+1)uπ/16))`
/// where `c(0) = 1/√2` and `c(u) = 1` otherwise.
pub fn cos_table() -> Vec<i32> {
    let mut k = vec![0i32; 64];
    for u in 0..8 {
        let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
        for x in 0..8 {
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            k[u * 8 + x] = (512.0 * cu * angle.cos()).round() as i32;
        }
    }
    k
}

/// Deterministic coefficient blocks: a strong DC term, a few low-frequency
/// AC terms and a small texture.
pub fn coeff_pattern(blocks: usize) -> Vec<i32> {
    let mut c = vec![0i32; 64 * blocks];
    for (b, chunk) in c.chunks_mut(64).enumerate() {
        chunk[0] = 512 + 64 * b as i32;
        chunk[1] = 100;
        chunk[8] = -60;
        chunk[9] = 30;
        for (i, v) in chunk.iter_mut().enumerate().skip(10) {
            *v = ((i * 7) % 5) as i32 - 2;
        }
    }
    c
}

/// Sparse alternate coefficients for the second variant.
pub fn coeff_sparse(blocks: usize) -> Vec<i32> {
    let mut c = vec![0i32; 64 * blocks];
    for chunk in c.chunks_mut(64) {
        chunk[0] = 1024;
        chunk[2] = -200;
    }
    c
}

/// Bit-exact Rust reference of the fixed-point 2-D IDCT.
pub fn reference(coeffs: &[i32]) -> Vec<i32> {
    let k = cos_table();
    let mut out = vec![0i32; coeffs.len()];
    for (blk, (cin, cout)) in coeffs.chunks(64).zip(out.chunks_mut(64)).enumerate() {
        let _ = blk;
        let mut tmp = [0i32; 64];
        for y in 0..8 {
            for x in 0..8 {
                let mut acc = 0i32;
                for u in 0..8 {
                    acc = acc.wrapping_add(cin[y * 8 + u].wrapping_mul(k[u * 8 + x]));
                }
                tmp[y * 8 + x] = acc >> COS_SHIFT;
            }
        }
        for y in 0..8 {
            for x in 0..8 {
                let mut acc = 0i32;
                for v in 0..8 {
                    acc = acc.wrapping_add(tmp[v * 8 + x].wrapping_mul(k[v * 8 + y]));
                }
                cout[y * 8 + x] = acc >> COS_SHIFT;
            }
        }
    }
    out
}

/// Builds the IDCT task with the default [`BLOCKS`].
pub fn idct() -> Program {
    idct_with_blocks(BLOCKS)
}

/// Builds the IDCT task transforming `blocks` 8×8 blocks per activation.
///
/// Variants: `"dense"` (default pattern) and `"sparse"` (DC + one AC).
///
/// # Panics
///
/// Panics if `blocks == 0`.
pub fn idct_with_blocks(blocks: usize) -> Program {
    assert!(blocks > 0, "at least one block required");
    let mut b = ProgramBuilder::new("idct", layout::IDCT_CODE, layout::IDCT_DATA);

    let coeffs = b.data_words("coeffs", &coeff_pattern(blocks));
    let cost = b.data_words("cost", &cos_table());
    let tmp = b.data_space("tmp", 64);
    let out = b.data_space("out", 64 * blocks);
    let frame = b.data_space("frame", FRAME_WORDS);

    b.variant(InputVariant::named("dense"));
    let mut vs = InputVariant::named("sparse");
    for (i, v) in coeff_sparse(blocks).iter().enumerate() {
        vs = vs.with_write(coeffs + 4 * i as u64, *v);
    }
    b.variant(vs);

    b.li(R15, 2); // word shift
    b.li(R14, 3); // row shift (×8)
    b.li_addr(R12, cost);
    b.li_addr(R13, tmp);

    b.counted_loop(blocks as u32, R2, |b| {
        // R11 = &coeffs[64 * (block index)], R1 = &out[64 * (block index)]
        b.addi(R5, R2, -1);
        b.li(R6, 8); // 256 = 64 words * 4 bytes => shift by 8
        b.shl(R5, R5, R6);
        b.li_addr(R11, coeffs);
        b.add(R11, R11, R5);
        b.li_addr(R1, out);
        b.add(R1, R1, R5);

        // ---- row pass: tmp[y][x] = (Σ_u coeff[y][u] * K[u][x]) >> 10
        b.counted_loop(8, R3, |b| {
            b.counted_loop(8, R4, |b| {
                // R6 = &coeff[y*8], stride 4; R7 = &K[x], stride 32.
                b.addi(R6, R3, -1);
                b.shl(R6, R6, R14);
                b.shl(R6, R6, R15);
                b.add(R6, R11, R6);
                b.addi(R7, R4, -1);
                b.shl(R7, R7, R15);
                b.add(R7, R12, R7);
                b.li(R10, 0);
                b.counted_loop(8, R5, |b| {
                    b.ld(R8, R6, 0);
                    b.ld(R9, R7, 0);
                    b.mul(R8, R8, R9);
                    b.add(R10, R10, R8);
                    b.addi(R6, R6, 4);
                    b.addi(R7, R7, 32);
                });
                b.li(R8, COS_SHIFT);
                b.sra(R10, R10, R8);
                // tmp[y*8 + x]
                b.addi(R6, R3, -1);
                b.shl(R6, R6, R14);
                b.addi(R7, R4, -1);
                b.add(R6, R6, R7);
                b.shl(R6, R6, R15);
                b.add(R6, R13, R6);
                b.st(R10, R6, 0);
            });
        });

        // ---- column pass: out[y][x] = (Σ_v tmp[v][x] * K[v][y]) >> 10
        b.counted_loop(8, R3, |b| {
            b.counted_loop(8, R4, |b| {
                // R6 = &tmp[x], stride 32; R7 = &K[y], stride 32.
                b.addi(R6, R4, -1);
                b.shl(R6, R6, R15);
                b.add(R6, R13, R6);
                b.addi(R7, R3, -1);
                b.shl(R7, R7, R15);
                b.add(R7, R12, R7);
                b.li(R10, 0);
                b.counted_loop(8, R5, |b| {
                    b.ld(R8, R6, 0);
                    b.ld(R9, R7, 0);
                    b.mul(R8, R8, R9);
                    b.add(R10, R10, R8);
                    b.addi(R6, R6, 32);
                    b.addi(R7, R7, 32);
                });
                b.li(R8, COS_SHIFT);
                b.sra(R10, R10, R8);
                b.addi(R6, R3, -1);
                b.shl(R6, R6, R14);
                b.addi(R7, R4, -1);
                b.add(R6, R6, R7);
                b.shl(R6, R6, R15);
                b.add(R6, R1, R6);
                b.st(R10, R6, 0);
            });
        });
    });

    // Compose into the frame buffer: clear it, then blit each block at
    // its slot (models writing the decoded macroblock into the picture).
    b.li_addr(R12, frame);
    b.counted_loop(FRAME_WORDS as u32, R3, |b| {
        b.st(R0, R12, 0);
        b.addi(R12, R12, 4);
    });
    b.li_addr(R12, frame);
    b.li_addr(R13, out);
    b.counted_loop((64 * blocks).min(FRAME_WORDS) as u32, R3, |b| {
        b.ld(R5, R13, 0);
        b.st(R5, R12, 0);
        b.addi(R12, R12, 4);
        b.addi(R13, R13, 4);
    });

    b.build().expect("IDCT program is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::Simulator;

    fn run(variant: usize, blocks: usize) -> Vec<i32> {
        let p = idct_with_blocks(blocks);
        let v = p.variants()[variant].clone();
        let mut sim = Simulator::with_variant(&p, &v).unwrap();
        sim.run_to_halt().unwrap();
        let base = p.symbol("out").unwrap();
        (0..(64 * blocks) as u64).map(|i| sim.memory().read(base + 4 * i).unwrap()).collect()
    }

    #[test]
    fn dense_matches_reference() {
        assert_eq!(run(0, 1), reference(&coeff_pattern(1)));
    }

    #[test]
    fn sparse_matches_reference() {
        assert_eq!(run(1, 1), reference(&coeff_sparse(1)));
    }

    #[test]
    fn multi_block_matches_reference() {
        assert_eq!(run(0, 3), reference(&coeff_pattern(3)));
    }

    #[test]
    fn dc_only_block_is_flat() {
        // A DC-only block must reconstruct to a constant plane.
        let mut coeffs = vec![0i32; 64];
        coeffs[0] = 1024;
        let out = reference(&coeffs);
        assert!(out.windows(2).all(|w| (w[0] - w[1]).abs() <= 1), "{out:?}");
        assert!(out[0] > 0);
    }

    #[test]
    fn float_model_agrees_within_rounding() {
        // Cross-check the fixed-point pipeline against a float IDCT.
        let coeffs = coeff_pattern(1);
        let fixed = reference(&coeffs);
        let mut float_out = vec![0f64; 64];
        for y in 0..8 {
            for x in 0..8 {
                let mut acc = 0f64;
                for v in 0..8 {
                    for u in 0..8 {
                        let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                        let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                        acc += cu / 2.0 * cv / 2.0
                            * f64::from(coeffs[v * 8 + u])
                            * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0)
                                .cos()
                            * ((2.0 * y as f64 + 1.0) * v as f64 * std::f64::consts::PI / 16.0)
                                .cos();
                    }
                }
                float_out[y * 8 + x] = acc;
            }
        }
        for (f, i) in float_out.iter().zip(&fixed) {
            // Two >>10 truncations plus table rounding bound the error by
            // roughly 5; allow a little slack.
            assert!((f - f64::from(*i)).abs() < 8.0, "fixed {i} vs float {f:.2}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = idct_with_blocks(0);
    }
}
