//! MR — the Mobile Robot control task (paper Example 1, Experiment I).
//!
//! Every activation fuses a 128-entry sensor ring into a position
//! estimate, runs a PID controller toward a target, scans for obstacles
//! (the input-dependent branch exposed as two variants), maintains and
//! smooths a long position history and picks the nearest waypoint from a
//! large table. Its footprint is several KiB — like the paper's MR, a
//! sizeable slice of the 32 KiB L1.

use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::isa::Cond;
use rtprogram::{InputVariant, Program};

use crate::layout;

/// Number of sensors fused per activation.
pub const SENSORS: u32 = 128;
/// Length of the rolling position history.
pub const HISTORY: u32 = 384;
/// Number of candidate waypoints scanned.
pub const WAYPOINTS: u32 = 256;
/// Obstacle threshold: a sensor reading below this triggers avoidance.
pub const OBSTACLE_THRESHOLD: i32 = 10;

/// Deterministic sensor initialization (all readings comfortably above the
/// obstacle threshold).
fn sensor_pattern() -> Vec<i32> {
    (0..SENSORS as i64).map(|i| (100 + (i * 37) % 64) as i32).collect()
}

/// Reference fused position for the default sensor pattern (used by
/// tests).
pub fn reference_position(sensors: &[i32]) -> i32 {
    let acc: i64 = sensors
        .iter()
        .enumerate()
        .map(|(i, s)| i64::from(*s) * i64::from(1 + (i as i32 % 4)))
        .sum();
    (acc >> 6) as i32
}

/// Builds the MR task program.
///
/// Variants: `"clear"` (no obstacle, avoidance arm skipped) and
/// `"obstacle"` (sensor 13 reads below [`OBSTACLE_THRESHOLD`], avoidance
/// arm taken).
pub fn mobile_robot() -> Program {
    let mut b = ProgramBuilder::new("mr", layout::MR_CODE, layout::MR_DATA);

    let sensors = b.data_words("sensors", &sensor_pattern());
    let weights =
        b.data_words("weights", &(0..SENSORS as i32).map(|i| 1 + (i % 4)).collect::<Vec<_>>());
    let history = b.data_space("history", HISTORY as usize);
    let smooth = b.data_space("smooth", HISTORY as usize);
    let waypoints = b.data_words(
        "waypoints",
        &(0..WAYPOINTS as i64).map(|i| ((i * 53) % 256) as i32).collect::<Vec<_>>(),
    );
    // gains: Kp, Ki, Kd, output shift
    let gains = b.data_words("gains", &[6, 2, 3, 4]);
    // state: prev_err, integral, pos, target
    let state = b.data_words("state", &[0, 0, 0, 500]);
    let actuators = b.data_space("actuators", 4);

    b.variant(InputVariant::named("clear"));
    b.variant(InputVariant::named("obstacle").with_write(sensors + 13 * 4, 3));

    // ---- 1. weighted sensor fusion: pos = (Σ sensors[i] * weights[i]) >> 6
    b.li_addr(R1, sensors);
    b.li_addr(R2, weights);
    b.li(R4, 0); // acc
    b.counted_loop(SENSORS, R3, |b| {
        b.ld(R5, R1, 0);
        b.ld(R6, R2, 0);
        b.mul(R5, R5, R6);
        b.add(R4, R4, R5);
        b.addi(R1, R1, 4);
        b.addi(R2, R2, 4);
    });
    b.li(R5, 6);
    b.sra(R8, R4, R5); // R8 = pos

    // ---- 2. PID toward state.target
    b.li_addr(R12, state);
    b.ld(R9, R12, 12); // target
    b.sub(R9, R9, R8); // R9 = error
    b.li_addr(R11, gains);
    b.ld(R5, R11, 0); // Kp
    b.mul(R5, R5, R9); // p-term
    b.ld(R6, R12, 4); // integral
    b.add(R6, R6, R9);
    b.st(R6, R12, 4); // integral += error
    b.ld(R7, R11, 4); // Ki
    b.mul(R6, R6, R7); // i-term
    b.ld(R7, R12, 0); // prev_err
    b.sub(R7, R9, R7); // error delta
    b.ld(R10, R11, 8); // Kd
    b.mul(R7, R7, R10); // d-term
    b.st(R9, R12, 0); // prev_err = error
    b.add(R5, R5, R6);
    b.add(R5, R5, R7);
    b.ld(R6, R11, 12); // output shift
    b.sra(R5, R5, R6); // control output
    b.li_addr(R10, actuators);
    b.st(R5, R10, 0);
    b.st(R8, R12, 8); // state.pos = pos

    // ---- 3. obstacle scan: min sensor reading, avoidance branch
    b.li_addr(R1, sensors);
    b.li(R10, i32::MAX);
    b.counted_loop(SENSORS, R3, |b| {
        b.ld(R5, R1, 0);
        b.if_then(Cond::Lt, R5, R10, |b| {
            b.add(R10, R5, R0);
        });
        b.addi(R1, R1, 4);
    });
    b.li(R5, OBSTACLE_THRESHOLD);
    b.li_addr(R6, actuators);
    b.if_else(
        Cond::Lt,
        R10,
        R5,
        |b| {
            // Avoidance: flag actuator 3 and bias actuator 1 away.
            b.li(R7, 1);
            b.st(R7, R6, 12);
            b.sub(R7, R0, R8);
            b.st(R7, R6, 4);
        },
        |b| {
            b.st(R0, R6, 12);
            b.st(R8, R6, 4);
        },
    );

    // ---- 4. rolling history: shift one slot, insert pos at the front
    b.li_addr(R1, history + 4 * (HISTORY as u64 - 1));
    b.counted_loop(HISTORY - 1, R3, |b| {
        b.ld(R5, R1, -4);
        b.st(R5, R1, 0);
        b.addi(R1, R1, -4);
    });
    b.li_addr(R1, history);
    b.st(R8, R1, 0);

    // ---- 4b. smoothing filter over the history into `smooth`
    b.li_addr(R1, history);
    b.li_addr(R2, smooth);
    b.li(R7, 1);
    b.counted_loop(HISTORY - 1, R3, |b| {
        b.ld(R5, R1, 0);
        b.ld(R6, R1, 4);
        b.add(R5, R5, R6);
        b.sra(R5, R5, R7); // (h[i] + h[i+1]) / 2
        b.st(R5, R2, 0);
        b.addi(R1, R1, 4);
        b.addi(R2, R2, 4);
    });

    // ---- 5. nearest waypoint scan
    b.li_addr(R1, waypoints);
    b.li(R11, i32::MAX); // best distance
    b.li(R12, 0); // best value
    b.counted_loop(WAYPOINTS, R3, |b| {
        b.ld(R5, R1, 0);
        b.sub(R6, R5, R8);
        b.if_then(Cond::Lt, R6, R0, |b| {
            b.sub(R6, R0, R6); // |wp - pos|
        });
        b.if_then(Cond::Lt, R6, R11, |b| {
            b.add(R11, R6, R0);
            b.add(R12, R5, R0);
        });
        b.addi(R1, R1, 4);
    });
    b.li_addr(R6, actuators);
    b.st(R12, R6, 8); // steer toward nearest waypoint

    b.build().expect("MR program is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::Simulator;

    fn run(variant: usize) -> (Program, Vec<i32>) {
        let p = mobile_robot();
        let mut sim = Simulator::with_variant(&p, &p.variants()[variant].clone()).unwrap();
        sim.run_to_halt().unwrap();
        let act = p.symbol("actuators").unwrap();
        let values = (0..4).map(|i| sim.memory().read(act + 4 * i).unwrap()).collect();
        (p, values)
    }

    #[test]
    fn fused_position_matches_reference() {
        let p = mobile_robot();
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        let state = p.symbol("state").unwrap();
        let pos = sim.memory().read(state + 8).unwrap();
        assert_eq!(pos, reference_position(&sensor_pattern()));
        assert!(pos > 0);
    }

    #[test]
    fn clear_variant_skips_avoidance() {
        let (_, act) = run(0);
        assert_eq!(act[3], 0, "no avoidance flag without an obstacle");
    }

    #[test]
    fn obstacle_variant_triggers_avoidance() {
        let (_, act) = run(1);
        assert_eq!(act[3], 1, "avoidance flag set when a sensor reads below threshold");
        assert!(act[1] < 0, "avoidance biases actuator 1 negative");
    }

    #[test]
    fn history_front_holds_position() {
        let p = mobile_robot();
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        let history = p.symbol("history").unwrap();
        let state = p.symbol("state").unwrap();
        assert_eq!(sim.memory().read(history).unwrap(), sim.memory().read(state + 8).unwrap());
    }

    #[test]
    fn nearest_waypoint_is_closest() {
        let p = mobile_robot();
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        let pos = reference_position(&sensor_pattern());
        let best = sim.memory().read(p.symbol("actuators").unwrap() + 8).unwrap();
        let expect = (0..WAYPOINTS as i64)
            .map(|i| ((i * 53) % 256) as i32)
            .min_by_key(|wp| (wp - pos).abs())
            .unwrap();
        assert_eq!(best, expect);
    }

    #[test]
    fn loop_bounds_declared() {
        let p = mobile_robot();
        let bounds: Vec<u32> = p.loop_bounds().values().copied().collect();
        assert!(bounds.contains(&SENSORS));
        assert!(bounds.contains(&(HISTORY - 1)));
        assert!(bounds.contains(&WAYPOINTS));
    }

    #[test]
    fn deterministic_instruction_count() {
        let p = mobile_robot();
        let mut a = Simulator::new(&p);
        let ta = a.run_to_halt().unwrap();
        let mut b = Simulator::new(&p);
        let tb = b.run_to_halt().unwrap();
        assert_eq!(ta.instructions, tb.instructions);
        assert!(ta.instructions > 1_000, "MR should be a non-trivial task");
    }
}
