//! Additional benchmark kernels beyond the paper's six tasks.
//!
//! These give downstream users (and the property tests) a richer library
//! of realistic task bodies: streaming DSP (FIR), dense linear algebra
//! (matrix multiply), table-driven bit manipulation (CRC-32),
//! data-dependent addressing (histogram) and data-dependent control flow
//! with a declared worst-case bound (insertion sort). Every kernel has a
//! bit-exact Rust reference checked by the tests.

use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::isa::Cond;
use rtprogram::{InputVariant, Program};

/// Deterministic pseudo-random word stream used to fill kernel inputs.
pub fn input_stream(len: usize, seed: u32) -> Vec<i32> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            // xorshift32
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x & 0x7fff) as i32 - 0x4000
        })
        .collect()
}

// ---------------------------------------------------------------------------
// FIR filter
// ---------------------------------------------------------------------------

/// Reference FIR: `out[i] = Σ_t x[i+t] · h[t]`.
pub fn reference_fir(x: &[i32], h: &[i32]) -> Vec<i32> {
    (0..=x.len() - h.len())
        .map(|i| h.iter().enumerate().map(|(t, c)| c.wrapping_mul(x[i + t])).sum())
        .collect()
}

/// Builds a FIR filter task: `outputs` output samples through `taps`
/// coefficients.
///
/// # Panics
///
/// Panics if `taps == 0` or `outputs == 0`.
pub fn fir_filter(code_base: u64, data_base: u64, taps: usize, outputs: usize) -> Program {
    assert!(taps > 0 && outputs > 0, "fir needs taps and outputs");
    let mut b = ProgramBuilder::new("fir", code_base, data_base);
    let x = b.data_words("x", &input_stream(outputs + taps - 1, 0xF1));
    let h = b.data_words("h", &input_stream(taps, 0x11).iter().map(|v| v % 16).collect::<Vec<_>>());
    let out = b.data_space("out", outputs);

    b.li_addr(R10, x);
    b.li_addr(R12, out);
    b.counted_loop(outputs as u32, R2, |b| {
        b.li(R4, 0); // acc
        b.add(R6, R10, R0);
        b.li_addr(R7, h);
        b.counted_loop(taps as u32, R3, |b| {
            b.ld(R8, R6, 0);
            b.ld(R9, R7, 0);
            b.mul(R8, R8, R9);
            b.add(R4, R4, R8);
            b.addi(R6, R6, 4);
            b.addi(R7, R7, 4);
        });
        b.st(R4, R12, 0);
        b.addi(R10, R10, 4);
        b.addi(R12, R12, 4);
    });
    b.build().expect("fir is well formed")
}

// ---------------------------------------------------------------------------
// Matrix multiply
// ---------------------------------------------------------------------------

/// Reference `n×n` matrix product (row-major, wrapping).
pub fn reference_matmul(a: &[i32], bm: &[i32], n: usize) -> Vec<i32> {
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(bm[k * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Builds an `n×n` integer matrix-multiply task.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn matrix_multiply(code_base: u64, data_base: u64, n: usize) -> Program {
    assert!(n > 0, "matrix must be non-empty");
    let mut b = ProgramBuilder::new("matmul", code_base, data_base);
    let a =
        b.data_words("a", &input_stream(n * n, 0xA1).iter().map(|v| v % 100).collect::<Vec<_>>());
    let bm =
        b.data_words("b", &input_stream(n * n, 0xB2).iter().map(|v| v % 100).collect::<Vec<_>>());
    let c = b.data_space("c", n * n);
    let row_bytes = 4 * n as i32;

    b.li(R15, 2);
    b.li_addr(R12, c);
    b.li_addr(R13, a); // row pointer of A
    b.counted_loop(n as u32, R2, |b| {
        b.li_addr(R14, bm); // column start of B for j sweep
        b.counted_loop(n as u32, R3, |b| {
            b.li(R10, 0); // acc
            b.add(R6, R13, R0); // a[i][0], stride 4
            b.add(R7, R14, R0); // b[0][j], stride 4n
            b.counted_loop(n as u32, R5, |b| {
                b.ld(R8, R6, 0);
                b.ld(R9, R7, 0);
                b.mul(R8, R8, R9);
                b.add(R10, R10, R8);
                b.addi(R6, R6, 4);
                b.addi(R7, R7, row_bytes);
            });
            b.st(R10, R12, 0);
            b.addi(R12, R12, 4);
            b.addi(R14, R14, 4);
        });
        b.addi(R13, R13, row_bytes);
    });
    b.build().expect("matmul is well formed")
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// The CRC-32 (IEEE, reflected) lookup table.
pub fn crc32_table() -> Vec<i32> {
    (0..256u32)
        .map(|i| {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            c as i32
        })
        .collect()
}

/// Reference CRC-32 over the little-endian bytes of `words`.
pub fn reference_crc32(words: &[i32]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for w in words {
        for byte in (*w as u32).to_le_bytes() {
            crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize] as u32;
        }
    }
    !crc
}

/// Builds a table-driven CRC-32 task over `words` input words.
///
/// # Panics
///
/// Panics if `words == 0`.
pub fn crc32(code_base: u64, data_base: u64, words: usize) -> Program {
    assert!(words > 0, "crc needs input");
    let mut b = ProgramBuilder::new("crc32", code_base, data_base);
    let input = b.data_words("input", &input_stream(words, 0xC3));
    let table = b.data_words("table", &crc32_table());
    let result = b.data_space("result", 1);

    b.li(R15, 2);
    b.li_addr(R10, input);
    b.li_addr(R11, table);
    b.li(R12, -1); // crc = 0xFFFF_FFFF
    b.li(R13, 0xFF);
    b.counted_loop(words as u32, R2, |b| {
        b.ld(R4, R10, 0); // word
        b.addi(R10, R10, 4);
        // Four bytes, little endian.
        b.counted_loop(4, R3, |b| {
            b.xor(R5, R12, R4); // crc ^ byte (low 8 bits matter)
            b.and(R5, R5, R13);
            b.shl(R5, R5, R15);
            b.add(R5, R11, R5);
            b.ld(R5, R5, 0); // table[(crc ^ b) & 0xff]
                             // crc = (crc >> 8) logical: arithmetic shift then mask.
            b.li(R6, 8);
            b.sra(R7, R12, R6);
            b.li(R6, 0x00FF_FFFF);
            b.and(R7, R7, R6);
            b.xor(R12, R7, R5);
            // next byte of the word
            b.li(R6, 8);
            b.sra(R4, R4, R6);
        });
    });
    b.li(R5, -1);
    b.xor(R12, R12, R5); // !crc
    b.li_addr(R6, result);
    b.st(R12, R6, 0);
    b.build().expect("crc32 is well formed")
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Reference histogram: `bins` power-of-two buckets over bits `[shift,
/// shift + log2(bins))` of each sample.
pub fn reference_histogram(samples: &[i32], bins: usize, shift: u32) -> Vec<i32> {
    let mut hist = vec![0i32; bins];
    for s in samples {
        let bin = ((*s as u32) >> shift) as usize & (bins - 1);
        hist[bin] += 1;
    }
    hist
}

/// Builds a histogram task: `samples` inputs into `bins` (power of two)
/// buckets. The store addresses are data-dependent — the stress case for
/// useful-block analysis.
///
/// # Panics
///
/// Panics if `bins` is not a power of two or `samples == 0`.
pub fn histogram(code_base: u64, data_base: u64, samples: usize, bins: usize) -> Program {
    assert!(bins.is_power_of_two() && bins > 0, "bins must be a power of two");
    assert!(samples > 0, "histogram needs samples");
    const SHIFT: i32 = 3;
    let mut b = ProgramBuilder::new("histogram", code_base, data_base);
    let input = b.data_words("input", &input_stream(samples, 0x87));
    let hist = b.data_space("hist", bins);

    b.li(R15, 2);
    b.li_addr(R10, input);
    b.li_addr(R11, hist);
    b.li(R13, bins as i32 - 1);
    b.li(R14, SHIFT);
    b.counted_loop(samples as u32, R2, |b| {
        b.ld(R4, R10, 0);
        b.addi(R10, R10, 4);
        b.sra(R4, R4, R14);
        b.and(R4, R4, R13); // bin
        b.shl(R4, R4, R15);
        b.add(R4, R11, R4);
        b.ld(R5, R4, 0);
        b.addi(R5, R5, 1);
        b.st(R5, R4, 0);
    });
    b.build().expect("histogram is well formed")
}

/// The shift the histogram kernel applies before binning (exposed so the
/// reference can match).
pub const HISTOGRAM_SHIFT: u32 = 3;

// ---------------------------------------------------------------------------
// Insertion sort
// ---------------------------------------------------------------------------

/// Builds an insertion-sort task over `n` words, with hand-rolled
/// data-dependent loops carrying worst-case `.bound` annotations.
///
/// Variants: `"scrambled"` (pseudo-random input) and `"sorted"` (already
/// ascending — the best-case path).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn insertion_sort(code_base: u64, data_base: u64, n: usize) -> Program {
    assert!(n >= 2, "sorting needs at least two elements");
    let mut b = ProgramBuilder::new("isort", code_base, data_base);
    let scrambled = input_stream(n, 0x51);
    let arr = b.data_words("arr", &scrambled);
    let mut sorted = scrambled.clone();
    sorted.sort_unstable();
    let mut v = InputVariant::named("sorted");
    for (i, value) in sorted.iter().enumerate() {
        v = v.with_write(arr + 4 * i as u64, *value);
    }
    b.variant(InputVariant::named("scrambled"));
    b.variant(v);

    // for i in 1..n: j = i; while j > 0 && arr[j-1] > arr[j]: swap; j -= 1
    b.li_addr(R10, arr);
    b.li(R2, 1); // i
    b.li(R11, n as i32);
    let outer = b.new_label();
    b.place(outer);
    b.declare_loop_bound(outer, (n - 1) as u32);
    {
        // j-pointer = arr + 4*i
        b.li(R15, 2);
        b.shl(R4, R2, R15);
        b.add(R4, R10, R4); // &arr[j]
        let inner = b.new_label();
        let done = b.new_label();
        b.place(inner);
        b.declare_loop_bound(inner, (n - 1) as u32);
        // stop when j == 0 (pointer back at arr)
        b.branch(Cond::Eq, R4, R10, done);
        b.ld(R5, R4, -4); // arr[j-1]
        b.ld(R6, R4, 0); // arr[j]
                         // if arr[j-1] <= arr[j]: done
        b.branch(Cond::Ge, R6, R5, done);
        b.st(R5, R4, 0); // swap
        b.st(R6, R4, -4);
        b.addi(R4, R4, -4);
        b.jump(inner);
        b.place(done);
    }
    b.addi(R2, R2, 1);
    let out_label = b.new_label();
    b.place(out_label);
    b.branch(Cond::Lt, R2, R11, outer);

    b.build().expect("insertion sort is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::Simulator;

    const CODE: u64 = 0x0005_0000;
    const DATA: u64 = 0x0030_0000;

    fn read_words(sim: &Simulator<'_>, base: u64, n: usize) -> Vec<i32> {
        (0..n as u64).map(|i| sim.memory().read(base + 4 * i).unwrap()).collect()
    }

    #[test]
    fn fir_matches_reference() {
        let p = fir_filter(CODE, DATA, 8, 24);
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        let x = input_stream(24 + 7, 0xF1);
        let h: Vec<i32> = input_stream(8, 0x11).iter().map(|v| v % 16).collect();
        assert_eq!(read_words(&sim, p.symbol("out").unwrap(), 24), reference_fir(&x, &h));
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 6;
        let p = matrix_multiply(CODE, DATA, n);
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        let a: Vec<i32> = input_stream(n * n, 0xA1).iter().map(|v| v % 100).collect();
        let bm: Vec<i32> = input_stream(n * n, 0xB2).iter().map(|v| v % 100).collect();
        assert_eq!(read_words(&sim, p.symbol("c").unwrap(), n * n), reference_matmul(&a, &bm, n));
    }

    #[test]
    fn crc32_matches_reference() {
        let p = crc32(CODE, DATA, 40);
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        let got = sim.memory().read(p.symbol("result").unwrap()).unwrap() as u32;
        assert_eq!(got, reference_crc32(&input_stream(40, 0xC3)));
    }

    #[test]
    fn crc32_of_known_vector() {
        // "1234" little-endian in one word: CRC-32("...") cross-checked
        // against the reference implementation only (the kernel hashes
        // word streams, not strings).
        let w = [i32::from_le_bytes(*b"1234")];
        assert_eq!(reference_crc32(&w), {
            // classic check value for ASCII "1234"
            0x9BE3_E0A3
        });
    }

    #[test]
    fn histogram_matches_reference() {
        let p = histogram(CODE, DATA, 100, 16);
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        let got = read_words(&sim, p.symbol("hist").unwrap(), 16);
        assert_eq!(got, reference_histogram(&input_stream(100, 0x87), 16, HISTOGRAM_SHIFT));
        assert_eq!(got.iter().sum::<i32>(), 100, "every sample lands in a bin");
    }

    #[test]
    fn insertion_sort_sorts_both_variants() {
        let n = 24;
        let p = insertion_sort(CODE, DATA, n);
        let mut expect = input_stream(n, 0x51);
        expect.sort_unstable();
        for variant in p.variants().to_vec() {
            let mut sim = Simulator::with_variant(&p, &variant).unwrap();
            sim.run_to_halt().unwrap();
            assert_eq!(
                read_words(&sim, p.symbol("arr").unwrap(), n),
                expect,
                "variant {}",
                variant.name
            );
        }
    }

    #[test]
    fn sorted_input_is_the_short_path() {
        let p = insertion_sort(CODE, DATA, 24);
        let mut scrambled = Simulator::with_variant(&p, &p.variants()[0].clone()).unwrap();
        let ts = scrambled.run_to_halt().unwrap();
        let mut sorted = Simulator::with_variant(&p, &p.variants()[1].clone()).unwrap();
        let tb = sorted.run_to_halt().unwrap();
        assert!(tb.instructions < ts.instructions, "best case must be cheaper");
    }

    #[test]
    fn kernels_declare_loop_bounds() {
        assert_eq!(fir_filter(CODE, DATA, 4, 8).loop_bounds().len(), 2);
        assert_eq!(matrix_multiply(CODE, DATA, 4).loop_bounds().len(), 3);
        assert_eq!(crc32(CODE, DATA, 8).loop_bounds().len(), 2);
        assert_eq!(histogram(CODE, DATA, 8, 8).loop_bounds().len(), 1);
        assert_eq!(insertion_sort(CODE, DATA, 8).loop_bounds().len(), 2);
    }

    #[test]
    fn input_stream_is_deterministic_and_bounded() {
        assert_eq!(input_stream(50, 7), input_stream(50, 7));
        assert_ne!(input_stream(50, 7), input_stream(50, 8));
        assert!(input_stream(1000, 3).iter().all(|v| (-0x4000..0x4000).contains(v)));
    }
}
