//! ADPCMC / ADPCMD — the IMA-ADPCM coder and decoder of Experiment II
//! (the paper takes them from MediaBench).
//!
//! Both tasks implement the standard IMA algorithm with the 89-entry step
//! table and 16-entry index-adjust table resident in data memory. The
//! [`reference`] module provides a bit-exact Rust model used by the tests
//! and by the decoder's input generation.

use rtprogram::builder::ProgramBuilder;
use rtprogram::isa::regs::*;
use rtprogram::isa::Cond;
use rtprogram::{InputVariant, Program};

use crate::layout;

/// Samples encoded per activation of ADPCMC.
pub const ENCODER_SAMPLES: usize = 512;
/// Codes decoded per activation of ADPCMD.
pub const DECODER_CODES: usize = 320;
/// Words in the encoder's code-history archive.
pub const ENCODER_HISTORY: usize = 256;

/// The standard IMA step-size table (89 entries).
pub const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The standard IMA index-adjust table (indexed by the 4-bit code).
pub const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Deterministic input waveform A (a two-tone integer sine mix).
pub fn waveform_a(n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            ((t * 0.12).sin() * 6000.0 + (t * 0.047).sin() * 2500.0) as i32
        })
        .collect()
}

/// Deterministic input waveform B (different tones, second variant).
pub fn waveform_b(n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            ((t * 0.31).sin() * 4500.0 + (t * 0.09).cos() * 3500.0) as i32
        })
        .collect()
}

/// Bit-exact Rust model of the IMA coder/decoder.
pub mod reference {
    use super::{INDEX_TABLE, STEP_TABLE};

    fn clamp_index(i: i32) -> i32 {
        i.clamp(0, 88)
    }

    fn clamp_sample(s: i32) -> i32 {
        s.clamp(-32768, 32767)
    }

    /// Encodes samples to 4-bit IMA codes (stored one per word).
    pub fn encode(samples: &[i32]) -> Vec<i32> {
        let (mut predicted, mut index) = (0i32, 0i32);
        samples
            .iter()
            .map(|sample| {
                let step = STEP_TABLE[index as usize];
                let mut diff = sample - predicted;
                let sign = if diff < 0 { 8 } else { 0 };
                if sign != 0 {
                    diff = -diff;
                }
                let mut delta = 0;
                let mut vpdiff = step >> 3;
                let mut step = step;
                if diff >= step {
                    delta |= 4;
                    diff -= step;
                    vpdiff += step;
                }
                step >>= 1;
                if diff >= step {
                    delta |= 2;
                    diff -= step;
                    vpdiff += step;
                }
                step >>= 1;
                if diff >= step {
                    delta |= 1;
                    vpdiff += step;
                }
                predicted =
                    clamp_sample(if sign != 0 { predicted - vpdiff } else { predicted + vpdiff });
                delta |= sign;
                index = clamp_index(index + INDEX_TABLE[delta as usize]);
                delta
            })
            .collect()
    }

    /// Decodes 4-bit IMA codes back to samples.
    pub fn decode(codes: &[i32]) -> Vec<i32> {
        let (mut predicted, mut index) = (0i32, 0i32);
        codes
            .iter()
            .map(|code| {
                let step = STEP_TABLE[index as usize];
                index = clamp_index(index + INDEX_TABLE[(*code & 15) as usize]);
                let sign = code & 8;
                let delta = code & 7;
                let mut vpdiff = step >> 3;
                if delta & 4 != 0 {
                    vpdiff += step;
                }
                if delta & 2 != 0 {
                    vpdiff += step >> 1;
                }
                if delta & 1 != 0 {
                    vpdiff += step >> 2;
                }
                predicted =
                    clamp_sample(if sign != 0 { predicted - vpdiff } else { predicted + vpdiff });
                predicted
            })
            .collect()
    }
}

/// Emits `predicted += / -= vpdiff` with clamping to 16-bit range.
/// `predicted` in `R14`, `vpdiff` in `R8`, `sign` in `R1`, scratch `R2`.
fn emit_predict_update(b: &mut ProgramBuilder) {
    b.if_else(Cond::Eq, R1, R0, |b| b.add(R14, R14, R8), |b| b.sub(R14, R14, R8));
    b.li(R2, 32767);
    b.if_then(Cond::Lt, R2, R14, |b| b.li(R14, 32767));
    b.li(R2, -32768);
    b.if_then(Cond::Lt, R14, R2, |b| b.li(R14, -32768));
}

/// Emits `index = clamp(index + index_table[R7 & 15], 0, 88)`.
/// `index` in `R9`, code in `R7`, index-table base in `R13`, scratch `R2`.
fn emit_index_update(b: &mut ProgramBuilder) {
    b.li(R2, 15);
    b.and(R2, R7, R2);
    b.shl(R2, R2, R15);
    b.add(R2, R13, R2);
    b.ld(R2, R2, 0);
    b.add(R9, R9, R2);
    b.if_then(Cond::Lt, R9, R0, |b| b.li(R9, 0));
    b.li(R2, 88);
    b.if_then(Cond::Lt, R2, R9, |b| b.li(R9, 88));
}

/// Builds the ADPCM encoder task (ADPCMC).
///
/// Variants: `"wave_a"` and `"wave_b"`, two input waveforms (the
/// per-sample branches are data dependent, so each variant exercises a
/// different dynamic path through the quantizer).
pub fn adpcm_encoder() -> Program {
    let n = ENCODER_SAMPLES;
    let mut b = ProgramBuilder::new("adpcmc", layout::ADPCMC_CODE, layout::ADPCMC_DATA);

    let pcm = b.data_words("pcm", &waveform_a(n));
    let codes = b.data_space("codes", n);
    let steps = b.data_words("steps", &STEP_TABLE);
    let idxtab = b.data_words("idxtab", &INDEX_TABLE);
    let history = b.data_space("history", ENCODER_HISTORY);

    b.variant(InputVariant::named("wave_a"));
    let mut vb = InputVariant::named("wave_b");
    for (i, v) in waveform_b(n).iter().enumerate() {
        vb = vb.with_write(pcm + 4 * i as u64, *v);
    }
    b.variant(vb);

    b.li_addr(R10, pcm);
    b.li_addr(R11, codes);
    b.li_addr(R12, steps);
    b.li_addr(R13, idxtab);
    b.li(R15, 2);
    b.li(R14, 0); // predicted
    b.li(R9, 0); // index

    b.counted_loop(n as u32, R3, |b| {
        // The loop counter runs n..1; ADPCM state is sequential, so derive
        // the forward sample index i = n - counter.
        b.li(R4, n as i32);
        b.sub(R4, R4, R3);
        b.shl(R4, R4, R15); // 4*i
        b.add(R2, R10, R4);
        b.ld(R2, R2, 0); // sample
                         // step = steps[index]
        b.shl(R5, R9, R15);
        b.add(R5, R12, R5);
        b.ld(R6, R5, 0); // step
        b.sub(R5, R2, R14); // diff
        b.li(R1, 0); // sign
        b.if_then(Cond::Lt, R5, R0, |b| {
            b.li(R1, 8);
            b.sub(R5, R0, R5);
        });
        b.li(R7, 0); // delta
        b.li(R2, 3);
        b.sra(R8, R6, R2); // vpdiff = step >> 3
        b.if_then(Cond::Ge, R5, R6, |b| {
            b.addi(R7, R7, 4);
            b.sub(R5, R5, R6);
            b.add(R8, R8, R6);
        });
        b.li(R2, 1);
        b.sra(R6, R6, R2);
        b.if_then(Cond::Ge, R5, R6, |b| {
            b.addi(R7, R7, 2);
            b.sub(R5, R5, R6);
            b.add(R8, R8, R6);
        });
        b.li(R2, 1);
        b.sra(R6, R6, R2);
        b.if_then(Cond::Ge, R5, R6, |b| {
            b.addi(R7, R7, 1);
            b.add(R8, R8, R6);
        });
        emit_predict_update(b);
        b.or(R7, R7, R1); // delta |= sign
        emit_index_update(b);
        b.add(R2, R11, R4);
        b.st(R7, R2, 0); // codes[i] = delta
    });

    // Archive every other code into the history ring (models the frame
    // hand-off to the transport task).
    b.li_addr(R10, codes);
    b.li_addr(R11, history);
    b.li(R15, 3);
    b.counted_loop(ENCODER_HISTORY as u32, R3, |b| {
        b.ld(R5, R10, 0);
        b.st(R5, R11, 0);
        b.addi(R10, R10, 8); // every other code word
        b.addi(R11, R11, 4);
    });

    b.build().expect("ADPCMC program is well formed")
}

/// Builds the ADPCM decoder task (ADPCMD). Its default input is the
/// reference encoding of waveform A; variant `"stream_b"` decodes
/// waveform B's encoding.
pub fn adpcm_decoder() -> Program {
    let n = DECODER_CODES;
    let mut b = ProgramBuilder::new("adpcmd", layout::ADPCMD_CODE, layout::ADPCMD_DATA);

    let codes_a = reference::encode(&waveform_a(n));
    let codes_b = reference::encode(&waveform_b(n));
    let codes = b.data_words("codes", &codes_a);
    let out = b.data_space("out", n);
    let steps = b.data_words("steps", &STEP_TABLE);
    let idxtab = b.data_words("idxtab", &INDEX_TABLE);
    let archive = b.data_space("archive", 512);

    b.variant(InputVariant::named("stream_a"));
    let mut vb = InputVariant::named("stream_b");
    for (i, v) in codes_b.iter().enumerate() {
        vb = vb.with_write(codes + 4 * i as u64, *v);
    }
    b.variant(vb);

    b.li_addr(R10, codes);
    b.li_addr(R11, out);
    b.li_addr(R12, steps);
    b.li_addr(R13, idxtab);
    b.li(R15, 2);
    b.li(R14, 0); // predicted
    b.li(R9, 0); // index

    b.counted_loop(n as u32, R3, |b| {
        // Forward code index (the decoder state is sequential too).
        b.li(R4, n as i32);
        b.sub(R4, R4, R3);
        b.shl(R4, R4, R15);
        b.add(R7, R10, R4);
        b.ld(R7, R7, 0); // code
                         // step = steps[index]
        b.shl(R5, R9, R15);
        b.add(R5, R12, R5);
        b.ld(R6, R5, 0); // step
        emit_index_update(b);
        b.li(R2, 8);
        b.and(R1, R7, R2); // sign
        b.li(R2, 3);
        b.sra(R8, R6, R2); // vpdiff = step >> 3
        b.li(R2, 4);
        b.and(R5, R7, R2);
        b.if_then(Cond::Ne, R5, R0, |b| b.add(R8, R8, R6));
        b.li(R2, 1);
        b.sra(R6, R6, R2);
        b.li(R2, 2);
        b.and(R5, R7, R2);
        b.if_then(Cond::Ne, R5, R0, |b| b.add(R8, R8, R6));
        b.li(R2, 1);
        b.sra(R6, R6, R2);
        b.and(R5, R7, R2);
        b.if_then(Cond::Ne, R5, R0, |b| b.add(R8, R8, R6));
        // predicted update expects sign != 0 in R1; reuse the shared
        // helper by normalizing sign into Eq-with-zero semantics.
        emit_predict_update(b);
        b.add(R2, R11, R4);
        b.st(R14, R2, 0); // out[i] = predicted
    });

    // Archive the decoded samples (zero-padded) into the playback buffer.
    b.li_addr(R10, out);
    b.li_addr(R11, archive);
    b.counted_loop(512, R3, |b| {
        b.li(R4, 512);
        b.sub(R4, R4, R3); // forward index
        b.li(R5, n as i32);
        b.if_else(
            Cond::Lt,
            R4,
            R5,
            |b| {
                b.shl(R6, R4, R15);
                b.add(R6, R10, R6);
                b.ld(R6, R6, 0);
            },
            |b| b.li(R6, 0),
        );
        b.shl(R7, R4, R15);
        b.add(R7, R11, R7);
        b.st(R6, R7, 0);
    });

    b.build().expect("ADPCMD program is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::Simulator;

    #[test]
    fn encoder_matches_reference_wave_a() {
        let p = adpcm_encoder();
        let mut sim = Simulator::with_variant(&p, &p.variants()[0].clone()).unwrap();
        sim.run_to_halt().unwrap();
        let base = p.symbol("codes").unwrap();
        let got: Vec<i32> =
            (0..ENCODER_SAMPLES as u64).map(|i| sim.memory().read(base + 4 * i).unwrap()).collect();
        assert_eq!(got, reference::encode(&waveform_a(ENCODER_SAMPLES)));
    }

    #[test]
    fn encoder_matches_reference_wave_b() {
        let p = adpcm_encoder();
        let mut sim = Simulator::with_variant(&p, &p.variants()[1].clone()).unwrap();
        sim.run_to_halt().unwrap();
        let base = p.symbol("codes").unwrap();
        let got: Vec<i32> =
            (0..ENCODER_SAMPLES as u64).map(|i| sim.memory().read(base + 4 * i).unwrap()).collect();
        assert_eq!(got, reference::encode(&waveform_b(ENCODER_SAMPLES)));
    }

    #[test]
    fn decoder_matches_reference() {
        let p = adpcm_decoder();
        let mut sim = Simulator::with_variant(&p, &p.variants()[0].clone()).unwrap();
        sim.run_to_halt().unwrap();
        let base = p.symbol("out").unwrap();
        let got: Vec<i32> =
            (0..DECODER_CODES as u64).map(|i| sim.memory().read(base + 4 * i).unwrap()).collect();
        let want = reference::decode(&reference::encode(&waveform_a(DECODER_CODES)));
        assert_eq!(got, want);
    }

    #[test]
    fn round_trip_tracks_the_waveform() {
        let original = waveform_a(DECODER_CODES);
        let decoded = reference::decode(&reference::encode(&original));
        // ADPCM is lossy; after the adaptive quantizer settles the error
        // must stay well under the signal swing (~8500).
        let max_err =
            original.iter().zip(&decoded).skip(32).map(|(a, b)| (a - b).abs()).max().unwrap();
        assert!(max_err < 2000, "round-trip error too large: {max_err}");
    }

    #[test]
    fn codes_are_four_bit() {
        for code in reference::encode(&waveform_b(200)) {
            assert!((0..16).contains(&code));
        }
    }

    #[test]
    fn variants_produce_different_codes() {
        let a = reference::encode(&waveform_a(100));
        let b = reference::encode(&waveform_b(100));
        assert_ne!(a, b);
    }

    #[test]
    fn encoder_is_the_biggest_exp2_task() {
        let pe = adpcm_encoder();
        let mut se = Simulator::new(&pe);
        let te = se.run_to_halt().unwrap();
        let pd = adpcm_decoder();
        let mut sd = Simulator::new(&pd);
        let td = sd.run_to_halt().unwrap();
        assert!(te.instructions > td.instructions);
    }

    #[test]
    fn step_table_is_monotone() {
        assert!(STEP_TABLE.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(STEP_TABLE.len(), 89);
        assert_eq!(INDEX_TABLE.len(), 16);
    }
}
