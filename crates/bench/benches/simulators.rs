//! Criterion benches for the substrates: cache simulator throughput, the
//! TRISC instruction-set simulator, the assembler and the scheduler
//! co-simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rtcache::{CacheGeometry, CacheSim, MemoryBlock, ReplacementPolicy};
use rtprogram::asm::assemble;
use rtprogram::sim::Simulator;
use rtsched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use rtwcet::TimingModel;

fn bench_cache(c: &mut Criterion) {
    let g = CacheGeometry::paper_l1();
    let accesses: Vec<MemoryBlock> =
        (0..10_000u64).map(|i| MemoryBlock::new((i * 31) % 3000)).collect();
    let mut group = c.benchmark_group("cache_sim");
    group.throughput(Throughput::Elements(accesses.len() as u64));
    for policy in ReplacementPolicy::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, policy| {
            b.iter(|| {
                let mut cache = CacheSim::with_policy(g, *policy);
                for a in &accesses {
                    black_box(cache.access_block(*a));
                }
                cache.stats()
            })
        });
    }
    group.finish();
}

fn bench_iss(c: &mut Criterion) {
    let program = rtworkloads::mobile_robot();
    let mut probe = Simulator::new(&program);
    let instructions = probe.run_to_halt().expect("runs").instructions;
    let mut group = c.benchmark_group("iss");
    group.throughput(Throughput::Elements(instructions));
    group.bench_function("mr_full_run", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(black_box(&program));
            sim.run_to_halt().expect("runs").instructions
        })
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    // A representative source: a few hundred lines of loops and data.
    let mut source = String::from(".text 0x1000\n.data 0x80000\n");
    for i in 0..64 {
        source.push_str(&format!("tab{i}: .word 1, 2, 3, 4\n"));
    }
    source.push_str(".text\nstart:\n");
    for i in 0..64 {
        source.push_str(&format!(
            "l{i}: li r1, tab{i}\n ld r2, 0(r1)\n addi r2, r2, 1\n st r2, 0(r1)\n"
        ));
    }
    source.push_str(" halt\n");
    c.bench_function("assembler/350_lines", |b| {
        b.iter(|| assemble("bench", black_box(&source)).expect("assembles"))
    });
}

fn bench_sched(c: &mut Criterion) {
    let tasks = vec![
        SchedTask::new(rtworkloads::mobile_robot(), 60_000, 2),
        SchedTask::new(rtworkloads::edge_detection_with_dim(12), 400_000, 3),
    ];
    let config = SchedConfig {
        geometry: CacheGeometry::paper_l1(),
        model: TimingModel::default(),
        ctx_switch: 400,
        horizon: 400_000,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    c.bench_function("sched/two_tasks_400k_cycles", |b| {
        b.iter(|| simulate(black_box(&tasks), black_box(&config)).expect("simulates"))
    });
}

criterion_group!(benches, bench_cache, bench_iss, bench_assembler, bench_sched);
criterion_main!(benches);
