//! Criterion benches for the analysis pipeline: CIIP construction and
//! bounds, useful-block sweeps (exact and dataflow), whole-task analysis
//! and the WCRT recurrence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crpd::{dataflow_useful, reload_lines, CrpdApproach, CrpdMatrix, UsefulTrace};
use crpd::{AnalyzedTask, TaskParams, WcrtParams};
use rtcache::{CacheGeometry, Ciip, MemoryBlock, PackedFootprint};
use rtwcet::TimingModel;

fn geometry() -> CacheGeometry {
    CacheGeometry::paper_l1()
}

fn analyzed(program: &rtprogram::Program, priority: u32) -> AnalyzedTask {
    AnalyzedTask::analyze(
        program,
        TaskParams { period: 10_000_000, priority },
        geometry(),
        TimingModel::default(),
    )
    .expect("workload analyzes")
}

fn bench_ciip(c: &mut Criterion) {
    let g = geometry();
    let blocks: Vec<MemoryBlock> = (0..2048u64).map(|i| MemoryBlock::new(i * 7 % 4096)).collect();
    c.bench_function("ciip/from_blocks_2048", |b| {
        b.iter(|| Ciip::from_blocks(g, black_box(&blocks).iter().copied()))
    });
    let a = Ciip::from_blocks(g, blocks.iter().copied());
    let b2 = Ciip::from_blocks(g, (0..1024u64).map(|i| MemoryBlock::new(i * 13 % 4096)));
    c.bench_function("ciip/overlap_bound", |b| {
        b.iter(|| black_box(&a).overlap_bound(black_box(&b2)))
    });
    let pa = PackedFootprint::from_ciip(&a).expect("paper geometry packs");
    let pb = PackedFootprint::from_ciip(&b2).expect("paper geometry packs");
    c.bench_function("ciip/overlap_bound_packed", |b| {
        b.iter(|| black_box(&pa).overlap_bound(black_box(&pb)))
    });
    c.bench_function("ciip/pack", |b| b.iter(|| PackedFootprint::from_ciip(black_box(&a))));
    c.bench_function("ciip/line_bound", |b| b.iter(|| black_box(&a).line_bound()));
}

fn bench_useful(c: &mut Criterion) {
    let g = geometry();
    let program = rtworkloads::edge_detection_with_dim(16);
    let trace = rtprogram::sim::trace_variant(&program, &program.variants()[1]).expect("runs");
    c.bench_function("useful/from_trace_ed16", |b| {
        b.iter(|| UsefulTrace::from_trace(black_box(&trace), g))
    });
    let ut = UsefulTrace::from_trace(&trace, g);
    c.bench_function("useful/max_line_bound", |b| b.iter(|| black_box(&ut).max_line_bound()));
    let mb = Ciip::from_blocks(g, (0..512u64).map(MemoryBlock::new));
    c.bench_function("useful/max_overlap_bound", |b| {
        b.iter(|| black_box(&ut).max_overlap_bound(black_box(&mb)))
    });
    let packed_mb = PackedFootprint::from_ciip(&mb).expect("paper geometry packs");
    c.bench_function("useful/max_packed_overlap", |b| {
        b.iter(|| black_box(&ut).max_packed_overlap(black_box(&packed_mb)))
    });
    c.bench_function("useful/dataflow_ed16", |b| {
        b.iter(|| dataflow_useful(black_box(&program), g).expect("analyzes"))
    });
}

fn bench_task_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_analysis");
    for dim in [8usize, 12, 16] {
        let program = rtworkloads::edge_detection_with_dim(dim);
        group.bench_with_input(BenchmarkId::new("ed", dim), &program, |b, p| {
            b.iter(|| analyzed(black_box(p), 3))
        });
    }
    group.finish();
}

fn bench_approaches_and_wcrt(c: &mut Criterion) {
    let mr = analyzed(&rtworkloads::mobile_robot(), 2);
    let ed = analyzed(&rtworkloads::edge_detection_with_dim(12), 3);
    let mut group = c.benchmark_group("reload_lines");
    for approach in CrpdApproach::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(approach.label()), &approach, |b, a| {
            b.iter(|| reload_lines(*a, black_box(&ed), black_box(&mr)))
        });
    }
    group.finish();

    let tasks = vec![mr, ed];
    let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
    let params = WcrtParams { miss_penalty: 20, ctx_switch: 400, max_iterations: 10_000 };
    c.bench_function("wcrt/analyze_all", |b| {
        b.iter(|| crpd::analyze_all(black_box(&tasks), black_box(&matrix), &params))
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let l1 = CacheGeometry::new(128, 2, 16).expect("valid geometry");
    let l2 = CacheGeometry::new(1024, 8, 16).expect("valid geometry");
    let program = rtworkloads::mobile_robot();
    c.bench_function("hierarchy/wcet_mr", |b| {
        b.iter(|| {
            rtwcet::estimate_wcet_hierarchy(
                black_box(&program),
                l1,
                l2,
                rtwcet::HierarchyTimingModel::default(),
            )
            .expect("estimates")
        })
    });
    let mr = AnalyzedTask::analyze(
        &program,
        TaskParams { period: 1_000_000, priority: 2 },
        l1,
        TimingModel::default(),
    )
    .expect("analyzes");
    let ed = AnalyzedTask::analyze(
        &rtworkloads::edge_detection_with_dim(12),
        TaskParams { period: 2_000_000, priority: 3 },
        l1,
        TimingModel::default(),
    )
    .expect("analyzes");
    let params = crpd::TwoLevelParams {
        l2_geometry: l2,
        model: rtwcet::HierarchyTimingModel::default(),
        ctx_switch: 300,
        max_iterations: 10_000,
    };
    c.bench_function("hierarchy/two_level_delay", |b| {
        b.iter(|| crpd::two_level_preemption_delay(black_box(&ed), black_box(&mr), &params))
    });
}

fn bench_kernels(c: &mut Criterion) {
    use rtworkloads::kernels;
    let mut group = c.benchmark_group("kernel_analysis");
    for (name, program) in [
        ("fir", kernels::fir_filter(0x0005_0000, 0x0030_0000, 8, 32)),
        ("matmul", kernels::matrix_multiply(0x0005_4000, 0x0030_0000, 8)),
        ("crc32", kernels::crc32(0x0005_8000, 0x0030_0000, 64)),
        ("histogram", kernels::histogram(0x0005_c000, 0x0030_0000, 128, 16)),
        ("isort", kernels::insertion_sort(0x0006_0000, 0x0030_0000, 32)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| analyzed(black_box(p), 2))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ciip,
    bench_useful,
    bench_task_analysis,
    bench_approaches_and_wcrt,
    bench_hierarchy,
    bench_kernels
);
criterion_main!(benches);
