//! CRPD kernel microbenchmark: the packed Eq. 2/3 min-sum against the
//! tree walk over `Ciip` maps, plus the skyline pruning ratio of every
//! paper workload's useful-block traces.
//!
//! ```text
//! cargo run --release -p rtbench --bin crpdbench            # full dims
//! cargo run --release -p rtbench --bin crpdbench -- --quick # CI smoke
//! ```
//!
//! Two measurement families, both on the paper's L1 geometry (512 sets,
//! 4 ways):
//!
//! 1. **Kernel**: `Ciip::overlap_bound` (BTreeMap walk) vs
//!    `PackedFootprint::overlap_bound` (dense chunked min-sum), on a
//!    synthetic dense footprint pair and on the union footprints of two
//!    analyzed workloads — the exact operands Approach 2 feeds the
//!    kernel. Every timed pair is first asserted to produce identical
//!    bounds.
//! 2. **Skyline**: per workload, how many candidate useful-footprint
//!    peaks the dominance pruning examined and how many Pareto-maximal
//!    points survived, plus packed-vs-tree timings of the Approach 3/4
//!    inner loop (`max_useful_overlap`) against a preemptor footprint.
//!
//! The numbers land in `BENCH_crpd_kernel.json` (`--json-out PATH` to
//! relocate). The run **fails** (exit non-zero, after publishing the
//! JSON) if the packed kernel is not faster than the tree walk on the
//! union-footprint case — the regression gate CI's bench-smoke job
//! enforces.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use crpd::{AnalyzedTask, TaskParams};
use rtcache::{CacheGeometry, Ciip, MemoryBlock, PackedFootprint};
use rtserver::json::Json;
use rtwcet::TimingModel;

struct Options {
    quick: bool,
    json_out: String,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options { quick: false, json_out: "BENCH_crpd_kernel.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--json-out" => {
                opts.json_out = args.next().ok_or("--json-out needs a value")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Mean ns/call over `iters` calls, after a 10% warmup.
fn bench_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
}

/// Best of three measurement reps — the gate should reflect the kernels,
/// not a scheduler hiccup on a shared CI runner.
fn best_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    (0..3).map(|_| bench_ns(iters, &mut f)).fold(f64::INFINITY, f64::min)
}

fn analyzed(program: &rtprogram::Program, priority: u32) -> AnalyzedTask {
    AnalyzedTask::analyze(
        program,
        TaskParams { period: 10_000_000, priority },
        CacheGeometry::paper_l1(),
        TimingModel::default(),
    )
    .expect("workload analyzes")
}

/// One packed-vs-tree timing row plus its speedup; asserts equivalence
/// before timing.
fn kernel_row(label: &str, iters: u32, a: &Ciip, b: &Ciip) -> (Json, f64) {
    let pa = PackedFootprint::from_ciip(a).expect("paper geometry packs");
    let pb = PackedFootprint::from_ciip(b).expect("paper geometry packs");
    let bound = a.overlap_bound(b);
    assert_eq!(pa.overlap_bound(&pb), bound, "{label}: packed != tree");
    let tree_ns = best_ns(iters, || {
        black_box(black_box(a).overlap_bound(black_box(b)));
    });
    let packed_ns = best_ns(iters.saturating_mul(8), || {
        black_box(black_box(&pa).overlap_bound(black_box(&pb)));
    });
    let speedup = tree_ns / packed_ns;
    println!(
        "kernel {label:>16}: tree {tree_ns:>9.1} ns, packed {packed_ns:>7.1} ns \
         ({speedup:.1}x, bound {bound})"
    );
    let row = Json::obj([
        ("bound", Json::from(bound as u64)),
        ("tree_ns", Json::Num(tree_ns)),
        ("packed_ns", Json::Num(packed_ns)),
        ("speedup", Json::Num(speedup)),
    ]);
    (row, speedup)
}

/// Per-workload skyline census and Approach 3/4 inner-loop timing: how
/// hard the dominance pruning worked on this task's traces, and how the
/// packed `max_useful_overlap` compares to the exact tree sweep against
/// `preemptor`'s footprint (equivalence asserted first).
fn workload_row(task: &AnalyzedTask, preemptor: &AnalyzedTask, iters: u32) -> Json {
    let (mut kept, mut candidates) = (0u64, 0u64);
    for path in task.paths() {
        kept += path.trace.skyline_kept().unwrap_or(0) as u64;
        candidates += path.trace.skyline_candidates().unwrap_or(0) as u64;
    }
    let pruned_ratio = if candidates == 0 { 0.0 } else { 1.0 - kept as f64 / candidates as f64 };
    let mb = preemptor.all_blocks();
    let packed_mb = preemptor.all_blocks_packed().expect("paper geometry packs");
    let bound = task.max_useful_overlap(mb);
    assert_eq!(task.max_useful_overlap_packed(packed_mb), bound, "packed != tree");
    let tree_ns = best_ns(iters, || {
        let exact: usize = task
            .paths()
            .iter()
            .map(|p| p.trace.max_overlap_bound(black_box(mb)).0)
            .max()
            .unwrap_or(0);
        black_box(exact);
    });
    let packed_ns = best_ns(iters.saturating_mul(8), || {
        black_box(black_box(task).max_useful_overlap_packed(black_box(packed_mb)));
    });
    println!(
        "skyline {:>16}: {kept} of {candidates} peaks kept (pruned {:.1}%), \
         useful-overlap tree {tree_ns:>11.1} ns vs packed {packed_ns:>9.1} ns ({:.1}x)",
        task.name(),
        pruned_ratio * 100.0,
        tree_ns / packed_ns,
    );
    Json::obj([
        ("paths", Json::from(task.paths().len() as u64)),
        ("skyline_kept", Json::from(kept)),
        ("skyline_candidates", Json::from(candidates)),
        ("pruned_ratio", Json::Num(pruned_ratio)),
        ("useful_overlap_bound", Json::from(bound as u64)),
        ("useful_overlap_tree_ns", Json::Num(tree_ns)),
        ("useful_overlap_packed_ns", Json::Num(packed_ns)),
        ("useful_overlap_speedup", Json::Num(tree_ns / packed_ns)),
    ])
}

fn run() -> Result<(), String> {
    let opts = parse_options()?;
    let geometry = CacheGeometry::paper_l1();
    let kernel_iters: u32 = if opts.quick { 2_000 } else { 20_000 };
    let sweep_iters: u32 = if opts.quick { 5 } else { 25 };
    println!(
        "crpdbench: Eq. 2/3 kernel on {} sets x {} ways ({} mode)",
        geometry.sets(),
        geometry.ways(),
        if opts.quick { "quick" } else { "full" },
    );

    // Synthetic dense pair: every set occupied, the kernel's worst case.
    let dense_a = Ciip::from_blocks(geometry, (0..2048u64).map(|i| MemoryBlock::new(i * 7 % 4096)));
    let dense_b =
        Ciip::from_blocks(geometry, (0..1024u64).map(|i| MemoryBlock::new(i * 13 % 4096)));
    let (synthetic, _) = kernel_row("synthetic_dense", kernel_iters, &dense_a, &dense_b);

    // The Approach 2 operands: union footprints of two analyzed tasks.
    let (preempted, preemptor) = if opts.quick {
        (
            analyzed(&rtworkloads::edge_detection_with_dim(10), 3),
            analyzed(&rtworkloads::mobile_robot(), 2),
        )
    } else {
        (analyzed(&rtworkloads::edge_detection(), 3), analyzed(&rtworkloads::mobile_robot(), 2))
    };
    let (union, union_speedup) =
        kernel_row("union_footprint", kernel_iters, preempted.all_blocks(), preemptor.all_blocks());

    // Skyline census across the paper workloads (reduced dims in quick
    // mode keep the smoke job fast; full mode uses the paper's sizes).
    let workloads: Vec<AnalyzedTask> = if opts.quick {
        vec![
            analyzed(&rtworkloads::adpcm_decoder(), 2),
            analyzed(&rtworkloads::idct_with_blocks(2), 2),
            analyzed(&rtworkloads::ofdm_transmitter_with_points(16), 3),
        ]
    } else {
        vec![
            analyzed(&rtworkloads::adpcm_encoder(), 2),
            analyzed(&rtworkloads::adpcm_decoder(), 2),
            analyzed(&rtworkloads::idct(), 2),
            analyzed(&rtworkloads::ofdm_transmitter(), 3),
        ]
    };
    let mut skyline_rows = vec![
        (preempted.name().to_string(), workload_row(&preempted, &preemptor, sweep_iters)),
        (preemptor.name().to_string(), workload_row(&preemptor, &preempted, sweep_iters)),
    ];
    for task in &workloads {
        skyline_rows.push((task.name().to_string(), workload_row(task, &preemptor, sweep_iters)));
    }
    let (total_kept, total_pruned) = crpd::skyline_stats();

    write_json(
        &opts.json_out,
        Json::obj([
            ("mode", Json::from(if opts.quick { "quick" } else { "full" })),
            (
                "geometry",
                Json::obj([
                    ("sets", Json::from(u64::from(geometry.sets()))),
                    ("ways", Json::from(u64::from(geometry.ways()))),
                ]),
            ),
            ("kernel", Json::obj([("synthetic_dense", synthetic), ("union_footprint", union)])),
            ("skyline", Json::Obj(skyline_rows.into_iter().collect())),
            (
                "skyline_totals",
                Json::obj([("kept", Json::from(total_kept)), ("pruned", Json::from(total_pruned))]),
            ),
        ]),
    )?;

    // Gate after publishing, so a failed run still leaves its evidence.
    if union_speedup <= 1.0 {
        return Err(format!(
            "packed kernel is not faster than the tree walk on the union-footprint \
             case ({union_speedup:.2}x)"
        ));
    }
    Ok(())
}

fn write_json(path: &str, report: Json) -> Result<(), String> {
    let mut text = report.encode();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("crpdbench: {message}");
            eprintln!("usage: crpdbench [--quick] [--json-out PATH]");
            ExitCode::from(1)
        }
    }
}
