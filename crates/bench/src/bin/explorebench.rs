//! Benchmark for the `rtexplore` design-space sweep engine.
//!
//! ```text
//! # Full grid (1152 points):
//! cargo run --release -p rtbench --bin explorebench
//!
//! # CI smoke grid (256 points) with the stage-hit-rate gate:
//! cargo run --release -p rtbench --bin explorebench -- --small --min-stage-hit-rate 0.9
//! ```
//!
//! Runs one sweep over a fixed two-task system and a declared grid,
//! measuring what the sweep engine promises:
//!
//! * **Dedup**: the `rtobs` span counts prove assemble ran once per task
//!   and analyze once per unique `(task, geometry, model)` key — and that
//!   a warm re-run of the whole grid re-runs none of them.
//! * **Hit rates**: the assemble/analyze stage-lookup hit rates over the
//!   run; `--min-stage-hit-rate R` turns them into a gate (checked after
//!   the JSON is published, so a failed run still leaves its evidence).
//! * **Determinism**: the full rendered report (points + Pareto front) is
//!   byte-identical under `rtpar` pools of 1, 2 and 8 threads.
//!
//! The summary — points/sec, stage hit rates, front size, invariance
//! verdict and per-stage span durations — lands in `BENCH_explore.json`
//! (`--json-out PATH` to relocate it).

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use crpd::CrpdCellCache;
use rtcli::SystemSpec;
use rtexplore::{run_sweep, Grid, LocalStore, Plan};
use rtserver::json::Json;

const SPEC: &str = "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n";
const TASK_HI: &str = ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nli r3, 4\nloop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\nbne r3, r0, loop\n.bound loop, 4\nhalt\n";
const TASK_LO: &str = ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nld r4, 4(r1)\nadd r2, r2, r4\nhalt\n";

/// The full grid: 4 x 3 x 1 x 2 geometry/model axes and 2 x 3 x 2 x 4
/// scheduling/approach axes = 1152 points over 24 unique
/// `(geometry, model)` keys per task.
const FULL_GRID: &str = "sets 32 64 128 256\nways 1 2 4\nline 16\ncmiss 20 40\nccs 50 150\n\
                         period-scale 0.5 1 2\npriority-rot 0 1\napproach all\n";

/// The CI smoke grid: 256 points over 16 unique keys per task — enough
/// lookups per key that the 0.9 stage-hit-rate gate has headroom.
const SMALL_GRID: &str = "sets 32 64\nways 1 2\nline 16 32\ncmiss 20 40\n\
                          period-scale 1 2\npriority-rot 0 1\napproach all\n";

struct Options {
    small: bool,
    json_out: String,
    min_stage_hit_rate: Option<f64>,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        small: false,
        json_out: "BENCH_explore.json".to_string(),
        min_stage_hit_rate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--small" => opts.small = true,
            "--json-out" => opts.json_out = value("--json-out")?,
            "--min-stage-hit-rate" => {
                let rate: f64 = value("--min-stage-hit-rate")?
                    .parse()
                    .map_err(|e| format!("--min-stage-hit-rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--min-stage-hit-rate must be in [0, 1]".to_string());
                }
                opts.min_stage_hit_rate = Some(rate);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn sources() -> Vec<(String, String)> {
    vec![("hi".to_string(), TASK_HI.to_string()), ("lo".to_string(), TASK_LO.to_string())]
}

/// The recorder's per-stage span totals as a JSON object.
fn stage_durations_json(session: &rtobs::Session) -> Json {
    Json::Obj(
        session
            .recorder()
            .stage_durations()
            .into_iter()
            .map(|(stage, (count, total_us))| {
                let entry =
                    Json::obj([("count", Json::from(count)), ("total_us", Json::from(total_us))]);
                (stage.to_string(), entry)
            })
            .collect(),
    )
}

fn write_bench_json(path: &str, report: Json) -> Result<(), String> {
    let mut text = report.encode();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn run() -> Result<(), String> {
    let opts = parse_options()?;
    let session = rtobs::begin();
    let spec = SystemSpec::parse(SPEC, Path::new("")).map_err(|e| e.to_string())?;
    let grid_text = if opts.small { SMALL_GRID } else { FULL_GRID };
    let grid = Grid::parse(grid_text).map_err(|e| e.to_string())?;
    let plan = Plan::new(&spec, &grid).map_err(|e| e.to_string())?;
    let tasks = plan.task_count() as u64;
    let unique_keys =
        (grid.sets.len() * grid.ways.len() * grid.line.len() * grid.cmiss.len()) as u64;
    println!(
        "explorebench: {} grid, {} points ({}), {unique_keys} unique (geometry, model) keys/task",
        if opts.small { "small" } else { "full" },
        plan.len(),
        plan.describe_axes()
    );

    // Timed cold sweep on the default pool against one shared store.
    let store = LocalStore::new(sources());
    let cells = CrpdCellCache::default();
    let provider = |task: usize, geometry, model| store.analyzed_program(task, geometry, model);
    let started = Instant::now();
    let mut heartbeat = rtobs::flight::Heartbeat::new(std::time::Duration::from_secs(5));
    let mut done = 0u64;
    let total = plan.len() as u64;
    let outcome = run_sweep(&plan, &provider, &cells, |batch, _front| {
        done += batch.len() as u64;
        if let Some(line) = heartbeat.poll(done, Some(total)) {
            eprintln!("explorebench: {line}");
        }
    })
    .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    let points_per_sec = outcome.points as f64 / elapsed.as_secs_f64();
    println!(
        "cold sweep: {} points in {elapsed:.2?} ({points_per_sec:.0} points/s), \
         Pareto front of {}",
        outcome.points,
        outcome.front.len()
    );

    // Dedup proof, part 1: one assemble span per task, one analyze span
    // per unique (task, geometry, model) key — never per point.
    let cold_spans = session.recorder().stage_durations();
    let span_count = |spans: &std::collections::BTreeMap<&'static str, (u64, u64)>, stage: &str| {
        spans.get(stage).map(|(count, _)| *count).unwrap_or(0)
    };
    let analyze_spans = span_count(&cold_spans, "analyze");
    let assemble_spans = span_count(&cold_spans, "assemble");
    if analyze_spans != unique_keys * tasks {
        return Err(format!(
            "expected {} analyze spans (one per unique key), saw {analyze_spans}",
            unique_keys * tasks
        ));
    }
    if assemble_spans != tasks {
        return Err(format!(
            "expected {tasks} assemble spans (one per task), saw {assemble_spans}"
        ));
    }
    println!(
        "dedup: {analyze_spans} analyze spans for {} points ({assemble_spans} assembles)",
        outcome.points
    );

    // Dedup proof, part 2: re-sweeping the whole grid against the warm
    // store runs zero additional artifact-pipeline spans.
    let warm_outcome = run_sweep(&plan, &provider, &cells, |_, _| {}).map_err(|e| e.to_string())?;
    let warm_spans = session.recorder().stage_durations();
    for stage in ["assemble", "analyze", "trace", "ciip", "wcet"] {
        let (cold, warm) = (span_count(&cold_spans, stage), span_count(&warm_spans, stage));
        if warm != cold {
            return Err(format!("warm re-sweep re-ran stage {stage}: {cold} -> {warm} spans"));
        }
    }
    if warm_outcome.front.members().len() != outcome.front.members().len() {
        return Err("warm re-sweep changed the front".to_string());
    }
    println!("dedup: warm re-sweep of all {} points re-ran zero pipeline spans", outcome.points);

    // Stage hit rates over everything this process looked up.
    let counters = session.recorder().counters();
    let mut hit_rates = std::collections::BTreeMap::new();
    let mut gate_failures = Vec::new();
    for stage in ["assemble", "analyze"] {
        let tally = counters.stage_lookups.get(stage).copied().unwrap_or_default();
        let lookups = tally.hits + tally.misses;
        let rate = if lookups == 0 { 1.0 } else { tally.hits as f64 / lookups as f64 };
        println!(
            "stage {stage:>9}: {} hits / {} misses (hit rate {rate:.3})",
            tally.hits, tally.misses
        );
        if let Some(min) = opts.min_stage_hit_rate {
            if rate < min {
                gate_failures
                    .push(format!("stage {stage}: hit rate {rate:.3} < required {min:.3}"));
            }
        }
        hit_rates.insert(
            stage.to_string(),
            Json::obj([
                ("hits", Json::from(tally.hits)),
                ("misses", Json::from(tally.misses)),
                ("hit_rate", Json::Num(rate)),
            ]),
        );
    }

    // Determinism: the full rendered report is byte-identical at 1, 2
    // and 8 threads (fresh store per run; the text includes every
    // per-point row, the front and its explanations).
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 8] {
        let pool = rtpar::Pool::new(threads);
        let report = pool
            .install(|| rtexplore::cmd_explore_with(&spec, sources(), &grid))
            .map_err(|e| e.to_string())?;
        match &reference {
            None => reference = Some(report),
            Some(baseline) => {
                if report != *baseline {
                    return Err(format!("report at {threads} threads differs from 1 thread"));
                }
            }
        }
    }
    println!("invariance: report byte-identical at 1/2/8 threads");

    write_bench_json(
        &opts.json_out,
        Json::obj([
            ("mode", Json::from(if opts.small { "small" } else { "full" })),
            ("points", Json::from(outcome.points as u64)),
            ("elapsed_secs", Json::Num(elapsed.as_secs_f64())),
            ("points_per_sec", Json::Num(points_per_sec)),
            ("front_size", Json::from(outcome.front.len() as u64)),
            ("unique_analysis_keys_per_task", Json::from(unique_keys)),
            ("analyze_spans", Json::from(analyze_spans)),
            ("assemble_spans", Json::from(assemble_spans)),
            ("stage_hit_rates", Json::Obj(hit_rates)),
            (
                "threads_invariance",
                Json::Arr(vec![Json::from(1u64), Json::from(2u64), Json::from(8u64)]),
            ),
            ("stages", stage_durations_json(&session)),
        ]),
    )?;
    // Gate after publishing, so a failed run still leaves its evidence.
    if gate_failures.is_empty() {
        Ok(())
    } else {
        Err(gate_failures.join("; "))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("explorebench: {message}");
            eprintln!("usage: explorebench [--small] [--json-out PATH] [--min-stage-hit-rate R]");
            ExitCode::from(2)
        }
    }
}
