//! Regenerates every table and figure of Tan & Mooney (DATE 2004).
//!
//! ```text
//! cargo run --release -p rtbench --bin repro -- all
//! cargo run --release -p rtbench --bin repro -- table2
//! cargo run --release -p rtbench --bin repro -- fig4
//! ```

use crpd::{dataflow_useful, reload_lines, CrpdApproach, CrpdMatrix};
use rtbench::tables::{self, wcrt_comparison};
use rtbench::{experiment1_spec, experiment2_spec, Experiment, REFERENCE_CMISS};
use rtcache::{CacheGeometry, Ciip};
use rtprogram::cfg::Cfg;
use rtprogram::paths::enumerate_paths;
use rtsched::{render_timeline, simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use rtwcet::TimingModel;

/// Simulation length for ART measurements, in periods of the
/// lowest-priority task.
const ART_PERIODS: u64 = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let known = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "ablation",
        "extension",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!("usage: repro [{}]", known.join("|"));
        std::process::exit(2);
    }
    let run_all = what == "all";
    let geometry = CacheGeometry::paper_l1();
    println!("# Tan & Mooney (DATE 2004) reproduction — {geometry}\n");

    // Experiments are built lazily; several targets share them.
    let needs_exp1 = run_all || ["table1", "table2", "table3", "table4", "fig1"].contains(&what);
    let needs_exp2 = run_all || ["table1", "table2", "table5", "table6"].contains(&what);
    let exp1 = needs_exp1.then(|| Experiment::build(&experiment1_spec(), geometry));
    let exp2 = needs_exp2.then(|| Experiment::build(&experiment2_spec(), geometry));

    if run_all || what == "table1" {
        println!("{}", tables::table1(exp1.as_ref().unwrap()));
        println!("{}", tables::table1(exp2.as_ref().unwrap()));
        let ccs =
            exp1.as_ref().unwrap().ctx_switch_cost(TimingModel::with_miss_penalty(REFERENCE_CMISS));
        println!("Context switch WCET (Ccs, Cmiss={REFERENCE_CMISS}): {ccs} cycles (paper: 1049 on ARM9)\n");
    }
    if run_all || what == "table2" {
        println!("{}", tables::table2(exp1.as_ref().unwrap()));
        println!("{}", tables::table2(exp2.as_ref().unwrap()));
    }
    if run_all || what == "table3" || what == "table4" {
        let e = exp1.as_ref().unwrap();
        let cmp = wcrt_comparison(e, ART_PERIODS);
        if run_all || what == "table3" {
            println!("{}", tables::table_wcrt(e, &cmp));
        }
        if run_all || what == "table4" {
            println!("{}", tables::table_improvements(e, &cmp));
        }
    }
    if run_all || what == "table5" || what == "table6" {
        let e = exp2.as_ref().unwrap();
        let cmp = wcrt_comparison(e, ART_PERIODS);
        if run_all || what == "table5" {
            println!("{}", tables::table_wcrt(e, &cmp));
        }
        if run_all || what == "table6" {
            println!("{}", tables::table_improvements(e, &cmp));
        }
    }
    if run_all || what == "fig1" {
        fig1(exp1.as_ref().unwrap());
    }
    if run_all || what == "fig2" {
        fig2();
    }
    if run_all || what == "fig3" {
        fig3();
    }
    if run_all || what == "fig4" {
        fig4(geometry);
    }
    if run_all || what == "fig5" {
        fig5();
    }
    if run_all || what == "ablation" {
        ablation(geometry);
    }
    if run_all || what == "extension" {
        extension();
    }
}

/// The paper's §IX future work: two-level hierarchy CRPD/WCRT, on a
/// contended L1 so the L2's effect on the *bound* is visible.
fn extension() {
    use crpd::{two_level_analyze_all, two_level_preemption_delay, TwoLevelParams};
    use rtwcet::HierarchyTimingModel;

    println!("Extension (paper §IX): two-level hierarchy CRPD/WCRT");
    let l1 = CacheGeometry::new(128, 2, 16).expect("valid geometry");
    let hierarchy = HierarchyTimingModel { cpi: 1, l2_penalty: 6, mem_penalty: 40 };
    let flat = TimingModel { cpi: 1, miss_penalty: hierarchy.mem_penalty };
    let programs = vec![
        rtworkloads::mobile_robot(),
        rtworkloads::edge_detection(),
        rtworkloads::ofdm_transmitter(),
    ];
    let periods = [140_000u64, 1_000_000, 6_000_000];
    let tasks: Vec<crpd::AnalyzedTask> = programs
        .iter()
        .zip(periods)
        .zip([2u32, 3, 4])
        .map(|((p, period), priority)| {
            crpd::AnalyzedTask::analyze(p, crpd::TaskParams { period, priority }, l1, flat)
                .expect("analyzes")
        })
        .collect();
    println!("  per-preemption delay of OFDM by ED (cycles), by L2 size:");
    let single = crpd::reload_lines(crpd::CrpdApproach::Combined, &tasks[2], &tasks[1]) as u64
        * hierarchy.mem_penalty;
    println!("    no L2 (memory only): {single}");
    for (sets, ways) in [(256u32, 4u32), (1024, 4), (4096, 8)] {
        let params = TwoLevelParams {
            l2_geometry: CacheGeometry::new(sets, ways, 16).expect("valid geometry"),
            model: hierarchy,
            ctx_switch: 0,
            max_iterations: 10_000,
        };
        let d = two_level_preemption_delay(&tasks[2], &tasks[1], &params);
        println!("    with {:>7} B L2: {d}", params.l2_geometry.size_bytes());
    }
    let params = TwoLevelParams {
        l2_geometry: CacheGeometry::new(2048, 4, 16).expect("valid geometry"),
        model: hierarchy,
        ctx_switch: 300,
        max_iterations: 10_000,
    };
    let two = two_level_analyze_all(&tasks, &programs, &params).expect("analyzes");
    let matrix = crpd::CrpdMatrix::compute(crpd::CrpdApproach::Combined, &tasks);
    let single_all = crpd::analyze_all(
        &tasks,
        &matrix,
        &crpd::WcrtParams { miss_penalty: 40, ctx_switch: 300, max_iterations: 10_000 },
    );
    println!("  WCRT (cycles): single-level vs two-level (128-set L1 + 128 KiB L2)");
    for (i, t) in tasks.iter().enumerate() {
        println!("    {:>6}: {:>8} -> {:>8}", t.name(), single_all[i].cycles, two[i].cycles);
    }
    println!();
}

/// Fig. 1: the OFDM-analog's response with and without inter-task cache
/// eviction, rendered as a Gantt timeline.
fn fig1(e: &Experiment) {
    println!("Figure 1 ({}): response of the lowest-priority task", e.name);
    let model = TimingModel::with_miss_penalty(REFERENCE_CMISS);
    let names: Vec<&str> = e.reference.iter().map(|t| t.name()).collect();
    let horizon = *e.periods.last().unwrap();
    for (label, mode) in [
        ("(A) private caches — no inter-task eviction", CacheMode::Private),
        ("(B) shared cache — with inter-task eviction", CacheMode::Shared),
    ] {
        let tasks: Vec<SchedTask> = e
            .programs
            .iter()
            .zip(&e.periods)
            .zip(&e.priorities)
            .map(|((p, period), prio)| SchedTask::new(p.clone(), *period, *prio))
            .collect();
        let config = SchedConfig {
            geometry: e.geometry,
            model,
            ctx_switch: e.ctx_switch_cost(model),
            horizon,
            variant_policy: VariantPolicy::Worst,
            cache_mode: mode,
            replacement: Default::default(),
            l2: None,
        };
        let report = simulate(&tasks, &config).expect("experiment simulates");
        println!("\n{label}");
        print!("{}", render_timeline(&report.slices, &names, &e.periods, horizon, 96));
        let lo = report.tasks.last().unwrap();
        println!("R({}) = {} cycles, {} preemptions", lo.name, lo.max_response, lo.preemptions);
    }
    // The 32 KiB L1 absorbs all three footprints, so (A) and (B) barely
    // differ (the paper's measured deltas are similarly small). Repeat on
    // a 2 KiB cache to make the t1, t2, t3 reload overheads visible.
    println!("\nSame comparison on a 2 KiB 2-way cache (contended):");
    let small = CacheGeometry::new(64, 2, 16).expect("valid geometry");
    let e_small = Experiment::build(&experiment1_spec(), small);
    for (label, mode) in [("(A) private", CacheMode::Private), ("(B) shared", CacheMode::Shared)] {
        let tasks: Vec<SchedTask> = e_small
            .programs
            .iter()
            .zip(&e_small.periods)
            .zip(&e_small.priorities)
            .map(|((p, period), prio)| SchedTask::new(p.clone(), *period, *prio))
            .collect();
        let config = SchedConfig {
            geometry: small,
            model,
            ctx_switch: e_small.ctx_switch_cost(model),
            horizon: *e_small.periods.last().unwrap(),
            variant_policy: VariantPolicy::Worst,
            cache_mode: mode,
            replacement: Default::default(),
            l2: None,
        };
        let report = simulate(&tasks, &config).expect("experiment simulates");
        let lo = report.tasks.last().unwrap();
        let reloads: usize = report.preemptions.iter().map(|p| p.reloaded_lines).sum();
        println!(
            "  {label}: R({}) = {} cycles, {} preemptions, {} lines reloaded in total",
            lo.name, lo.max_response, lo.preemptions, reloads
        );
    }
    println!();
}

/// Fig. 2 / Example 2: the tag/index/offset split of the 1 KiB example
/// cache.
fn fig2() {
    let g = CacheGeometry::example2();
    println!("Figure 2 (Example 2): {g}");
    println!(
        "address bits: offset [{}:0], index [{}:{}], tag [31:{}]",
        g.offset_bits() - 1,
        g.offset_bits() + g.index_bits() - 1,
        g.offset_bits(),
        g.offset_bits() + g.index_bits()
    );
    for addr in [0x000u64, 0x010, 0x011, 0x01f, 0x100, 0x210] {
        let block = g.block_of_addr(addr);
        println!(
            "  addr {:#05x} -> block {:#x} (base {:#05x}), set {}, tag {:#x}",
            addr,
            block.number(),
            g.base_addr_of_block(block),
            g.index_of_addr(addr).as_u32(),
            g.tag_of_block(block)
        );
    }
    println!();
}

/// Fig. 3 / Examples 3–4: CIIPs and the Eq. 2 conflict bound.
fn fig3() {
    let g = CacheGeometry::example2();
    let m1 = Ciip::from_addrs(g, [0x000u64, 0x100, 0x010, 0x110, 0x210]);
    let m2 = Ciip::from_addrs(g, [0x200u64, 0x310, 0x410, 0x510]);
    println!("Figure 3 (Examples 3-4): CIIP conflict bound");
    for (name, m) in [("M1", &m1), ("M2", &m2)] {
        println!("  {name}: {m}");
        for (idx, subset) in m.iter() {
            let blocks: Vec<String> =
                subset.iter().map(|b| format!("{:#05x}", g.base_addr_of_block(*b))).collect();
            println!("    {idx}: {{{}}}", blocks.join(", "));
        }
    }
    println!("  S(M1, M2) = Σ_r min(|m1_r|, |m2_r|, L) = {} (paper: 4)", m1.overlap_bound(&m2));
    println!();
}

/// Fig. 4: the ED CFG, its feasible paths and the Eq. 4 path costs.
fn fig4(geometry: CacheGeometry) {
    println!("Figure 4: CFG and path analysis of ED (as the preempting task of OFDM)");
    let ed = rtworkloads::edge_detection();
    let cfg = Cfg::from_program(&ed);
    println!(
        "  ED: {} instructions, {} basic blocks, {} declared loop bounds",
        ed.len(),
        cfg.len(),
        ed.loop_bounds().len()
    );
    match enumerate_paths(&cfg, &ed, 64) {
        Ok(paths) => {
            println!("  structural entry->exit paths (loops collapsed): {}", paths.len());
            for (i, p) in paths.iter().enumerate() {
                println!("    path {}: {} blocks", i + 1, p.len());
            }
        }
        Err(e) => println!("  path enumeration: {e}"),
    }
    // Eq. 4: cost of each feasible path of the preempting task against the
    // preempted task's useful blocks.
    let model = TimingModel::with_miss_penalty(REFERENCE_CMISS);
    let ofdm = crpd::AnalyzedTask::analyze(
        &rtworkloads::ofdm_transmitter(),
        crpd::TaskParams { period: 1, priority: 4 },
        geometry,
        model,
    )
    .expect("analyzes");
    let ed_task = crpd::AnalyzedTask::analyze(
        &ed,
        crpd::TaskParams { period: 1, priority: 3 },
        geometry,
        model,
    )
    .expect("analyzes");
    for path in ed_task.paths() {
        println!(
            "  C(path {}) = S(useful(OFDM), M_ed^{}) = {} lines",
            path.name,
            path.name,
            ofdm.max_useful_overlap(&path.blocks)
        );
    }
    println!(
        "  Eq. 4 cost (max over paths) = {} lines",
        reload_lines(CrpdApproach::Combined, &ofdm, &ed_task)
    );
    println!();
}

/// Fig. 5: the simulation architecture, reproduced in software.
fn fig5() {
    println!("Figure 5: simulation architecture (paper: XRAY + Atalanta RTOS + Seamless CVE)");
    println!(
        r#"
      paper testbed                      this reproduction
  ┌──────────────────────┐        ┌────────────────────────────┐
  │ Task0 Task1 Task2    │        │ rtworkloads (TRISC tasks)  │
  │   Atalanta RTOS      │        │ rtsched (preemptive FPS,   │
  │   (software, XRAY)   │        │  2·Ccs switch accounting)  │
  ├──────────────────────┤        ├────────────────────────────┤
  │ ARM9TDMI │ L1 cache  │        │ rtprogram ISS │ rtcache L1 │
  │          │ Memory    │        │ (trace exact) │ (+opt. L2) │
  ├──────────────────────┤        ├────────────────────────────┤
  │   Seamless CVE       │        │ shared traces feed rtwcet  │
  │  (hw/sw co-verif.)   │        │ and the crpd analysis      │
  └──────────────────────┘        └────────────────────────────┘
"#
    );
}

/// Ablations: design-choice studies promised in DESIGN.md.
fn ablation(geometry: CacheGeometry) {
    println!("Ablation A: exact trace-based useful blocks vs RMB/LMB dataflow (App. 3 count)");
    let model = TimingModel::with_miss_penalty(REFERENCE_CMISS);
    for program in
        [rtworkloads::mobile_robot(), rtworkloads::edge_detection_with_dim(12), rtworkloads::idct()]
    {
        let task = crpd::AnalyzedTask::analyze(
            &program,
            crpd::TaskParams { period: 1, priority: 1 },
            geometry,
            model,
        )
        .expect("analyzes");
        let df = dataflow_useful(&program, geometry).expect("analyzes");
        println!(
            "  {:>8}: exact {:>4} lines, dataflow {:>4} lines",
            program.name(),
            task.useful_line_bound(),
            df.max_line_bound()
        );
    }

    println!("\nAblation B: per-preemption bounds vs measurement (Experiment I pairs)");
    println!("  (displaced lines are bounded by Eq. 2 / App. 2; actual reloads by Eq. 4 / App. 4;");
    println!("   nested preemptions are attributed to the direct preemptor, so a displaced count");
    println!("   can legitimately exceed its pairwise bound)");
    let e = Experiment::build(&experiment1_spec(), geometry);
    let matrix2 = CrpdMatrix::compute(CrpdApproach::InterTask, &e.reference);
    let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &e.reference);
    let tasks: Vec<SchedTask> = e
        .programs
        .iter()
        .zip(&e.periods)
        .zip(&e.priorities)
        .map(|((p, period), prio)| SchedTask::new(p.clone(), *period, *prio))
        .collect();
    let config = SchedConfig {
        geometry,
        model,
        ctx_switch: e.ctx_switch_cost(model),
        horizon: e.periods.last().unwrap() * 2,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let report = simulate(&tasks, &config).expect("simulates");
    for i in 0..e.reference.len() {
        for j in 0..e.reference.len() {
            let observed: Vec<usize> = report
                .preemptions
                .iter()
                .filter(|p| p.preempted == i && p.preempting == j)
                .map(|p| p.evicted_lines)
                .collect();
            if observed.is_empty() {
                continue;
            }
            let reloads: Vec<usize> = report
                .preemptions
                .iter()
                .filter(|p| p.preempted == i && p.preempting == j)
                .map(|p| p.reloaded_lines)
                .collect();
            println!(
                "  {} by {}: displaced max {:>3} (App.2 bound {:>3}); reloaded max {:>3} (App.4 bound {:>3}); {} preemptions",
                e.reference[i].name(),
                e.reference[j].name(),
                observed.iter().max().unwrap(),
                matrix2.reload(i, j),
                reloads.iter().max().unwrap(),
                matrix.reload(i, j),
                observed.len()
            );
        }
    }

    println!("\nAblation B2: same, on a 2 KiB 2-way cache where the tasks genuinely contend");
    let small = CacheGeometry::new(64, 2, 16).expect("valid geometry");
    let e_small = Experiment::build(&experiment1_spec(), small);
    let model_small = TimingModel::with_miss_penalty(REFERENCE_CMISS);
    let matrix_small = CrpdMatrix::compute(CrpdApproach::Combined, &e_small.reference);
    let matrix_small2 = CrpdMatrix::compute(CrpdApproach::InterTask, &e_small.reference);
    let tasks_small: Vec<SchedTask> = e_small
        .programs
        .iter()
        .zip(&e_small.periods)
        .zip(&e_small.priorities)
        .map(|((p, period), prio)| SchedTask::new(p.clone(), *period, *prio))
        .collect();
    let config_small = SchedConfig {
        geometry: small,
        model: model_small,
        ctx_switch: e_small.ctx_switch_cost(model_small),
        horizon: e_small.periods.last().unwrap() * 2,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let report_small = simulate(&tasks_small, &config_small).expect("simulates");
    for i in 0..e_small.reference.len() {
        for j in 0..e_small.reference.len() {
            let observed: Vec<usize> = report_small
                .preemptions
                .iter()
                .filter(|p| p.preempted == i && p.preempting == j)
                .map(|p| p.evicted_lines)
                .collect();
            if observed.is_empty() {
                continue;
            }
            let reloads: Vec<usize> = report_small
                .preemptions
                .iter()
                .filter(|p| p.preempted == i && p.preempting == j)
                .map(|p| p.reloaded_lines)
                .collect();
            println!(
                "  {} by {}: displaced max {:>3} (App.2 bound {:>3}); reloaded max {:>3} (App.4 bound {:>3}); {} preemptions",
                e_small.reference[i].name(),
                e_small.reference[j].name(),
                observed.iter().max().unwrap(),
                matrix_small2.reload(i, j),
                reloads.iter().max().unwrap(),
                matrix_small.reload(i, j),
                observed.len()
            );
        }
    }

    println!("\nAblation D: shared cache + combined analysis vs way-partitioning (Experiment I)");
    println!("  (partitioning zeroes the CRPD but shrinks each task's cache share)");
    {
        use crpd::{even_way_partition, partitioned_analyze_all, TaskParams};
        let e = Experiment::build(&experiment1_spec(), geometry);
        let params: Vec<TaskParams> = e
            .periods
            .iter()
            .zip(&e.priorities)
            .map(|(period, prio)| TaskParams { period: *period, priority: *prio })
            .collect();
        let ways = even_way_partition(geometry, e.programs.len()).expect("4 ways, 3 tasks");
        let ccs = e.ctx_switch_cost(model);
        let parted =
            partitioned_analyze_all(&e.programs, &params, geometry, model, &ways, ccs, 10_000)
                .expect("analyzes");
        let shared = e.wcrt(CrpdApproach::Combined, REFERENCE_CMISS);
        println!(
            "  {:>6} {:>5} {:>20} {:>20}",
            "task", "ways", "partitioned WCRT", "shared+App.4 WCRT"
        );
        for (i, pt) in parted.iter().enumerate() {
            println!(
                "  {:>6} {:>5} {:>20} {:>20}",
                pt.name, pt.ways, pt.response.cycles, shared[i].cycles
            );
        }
    }

    println!("\nAblation C: cache geometry sweep (App. 2 vs App. 4, OFDM preempted by ED)");
    for (sets, ways) in
        [(128u32, 4u32), (256, 4), (512, 1), (512, 2), (512, 4), (512, 8), (1024, 4)]
    {
        let g = CacheGeometry::new(sets, ways, 16).expect("valid geometry");
        let ofdm = crpd::AnalyzedTask::analyze(
            &rtworkloads::ofdm_transmitter(),
            crpd::TaskParams { period: 1, priority: 4 },
            g,
            model,
        )
        .expect("analyzes");
        let ed = crpd::AnalyzedTask::analyze(
            &rtworkloads::edge_detection(),
            crpd::TaskParams { period: 1, priority: 3 },
            g,
            model,
        )
        .expect("analyzes");
        println!(
            "  {:>4} sets x {} ways: App.1 {:>4}  App.2 {:>4}  App.3 {:>4}  App.4 {:>4}",
            sets,
            ways,
            reload_lines(CrpdApproach::AllPreemptingLines, &ofdm, &ed),
            reload_lines(CrpdApproach::InterTask, &ofdm, &ed),
            reload_lines(CrpdApproach::UsefulBlocks, &ofdm, &ed),
            reload_lines(CrpdApproach::Combined, &ofdm, &ed),
        );
    }
    println!();
}
