//! Validates a Chrome `trace_event` JSON file written by `--trace-out`.
//!
//! ```text
//! trisc wcrt --trace-out t.json examples/specs/system.spec
//! cargo run -p rtbench --bin tracecheck -- t.json \
//!     --require assemble,trace,ciip,mumbs,crpd,wcrt
//! ```
//!
//! Checks the file parses, holds a `traceEvents` array of complete-event
//! (`ph:"X"`) records with numeric `ts`/`dur`/`pid`/`tid` and the stable
//! `args.id` span identifiers rtobs emits, and — with `--require` — that
//! every named pipeline stage contributed at least one span. Exits
//! non-zero on the first violation, so CI can gate on it.

use std::collections::BTreeSet;
use std::process::ExitCode;

use rtserver::json::Json;

fn run() -> Result<String, String> {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => {
                let list = args.next().ok_or("--require needs a comma-separated stage list")?;
                required.extend(list.split(',').filter(|s| !s.is_empty()).map(str::to_string));
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("missing TRACE.json argument")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err(format!("{path}: missing `traceEvents` array"));
    };

    let mut stages = BTreeSet::new();
    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| event.get(key).ok_or(format!("{path}: event {i} missing `{key}`"));
        let name =
            field("name")?.as_str().ok_or(format!("{path}: event {i}: `name` must be a string"))?;
        if field("ph")?.as_str() != Some("X") {
            return Err(format!("{path}: event {i} (`{name}`): `ph` must be \"X\""));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if field(key)?.as_u64().is_none() {
                return Err(format!(
                    "{path}: event {i} (`{name}`): `{key}` must be a non-negative number"
                ));
            }
        }
        let id = event
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_str)
            .ok_or(format!("{path}: event {i} (`{name}`): missing string `args.id`"))?;
        if !id.contains('#') {
            return Err(format!(
                "{path}: event {i} (`{name}`): `args.id` must be `path#occurrence`, got `{id}`"
            ));
        }
        stages.insert(name.to_string());
    }

    for stage in &required {
        if !stages.contains(stage) {
            return Err(format!("{path}: no span recorded for required stage `{stage}`"));
        }
    }
    let stage_list: Vec<&str> = stages.iter().map(String::as_str).collect();
    Ok(format!("{path}: {} spans ok, stages: {}", events.len(), stage_list.join(", ")))
}

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("tracecheck: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("tracecheck: {message}");
            eprintln!("usage: tracecheck TRACE.json [--require stage,stage,...]");
            ExitCode::from(1)
        }
    }
}
