//! `clusterbench` — the cluster-mode evidence run behind
//! `BENCH_cluster.json`.
//!
//! Spawns real `trisc serve` *subprocesses* (per-node peak RSS is the
//! headline number, so every node must be its own process): first one
//! single-node server as the baseline, then a 3-member ring plus a
//! stateless front, and drives the identical WCRT workload through both.
//!
//! Three gates, all hard:
//!
//! 1. **Byte identity** — every WCRT report through the front matches the
//!    single-node output exactly.
//! 2. **Recompute parity** — cluster-wide `analyze` computations
//!    (Σ member stage misses + front fallbacks) equal the single-node
//!    miss count: sharding must not re-run any stage.
//! 3. **Memory sharding** — the hottest member's peak RSS growth over
//!    the workload stays ≤ `--max-rss-ratio` (default 0.5) of the
//!    single node's growth: each member holds only its ring share.
//!
//! Usage: `clusterbench [--groups N] [--tasks-per-group N] [--loads N]
//! [--json-out PATH] [--max-rss-ratio R]`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use rtserver::json::Json;

struct Options {
    /// Independent WCRT requests (disjoint task sets).
    groups: usize,
    /// Tasks per request; total artifacts = groups × tasks_per_group.
    tasks_per_group: usize,
    /// Loads per task: sizes each artifact's trace (and so the RSS the
    /// cluster is supposed to shard).
    loads: usize,
    json_out: String,
    max_rss_ratio: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            groups: 12,
            tasks_per_group: 4,
            loads: 2048,
            json_out: "BENCH_cluster.json".to_string(),
            max_rss_ratio: 0.5,
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--groups" => opts.groups = value()?.parse().map_err(|e| format!("--groups: {e}"))?,
            "--tasks-per-group" => {
                opts.tasks_per_group =
                    value()?.parse().map_err(|e| format!("--tasks-per-group: {e}"))?;
            }
            "--loads" => opts.loads = value()?.parse().map_err(|e| format!("--loads: {e}"))?,
            "--json-out" => opts.json_out = value()?,
            "--max-rss-ratio" => {
                opts.max_rss_ratio =
                    value()?.parse().map_err(|e| format!("--max-rss-ratio: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// The sibling `trisc` binary of this executable (both land in the same
/// cargo target directory).
fn trisc_path() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| e.to_string())?;
    let path = me.with_file_name("trisc");
    if !path.exists() {
        return Err(format!(
            "{} not found; build it first (cargo build --release -p rtserver)",
            path.display()
        ));
    }
    Ok(path)
}

/// One spawned `trisc serve` subprocess.
struct Node {
    child: Child,
    addr: String,
}

impl Node {
    fn spawn(trisc: &PathBuf, port: u16, cluster_args: &[String]) -> Result<Node, String> {
        let mut cmd = Command::new(trisc);
        cmd.arg("serve")
            .arg("--host")
            .arg("127.0.0.1")
            .arg("--port")
            .arg(port.to_string())
            .args(cluster_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd.spawn().map_err(|e| format!("spawn {}: {e}", trisc.display()))?;
        let addr = format!("127.0.0.1:{port}");
        // Readiness probe: the listener is up once a connect succeeds.
        drop(connect_with_retry(&addr)?);
        Ok(Node { child, addr })
    }

    /// Peak resident set (`VmHWM`) of the node process, kibibytes.
    fn peak_rss_kb(&self) -> Result<u64, String> {
        let path = format!("/proc/{}/status", self.child.id());
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let line = text
            .lines()
            .find(|l| l.starts_with("VmHWM:"))
            .ok_or_else(|| format!("{path}: no VmHWM line"))?;
        line.trim_start_matches("VmHWM:")
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .map_err(|e| format!("{path}: {e}"))
    }

    fn shutdown(mut self) -> Result<(), String> {
        let _ = request(&self.addr, r#"{"cmd":"shutdown"}"#);
        let _ = self.child.wait();
        Ok(())
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn connect_with_retry(addr: &str) -> Result<TcpStream, String> {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
}

/// One request/one response against `addr`.
fn request(addr: &str, line: &str) -> Result<Json, String> {
    let stream = connect_with_retry(addr)?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").and_then(|()| writer.flush()).map_err(|e| e.to_string())?;
    let mut response = String::new();
    reader.read_line(&mut response).map_err(|e| e.to_string())?;
    Json::parse(response.trim_end()).map_err(|e| format!("{addr}: bad reply: {e}"))
}

/// Reserves `n` distinct loopback ports (bind, note, drop).
fn reserve_ports(n: usize) -> Result<Vec<u16>, String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    listeners.iter().map(|l| Ok(l.local_addr().map_err(|e| e.to_string())?.port())).collect()
}

/// A load-heavy synthetic task: `loads` word reads sweeping a private
/// data region, inside a bounded loop so the WCET pass has structure to
/// chew on. Distinct `seed`s get distinct code/data addresses and
/// constants, so every task is its own `analyze` artifact.
fn task_source(seed: u64, loads: usize) -> String {
    let words = (loads.max(1)) as u64;
    let mut s = String::new();
    let _ = writeln!(s, ".data {:#x}", 0x40_0000 + seed * 0x2_0000);
    let _ = write!(s, "arr: .word {seed}");
    for i in 1..words.min(64) {
        let _ = write!(s, ",{}", seed + i);
    }
    let _ = writeln!(s);
    let _ = writeln!(s, ".text {:#x}", 0x1000 + seed * 0x1_0000);
    let _ = writeln!(s, "start: li r1, arr");
    for i in 0..loads {
        // Sweep a window of distinct offsets so the trace touches many
        // memory blocks, not one hot line.
        let _ = writeln!(s, "ld r2, {}(r1)", (i % 64) * 4);
    }
    let _ = writeln!(s, "li r3, 2\nloop: addi r3, r3, -1\nbne r3, r0, loop\n.bound loop, 2");
    let _ = writeln!(s, "halt");
    s
}

/// The `wcrt` request for group `g`: `per_group` distinct tasks under
/// rate-monotonic-ish parameters.
fn wcrt_request(g: usize, per_group: usize, loads: usize) -> String {
    let mut spec = String::from("cache 512 4 16\ncmiss 20\nccs 80\n");
    let mut sources = Vec::new();
    for t in 0..per_group {
        let seed = (g * per_group + t) as u64;
        spec.push_str(&format!(
            "task g{g}t{t} g{g}t{t}.s {} {}\n",
            400_000 * (t as u64 + 1),
            t + 1
        ));
        sources.push((format!("g{g}t{t}.s"), Json::from(task_source(seed, loads).as_str())));
    }
    Json::obj([
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from(spec.as_str())),
        ("sources", Json::Obj(sources.into_iter().collect())),
    ])
    .encode()
}

/// Runs the whole workload against `addr`, returning the concatenated
/// per-group outputs (the byte-identity evidence).
fn run_workload(addr: &str, opts: &Options) -> Result<String, String> {
    let mut outputs = String::new();
    for g in 0..opts.groups {
        let reply = request(addr, &wcrt_request(g, opts.tasks_per_group, opts.loads))?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            let error = reply.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            return Err(format!("group {g} failed on {addr}: {error}"));
        }
        let output = reply
            .get("output")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("group {g}: reply without output"))?;
        outputs.push_str(output);
        outputs.push('\n');
    }
    Ok(outputs)
}

/// `analyze`-stage misses reported by the server at `addr`.
fn analyze_misses(addr: &str) -> Result<u64, String> {
    let metrics = request(addr, r#"{"cmd":"metrics"}"#)?;
    metrics
        .get("metrics")
        .and_then(|m| m.get("stages"))
        .and_then(|s| s.get("analyze"))
        .and_then(|a| a.get("misses"))
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{addr}: metrics without analyze misses"))
}

/// The front's peer-fetch counters from `statusz`.
fn peer_counters(addr: &str) -> Result<(u64, u64, u64, u64), String> {
    let status = request(addr, r#"{"cmd":"statusz"}"#)?;
    let peer = status
        .get("status")
        .and_then(|s| s.get("peer"))
        .ok_or_else(|| format!("{addr}: statusz without peer section"))?;
    let field = |key: &str| peer.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok((field("fetch_hits"), field("fetch_misses"), field("fetch_timeouts"), field("fallbacks")))
}

fn run() -> Result<(), String> {
    let opts = parse_options()?;
    let trisc = trisc_path()?;
    let total_tasks = opts.groups * opts.tasks_per_group;
    println!(
        "clusterbench: {} groups x {} tasks ({total_tasks} artifacts), {} loads/task",
        opts.groups, opts.tasks_per_group, opts.loads
    );

    // ----- Baseline: one single-node server, whole workload. -----
    let port = reserve_ports(1)?[0];
    let single = Node::spawn(&trisc, port, &[])?;
    let single_idle_rss = single.peak_rss_kb()?;
    let started = Instant::now();
    let expected = run_workload(&single.addr, &opts)?;
    let single_elapsed = started.elapsed();
    let single_misses = analyze_misses(&single.addr)?;
    let single_rss = single.peak_rss_kb()?;
    single.shutdown()?;
    let single_growth = single_rss.saturating_sub(single_idle_rss).max(1);
    println!(
        "single node: {} analyze computations in {single_elapsed:.2?}, \
         peak RSS {single_rss} kB (idle {single_idle_rss} kB, growth {single_growth} kB)",
        single_misses
    );

    // ----- Cluster: 3 members + stateless front, same workload. -----
    let ports = reserve_ports(3)?;
    let peers_path =
        std::env::temp_dir().join(format!("clusterbench-peers-{}.txt", std::process::id()));
    let peers_body: String = ports.iter().map(|p| format!("127.0.0.1:{p}\n")).collect();
    std::fs::write(&peers_path, &peers_body).map_err(|e| e.to_string())?;
    let cluster_flag = peers_path.display().to_string();
    let members: Vec<Node> = ports
        .iter()
        .enumerate()
        .map(|(index, port)| {
            Node::spawn(
                &trisc,
                *port,
                &[
                    "--cluster".to_string(),
                    cluster_flag.clone(),
                    "--node-id".to_string(),
                    index.to_string(),
                ],
            )
        })
        .collect::<Result<_, _>>()?;
    let front_port = reserve_ports(1)?[0];
    let front = Node::spawn(
        &trisc,
        front_port,
        &[
            "--cluster".to_string(),
            cluster_flag.clone(),
            "--front".to_string(),
            // A small replica cache: the front routes, it must not
            // accumulate the whole artifact population.
            "--replica-capacity".to_string(),
            "8".to_string(),
        ],
    )?;
    let member_idle_rss: Vec<u64> =
        members.iter().map(Node::peak_rss_kb).collect::<Result<_, _>>()?;
    let started = Instant::now();
    let output = run_workload(&front.addr, &opts)?;
    let cluster_elapsed = started.elapsed();
    let member_misses: Vec<u64> =
        members.iter().map(|n| analyze_misses(&n.addr)).collect::<Result<_, _>>()?;
    let member_rss: Vec<u64> = members.iter().map(Node::peak_rss_kb).collect::<Result<_, _>>()?;
    let (hits, fetch_misses, timeouts, fallbacks) = peer_counters(&front.addr)?;
    let front_rss = front.peak_rss_kb()?;
    front.shutdown()?;
    for member in members {
        member.shutdown()?;
    }
    std::fs::remove_file(&peers_path).ok();

    let cluster_misses: u64 = member_misses.iter().sum::<u64>() + fallbacks;
    let member_growth: Vec<u64> = member_rss
        .iter()
        .zip(&member_idle_rss)
        .map(|(peak, idle)| peak.saturating_sub(*idle))
        .collect();
    let worst_growth = member_growth.iter().copied().max().unwrap_or(0).max(1);
    let rss_ratio = worst_growth as f64 / single_growth as f64;
    println!(
        "cluster: {cluster_misses} analyze computations ({member_misses:?} + {fallbacks} \
         fallbacks) in {cluster_elapsed:.2?}; peer fetch {hits} hit / {fetch_misses} miss / \
         {timeouts} timeout"
    );
    println!(
        "cluster: member RSS growth {member_growth:?} kB (worst {worst_growth} kB, \
         {rss_ratio:.3}x single-node growth {single_growth} kB); front peak {front_rss} kB"
    );

    let byte_identical = output == expected;
    let report = Json::obj([
        ("mode", Json::from("cluster")),
        ("groups", Json::from(opts.groups as u64)),
        ("tasks_per_group", Json::from(opts.tasks_per_group as u64)),
        ("loads_per_task", Json::from(opts.loads as u64)),
        ("artifacts", Json::from(total_tasks as u64)),
        ("byte_identical_output", Json::Bool(byte_identical)),
        ("single_node_analyze_misses", Json::from(single_misses)),
        ("cluster_analyze_misses", Json::from(cluster_misses)),
        (
            "member_analyze_misses",
            Json::Arr(member_misses.iter().map(|m| Json::from(*m)).collect()),
        ),
        (
            "peer_fetch",
            Json::obj([
                ("hits", Json::from(hits)),
                ("misses", Json::from(fetch_misses)),
                ("timeouts", Json::from(timeouts)),
                ("fallbacks", Json::from(fallbacks)),
            ]),
        ),
        ("single_elapsed_secs", Json::Num(single_elapsed.as_secs_f64())),
        ("cluster_elapsed_secs", Json::Num(cluster_elapsed.as_secs_f64())),
        (
            "rss_kb",
            Json::obj([
                ("single_peak", Json::from(single_rss)),
                ("single_growth", Json::from(single_growth)),
                ("member_peaks", Json::Arr(member_rss.iter().map(|m| Json::from(*m)).collect())),
                (
                    "member_growth",
                    Json::Arr(member_growth.iter().map(|m| Json::from(*m)).collect()),
                ),
                ("worst_member_growth", Json::from(worst_growth)),
                ("front_peak", Json::from(front_rss)),
                ("worst_to_single_growth_ratio", Json::Num((rss_ratio * 1e4).round() / 1e4)),
                ("max_allowed_ratio", Json::Num(opts.max_rss_ratio)),
            ]),
        ),
    ]);
    let mut text = report.encode();
    text.push('\n');
    std::fs::write(&opts.json_out, text).map_err(|e| format!("{}: {e}", opts.json_out))?;
    println!("wrote {}", opts.json_out);

    // Gates, after the evidence file exists.
    if !byte_identical {
        return Err("cluster output differs from single-node output".to_string());
    }
    if cluster_misses != single_misses {
        return Err(format!(
            "recompute parity violated: cluster ran {cluster_misses} analyze computations, \
             single node ran {single_misses}"
        ));
    }
    if rss_ratio > opts.max_rss_ratio {
        return Err(format!(
            "memory sharding gate failed: worst member RSS growth is {rss_ratio:.3}x the \
             single node's (allowed {:.3}x)",
            opts.max_rss_ratio
        ));
    }
    println!(
        "gates: byte-identical output, recompute parity ({single_misses}), \
         RSS ratio {rss_ratio:.3} <= {:.3}",
        opts.max_rss_ratio
    );
    Ok(())
}

fn main() {
    if let Err(error) = run() {
        eprintln!("clusterbench: {error}");
        std::process::exit(1);
    }
}
