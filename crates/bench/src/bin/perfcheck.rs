//! The perf-regression observatory: canonical paper + synthetic
//! workloads through the full analysis pipeline, profiled by the
//! `rtflight` recorder, gated against a committed baseline.
//!
//! ```text
//! # Full profile (committed as BENCH_profile.json):
//! cargo run --release -p rtbench --bin perfcheck
//!
//! # CI smoke run: fewer reps, same gates:
//! cargo run --release -p rtbench --bin perfcheck -- --smoke
//! ```
//!
//! Each workload runs `reps` times inside a [`rtobs::flight`] frame, so
//! per-stage wall time comes from the exact same attribution machinery
//! the live server uses. The profile records, per workload:
//!
//! * request p50/p99 in µs — exact, over the sorted per-rep totals;
//! * histogram p50/p99 — the recorder's log₂-bucket readout, proving
//!   the ops-plane quantiles bound the exact ones;
//! * per-stage p50/p99 in ns for every pipeline stage that fired;
//! * recorder overhead — alternating flight-on/flight-off rounds,
//!   `max(0, median(on)/median(off) - 1)`.
//!
//! Gates run *after* the JSON is published (a failed run still leaves
//! its evidence): measured overhead must stay under `--max-overhead`
//! (default 5%), and each workload's request p50 must stay within
//! `--tolerance` (multiplicative, default 2.0) of the committed
//! baseline. A missing baseline warns and passes, so the first run
//! bootstraps itself.

use std::process::ExitCode;
use std::time::Instant;

use crpd::CrpdApproach;
use rtbench::{experiment1_spec, experiment2_spec, Experiment, REFERENCE_CMISS};
use rtcache::CacheGeometry;
use rtobs::flight::FlightRecorder;
use rtserver::json::Json;
use rtworkloads::synthetic::{system, SystemParams};

struct Options {
    smoke: bool,
    reps: Option<usize>,
    json_out: String,
    baseline: Option<String>,
    tolerance: f64,
    max_overhead: f64,
    threads: usize,
}

fn parse_options(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        reps: None,
        json_out: "BENCH_profile.json".to_string(),
        baseline: None,
        tolerance: 2.0,
        max_overhead: 0.05,
        threads: 8,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let ratio = |name: &str, raw: String| {
            raw.parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r >= 0.0)
                .ok_or(format!("{name} must be a non-negative number, got `{raw}`"))
        };
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--reps" => {
                let n: usize = value("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?;
                if n == 0 {
                    return Err("--reps must be at least 1".to_string());
                }
                opts.reps = Some(n);
            }
            "--json-out" => opts.json_out = value("--json-out")?,
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--tolerance" => opts.tolerance = ratio("--tolerance", value("--tolerance")?)?.max(1.0),
            "--max-overhead" => {
                opts.max_overhead = ratio("--max-overhead", value("--max-overhead")?)?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1)
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Exact quantile over sorted samples: rank `ceil(q * n)` clamped to
/// `[1, n]` — the same convention as the recorder's histogram readout.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of no samples");
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Median of an unsorted f64 slice (lower-median for even lengths).
fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[(sorted.len() - 1) / 2]
}

/// Recorder overhead from alternating on/off wall-clock rounds:
/// `max(0, median(on)/median(off) - 1)`.
fn overhead_ratio(on_secs: &[f64], off_secs: &[f64]) -> f64 {
    let off = median(off_secs);
    if off <= 0.0 {
        return 0.0;
    }
    (median(on_secs) / off - 1.0).max(0.0)
}

/// One profiled workload: a name and a closure driving the pipeline.
struct Workload {
    name: &'static str,
    run: Box<dyn Fn()>,
}

fn workloads() -> Vec<Workload> {
    let geometry = CacheGeometry::new(64, 2, 16).expect("valid geometry");
    let exp1 = Experiment::build(&experiment1_spec(), geometry);
    let exp2 = Experiment::build(&experiment2_spec(), geometry);
    let programs = system(&SystemParams::default());
    vec![
        Workload {
            name: "exp1_wcrt",
            run: Box::new(move || {
                let results = exp1.wcrt(CrpdApproach::Combined, REFERENCE_CMISS);
                assert!(results.iter().all(|r| r.cycles > 0), "exp1 WCRTs are positive");
            }),
        },
        Workload {
            name: "exp2_wcrt",
            run: Box::new(move || {
                let results = exp2.wcrt(CrpdApproach::Combined, REFERENCE_CMISS);
                assert!(results.iter().all(|r| r.cycles > 0), "exp2 WCRTs are positive");
            }),
        },
        Workload {
            name: "synthetic_pipeline",
            run: Box::new(move || {
                use crpd::{AnalyzedTask, CrpdMatrix, TaskParams, WcrtParams};
                use rtwcet::TimingModel;
                let tasks: Vec<AnalyzedTask> = programs
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        AnalyzedTask::analyze(
                            p,
                            TaskParams { period: 200_000 << i, priority: 2 + i as u32 },
                            geometry,
                            TimingModel::with_miss_penalty(REFERENCE_CMISS),
                        )
                        .expect("synthetic tasks analyze cleanly")
                    })
                    .collect();
                let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
                let params = WcrtParams {
                    miss_penalty: REFERENCE_CMISS,
                    ctx_switch: 120,
                    max_iterations: 10_000,
                };
                let results = crpd::analyze_all(&tasks, &matrix, &params);
                assert_eq!(results.len(), tasks.len());
            }),
        },
    ]
}

/// Profiles one workload: `reps` flight-framed runs for the latency and
/// stage profile, then `reps` alternating on/off rounds for overhead.
fn profile_workload(w: &Workload, recorder: &FlightRecorder, reps: usize) -> (Json, f64) {
    // Warmup outside any frame: first-touch allocation and code paging
    // belong to neither side of the overhead comparison.
    (w.run)();
    let mut totals_us: Vec<u64> = Vec::with_capacity(reps);
    let mut stage_samples: Vec<Vec<u64>> =
        vec![Vec::with_capacity(reps); rtobs::flight::STAGES.len()];
    for _ in 0..reps {
        let scope = recorder.begin(w.name, 0, false);
        (w.run)();
        let finished = scope.finish(true);
        totals_us.push(finished.record.total_us);
        for (samples, ns) in stage_samples.iter_mut().zip(finished.record.stage_ns) {
            samples.push(ns);
        }
    }
    totals_us.sort_unstable();

    // Alternating on/off rounds decorrelate thermal / frequency drift.
    let mut on_secs = Vec::with_capacity(reps);
    let mut off_secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        let scope = recorder.begin(w.name, 0, false);
        (w.run)();
        scope.finish(true);
        on_secs.push(started.elapsed().as_secs_f64());
        let started = Instant::now();
        (w.run)();
        off_secs.push(started.elapsed().as_secs_f64());
    }
    let overhead = overhead_ratio(&on_secs, &off_secs);

    let stages = Json::Obj(
        rtobs::flight::STAGES
            .iter()
            .zip(&mut stage_samples)
            .filter(|(_, samples)| samples.iter().any(|&ns| ns > 0))
            .map(|(stage, samples)| {
                samples.sort_unstable();
                let entry = Json::obj([
                    ("p50_ns", Json::from(percentile(samples, 0.50))),
                    ("p99_ns", Json::from(percentile(samples, 0.99))),
                ]);
                (stage.to_string(), entry)
            })
            .collect(),
    );
    let profile = Json::obj([
        (
            "request_us",
            Json::obj([
                ("p50", Json::from(percentile(&totals_us, 0.50))),
                ("p99", Json::from(percentile(&totals_us, 0.99))),
                ("max", Json::from(*totals_us.last().expect("reps >= 1"))),
            ]),
        ),
        ("stages_ns", stages),
        ("overhead", Json::Num(overhead)),
    ]);
    (profile, overhead)
}

/// The recorder's own histogram readout per endpoint, to cross-check
/// against the exact percentiles.
fn histogram_json(recorder: &FlightRecorder) -> Json {
    Json::Obj(
        recorder
            .endpoints()
            .into_iter()
            .map(|e| {
                let entry = Json::obj([
                    ("count", Json::from(e.count)),
                    ("p50_us", Json::from(e.p50_us)),
                    ("p99_us", Json::from(e.p99_us)),
                ]);
                (e.endpoint.to_string(), entry)
            })
            .collect(),
    )
}

/// Compares a fresh profile against the committed baseline: each
/// workload's request p50 may grow by at most `tolerance`x. Workloads
/// present on only one side are reported but never fail the gate (the
/// set is allowed to evolve).
fn gate_against_baseline(new: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let (Some(Json::Obj(new_wl)), Some(Json::Obj(old_wl))) =
        (new.get("workloads"), baseline.get("workloads"))
    else {
        return vec!["baseline has no `workloads` object".to_string()];
    };
    for (name, fresh) in new_wl {
        let Some(old) = old_wl.get(name) else {
            println!("gate: workload `{name}` has no baseline entry (new workload, skipped)");
            continue;
        };
        let fresh_p50 = fresh.get("request_us").and_then(|r| r.get("p50")).and_then(Json::as_u64);
        let old_p50 = old.get("request_us").and_then(|r| r.get("p50")).and_then(Json::as_u64);
        let (Some(fresh_p50), Some(old_p50)) = (fresh_p50, old_p50) else {
            failures.push(format!("workload `{name}`: missing request_us.p50"));
            continue;
        };
        let limit = (old_p50 as f64 * tolerance).ceil() as u64;
        if fresh_p50 > limit.max(1) {
            failures.push(format!(
                "workload `{name}`: request p50 {fresh_p50}us > {limit}us \
                 (baseline {old_p50}us x tolerance {tolerance})"
            ));
        } else {
            println!(
                "gate: {name} request p50 {fresh_p50}us within {limit}us (baseline {old_p50}us)"
            );
        }
    }
    failures
}

fn run() -> Result<(), String> {
    let opts = parse_options(std::env::args().skip(1))?;
    let reps = opts.reps.unwrap_or(if opts.smoke { 3 } else { 15 });
    rtpar::configure_global(opts.threads);
    // Read the committed baseline BEFORE overwriting it: by default the
    // gate compares this run against the profile being replaced.
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| opts.json_out.clone());
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|text| Json::parse(text.trim_end()).map_err(|e| format!("{baseline_path}: {e}")))
        .transpose()?;

    let recorder = FlightRecorder::new(1024);
    let mut workload_profiles = std::collections::BTreeMap::new();
    let mut overheads = Vec::new();
    println!(
        "perfcheck: {} mode, {reps} reps/workload, {} threads",
        if opts.smoke { "smoke" } else { "full" },
        opts.threads
    );
    for w in workloads() {
        let started = Instant::now();
        let (profile, overhead) = profile_workload(&w, &recorder, reps);
        println!(
            "  {}: p50 {}us, recorder overhead {:.2}% ({:.1}s)",
            w.name,
            profile
                .get("request_us")
                .and_then(|r| r.get("p50"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            overhead * 100.0,
            started.elapsed().as_secs_f64()
        );
        overheads.push(overhead);
        workload_profiles.insert(w.name.to_string(), profile);
    }
    let overhead_median = median(&overheads);
    let overhead_max = overheads.iter().cloned().fold(0.0f64, f64::max);

    let report = Json::obj([
        ("schema", Json::from("perfcheck-v1")),
        ("mode", Json::from(if opts.smoke { "smoke" } else { "full" })),
        ("reps", Json::from(reps as u64)),
        ("threads", Json::from(opts.threads as u64)),
        ("workloads", Json::Obj(workload_profiles)),
        (
            "recorder_overhead",
            Json::obj([
                ("median", Json::Num(overhead_median)),
                ("max", Json::Num(overhead_max)),
                ("budget", Json::Num(opts.max_overhead)),
            ]),
        ),
        ("histograms_us", histogram_json(&recorder)),
    ]);
    std::fs::write(&opts.json_out, report.encode() + "\n")
        .map_err(|e| format!("{}: {e}", opts.json_out))?;
    println!("wrote {}", opts.json_out);

    // Gates run after publishing, so a failed run still leaves evidence.
    let mut failures = Vec::new();
    if overhead_median > opts.max_overhead {
        failures.push(format!(
            "recorder overhead {:.2}% exceeds budget {:.2}%",
            overhead_median * 100.0,
            opts.max_overhead * 100.0
        ));
    } else {
        println!(
            "gate: recorder overhead {:.2}% within {:.2}% budget",
            overhead_median * 100.0,
            opts.max_overhead * 100.0
        );
    }
    match &baseline {
        Some(baseline) => failures.extend(gate_against_baseline(&report, baseline, opts.tolerance)),
        None => println!("gate: no baseline at {baseline_path}; first run passes unconditionally"),
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("perfcheck: {message}");
            eprintln!(
                "usage: perfcheck [--smoke] [--reps N] [--json-out PATH] [--baseline PATH] \
                 [--tolerance R>=1] [--max-overhead R] [--threads N]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_the_histogram_rank_convention() {
        let sorted = [10, 20, 30, 40];
        assert_eq!(percentile(&sorted, 0.50), 20);
        assert_eq!(percentile(&sorted, 0.99), 40);
        assert_eq!(percentile(&sorted, 0.0), 10, "q=0 clamps to the first sample");
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn overhead_clamps_at_zero_and_measures_slowdowns() {
        assert_eq!(overhead_ratio(&[1.0, 1.0], &[1.1, 1.1]), 0.0, "faster-with-recorder clamps");
        let measured = overhead_ratio(&[1.05, 1.04, 1.06], &[1.0, 1.0, 1.0]);
        assert!((measured - 0.05).abs() < 1e-9, "median-based ratio, got {measured}");
        assert_eq!(overhead_ratio(&[1.0], &[0.0]), 0.0, "degenerate off-time is not a division");
    }

    #[test]
    fn gate_flags_regressions_and_tolerates_growth_within_budget() {
        let fresh = Json::parse(
            r#"{"workloads":{"a":{"request_us":{"p50":190}},
                             "b":{"request_us":{"p50":500}},
                             "new":{"request_us":{"p50":1}}}}"#,
        )
        .unwrap();
        let baseline = Json::parse(
            r#"{"workloads":{"a":{"request_us":{"p50":100}},
                             "b":{"request_us":{"p50":100}}}}"#,
        )
        .unwrap();
        let failures = gate_against_baseline(&fresh, &baseline, 2.0);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("workload `b`"), "{failures:?}");
        assert!(failures[0].contains("500us"), "{failures:?}");
    }

    #[test]
    fn parse_options_covers_flags_and_rejects_nonsense() {
        let opts = parse_options(std::iter::empty()).unwrap();
        assert!(!opts.smoke);
        assert_eq!(opts.tolerance, 2.0);
        assert_eq!(opts.max_overhead, 0.05);
        let opts = parse_options(
            ["--smoke", "--reps", "7", "--tolerance", "1.5", "--max-overhead", "0.1"]
                .map(String::from)
                .into_iter(),
        )
        .unwrap();
        assert!(opts.smoke);
        assert_eq!(opts.reps, Some(7));
        assert_eq!(opts.tolerance, 1.5);
        assert_eq!(opts.max_overhead, 0.1);
        assert!(parse_options(["--reps", "0"].map(String::from).into_iter()).is_err());
        assert!(parse_options(["--tolerance", "soon"].map(String::from).into_iter()).is_err());
        assert!(parse_options(["--wat"].map(String::from).into_iter()).is_err());
    }

    /// The ISSUE's hot-path promise: a begin/finish cycle with no work
    /// inside costs well under the 5% budget on any realistic request.
    #[test]
    fn recorder_frame_overhead_is_small_against_a_millisecond_workload() {
        let recorder = FlightRecorder::new(64);
        let work = || std::thread::sleep(std::time::Duration::from_millis(2));
        let mut on = Vec::new();
        let mut off = Vec::new();
        for _ in 0..5 {
            let started = Instant::now();
            let scope = recorder.begin("bench", 0, false);
            work();
            scope.finish(true);
            on.push(started.elapsed().as_secs_f64());
            let started = Instant::now();
            work();
            off.push(started.elapsed().as_secs_f64());
        }
        let overhead = overhead_ratio(&on, &off);
        assert!(overhead < 0.05, "begin/finish cost {overhead:.4} of a 2ms request");
    }
}
