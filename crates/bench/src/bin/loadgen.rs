//! Load generator for the `rtserver` analysis daemon.
//!
//! ```text
//! # Against a running server:
//! trisc serve --port 7227 &
//! cargo run --release -p rtbench --bin loadgen -- --addr 127.0.0.1:7227
//!
//! # Self-contained (spawns an in-process server on an ephemeral port):
//! cargo run --release -p rtbench --bin loadgen -- --connections 8 --requests 200
//! ```
//!
//! Opens `--connections` concurrent client connections, each sending
//! `--requests` pipelined `wcrt` requests for the same two-task system,
//! then prints client-side throughput and latency percentiles next to
//! the server's own `metrics` snapshot. Because every request carries
//! the same spec, steady-state traffic should be served almost entirely
//! from the artifact cache — the hit/miss line is the point of the tool.
//!
//! `--par-sweep` instead benchmarks a *single* cold analysis (paper
//! Experiment I, all four CRPD approaches at the reference miss penalty)
//! under `rtpar` pools of 1, 2, 4 and 8 threads, verifying the rendered
//! report is byte-identical at every pool size and printing the
//! wall-time speedup over the single-threaded run.
//!
//! `--soak` exercises the reactor instead of the cache: it opens
//! `--connections` sockets (raising `RLIMIT_NOFILE` as needed), keeps
//! most of them idle, drives wcrt traffic over `--active` of them, and
//! proves the idle pool still answers `ping` after the storm. Responses
//! are tallied tolerantly — `overloaded` and `deadline_exceeded` are
//! expected outcomes under admission control, while any framing or
//! transport failure is a protocol error and fails the run. The summary
//! (p99 latency, shed rate, peak RSS) lands in `BENCH_async.json`;
//! `--max-shed-rate R` additionally gates on the observed shed fraction.
//!
//! The load mode also snapshots the server's per-stage artifact-DAG
//! counters before and after the run and reports each stage's hit rate
//! over the delta; `--min-stage-hit-rate R` turns that report into a
//! gate (exit non-zero if any touched stage's rate is below `R`), which
//! is how CI asserts a warmed server serves repeat traffic from cache.
//!
//! Either mode also writes a machine-readable summary — the printed
//! numbers plus the per-stage `rtobs` span durations of everything that
//! ran in this process — to `BENCH_wcrt.json` (`--json-out PATH` to
//! relocate it).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

use rtcli::ServeOptions;
use rtserver::json::Json;
use rtserver::Server;

const SPEC: &str = "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n";
const TASK_HI: &str = ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nli r3, 4\nloop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\nbne r3, r0, loop\n.bound loop, 4\nhalt\n";
const TASK_LO: &str = ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nld r4, 4(r1)\nadd r2, r2, r4\nhalt\n";

struct Options {
    addr: Option<String>,
    connections: usize,
    requests: usize,
    par_sweep: bool,
    /// `--soak`: open-connection reactor soak instead of the closed-loop
    /// cache benchmark. `--connections` then counts *open sockets* (most
    /// idle), with traffic driven over `--active` of them.
    soak: bool,
    active: usize,
    /// `--max-shed-rate R` (soak only): fail unless the fraction of
    /// requests answered `overloaded` stays at or below `R`.
    max_shed_rate: Option<f64>,
    /// `--json-out PATH`; defaults to `BENCH_async.json` under `--soak`
    /// and `BENCH_wcrt.json` otherwise.
    json_out: Option<String>,
    /// `--min-stage-hit-rate R`: fail the run unless every pipeline stage
    /// the run touched served at least fraction `R` of its lookups from
    /// cache (measured as a delta over this run only, so a warm server
    /// can be gated independently of its history).
    min_stage_hit_rate: Option<f64>,
}

impl Options {
    fn json_out(&self) -> String {
        match &self.json_out {
            Some(path) => path.clone(),
            None if self.soak => "BENCH_async.json".to_string(),
            None => "BENCH_wcrt.json".to_string(),
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: None,
        connections: 4,
        requests: 100,
        par_sweep: false,
        soak: false,
        active: 64,
        max_shed_rate: None,
        json_out: None,
        min_stage_hit_rate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = Some(value("--addr")?),
            "--connections" => {
                opts.connections =
                    value("--connections")?.parse().map_err(|e| format!("--connections: {e}"))?;
            }
            "--requests" => {
                opts.requests =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--par-sweep" => opts.par_sweep = true,
            "--soak" => opts.soak = true,
            "--active" => {
                opts.active = value("--active")?.parse().map_err(|e| format!("--active: {e}"))?;
            }
            "--max-shed-rate" => {
                let rate: f64 = value("--max-shed-rate")?
                    .parse()
                    .map_err(|e| format!("--max-shed-rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--max-shed-rate must be in [0, 1]".to_string());
                }
                opts.max_shed_rate = Some(rate);
            }
            "--json-out" => opts.json_out = Some(value("--json-out")?),
            "--min-stage-hit-rate" => {
                let rate: f64 = value("--min-stage-hit-rate")?
                    .parse()
                    .map_err(|e| format!("--min-stage-hit-rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--min-stage-hit-rate must be in [0, 1]".to_string());
                }
                opts.min_stage_hit_rate = Some(rate);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.connections == 0 || opts.requests == 0 {
        return Err("--connections and --requests must be positive".to_string());
    }
    if opts.soak && opts.active == 0 {
        return Err("--active must be positive under --soak".to_string());
    }
    Ok(opts)
}

/// Per-stage `(hits, misses)` out of one `metrics` snapshot's `stages`
/// object, keyed by stage name.
fn stage_counters(metrics: &Json) -> Vec<(String, u64, u64)> {
    let Some(Json::Obj(stages)) = metrics.get("stages") else { return Vec::new() };
    stages
        .iter()
        .map(|(name, s)| {
            let field = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
            (name.clone(), field("hits"), field("misses"))
        })
        .collect()
}

/// The run's per-stage cache effectiveness: lookups and hit rate over
/// the delta between the before/after snapshots. Prints one line per
/// stage and returns the JSON rows plus the gate verdict (`Some` failure
/// message if any touched stage fell below `min_rate`), so the caller
/// can still publish the JSON before failing.
fn stage_effectiveness(
    before: &Json,
    after: &Json,
    min_rate: Option<f64>,
) -> (Json, Option<String>) {
    let baseline = stage_counters(before);
    let mut rows = BTreeMap::new();
    let mut failures = Vec::new();
    for (stage, hits_after, misses_after) in stage_counters(after) {
        let (hits_before, misses_before) = baseline
            .iter()
            .find(|(name, ..)| *name == stage)
            .map(|(_, h, m)| (*h, *m))
            .unwrap_or((0, 0));
        let hits = hits_after.saturating_sub(hits_before);
        let misses = misses_after.saturating_sub(misses_before);
        let lookups = hits + misses;
        let rate = if lookups == 0 { 1.0 } else { hits as f64 / lookups as f64 };
        println!(
            "server side: stage {stage:>9}: {hits} hits / {misses} misses this run \
             (hit rate {rate:.3})"
        );
        if let Some(min) = min_rate {
            if lookups > 0 && rate < min {
                failures.push(format!("stage {stage}: hit rate {rate:.3} < required {min:.3}"));
            }
        }
        rows.insert(
            stage,
            Json::obj([
                ("hits", Json::from(hits)),
                ("misses", Json::from(misses)),
                ("hit_rate", Json::Num(rate)),
            ]),
        );
    }
    let verdict = if failures.is_empty() { None } else { Some(failures.join("; ")) };
    (Json::Obj(rows), verdict)
}

/// The recorder's per-stage span totals as a JSON object:
/// `{"wcrt": {"count": 8, "total_us": 1234}, ...}`.
fn stage_durations_json(session: &rtobs::Session) -> Json {
    Json::Obj(
        session
            .recorder()
            .stage_durations()
            .into_iter()
            .map(|(stage, (count, total_us))| {
                let entry =
                    Json::obj([("count", Json::from(count)), ("total_us", Json::from(total_us))]);
                (stage.to_string(), entry)
            })
            .collect(),
    )
}

/// Writes the machine-readable run summary next to the printed report.
fn write_bench_json(path: &str, report: Json) -> Result<(), String> {
    let mut text = report.encode();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// One cold Experiment-I analysis, shaped like a single server `wcrt`
/// request: analyze every task once, then compute the four CRPD matrices
/// and WCRT fixpoints (fanned out per approach) and render a report.
fn cold_analysis() -> String {
    use std::fmt::Write as _;
    let model = rtwcet::TimingModel::with_miss_penalty(rtbench::REFERENCE_CMISS);
    let experiment = rtbench::Experiment::build(
        &rtbench::experiment1_spec(),
        rtcache::CacheGeometry::paper_l1(),
    );
    let params = crpd::WcrtParams {
        miss_penalty: rtbench::REFERENCE_CMISS,
        ctx_switch: experiment.ctx_switch_cost(model),
        max_iterations: 10_000,
    };
    let per_approach = rtpar::par_map(&crpd::CrpdApproach::ALL, |a| {
        let matrix = crpd::CrpdMatrix::compute(*a, &experiment.reference);
        crpd::analyze_all(&experiment.reference, &matrix, &params)
    });
    let mut out = String::new();
    for (approach, results) in crpd::CrpdApproach::ALL.iter().zip(&per_approach) {
        for (i, r) in results.iter().enumerate() {
            let _ = writeln!(out, "{approach} task{i}: {} {}", r.cycles, r.schedulable);
        }
    }
    out
}

/// `--par-sweep`: times [`cold_analysis`] under pools of 1/2/4/8 threads
/// and checks the reports are byte-identical across pool sizes. Returns
/// one JSON row per pool size for the `BENCH_wcrt.json` summary.
fn par_sweep() -> Result<Json, String> {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "par-sweep: Experiment I cold analysis (4 approaches, Cmiss=20) per pool size \
         ({cores} core(s) available{})",
        if cores == 1 { "; expect no speedup, only invariance" } else { "" }
    );
    let mut reference: Option<(String, f64)> = None;
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = rtpar::Pool::new(threads);
        let started = Instant::now();
        let report = pool.install(cold_analysis);
        let secs = started.elapsed().as_secs_f64();
        let speedup = match &reference {
            None => {
                println!("  threads=1: {:>8.1} ms (baseline)", secs * 1e3);
                reference = Some((report, secs));
                1.0
            }
            Some((baseline, base_secs)) => {
                if report != *baseline {
                    return Err(format!("report at {threads} threads differs from baseline"));
                }
                println!(
                    "  threads={threads}: {:>8.1} ms ({:.2}x vs 1 thread, byte-identical)",
                    secs * 1e3,
                    base_secs / secs
                );
                base_secs / secs
            }
        };
        rows.push(Json::obj([
            ("threads", Json::from(threads as u64)),
            ("millis", Json::Num(secs * 1e3)),
            ("speedup_vs_1_thread", Json::Num(speedup)),
        ]));
    }
    Ok(Json::Arr(rows))
}

fn wcrt_request(id: u64) -> String {
    Json::obj([
        ("id", Json::from(id)),
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from(SPEC)),
        ("sources", Json::obj([("hi.s", Json::from(TASK_HI)), ("lo.s", Json::from(TASK_LO))])),
    ])
    .encode()
}

/// One client connection: sends `requests` wcrt requests back-to-back and
/// returns per-request latencies in microseconds.
fn client(addr: &str, requests: usize) -> Result<Vec<u64>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(requests);
    for id in 0..requests {
        let started = Instant::now();
        writeln!(writer, "{}", wcrt_request(id as u64)).map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let reply = Json::parse(line.trim_end()).map_err(|e| e.to_string())?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("request {id} failed: {line}"));
        }
        latencies.push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    Ok(latencies)
}

fn one_shot(addr: &str, line: &str) -> Result<Json, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").and_then(|()| writer.flush()).map_err(|e| e.to_string())?;
    let mut reply = String::new();
    reader.read_line(&mut reply).map_err(|e| e.to_string())?;
    Json::parse(reply.trim_end()).map_err(|e| e.to_string())
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Outcome tally of one soak client, merged across all active clients.
#[derive(Default)]
struct SoakTally {
    ok: u64,
    shed: u64,
    deadline_exceeded: u64,
    protocol_errors: u64,
    /// Latencies of successful requests only, microseconds.
    latencies: Vec<u64>,
}

impl SoakTally {
    fn merge(&mut self, other: SoakTally) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.protocol_errors += other.protocol_errors;
        self.latencies.extend(other.latencies);
    }

    fn attempts(&self) -> u64 {
        self.ok + self.shed + self.deadline_exceeded + self.protocol_errors
    }

    fn shed_rate(&self) -> f64 {
        if self.attempts() == 0 {
            0.0
        } else {
            self.shed as f64 / self.attempts() as f64
        }
    }
}

/// Connects, retrying transient failures (listen-backlog overflow, fd
/// churn) for up to ~10 s — opening 10k+ sockets in a tight loop is
/// exactly the scenario accept queues drop connections under.
fn connect_with_retry(addr: &str) -> Result<TcpStream, String> {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
}

/// Round-trips one `ping` over an already-open connection, proving the
/// reactor still multiplexes it.
fn ping(stream: &TcpStream) -> Result<(), String> {
    let mut writer = BufWriter::new(stream);
    writeln!(writer, r#"{{"cmd":"ping"}}"#)
        .and_then(|()| writer.flush())
        .map_err(|e| format!("ping write: {e}"))?;
    drop(writer);
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| format!("ping read: {e}"))?;
    let reply = Json::parse(line.trim_end()).map_err(|e| format!("ping reply: {e}"))?;
    match reply.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(()),
        _ => Err(format!("ping rejected: {}", line.trim_end())),
    }
}

/// One active soak connection: sends `requests` wcrt requests in
/// lockstep, classifying every response instead of failing fast.
/// `overloaded` and `deadline_exceeded` are admission-control outcomes;
/// anything else that is not `ok:true` — and any transport or framing
/// failure — counts as a protocol error.
fn soak_client(addr: &str, requests: usize) -> Result<SoakTally, String> {
    let stream = connect_with_retry(addr)?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut tally = SoakTally::default();
    for id in 0..requests {
        let started = Instant::now();
        if writeln!(writer, "{}", wcrt_request(id as u64)).and_then(|()| writer.flush()).is_err() {
            tally.protocol_errors += 1;
            break; // connection is gone; the remaining requests never happened
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => {
                tally.protocol_errors += 1;
                break;
            }
        }
        let Ok(reply) = Json::parse(line.trim_end()) else {
            tally.protocol_errors += 1;
            break; // framing is corrupt; nothing downstream is trustworthy
        };
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            tally.ok += 1;
            tally.latencies.push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        } else {
            match reply.get("code").and_then(Json::as_str) {
                Some("overloaded") => tally.shed += 1,
                Some("deadline_exceeded") => tally.deadline_exceeded += 1,
                _ => tally.protocol_errors += 1,
            }
        }
    }
    Ok(tally)
}

/// Peak resident set of this process (`VmHWM`), kibibytes. With the
/// in-process server this covers client *and* server memory.
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.trim_start_matches("VmHWM:").trim().trim_end_matches("kB").trim().parse().ok()
}

/// `--soak`: the open-connection reactor soak. See the module docs for
/// the shape of the run; gates (always: zero protocol errors; optional:
/// `--max-shed-rate`) fire after `BENCH_async.json` is written so a
/// failed run still leaves its evidence.
fn soak(opts: &Options, session: &rtobs::Session) -> Result<(), String> {
    let (addr, local) = match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let serve = ServeOptions {
                host: "127.0.0.1".to_string(),
                port: 0,
                threads: 4,
                event_threads: 4,
                ..ServeOptions::default()
            };
            let handle = Server::spawn(&serve).map_err(|e| format!("spawn server: {e}"))?;
            (handle.addr().to_string(), Some(handle))
        }
    };
    let in_process = local.is_some();

    // Each open connection costs one client fd, plus one server fd when
    // the server shares this process. Raise the soft RLIMIT_NOFILE and
    // clamp the run to whatever the hard ceiling actually grants.
    let per_conn = if in_process { 2u64 } else { 1 };
    let margin = 256u64;
    let limit = rtreact::raise_nofile_limit(opts.connections as u64 * per_conn + margin)
        .map_err(|e| format!("raising RLIMIT_NOFILE: {e}"))?;
    let budget = usize::try_from(limit.saturating_sub(margin) / per_conn).unwrap_or(usize::MAX);
    println!("soak: RLIMIT_NOFILE raised to {limit} ({per_conn} fd(s) per connection)");
    let connections = opts.connections.min(budget.max(opts.active));
    if connections < opts.connections {
        println!(
            "soak: RLIMIT_NOFILE {limit} caps the run at {connections} connections \
             (asked for {})",
            opts.connections
        );
    }
    let active = opts.active.min(connections);
    let idle_target = connections - active;
    println!(
        "soak: {connections} connections ({active} active x {} requests, {idle_target} idle) \
         against {addr}{}",
        opts.requests,
        if in_process { " (in-process server, 4 event threads)" } else { "" },
    );

    // Open the idle pool from several threads: a serial loop pays a full
    // SYN-retransmit second for every listen-backlog drop, which adds up
    // to minutes at 10k sockets.
    let opened = Instant::now();
    let openers = 16.min(idle_target.max(1));
    let idle: Vec<TcpStream> = {
        let chunks: Vec<usize> = (0..openers)
            .map(|i| idle_target / openers + usize::from(i < idle_target % openers))
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|count| {
                let addr = addr.clone();
                std::thread::spawn(move || -> Result<Vec<TcpStream>, String> {
                    (0..count).map(|_| connect_with_retry(&addr)).collect()
                })
            })
            .collect();
        let mut pool = Vec::with_capacity(idle_target);
        for handle in handles {
            pool.extend(handle.join().map_err(|_| "idle opener panicked")??);
        }
        pool
    };
    println!("soak: {} idle connections open in {:.2?}", idle.len(), opened.elapsed());

    let started = Instant::now();
    let workers: Vec<_> = (0..active)
        .map(|_| {
            let addr = addr.clone();
            let requests = opts.requests;
            std::thread::spawn(move || soak_client(&addr, requests))
        })
        .collect();
    let mut tally = SoakTally::default();
    for worker in workers {
        tally.merge(worker.join().map_err(|_| "soak client panicked")??);
    }
    let elapsed = started.elapsed();

    // The idle pool must have survived the storm: round-trip a sample.
    for (i, stream) in idle.iter().take(8).enumerate() {
        ping(stream).map_err(|e| format!("idle connection {i} died during the soak: {e}"))?;
    }

    // Server-side admission picture while every connection is still open.
    let status = one_shot(&addr, r#"{"cmd":"statusz"}"#)?
        .get("status")
        .cloned()
        .ok_or("statusz reply missing payload")?;
    let field = |key: &str| status.get(key).and_then(Json::as_u64).unwrap_or(0);

    tally.latencies.sort_unstable();
    let shed_rate = tally.shed_rate();
    println!(
        "client side: {} ok / {} shed / {} deadline / {} protocol errors in {:.2?} \
         ({:.0} req/s, shed rate {:.4})",
        tally.ok,
        tally.shed,
        tally.deadline_exceeded,
        tally.protocol_errors,
        elapsed,
        tally.attempts() as f64 / elapsed.as_secs_f64(),
        shed_rate,
    );
    println!(
        "client side: ok latency p50 {} us / p95 {} us / p99 {} us",
        percentile(&tally.latencies, 0.50),
        percentile(&tally.latencies, 0.95),
        percentile(&tally.latencies, 0.99),
    );
    let rss = peak_rss_kb();
    println!(
        "server side: {} open connections, {} event threads, {} shed total; \
         peak RSS {} kB{}",
        field("open_connections"),
        field("event_threads"),
        field("shed_total"),
        rss.unwrap_or(0),
        if in_process { " (client+server)" } else { " (client only)" },
    );

    drop(idle); // close the pool before asking the server to drain
    if let Some(handle) = local {
        one_shot(&addr, r#"{"cmd":"shutdown"}"#)?;
        handle.join().map_err(|e| e.to_string())?;
    }

    write_bench_json(
        &opts.json_out(),
        Json::obj([
            ("mode", Json::from("async_soak")),
            ("in_process_server", Json::Bool(in_process)),
            ("nofile_limit", Json::from(limit)),
            ("connections", Json::from(connections as u64)),
            ("idle_connections", Json::from(idle_target as u64)),
            ("active_connections", Json::from(active as u64)),
            ("requests_per_active", Json::from(opts.requests as u64)),
            ("ok", Json::from(tally.ok)),
            ("shed", Json::from(tally.shed)),
            ("deadline_exceeded", Json::from(tally.deadline_exceeded)),
            ("protocol_errors", Json::from(tally.protocol_errors)),
            ("shed_rate", Json::Num(shed_rate)),
            ("elapsed_secs", Json::Num(elapsed.as_secs_f64())),
            ("requests_per_sec", Json::Num(tally.attempts() as f64 / elapsed.as_secs_f64())),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::from(percentile(&tally.latencies, 0.50))),
                    ("p95", Json::from(percentile(&tally.latencies, 0.95))),
                    ("p99", Json::from(percentile(&tally.latencies, 0.99))),
                ]),
            ),
            ("peak_rss_kb", rss.map_or(Json::Null, Json::from)),
            ("peak_rss_covers_server", Json::Bool(in_process)),
            (
                "server",
                Json::obj([
                    ("open_connections", Json::from(field("open_connections"))),
                    ("event_threads", Json::from(field("event_threads"))),
                    ("max_inflight", Json::from(field("max_inflight"))),
                    ("shed_total", Json::from(field("shed_total"))),
                ]),
            ),
            ("stages", stage_durations_json(session)),
        ]),
    )?;

    if tally.protocol_errors > 0 {
        return Err(format!("{} protocol errors (required: 0)", tally.protocol_errors));
    }
    if let Some(max) = opts.max_shed_rate {
        if shed_rate > max {
            return Err(format!("shed rate {shed_rate:.4} > allowed {max:.4}"));
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let opts = parse_options()?;
    // Record per-stage span durations for everything analyzed in this
    // process (the par-sweep itself, or the in-process server's work).
    let session = rtobs::begin();
    if opts.par_sweep {
        let sweep = par_sweep()?;
        return write_bench_json(
            &opts.json_out(),
            Json::obj([
                ("mode", Json::from("par_sweep")),
                ("par_sweep", sweep),
                ("stages", stage_durations_json(&session)),
            ]),
        );
    }
    if opts.soak {
        return soak(&opts, &session);
    }

    // Without --addr, run a server inside this process on an ephemeral
    // port so the tool works out of the box.
    let (addr, local) = match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let serve = ServeOptions {
                host: "127.0.0.1".to_string(),
                port: 0,
                threads: 4,
                ..ServeOptions::default()
            };
            let handle = Server::spawn(&serve).map_err(|e| format!("spawn server: {e}"))?;
            (handle.addr().to_string(), Some(handle))
        }
    };

    println!(
        "loadgen: {} connections x {} wcrt requests against {addr}{}",
        opts.connections,
        opts.requests,
        if local.is_some() { " (in-process server)" } else { "" },
    );

    // Snapshot the stage counters before the run, so effectiveness is a
    // delta over this run's traffic even against a long-lived server.
    let before = one_shot(&addr, r#"{"cmd":"metrics"}"#)?
        .get("metrics")
        .cloned()
        .ok_or("metrics reply missing payload")?;

    let started = Instant::now();
    let workers: Vec<_> = (0..opts.connections)
        .map(|_| {
            let addr = addr.clone();
            let requests = opts.requests;
            std::thread::spawn(move || client(&addr, requests))
        })
        .collect();
    let mut latencies = Vec::new();
    for worker in workers {
        latencies.extend(worker.join().map_err(|_| "client thread panicked")??);
    }
    let elapsed = started.elapsed();

    latencies.sort_unstable();
    let total = latencies.len();
    println!(
        "client side: {total} ok in {:.2?} ({:.0} req/s), latency p50 {} us / p95 {} us / p99 {} us",
        elapsed,
        total as f64 / elapsed.as_secs_f64(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    let reply = one_shot(&addr, r#"{"cmd":"metrics"}"#)?;
    let metrics = reply.get("metrics").ok_or("metrics reply missing payload")?;
    let cache = metrics.get("artifact_cache").ok_or("metrics missing artifact_cache")?;
    let field = |json: &Json, key: &str| json.get(key).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "server side: artifact cache {} hits / {} misses / {} entries, uptime {} s",
        field(cache, "hits"),
        field(cache, "misses"),
        field(cache, "entries"),
        field(metrics, "uptime_secs"),
    );
    if let Some(wcrt) = metrics.get("endpoints").and_then(|e| e.get("wcrt")) {
        println!(
            "server side: wcrt {} requests ({} errors), p50 <= {} us / p95 <= {} us / p99 <= {} us",
            field(wcrt, "requests"),
            field(wcrt, "errors"),
            field(wcrt, "p50_us"),
            field(wcrt, "p95_us"),
            field(wcrt, "p99_us"),
        );
    }
    let (stage_caches, gate_verdict) =
        stage_effectiveness(&before, metrics, opts.min_stage_hit_rate);

    let in_process = local.is_some();
    if let Some(handle) = local {
        one_shot(&addr, r#"{"cmd":"shutdown"}"#)?;
        handle.join().map_err(|e| e.to_string())?;
    }

    write_bench_json(
        &opts.json_out(),
        Json::obj([
            ("mode", Json::from("load")),
            ("in_process_server", Json::Bool(in_process)),
            ("connections", Json::from(opts.connections as u64)),
            ("requests_per_connection", Json::from(opts.requests as u64)),
            ("total_requests", Json::from(total as u64)),
            ("elapsed_secs", Json::Num(elapsed.as_secs_f64())),
            ("requests_per_sec", Json::Num(total as f64 / elapsed.as_secs_f64())),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::from(percentile(&latencies, 0.50))),
                    ("p95", Json::from(percentile(&latencies, 0.95))),
                    ("p99", Json::from(percentile(&latencies, 0.99))),
                ]),
            ),
            ("server_metrics", metrics.clone()),
            ("stage_caches", stage_caches),
            ("stages", stage_durations_json(&session)),
        ]),
    )?;
    // Gate after publishing, so a failed run still leaves its evidence.
    match gate_verdict {
        Some(message) => Err(message),
        None => Ok(()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            eprintln!(
                "usage: loadgen [--addr HOST:PORT] [--connections N] [--requests M] [--par-sweep] \
                 [--soak [--active K] [--max-shed-rate R]] [--json-out PATH] [--min-stage-hit-rate R]"
            );
            ExitCode::from(2)
        }
    }
}
