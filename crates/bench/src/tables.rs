//! Table builders mirroring the paper's Tables I–VI.

use crpd::{CrpdApproach, CrpdMatrix};

use crate::{improvement_percent, Experiment, CMISS_SWEEP};

/// Renders an aligned ASCII table.
pub fn render(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("{title}\n");
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Table I: task parameters (WCET in cycles, derived period, priority).
pub fn table1(e: &Experiment) -> String {
    let rows: Vec<Vec<String>> = e
        .reference
        .iter()
        .zip(&e.periods)
        .zip(&e.priorities)
        .map(|((t, period), prio)| {
            vec![
                t.name().to_string(),
                t.wcet().to_string(),
                period.to_string(),
                prio.to_string(),
                format!("{:.3}", t.wcet() as f64 / *period as f64),
            ]
        })
        .collect();
    render(
        &format!("Table I ({}): tasks", e.name),
        &["Task", "WCET(cycles)", "Period(cycles)", "Priority", "Utilization"],
        &rows,
    )
}

/// The preemption pairs of a 3-task experiment, in the paper's order:
/// `(preempted, preempting)` index pairs.
pub fn preemption_pairs(e: &Experiment) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for i in (0..e.reference.len()).rev() {
        for j in 0..i {
            pairs.push((i, j));
        }
    }
    // Paper order: lowest-priority task's pairs first (OFDM by MR, OFDM by
    // ED, ED by MR).
    pairs.sort_by_key(|(i, j)| (usize::MAX - i, *j));
    pairs
}

/// Table II: number of cache lines to be reloaded per preemption type,
/// one column per approach.
pub fn table2(e: &Experiment) -> String {
    let matrices: Vec<CrpdMatrix> =
        CrpdApproach::ALL.iter().map(|a| CrpdMatrix::compute(*a, &e.reference)).collect();
    let rows: Vec<Vec<String>> = preemption_pairs(e)
        .into_iter()
        .map(|(i, j)| {
            let mut row = vec![format!("{} by {}", e.reference[i].name(), e.reference[j].name())];
            row.extend(matrices.iter().map(|m| m.reload(i, j).to_string()));
            row
        })
        .collect();
    render(
        &format!("Table II ({}): cache lines to be reloaded", e.name),
        &["Preemption", "App. 1", "App. 2", "App. 3", "App. 4"],
        &rows,
    )
}

/// The WCRT numbers behind Tables III/V: per miss penalty, per preemptible
/// task, the four approaches' estimates plus the measured ART.
///
/// Entries whose recurrence crossed the deadline carry
/// [`WcrtComparison::schedulable`] `= false`; like the paper, the first
/// value past the deadline is reported (marked `*` in the rendered
/// table). Such values are where the iteration stopped, not fixed points,
/// so cross-approach monotonicity can be violated among starred entries.
pub struct WcrtComparison {
    /// Miss penalties swept.
    pub cmiss: Vec<u64>,
    /// Task names (preemptible tasks only — all but the highest
    /// priority).
    pub tasks: Vec<String>,
    /// `estimates[c][t][a]`: WCRT for cmiss index `c`, task index `t`,
    /// approach index `a`.
    pub estimates: Vec<Vec<[u64; 4]>>,
    /// `schedulable[c][t][a]`: whether the estimate converged at or below
    /// the deadline.
    pub schedulable: Vec<Vec<[bool; 4]>>,
    /// `art[c][t]`: measured actual response time.
    pub art: Vec<Vec<u64>>,
}

/// Computes the full WCRT comparison (this runs the co-simulation once
/// per miss penalty; `horizon_periods` controls its length).
pub fn wcrt_comparison(e: &Experiment, horizon_periods: u64) -> WcrtComparison {
    // All tasks except the highest-priority one can be preempted.
    let preemptible: Vec<usize> = {
        let hp = e
            .priorities
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| **p)
            .map(|(i, _)| i)
            .expect("experiments are non-empty");
        (0..e.reference.len()).filter(|i| *i != hp).collect()
    };
    let mut estimates = Vec::new();
    let mut schedulable = Vec::new();
    let mut art = Vec::new();
    for &cmiss in &CMISS_SWEEP {
        let per_approach: Vec<Vec<crpd::WcrtResult>> =
            CrpdApproach::ALL.iter().map(|a| e.wcrt(*a, cmiss)).collect();
        estimates.push(
            preemptible
                .iter()
                .map(|&t| {
                    [
                        per_approach[0][t].cycles,
                        per_approach[1][t].cycles,
                        per_approach[2][t].cycles,
                        per_approach[3][t].cycles,
                    ]
                })
                .collect(),
        );
        schedulable.push(
            preemptible
                .iter()
                .map(|&t| {
                    [
                        per_approach[0][t].schedulable,
                        per_approach[1][t].schedulable,
                        per_approach[2][t].schedulable,
                        per_approach[3][t].schedulable,
                    ]
                })
                .collect(),
        );
        let measured = e.measured_art(cmiss, horizon_periods);
        art.push(preemptible.iter().map(|&t| measured[t]).collect());
    }
    WcrtComparison {
        cmiss: CMISS_SWEEP.to_vec(),
        tasks: preemptible.iter().map(|&t| e.reference[t].name().to_string()).collect(),
        estimates,
        schedulable,
        art,
    }
}

/// Table III/V: WCRT estimates and ART per miss penalty.
pub fn table_wcrt(e: &Experiment, cmp: &WcrtComparison) -> String {
    let mut rows = Vec::new();
    for (c, &cmiss) in cmp.cmiss.iter().enumerate() {
        // Report the lowest-priority task first, as the paper does.
        for t in (0..cmp.tasks.len()).rev() {
            let est = cmp.estimates[c][t];
            let sched = cmp.schedulable[c][t];
            let cell = |a: usize| {
                if sched[a] {
                    est[a].to_string()
                } else {
                    format!("{}*", est[a])
                }
            };
            rows.push(vec![
                cmiss.to_string(),
                cmp.tasks[t].clone(),
                cell(0),
                cell(1),
                cell(2),
                cell(3),
                cmp.art[c][t].to_string(),
            ]);
        }
    }
    let mut out = render(
        &format!("Table III/V ({}): WCRT estimates vs measured ART (cycles)", e.name),
        &["Cmiss", "Task", "App. 1", "App. 2", "App. 3", "App. 4", "ART"],
        &rows,
    );
    out.push_str("(*: recurrence crossed the deadline; value is where iteration stopped)\n");
    out
}

/// Table IV/VI: improvement of App. 4 over the other approaches.
pub fn table_improvements(e: &Experiment, cmp: &WcrtComparison) -> String {
    let mut rows = Vec::new();
    for other in 0..3 {
        for t in (0..cmp.tasks.len()).rev() {
            let mut row = vec![format!("App.4 vs App.{}", other + 1), cmp.tasks[t].clone()];
            for c in 0..cmp.cmiss.len() {
                let est = cmp.estimates[c][t];
                row.push(format!("{:.0}%", improvement_percent(est[other], est[3])));
            }
            rows.push(row);
        }
    }
    render(
        &format!("Table IV/VI ({}): WCRT reduction of the combined approach", e.name),
        &["Comparison", "Task", "Cmiss=10", "Cmiss=20", "Cmiss=30", "Cmiss=40"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::tiny_experiment;

    #[test]
    fn render_aligns_columns() {
        let s = render("T", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(s.starts_with("T\n"));
        assert!(s.contains("a  bb"));
        assert!(s.contains("1   2"));
    }

    #[test]
    fn table1_lists_all_tasks() {
        let e = tiny_experiment();
        let t = table1(&e);
        for name in ["mr", "ed", "ofdm"] {
            assert!(t.contains(name), "{t}");
        }
    }

    #[test]
    fn preemption_pairs_match_paper_order() {
        let e = tiny_experiment();
        // [0]=mr(hi), [1]=ed, [2]=ofdm(lo): expect ofdm-by-mr, ofdm-by-ed,
        // ed-by-mr.
        assert_eq!(preemption_pairs(&e), vec![(2, 0), (2, 1), (1, 0)]);
    }

    #[test]
    fn table2_has_three_rows_and_four_approaches() {
        let e = tiny_experiment();
        let t = table2(&e);
        assert_eq!(t.lines().count(), 3 + 3, "title + header + rule + 3 rows");
        assert!(t.contains("ofdm by mr"));
        assert!(t.contains("App. 4"));
    }

    #[test]
    fn wcrt_comparison_shape() {
        let e = tiny_experiment();
        let cmp = wcrt_comparison(&e, 1);
        assert_eq!(cmp.cmiss, vec![10, 20, 30, 40]);
        assert_eq!(cmp.tasks.len(), 2, "ED and OFDM are preemptible");
        assert_eq!(cmp.estimates.len(), 4);
        assert_eq!(cmp.art.len(), 4);
        let t3 = table_wcrt(&e, &cmp);
        assert!(t3.contains("ART"));
        let t4 = table_improvements(&e, &cmp);
        assert!(t4.contains("App.4 vs App.1"));
    }
}
