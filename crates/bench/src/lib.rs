//! Reproduction harness for every table and figure of Tan & Mooney
//! (DATE 2004).
//!
//! The paper's absolute numbers come from an ARM9 testbed; this harness
//! rebuilds each experiment on the TRISC substrate, keeping the *shape*
//! of the evaluation: the same task sets, the same priority order, the
//! paper's WCET/period utilization ratios (periods are derived from our
//! measured WCETs at the reference miss penalty), the same four CRPD
//! approaches and the same `Cmiss` sweep.
//!
//! See `EXPERIMENTS.md` at the repository root for paper-vs-measured
//! values produced by the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tables;

use crpd::{AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams, WcrtResult};
use rtcache::CacheGeometry;
use rtprogram::Program;
use rtsched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use rtwcet::{estimate_wcet, TimingModel};

/// Reference miss penalty for reported WCETs (paper Example 6).
pub const REFERENCE_CMISS: u64 = 20;
/// Miss penalty at which periods are derived. Unlike the paper, our WCETs
/// grow with `Cmiss` (the paper holds the measured WCET fixed and sweeps
/// only the CRPD term), so periods are fixed at the top of the sweep to
/// keep the base utilization below one for every swept penalty.
pub const PERIOD_CMISS: u64 = 40;
/// The miss-penalty sweep of Tables III–VI.
pub const CMISS_SWEEP: [u64; 4] = [10, 20, 30, 40];

/// A task slot in an experiment: its program plus the paper's published
/// WCET/period (µs) used to derive a period with the same utilization.
#[derive(Debug, Clone)]
pub struct SpecTask {
    /// The task program.
    pub program: Program,
    /// The paper's WCET in µs (Table I).
    pub paper_wcet_us: f64,
    /// The paper's period in µs (Table I).
    pub paper_period_us: f64,
    /// Priority (smaller = higher), as in Table I.
    pub priority: u32,
}

/// One of the paper's two experiments, ready to build.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// `"Experiment I"` or `"Experiment II"`.
    pub name: &'static str,
    /// Tasks in priority order (highest first).
    pub tasks: Vec<SpecTask>,
}

/// Experiment I: MR, ED, OFDM (paper Table I, left).
pub fn experiment1_spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "Experiment I",
        tasks: vec![
            SpecTask {
                program: rtworkloads::mobile_robot(),
                paper_wcet_us: 830.0,
                paper_period_us: 3_500.0,
                priority: 2,
            },
            SpecTask {
                program: rtworkloads::edge_detection(),
                paper_wcet_us: 1_392.0,
                paper_period_us: 6_500.0,
                priority: 3,
            },
            SpecTask {
                program: rtworkloads::ofdm_transmitter(),
                paper_wcet_us: 2_830.0,
                paper_period_us: 40_000.0,
                priority: 4,
            },
        ],
    }
}

/// Experiment II: IDCT, ADPCMD, ADPCMC (paper Table I, right).
pub fn experiment2_spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "Experiment II",
        tasks: vec![
            SpecTask {
                program: rtworkloads::idct(),
                paper_wcet_us: 1_580.0,
                paper_period_us: 4_500.0,
                priority: 2,
            },
            SpecTask {
                program: rtworkloads::adpcm_decoder(),
                paper_wcet_us: 2_839.0,
                paper_period_us: 10_000.0,
                priority: 3,
            },
            SpecTask {
                program: rtworkloads::adpcm_encoder(),
                paper_wcet_us: 7_675.0,
                paper_period_us: 50_000.0,
                priority: 4,
            },
        ],
    }
}

/// A built experiment: programs, fixed periods (derived at the reference
/// miss penalty so the paper's utilizations hold), priorities and the
/// analyzed tasks at the reference model.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment name.
    pub name: String,
    /// Cache geometry under analysis.
    pub geometry: CacheGeometry,
    /// Programs in priority order.
    pub programs: Vec<Program>,
    /// Derived periods in cycles.
    pub periods: Vec<u64>,
    /// Priorities (Table I).
    pub priorities: Vec<u32>,
    /// Analyzed tasks at the reference miss penalty.
    pub reference: Vec<AnalyzedTask>,
}

impl Experiment {
    /// Builds an experiment: estimates each task's WCET at the reference
    /// miss penalty and derives its period to match the paper's
    /// utilization.
    ///
    /// # Panics
    ///
    /// Panics if a workload program fails to analyze (they are validated
    /// by their own test suites).
    pub fn build(spec: &ExperimentSpec, geometry: CacheGeometry) -> Experiment {
        let model = TimingModel::with_miss_penalty(REFERENCE_CMISS);
        let period_model = TimingModel::with_miss_penalty(PERIOD_CMISS);
        // The period-deriving WCET probes are independent per task.
        let periods = rtpar::par_map(&spec.tasks, |t| {
            let wcet = estimate_wcet(&t.program, geometry, period_model)
                .expect("workload programs analyze cleanly")
                .cycles;
            (wcet as f64 * t.paper_period_us / t.paper_wcet_us).round() as u64
        });
        let programs: Vec<Program> = spec.tasks.iter().map(|t| t.program.clone()).collect();
        let priorities: Vec<u32> = spec.tasks.iter().map(|t| t.priority).collect();
        let reference = analyze_tasks(&programs, &periods, &priorities, geometry, model);
        Experiment {
            name: spec.name.to_string(),
            geometry,
            programs,
            periods,
            priorities,
            reference,
        }
    }

    /// Re-analyzes the tasks under a different miss penalty (periods stay
    /// fixed, as in the paper's Cmiss sweep).
    pub fn analyzed_with(&self, model: TimingModel) -> Vec<AnalyzedTask> {
        analyze_tasks(&self.programs, &self.periods, &self.priorities, self.geometry, model)
    }

    /// The context-switch WCET (`Ccs`) under `model` (paper Example 6).
    pub fn ctx_switch_cost(&self, model: TimingModel) -> u64 {
        estimate_wcet(&rtworkloads::context_switch(), self.geometry, model)
            .expect("context switch routine analyzes cleanly")
            .cycles
    }

    /// WCRT estimates of every task under one approach and miss penalty.
    pub fn wcrt(&self, approach: CrpdApproach, miss_penalty: u64) -> Vec<WcrtResult> {
        let model = TimingModel::with_miss_penalty(miss_penalty);
        let tasks = self.analyzed_with(model);
        let matrix = CrpdMatrix::compute(approach, &tasks);
        let params = WcrtParams {
            miss_penalty,
            ctx_switch: self.ctx_switch_cost(model),
            max_iterations: 10_000,
        };
        crpd::analyze_all(&tasks, &matrix, &params)
    }

    /// Measured actual response times (ART) per task from the scheduler
    /// co-simulation, run for `horizon_periods` periods of the
    /// lowest-priority task with every job on its worst-case path.
    pub fn measured_art(&self, miss_penalty: u64, horizon_periods: u64) -> Vec<u64> {
        let model = TimingModel::with_miss_penalty(miss_penalty);
        let sched_tasks: Vec<SchedTask> = self
            .programs
            .iter()
            .zip(&self.periods)
            .zip(&self.priorities)
            .map(|((p, period), prio)| SchedTask::new(p.clone(), *period, *prio))
            .collect();
        let horizon = self.periods.iter().max().copied().unwrap_or(1) * horizon_periods;
        let config = SchedConfig {
            geometry: self.geometry,
            model,
            ctx_switch: self.ctx_switch_cost(model),
            horizon,
            variant_policy: VariantPolicy::Worst,
            cache_mode: CacheMode::Shared,
            replacement: Default::default(),
            l2: None,
        };
        let report = simulate(&sched_tasks, &config).expect("experiment simulates cleanly");
        report.tasks.iter().map(|t| t.max_response).collect()
    }
}

fn analyze_tasks(
    programs: &[Program],
    periods: &[u64],
    priorities: &[u32],
    geometry: CacheGeometry,
    model: TimingModel,
) -> Vec<AnalyzedTask> {
    // Per-task analyses are independent; fan out over the current rtpar
    // pool. Results come back in task order, so sweeps stay deterministic.
    rtpar::par_map_range(programs.len(), |i| {
        AnalyzedTask::analyze(
            &programs[i],
            TaskParams { period: periods[i], priority: priorities[i] },
            geometry,
            model,
        )
        .expect("workload programs analyze cleanly")
    })
}

/// Improvement of approach 4 over another approach, in percent
/// (`(other - combined) / other`), the metric of Tables IV/VI.
pub fn improvement_percent(other: u64, combined: u64) -> f64 {
    if other == 0 {
        0.0
    } else {
        100.0 * (other.saturating_sub(combined)) as f64 / other as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Experiment I used by tests (small image / few FFT
    /// points keep simulation quick).
    pub(crate) fn tiny_experiment() -> Experiment {
        let spec = ExperimentSpec {
            name: "tiny",
            tasks: vec![
                SpecTask {
                    program: rtworkloads::mobile_robot(),
                    paper_wcet_us: 830.0,
                    paper_period_us: 3_500.0,
                    priority: 2,
                },
                SpecTask {
                    program: rtworkloads::edge_detection_with_dim(10),
                    paper_wcet_us: 1_392.0,
                    paper_period_us: 6_500.0,
                    priority: 3,
                },
                SpecTask {
                    program: rtworkloads::ofdm_transmitter_with_points(16),
                    paper_wcet_us: 2_830.0,
                    paper_period_us: 40_000.0,
                    priority: 4,
                },
            ],
        };
        Experiment::build(&spec, CacheGeometry::paper_l1())
    }

    #[test]
    fn periods_match_paper_utilizations() {
        let e = tiny_experiment();
        // U_i = C_i(PERIOD_CMISS) / P_i must match the paper's ratios to
        // rounding (periods are derived at the top of the Cmiss sweep).
        let paper_u = [830.0 / 3500.0, 1392.0 / 6500.0, 2830.0 / 40000.0];
        let at_top = e.analyzed_with(TimingModel::with_miss_penalty(PERIOD_CMISS));
        for (i, t) in at_top.iter().enumerate() {
            let u = t.wcet() as f64 / e.periods[i] as f64;
            assert!((u - paper_u[i]).abs() < 0.01, "task {i}: u={u} vs {}", paper_u[i]);
        }
        // At smaller penalties the utilization can only be lower.
        for (i, t) in e.reference.iter().enumerate() {
            assert!(t.wcet() <= at_top[i].wcet());
        }
    }

    #[test]
    fn wcrt_ordering_between_approaches() {
        let e = tiny_experiment();
        // The OFDM-analog is index 2 (lowest priority).
        let r1 = e.wcrt(CrpdApproach::AllPreemptingLines, 20)[2].cycles;
        let r2 = e.wcrt(CrpdApproach::InterTask, 20)[2].cycles;
        let r3 = e.wcrt(CrpdApproach::UsefulBlocks, 20)[2].cycles;
        let r4 = e.wcrt(CrpdApproach::Combined, 20)[2].cycles;
        assert!(r4 <= r2, "App.4 ({r4}) must be at most App.2 ({r2})");
        assert!(r4 <= r3, "App.4 ({r4}) must be at most App.3 ({r3})");
        assert!(r4 <= r1, "App.4 ({r4}) must be at most App.1 ({r1})");
    }

    #[test]
    fn art_below_all_wcrt_estimates() {
        let e = tiny_experiment();
        let art = e.measured_art(20, 2);
        for approach in CrpdApproach::ALL {
            let wcrt = e.wcrt(approach, 20);
            for i in 0..art.len() {
                if wcrt[i].schedulable {
                    assert!(
                        art[i] <= wcrt[i].cycles,
                        "{}: task {i} ART {} > {} WCRT {}",
                        e.name,
                        art[i],
                        approach,
                        wcrt[i].cycles
                    );
                }
            }
        }
    }

    #[test]
    fn improvement_percent_math() {
        assert_eq!(improvement_percent(200, 100), 50.0);
        assert_eq!(improvement_percent(0, 100), 0.0);
        assert_eq!(improvement_percent(100, 100), 0.0);
        assert_eq!(improvement_percent(100, 150), 0.0, "saturates at zero");
    }
}
