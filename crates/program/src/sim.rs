//! The TRISC-16 instruction-set simulator.
//!
//! Plays the role the XRAY ARM simulator plays in the paper (Fig. 5): it
//! executes a task program and emits the exact sequence of memory
//! accesses — one instruction fetch per issued instruction plus the data
//! access of each load/store. These traces feed the WCET estimator, the
//! CRPD analyses (via CFG attribution) and the scheduler co-simulation.

use std::fmt;

use crate::isa::{Instr, Reg};
use crate::mem::{MemError, Memory};
use crate::program::{InputVariant, Program};

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (marks the start of an instruction).
    Fetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// One memory access made by the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Address of the instruction that made the access.
    pub pc: u64,
    /// The accessed byte address (equals `pc` for fetches).
    pub addr: u64,
    /// Fetch, load or store.
    pub kind: AccessKind,
}

/// A complete memory trace of one program run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// The accesses in program order.
    pub accesses: Vec<MemoryAccess>,
    /// Number of instructions executed.
    pub instructions: u64,
}

impl Trace {
    /// Iterates over the accessed byte addresses.
    pub fn addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.accesses.iter().map(|a| a.addr)
    }
}

/// Errors raised during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the code region.
    UnmappedCode {
        /// The bad program counter.
        pc: u64,
    },
    /// A data access failed.
    Mem {
        /// Address of the faulting instruction.
        pc: u64,
        /// The underlying memory error.
        source: MemError,
    },
    /// The step limit was exhausted before `halt` (runaway loop guard).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnmappedCode { pc } => write!(f, "pc {pc:#x} left the code region"),
            ExecError::Mem { pc, source } => write!(f, "at pc {pc:#x}: {source}"),
            ExecError::StepLimit { limit } => {
                write!(f, "step limit of {limit} instructions exhausted before halt")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Mem { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Default step limit for [`Simulator::run_to_halt`].
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// The accesses made by a single instruction (fetch plus at most one data
/// access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepAccesses {
    /// The instruction fetch.
    pub fetch: MemoryAccess,
    /// The data access, if the instruction was a load or store.
    pub data: Option<MemoryAccess>,
}

impl StepAccesses {
    /// Iterates over the accesses in issue order.
    pub fn iter(&self) -> impl Iterator<Item = MemoryAccess> {
        std::iter::once(self.fetch).chain(self.data)
    }
}

/// An executing instance of a [`Program`].
///
/// The simulator is resumable: [`Simulator::step`] executes exactly one
/// instruction and reports its memory accesses, so a scheduler can
/// interleave several simulators and preempt at any instruction boundary.
///
/// ```
/// use rtprogram::asm::assemble;
/// use rtprogram::sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble("demo", r#"
///     .text 0x1000
///     .data 0x8000
/// result: .space 1
///     .text
/// start:
///     li   r1, 6
///     li   r2, 7
///     mul  r3, r1, r2
///     li   r4, result
///     st   r3, 0(r4)
///     halt
/// "#)?;
/// let mut sim = Simulator::new(&program);
/// let trace = sim.run_to_halt()?;
/// assert_eq!(sim.memory().read(program.symbol("result").unwrap())?, 42);
/// assert_eq!(trace.instructions, 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'p> {
    program: &'p Program,
    regs: [i32; Reg::COUNT],
    pc: u64,
    memory: Memory,
    halted: bool,
    steps: u64,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator at the program's entry point with fresh data
    /// memory (the program's first variant is *not* applied — see
    /// [`Simulator::with_variant`]).
    pub fn new(program: &'p Program) -> Self {
        Simulator {
            program,
            regs: [0; Reg::COUNT],
            pc: program.entry(),
            memory: Memory::from_program(program),
            halted: false,
            steps: 0,
        }
    }

    /// Creates a simulator with an input variant applied to data memory.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if a variant write lands outside the data
    /// segments.
    pub fn with_variant(program: &'p Program, variant: &InputVariant) -> Result<Self, MemError> {
        let mut sim = Simulator::new(program);
        sim.memory.apply_variant(variant)?;
        Ok(sim)
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// `true` once `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Register contents.
    pub fn reg(&self, r: Reg) -> i32 {
        self.regs[r.index()]
    }

    /// Sets a register (useful for test harnesses).
    pub fn set_reg(&mut self, r: Reg, value: i32) {
        self.regs[r.index()] = value;
    }

    /// The data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to data memory (for harness-driven inputs).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Executes one instruction and returns its memory accesses, or `None`
    /// if the simulator has already halted.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the program counter leaves the code
    /// region or a data access faults.
    pub fn step(&mut self) -> Result<Option<StepAccesses>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let instr = self.program.instr_at(pc).ok_or(ExecError::UnmappedCode { pc })?;
        let fetch = MemoryAccess { pc, addr: pc, kind: AccessKind::Fetch };
        let mut data = None;
        let mut next_pc = pc + Instr::SIZE;
        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                self.regs[rd.index()] = op.eval(self.regs[rs1.index()], self.regs[rs2.index()]);
            }
            Instr::Addi { rd, rs1, imm } => {
                self.regs[rd.index()] = self.regs[rs1.index()].wrapping_add(imm);
            }
            Instr::Li { rd, imm } => {
                self.regs[rd.index()] = imm;
            }
            Instr::Ld { rd, base, offset } => {
                let addr = (self.regs[base.index()] as i64).wrapping_add(offset as i64) as u64;
                let value =
                    self.memory.read(addr).map_err(|source| ExecError::Mem { pc, source })?;
                self.regs[rd.index()] = value;
                data = Some(MemoryAccess { pc, addr, kind: AccessKind::Load });
            }
            Instr::St { src, base, offset } => {
                let addr = (self.regs[base.index()] as i64).wrapping_add(offset as i64) as u64;
                self.memory
                    .write(addr, self.regs[src.index()])
                    .map_err(|source| ExecError::Mem { pc, source })?;
                data = Some(MemoryAccess { pc, addr, kind: AccessKind::Store });
            }
            Instr::Branch { cond, rs1, rs2, target } => {
                if cond.eval(self.regs[rs1.index()], self.regs[rs2.index()]) {
                    next_pc = target;
                }
            }
            Instr::Jal { rd, target } => {
                self.regs[rd.index()] = (pc + Instr::SIZE) as i32;
                next_pc = target;
            }
            Instr::Jr { rs1 } => {
                next_pc = self.regs[rs1.index()] as u32 as u64;
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }
        self.pc = next_pc;
        self.steps += 1;
        Ok(Some(StepAccesses { fetch, data }))
    }

    /// Runs to `halt` with the default step limit, collecting the full
    /// trace.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a fault or if the step limit is hit.
    pub fn run_to_halt(&mut self) -> Result<Trace, ExecError> {
        self.run_to_halt_with_limit(DEFAULT_STEP_LIMIT)
    }

    /// Runs to `halt` with an explicit step limit, collecting the full
    /// trace.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a fault or if the step limit is hit.
    pub fn run_to_halt_with_limit(&mut self, limit: u64) -> Result<Trace, ExecError> {
        let mut trace = Trace::default();
        self.run_with_limit(limit, |acc| trace.accesses.push(acc))?;
        trace.instructions = self.steps;
        Ok(trace)
    }

    /// Runs to `halt`, streaming each access into `sink` instead of
    /// collecting a trace (avoids large allocations for long runs).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on a fault or if the step limit is hit.
    pub fn run_with_limit<F>(&mut self, limit: u64, mut sink: F) -> Result<(), ExecError>
    where
        F: FnMut(MemoryAccess),
    {
        let start = self.steps;
        while !self.halted {
            if self.steps - start >= limit {
                return Err(ExecError::StepLimit { limit });
            }
            if let Some(step) = self.step()? {
                sink(step.fetch);
                if let Some(d) = step.data {
                    sink(d);
                }
            }
        }
        Ok(())
    }
}

/// Runs `program` under `variant` and returns the full trace.
///
/// # Errors
///
/// Returns an [`ExecError`] on any execution fault; variant writes outside
/// the data segments are reported as [`ExecError::Mem`] at the entry pc.
pub fn trace_variant(program: &Program, variant: &InputVariant) -> Result<Trace, ExecError> {
    let mut sim = Simulator::with_variant(program, variant)
        .map_err(|source| ExecError::Mem { pc: program.entry(), source })?;
    sim.run_to_halt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs::*;
    use crate::isa::{AluOp, Cond};
    use crate::program::DataSegment;
    use std::collections::BTreeMap;

    fn prog(code: Vec<Instr>, data: Vec<DataSegment>) -> Program {
        Program::new("t", 0x1000, code, data, 0x1000, BTreeMap::new(), BTreeMap::new(), vec![])
            .unwrap()
    }

    #[test]
    fn arithmetic_and_halt() {
        let p = prog(
            vec![
                Instr::Li { rd: R1, imm: 6 },
                Instr::Li { rd: R2, imm: 7 },
                Instr::Alu { op: AluOp::Mul, rd: R3, rs1: R1, rs2: R2 },
                Instr::Halt,
            ],
            vec![],
        );
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt().unwrap();
        assert_eq!(sim.reg(R3), 42);
        assert!(sim.is_halted());
        assert_eq!(trace.instructions, 4);
        // One fetch per instruction, no data accesses.
        assert_eq!(trace.accesses.len(), 4);
        assert!(trace.accesses.iter().all(|a| a.kind == AccessKind::Fetch));
    }

    #[test]
    fn load_store_traces_data_accesses() {
        let p = prog(
            vec![
                Instr::Li { rd: R1, imm: 0x8000 },
                Instr::Ld { rd: R2, base: R1, offset: 0 },
                Instr::Addi { rd: R2, rs1: R2, imm: 1 },
                Instr::St { src: R2, base: R1, offset: 4 },
                Instr::Halt,
            ],
            vec![DataSegment { name: "d".into(), base: 0x8000, words: vec![41, 0] }],
        );
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt().unwrap();
        assert_eq!(sim.memory().read(0x8004).unwrap(), 42);
        let loads: Vec<_> = trace.accesses.iter().filter(|a| a.kind == AccessKind::Load).collect();
        let stores: Vec<_> =
            trace.accesses.iter().filter(|a| a.kind == AccessKind::Store).collect();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].addr, 0x8000);
        assert_eq!(stores.len(), 1);
        assert_eq!(stores[0].addr, 0x8004);
        assert_eq!(stores[0].pc, 0x100c);
    }

    #[test]
    fn branch_loop_executes_bounded() {
        // r1 = 5; loop { r2 += r1; r1 -= 1 } while r1 != 0
        let p = prog(
            vec![
                Instr::Li { rd: R1, imm: 5 },
                Instr::Li { rd: R2, imm: 0 },
                // 0x1008:
                Instr::Alu { op: AluOp::Add, rd: R2, rs1: R2, rs2: R1 },
                Instr::Addi { rd: R1, rs1: R1, imm: -1 },
                Instr::Branch { cond: Cond::Ne, rs1: R1, rs2: R0, target: 0x1008 },
                Instr::Halt,
            ],
            vec![],
        );
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        assert_eq!(sim.reg(R2), 15);
        assert_eq!(sim.steps(), 2 + 3 * 5 + 1);
    }

    #[test]
    fn jal_jr_round_trip() {
        // jal r15, 0x100c (skip halt at 0x1004... layout: 0x1000 jal, 0x1004 nop, 0x1008 halt, 0x100c jr back)
        let p = prog(
            vec![
                Instr::Jal { rd: R15, target: 0x100c },
                Instr::Nop,
                Instr::Halt,
                Instr::Jr { rs1: R15 },
            ],
            vec![],
        );
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        // jal -> jr -> nop -> halt
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.reg(R15), 0x1004);
    }

    #[test]
    fn unmapped_code_errors() {
        let p = prog(vec![Instr::Jal { rd: R15, target: 0x1004 }, Instr::Jr { rs1: R0 }], vec![]);
        let mut sim = Simulator::new(&p);
        // jal ok, then jr to r0 == 0 leaves code.
        let err = sim.run_to_halt().unwrap_err();
        assert_eq!(err, ExecError::UnmappedCode { pc: 0 });
    }

    #[test]
    fn data_fault_reports_pc() {
        let p = prog(
            vec![Instr::Li { rd: R1, imm: 0x9999 }, Instr::Ld { rd: R2, base: R1, offset: 3 }],
            vec![],
        );
        let mut sim = Simulator::new(&p);
        let err = sim.run_to_halt().unwrap_err();
        assert_eq!(err, ExecError::Mem { pc: 0x1004, source: MemError::Unmapped { addr: 0x999c } });
    }

    #[test]
    fn step_limit_guards_runaway() {
        let p = prog(
            vec![Instr::Branch { cond: Cond::Eq, rs1: R0, rs2: R0, target: 0x1000 }, Instr::Halt],
            vec![],
        );
        let mut sim = Simulator::new(&p);
        let err = sim.run_to_halt_with_limit(100).unwrap_err();
        assert_eq!(err, ExecError::StepLimit { limit: 100 });
    }

    #[test]
    fn step_after_halt_is_none() {
        let p = prog(vec![Instr::Halt], vec![]);
        let mut sim = Simulator::new(&p);
        assert!(sim.step().unwrap().is_some());
        assert!(sim.step().unwrap().is_none());
        assert_eq!(sim.steps(), 1);
    }

    #[test]
    fn resumable_stepping_matches_full_run() {
        let p = prog(
            vec![
                Instr::Li { rd: R1, imm: 3 },
                Instr::Addi { rd: R1, rs1: R1, imm: 10 },
                Instr::Halt,
            ],
            vec![],
        );
        let mut stepped = Simulator::new(&p);
        let mut collected = Vec::new();
        while let Some(step) = stepped.step().unwrap() {
            collected.extend(step.iter());
        }
        let mut full = Simulator::new(&p);
        let trace = full.run_to_halt().unwrap();
        assert_eq!(collected, trace.accesses);
        assert_eq!(stepped.reg(R1), full.reg(R1));
    }

    #[test]
    fn error_display() {
        assert!(ExecError::UnmappedCode { pc: 0x2 }.to_string().contains("0x2"));
        assert!(ExecError::StepLimit { limit: 9 }.to_string().contains('9'));
        let e = ExecError::Mem { pc: 0x4, source: MemError::Unaligned { addr: 0x5 } };
        assert!(e.to_string().contains("unaligned"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
