//! TRISC-16: the processor and program substrate of the Tan & Mooney
//! (DATE 2004) WCRT reproduction.
//!
//! The paper obtains per-task memory traces by simulating ARM9TDMI binaries
//! under the XRAY instruction-set simulator. This crate plays that role
//! with a self-contained stack:
//!
//! * [`isa`] — a tiny load/store instruction set (4-byte instructions,
//!   16 registers, word data accesses).
//! * [`asm`] — a two-pass assembler (and a round-tripping disassembler).
//! * [`encoding`] — a 32-bit binary machine-code format with pc-relative
//!   targets.
//! * [`builder`] — a structured program builder with loops that record
//!   their own iteration bounds (used by the benchmark workloads).
//! * [`sim`] — a resumable instruction-set simulator that emits exact
//!   memory traces (instruction fetches plus data accesses).
//! * [`cfg`](mod@cfg) — basic-block control flow graphs and trace
//!   attribution.
//! * [`paths`] — dominators, natural loops and feasible-path enumeration
//!   (the SFP-Prs path view of the paper's Fig. 4).
//!
//! # Example
//!
//! ```
//! use rtprogram::asm::assemble;
//! use rtprogram::cfg::Cfg;
//! use rtprogram::sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("count", r#"
//!     .text 0x1000
//!     start: li r1, 3
//!     loop:  addi r1, r1, -1
//!            bne r1, r0, loop
//!     .bound loop, 3
//!            halt
//! "#)?;
//! let mut sim = Simulator::new(&program);
//! let trace = sim.run_to_halt()?;
//! assert_eq!(trace.instructions, 1 + 3 * 2 + 1);
//! let cfg = Cfg::from_program(&program);
//! assert_eq!(cfg.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod cfg;
pub mod encoding;
pub mod isa;
pub mod mem;
pub mod paths;
pub mod program;
pub mod sim;

pub use cfg::{BasicBlock, BlockId, Cfg, NodeExecution};
pub use isa::{AluOp, Cond, Instr, Reg};
pub use program::{DataSegment, InputVariant, Program, ProgramError};
pub use sim::{AccessKind, ExecError, MemoryAccess, Simulator, Trace};
