//! Word-addressable data memory backed by a program's data segments.

use std::fmt;

use crate::program::{DataSegment, InputVariant, Program};

/// Errors raised by data-memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access outside every declared data segment.
    Unmapped {
        /// Offending byte address.
        addr: u64,
    },
    /// Access not aligned to a word boundary.
    Unaligned {
        /// Offending byte address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "access to unmapped data address {addr:#x}"),
            MemError::Unaligned { addr } => write!(f, "unaligned word access at {addr:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// A task's data memory: the program's data segments instantiated as
/// mutable word arrays, with strict bounds checking.
///
/// Accesses outside declared segments are errors rather than silently
/// returning zero — workload bugs surface immediately instead of skewing
/// memory traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    /// Segments sorted by base address; (base, words).
    segments: Vec<(u64, Vec<i32>)>,
}

impl Memory {
    /// Instantiates memory from a program's data segments.
    pub fn from_program(program: &Program) -> Self {
        Memory::from_segments(program.data_segments())
    }

    /// Instantiates memory from explicit segments.
    pub fn from_segments(segments: &[DataSegment]) -> Self {
        let mut segs: Vec<(u64, Vec<i32>)> =
            segments.iter().map(|s| (s.base, s.words.clone())).collect();
        segs.sort_by_key(|(base, _)| *base);
        Memory { segments: segs }
    }

    /// Applies an input variant's writes.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if a write lands outside the segments.
    pub fn apply_variant(&mut self, variant: &InputVariant) -> Result<(), MemError> {
        for (addr, value) in &variant.writes {
            self.write(*addr, *value)?;
        }
        Ok(())
    }

    fn locate(&self, addr: u64) -> Result<(usize, usize), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        // Binary search for the segment whose base is <= addr.
        let idx = self.segments.partition_point(|(base, _)| *base <= addr);
        if idx == 0 {
            return Err(MemError::Unmapped { addr });
        }
        let (base, words) = &self.segments[idx - 1];
        let offset = ((addr - base) / 4) as usize;
        if offset >= words.len() {
            return Err(MemError::Unmapped { addr });
        }
        Ok((idx - 1, offset))
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or unaligned accesses.
    pub fn read(&self, addr: u64) -> Result<i32, MemError> {
        let (seg, off) = self.locate(addr)?;
        Ok(self.segments[seg].1[off])
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or unaligned accesses.
    pub fn write(&mut self, addr: u64, value: i32) -> Result<(), MemError> {
        let (seg, off) = self.locate(addr)?;
        self.segments[seg].1[off] = value;
        Ok(())
    }

    /// Total mapped words.
    pub fn word_count(&self) -> usize {
        self.segments.iter().map(|(_, w)| w.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::from_segments(&[
            DataSegment { name: "lo".into(), base: 0x100, words: vec![1, 2, 3] },
            DataSegment { name: "hi".into(), base: 0x200, words: vec![9] },
        ])
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        assert_eq!(m.read(0x100).unwrap(), 1);
        assert_eq!(m.read(0x108).unwrap(), 3);
        assert_eq!(m.read(0x200).unwrap(), 9);
        m.write(0x104, 42).unwrap();
        assert_eq!(m.read(0x104).unwrap(), 42);
    }

    #[test]
    fn unmapped_and_unaligned() {
        let mut m = mem();
        assert_eq!(m.read(0x10c).unwrap_err(), MemError::Unmapped { addr: 0x10c });
        assert_eq!(m.read(0x0).unwrap_err(), MemError::Unmapped { addr: 0x0 });
        assert_eq!(m.read(0x300).unwrap_err(), MemError::Unmapped { addr: 0x300 });
        assert_eq!(m.read(0x101).unwrap_err(), MemError::Unaligned { addr: 0x101 });
        assert_eq!(m.write(0x10c, 0).unwrap_err(), MemError::Unmapped { addr: 0x10c });
    }

    #[test]
    fn gap_between_segments_is_unmapped() {
        let m = mem();
        assert_eq!(m.read(0x180).unwrap_err(), MemError::Unmapped { addr: 0x180 });
    }

    #[test]
    fn variant_application() {
        let mut m = mem();
        let v = InputVariant::named("v").with_write(0x100, 77);
        m.apply_variant(&v).unwrap();
        assert_eq!(m.read(0x100).unwrap(), 77);
        let bad = InputVariant::named("bad").with_write(0x400, 0);
        assert!(m.apply_variant(&bad).is_err());
    }

    #[test]
    fn word_count_sums_segments() {
        assert_eq!(mem().word_count(), 4);
    }

    #[test]
    fn error_display() {
        assert!(MemError::Unmapped { addr: 0x10 }.to_string().contains("unmapped"));
        assert!(MemError::Unaligned { addr: 0x11 }.to_string().contains("unaligned"));
    }
}
