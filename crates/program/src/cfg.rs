//! Control flow graph extraction and trace attribution.
//!
//! Each CFG node is a basic block; the SFP-Prs view of the paper (§III-A)
//! is obtained by the loop/path machinery in [`crate::paths`], which
//! collapses fixed-bound loops when enumerating feasible paths.

use std::fmt;

use crate::isa::Instr;
use crate::program::Program;
use crate::sim::{AccessKind, MemoryAccess, Trace};

/// Identifier of a basic block within its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(usize);

impl BlockId {
    /// The block's index into [`Cfg::blocks`].
    pub const fn index(self) -> usize {
        self.0
    }

    /// Builds a block id from an index previously obtained via
    /// [`BlockId::index`]. Passing an index that does not belong to the
    /// CFG the id is used with leads to panics or wrong blocks downstream.
    pub const fn from_index(index: usize) -> Self {
        BlockId(index)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A maximal straight-line sequence of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction address.
    pub start: u64,
    /// One-past-the-last instruction address.
    pub end: u64,
    /// Successor blocks in CFG order (branch target first, then
    /// fall-through).
    pub succs: Vec<BlockId>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn instr_count(&self) -> u64 {
        (self.end - self.start) / Instr::SIZE
    }

    /// `true` if `addr` is inside the block.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Iterates over the instruction addresses of the block.
    pub fn addrs(&self) -> impl Iterator<Item = u64> {
        (self.start..self.end).step_by(Instr::SIZE as usize)
    }
}

/// The control flow graph of a program.
///
/// Built over the whole code region: every branch target and every
/// fall-through point starts a new block. `jr` (indirect jump) is treated
/// as an exit edge — the builder-generated workloads are fully inlined and
/// only the context-switch routine uses `jr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    preds: Vec<Vec<BlockId>>,
    entry: BlockId,
}

impl Cfg {
    /// Extracts the CFG of a program.
    pub fn from_program(program: &Program) -> Self {
        let base = program.code_base();
        let end = program.code_end();
        // Pass 1: find leaders.
        let mut leader_flags = vec![false; program.len()];
        leader_flags[program.index_of_addr(program.entry())] = true;
        leader_flags[0] = true;
        for (i, instr) in program.code().iter().enumerate() {
            if instr.is_control_flow() {
                if let Some(t) = instr.target() {
                    leader_flags[program.index_of_addr(t)] = true;
                }
                if i + 1 < program.len() {
                    leader_flags[i + 1] = true;
                }
            }
        }
        // Pass 2: carve blocks.
        let mut starts: Vec<u64> = leader_flags
            .iter()
            .enumerate()
            .filter(|(_, is_leader)| **is_leader)
            .map(|(i, _)| program.addr_of_index(i))
            .collect();
        starts.sort_unstable();
        let mut blocks: Vec<BasicBlock> = starts
            .iter()
            .enumerate()
            .map(|(i, s)| BasicBlock {
                start: *s,
                end: starts.get(i + 1).copied().unwrap_or(end),
                succs: Vec::new(),
            })
            .collect();
        // Pass 3: successors.
        let block_of = |addr: u64| -> BlockId {
            let idx = starts.partition_point(|s| *s <= addr);
            BlockId(idx - 1)
        };
        for block in &mut blocks {
            let last_addr = block.end - Instr::SIZE;
            let last = program.instr_at(last_addr).expect("block addresses are valid");
            let mut succs = Vec::new();
            match last {
                Instr::Branch { cond, rs1, rs2, target } => {
                    // A branch comparing a register against itself is
                    // statically decided: `beq r, r` always jumps (the
                    // builder's unconditional jump) and `bne r, r` never
                    // does.
                    let always =
                        rs1 == rs2 && matches!(cond, crate::isa::Cond::Eq | crate::isa::Cond::Ge);
                    let never =
                        rs1 == rs2 && matches!(cond, crate::isa::Cond::Ne | crate::isa::Cond::Lt);
                    if !never {
                        succs.push(block_of(target));
                    }
                    if !always && program.is_instr_addr(block.end) {
                        succs.push(block_of(block.end));
                    }
                }
                Instr::Jal { target, .. } => succs.push(block_of(target)),
                Instr::Jr { .. } | Instr::Halt => {}
                _ => {
                    if program.is_instr_addr(block.end) {
                        succs.push(block_of(block.end));
                    }
                }
            }
            succs.dedup();
            block.succs = succs;
        }
        let mut preds = vec![Vec::new(); blocks.len()];
        for (i, b) in blocks.iter().enumerate() {
            for s in &b.succs {
                preds[s.index()].push(BlockId(i));
            }
        }
        let entry = block_of(program.entry());
        debug_assert_eq!(blocks[entry.index()].start, program.entry());
        debug_assert!(base <= program.entry());
        Cfg { blocks, preds, entry }
    }

    /// The basic blocks, ordered by start address.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the CFG has no blocks (never true for a valid program).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block a program's execution starts in.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Predecessors of a block.
    pub fn preds(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.index()]
    }

    /// All block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId)
    }

    /// Blocks with no successors (program exits).
    pub fn exits(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.block_ids().filter(|b| self.block(*b).succs.is_empty())
    }

    /// The block containing `addr`, if any.
    pub fn block_containing(&self, addr: u64) -> Option<BlockId> {
        let idx = self.blocks.partition_point(|b| b.start <= addr);
        if idx == 0 {
            return None;
        }
        let id = BlockId(idx - 1);
        self.block(id).contains(addr).then_some(id)
    }

    /// Splits a memory trace into per-block executions: a new execution
    /// starts whenever control enters a block at its first instruction.
    /// Each execution carries all accesses (fetches and data) made while
    /// inside the block.
    ///
    /// # Panics
    ///
    /// Panics if a fetch in the trace falls outside the CFG's code region
    /// (the trace belongs to a different program).
    pub fn attribute(&self, trace: &Trace) -> Vec<NodeExecution> {
        let mut executions: Vec<NodeExecution> = Vec::new();
        let mut current: Option<BlockId> = None;
        for access in &trace.accesses {
            if access.kind == AccessKind::Fetch {
                let block = self
                    .block_containing(access.pc)
                    .unwrap_or_else(|| panic!("fetch at {:#x} outside program", access.pc));
                let entering = self.block(block).start == access.pc;
                if entering || current != Some(block) {
                    executions.push(NodeExecution { block, accesses: Vec::new() });
                    current = Some(block);
                }
            }
            if let Some(exec) = executions.last_mut() {
                exec.accesses.push(*access);
            }
        }
        executions
    }
}

/// One dynamic execution of a basic block with the memory accesses it
/// performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeExecution {
    /// The executed block.
    pub block: BlockId,
    /// The accesses, in order (fetches and data).
    pub accesses: Vec<MemoryAccess>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::builder::ProgramBuilder;
    use crate::isa::regs::*;
    use crate::sim::Simulator;

    #[test]
    fn straight_line_is_one_block() {
        let p = assemble("t", "nop\nnop\nhalt\n").unwrap();
        let cfg = Cfg::from_program(&p);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.block(cfg.entry()).instr_count(), 3);
        assert!(cfg.block(cfg.entry()).succs.is_empty());
    }

    #[test]
    fn diamond_shape() {
        let p = assemble(
            "t",
            r#"
            .text 0x1000
            start: beq r1, r0, other
                   nop
                   beq r0, r0, join
            other: nop
            join:  halt
            "#,
        )
        .unwrap();
        let cfg = Cfg::from_program(&p);
        // Blocks: [start], [then-arm], [other], [join].
        assert_eq!(cfg.len(), 4);
        let entry = cfg.block(cfg.entry());
        assert_eq!(entry.succs.len(), 2);
        let join = cfg.block_containing(p.symbol("join").unwrap()).unwrap();
        assert_eq!(cfg.preds(join).len(), 2);
        assert_eq!(cfg.exits().collect::<Vec<_>>(), vec![join]);
    }

    #[test]
    fn loop_back_edge() {
        let p = assemble("t", "start: li r1, 3\nloop: addi r1, r1, -1\n bne r1, r0, loop\n halt\n")
            .unwrap();
        let cfg = Cfg::from_program(&p);
        assert_eq!(cfg.len(), 3); // [li], [loop body], [halt]
        let body = cfg.block_containing(p.symbol("loop").unwrap()).unwrap();
        assert!(cfg.block(body).succs.contains(&body), "self back edge");
    }

    #[test]
    fn attribution_counts_loop_iterations() {
        let p = assemble("t", "start: li r1, 4\nloop: addi r1, r1, -1\n bne r1, r0, loop\n halt\n")
            .unwrap();
        let cfg = Cfg::from_program(&p);
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt().unwrap();
        let execs = cfg.attribute(&trace);
        let body = cfg.block_containing(p.symbol("loop").unwrap()).unwrap();
        let body_execs = execs.iter().filter(|e| e.block == body).count();
        assert_eq!(body_execs, 4);
        // Every access in the trace is attributed exactly once.
        let total: usize = execs.iter().map(|e| e.accesses.len()).sum();
        assert_eq!(total, trace.accesses.len());
    }

    #[test]
    fn attribution_includes_data_accesses() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let buf = b.data_space("buf", 4);
        b.li_addr(R1, buf);
        b.counted_loop(4, R2, |b| {
            b.st(R2, R1, 0);
            b.addi(R1, R1, 4);
        });
        let p = b.build().unwrap();
        let cfg = Cfg::from_program(&p);
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt().unwrap();
        let execs = cfg.attribute(&trace);
        let stores: usize =
            execs.iter().flat_map(|e| &e.accesses).filter(|a| a.kind == AccessKind::Store).count();
        assert_eq!(stores, 4);
    }

    #[test]
    fn block_containing_misses_outside() {
        let p = assemble("t", ".text 0x1000\nnop\nhalt\n").unwrap();
        let cfg = Cfg::from_program(&p);
        assert!(cfg.block_containing(0x0).is_none());
        assert!(cfg.block_containing(0x2000).is_none());
        assert!(cfg.block_containing(0x1004).is_some());
    }

    #[test]
    fn jal_creates_edge_jr_terminates() {
        let p = assemble("t", ".text 0x1000\nstart: jal r15, f\n halt\nf: nop\n jr r15\n").unwrap();
        let cfg = Cfg::from_program(&p);
        let f = cfg.block_containing(p.symbol("f").unwrap()).unwrap();
        let entry = cfg.block(cfg.entry());
        assert_eq!(entry.succs, vec![f]);
        assert!(cfg.block(f).succs.is_empty(), "jr is an exit edge");
    }

    #[test]
    fn display_block_id() {
        assert_eq!(BlockId(3).to_string(), "B3");
    }
}
