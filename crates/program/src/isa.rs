//! The TRISC-16 instruction set: a tiny load/store architecture standing in
//! for the paper's ARM9TDMI.
//!
//! Every instruction occupies 4 bytes of code memory, so instruction
//! fetches exercise the instruction-cache side of the analysis exactly as
//! on the paper's target. Data accesses are 32-bit words.

use std::fmt;

/// One of the sixteen general-purpose registers `r0 ..= r15`.
///
/// There is no hard-wired zero register; conventions are left to the
/// program builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub const fn new(n: u8) -> Self {
        assert!(n < Reg::COUNT as u8, "register number out of range");
        Reg(n)
    }

    /// The register number.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The register number as an index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Convenience constants `R0 ..= R15`.
pub mod regs {
    use super::Reg;

    macro_rules! define_regs {
        ($($name:ident = $n:expr;)*) => {
            $(
                #[doc = concat!("Register r", stringify!($n), ".")]
                pub const $name: Reg = Reg::new($n);
            )*
        };
    }

    define_regs! {
        R0 = 0; R1 = 1; R2 = 2; R3 = 3; R4 = 4; R5 = 5; R6 = 6; R7 = 7;
        R8 = 8; R9 = 9; R10 = 10; R11 = 11; R12 = 12; R13 = 13; R14 = 14;
        R15 = 15;
    }
}

/// Comparison used by conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two signed words.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Assembly mnemonic suffix (`beq`, `bne`, `blt`, `bge`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
        }
    }
}

/// Binary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by `rhs & 31`).
    Shl,
    /// Arithmetic shift right (by `rhs & 31`).
    Sra,
    /// Set to 1 if signed less-than, else 0.
    Slt,
}

impl AluOp {
    /// Applies the operation to two signed words.
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Sra => a >> (b as u32 & 31),
            AluOp::Slt => i32::from(a < b),
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
        }
    }
}

/// A TRISC-16 instruction. Branch and jump targets are absolute code byte
/// addresses (the assembler and builder resolve labels before
/// construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `op rd, rs1, rs2` — three-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `addi rd, rs1, imm` — add a signed immediate.
    Addi {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `li rd, imm` — load a full-width immediate.
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `ld rd, off(rs1)` — load the word at `rs1 + off`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// `st rs2, off(rs1)` — store `rs2` to the word at `rs1 + off`.
    St {
        /// Value to store.
        src: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// `bCC rs1, rs2, target` — conditional branch to an absolute address.
    Branch {
        /// Comparison.
        cond: Cond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Absolute code byte address.
        target: u64,
    },
    /// `jal rd, target` — store the return address in `rd`, jump.
    Jal {
        /// Link register.
        rd: Reg,
        /// Absolute code byte address.
        target: u64,
    },
    /// `jr rs1` — indirect jump to the address in `rs1`.
    Jr {
        /// Target-holding register.
        rs1: Reg,
    },
    /// `nop` — no operation.
    Nop,
    /// `halt` — stop execution.
    Halt,
}

impl Instr {
    /// Size of every instruction in bytes.
    pub const SIZE: u64 = 4;

    /// `true` for instructions that may divert control flow.
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jr { .. } | Instr::Halt)
    }

    /// The static branch/jump target, if this instruction has one.
    pub fn target(&self) -> Option<u64> {
        match self {
            Instr::Branch { target, .. } | Instr::Jal { target, .. } => Some(*target),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Ld { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Instr::St { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Instr::Branch { cond, rs1, rs2, target } => {
                write!(f, "{} {rs1}, {rs2}, {target:#x}", cond.mnemonic())
            }
            Instr::Jal { rd, target } => write!(f, "jal {rd}, {target:#x}"),
            Instr::Jr { rs1 } => write!(f, "jr {rs1}"),
            Instr::Nop => f.write_str("nop"),
            Instr::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::regs::*;
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(i32::MAX, 1), i32::MIN); // wrapping
        assert_eq!(AluOp::Sub.eval(3, 5), -2);
        assert_eq!(AluOp::Mul.eval(-4, 3), -12);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shl.eval(1, 33), 2); // shift amount masked
        assert_eq!(AluOp::Sra.eval(-16, 2), -4); // arithmetic
        assert_eq!(AluOp::Slt.eval(-1, 0), 1);
        assert_eq!(AluOp::Slt.eval(0, 0), 0);
    }

    #[test]
    fn cond_semantics_and_negation() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Ge.eval(0, 0));
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge] {
            for (a, b) in [(0, 0), (1, 2), (-3, 7)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn display_round_trips_mnemonics() {
        let i = Instr::Alu { op: AluOp::Add, rd: R1, rs1: R2, rs2: R3 };
        assert_eq!(i.to_string(), "add r1, r2, r3");
        assert_eq!(Instr::Ld { rd: R1, base: R2, offset: 8 }.to_string(), "ld r1, 8(r2)");
        assert_eq!(
            Instr::Branch { cond: Cond::Lt, rs1: R1, rs2: R2, target: 0x40 }.to_string(),
            "blt r1, r2, 0x40"
        );
        assert_eq!(Instr::Halt.to_string(), "halt");
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instr::Halt.is_control_flow());
        assert!(Instr::Jr { rs1: R1 }.is_control_flow());
        assert!(!Instr::Nop.is_control_flow());
        assert_eq!(Instr::Jal { rd: R15, target: 0x10 }.target(), Some(0x10));
        assert_eq!(Instr::Nop.target(), None);
    }
}
