//! A structured builder for TRISC-16 programs.
//!
//! The benchmark workloads are built with this API rather than raw
//! assembly: structured loops record their iteration bounds automatically
//! (the annotations the paper's path analysis relies on), and structured
//! conditionals guarantee well-formed control flow.
//!
//! # Register conventions
//!
//! The builder reserves `r0` as a constant zero: it emits `li r0, 0` as
//! the program's first instruction and uses `r0` in the comparisons behind
//! [`ProgramBuilder::counted_loop`] and unconditional jumps. Builder users
//! must not write `r0`.

use std::collections::BTreeMap;

use crate::isa::regs::R0;
use crate::isa::{AluOp, Cond, Instr, Reg};
use crate::program::{DataSegment, InputVariant, Program, ProgramError};

/// An unresolved code location handed out by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Structured builder for [`Program`]s.
///
/// ```
/// use rtprogram::builder::ProgramBuilder;
/// use rtprogram::isa::regs::*;
/// use rtprogram::sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new("triangle", 0x1000, 0x8000);
/// let out = b.data_space("out", 1);
/// b.li(R2, 0);
/// b.counted_loop(10, R1, |b| {
///     b.add(R2, R2, R1); // r1 counts 10, 9, ..., 1
/// });
/// b.li_addr(R3, out);
/// b.st(R2, R3, 0);
/// let program = b.build()?;
/// let mut sim = Simulator::new(&program);
/// sim.run_to_halt()?;
/// assert_eq!(sim.memory().read(out)?, 55);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    code_base: u64,
    data_cursor: u64,
    instrs: Vec<Instr>,
    /// `(instruction index, label)` pairs awaiting target resolution.
    fixups: Vec<(usize, Label)>,
    /// Label id → resolved code address.
    labels: Vec<Option<u64>>,
    segments: Vec<DataSegment>,
    /// `(loop head label, bound)` pairs.
    bounds: Vec<(Label, u32)>,
    symbols: BTreeMap<String, u64>,
    variants: Vec<InputVariant>,
}

impl ProgramBuilder {
    /// Starts a program with code at `code_base` and the data cursor at
    /// `data_base`. Emits the `li r0, 0` zero-register prologue.
    pub fn new(name: impl Into<String>, code_base: u64, data_base: u64) -> Self {
        let mut b = ProgramBuilder {
            name: name.into(),
            code_base,
            data_cursor: data_base,
            instrs: Vec::new(),
            fixups: Vec::new(),
            labels: Vec::new(),
            segments: Vec::new(),
            bounds: Vec::new(),
            symbols: BTreeMap::new(),
            variants: Vec::new(),
        };
        b.li(R0, 0);
        b
    }

    /// The address the next emitted instruction will occupy.
    pub fn here(&self) -> u64 {
        self.code_base + self.instrs.len() as u64 * Instr::SIZE
    }

    // ---- data ----------------------------------------------------------

    /// Places an initialized data segment at the data cursor and returns
    /// its base address. The name is recorded as a symbol.
    pub fn data_words(&mut self, name: impl Into<String>, words: &[i32]) -> u64 {
        let name = name.into();
        let base = self.data_cursor;
        self.data_cursor += 4 * words.len() as u64;
        self.symbols.insert(name.clone(), base);
        self.segments.push(DataSegment { name, base, words: words.to_vec() });
        base
    }

    /// Places a zero-initialized segment of `words` words and returns its
    /// base address.
    pub fn data_space(&mut self, name: impl Into<String>, words: usize) -> u64 {
        self.data_words(name, &vec![0; words])
    }

    /// Moves the data cursor to an explicit address (e.g. to force a
    /// particular cache-index alignment).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word aligned or moves the cursor backwards.
    pub fn data_align_to(&mut self, addr: u64) {
        assert!(addr.is_multiple_of(4), "data cursor must stay word aligned");
        assert!(addr >= self.data_cursor, "data cursor cannot move backwards");
        self.data_cursor = addr;
    }

    // ---- labels --------------------------------------------------------

    /// Creates a fresh, unplaced label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current code address.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Records the current code address under a symbol name.
    pub fn symbol_here(&mut self, name: impl Into<String>) {
        let here = self.here();
        self.symbols.insert(name.into(), here);
    }

    /// Declares the iteration bound of a hand-rolled loop whose header is
    /// at `label`. [`ProgramBuilder::counted_loop`] records its own bound;
    /// use this for loops with data-dependent trip counts (the bound is
    /// the worst case, as a WCET tool requires).
    pub fn declare_loop_bound(&mut self, label: Label, bound: u32) {
        self.bounds.push((label, bound));
    }

    // ---- raw instructions ----------------------------------------------

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    /// `op rd, rs1, rs2`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op, rd, rs1, rs2 });
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Xor, rd, rs1, rs2);
    }

    /// `shl rd, rs1, rs2`.
    pub fn shl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Shl, rd, rs1, rs2);
    }

    /// `sra rd, rs1, rs2`.
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sra, rd, rs1, rs2);
    }

    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Slt, rd, rs1, rs2);
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::Addi { rd, rs1, imm });
    }

    /// `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i32) {
        self.emit(Instr::Li { rd, imm });
    }

    /// `li rd, addr` for a data address.
    ///
    /// # Panics
    ///
    /// Panics if the address does not fit in a 32-bit immediate.
    pub fn li_addr(&mut self, rd: Reg, addr: u64) {
        assert!(addr <= u32::MAX as u64, "address {addr:#x} exceeds the 32-bit register width");
        self.li(rd, addr as u32 as i32);
    }

    /// `ld rd, offset(base)`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instr::Ld { rd, base, offset });
    }

    /// `st src, offset(base)`.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i32) {
        self.emit(Instr::St { src, base, offset });
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: Label) {
        self.fixups.push((self.instrs.len(), label));
        self.emit(Instr::Branch { cond, rs1, rs2, target: 0 });
    }

    /// Unconditional jump to a label (`beq r0, r0, label`).
    pub fn jump(&mut self, label: Label) {
        self.branch(Cond::Eq, R0, R0, label);
    }

    // ---- structured control flow ----------------------------------------

    /// A loop running exactly `times` iterations. `counter` counts down
    /// from `times` to 1 inside the body. The loop's bound annotation is
    /// recorded automatically.
    ///
    /// The body must not write `counter` or `r0`.
    pub fn counted_loop(&mut self, times: u32, counter: Reg, body: impl FnOnce(&mut Self)) {
        self.li(counter, times as i32);
        let head = self.new_label();
        self.place(head);
        self.bounds.push((head, times));
        body(self);
        self.addi(counter, counter, -1);
        self.branch(Cond::Ne, counter, R0, head);
    }

    /// `if cond(rs1, rs2) { then_body }`.
    pub fn if_then(&mut self, cond: Cond, rs1: Reg, rs2: Reg, then_body: impl FnOnce(&mut Self)) {
        let skip = self.new_label();
        self.branch(cond.negate(), rs1, rs2, skip);
        then_body(self);
        self.place(skip);
    }

    /// `if cond(rs1, rs2) { then_body } else { else_body }`.
    pub fn if_else(
        &mut self,
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let else_label = self.new_label();
        let end = self.new_label();
        self.branch(cond.negate(), rs1, rs2, else_label);
        then_body(self);
        self.jump(end);
        self.place(else_label);
        else_body(self);
        self.place(end);
    }

    // ---- variants & build ------------------------------------------------

    /// Registers an input variant.
    pub fn variant(&mut self, variant: InputVariant) {
        self.variants.push(variant);
    }

    /// Appends `halt`, resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if validation fails.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never placed.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        self.emit(Instr::Halt);
        for (idx, label) in &self.fixups {
            let target = self.labels[label.0].expect("branch to a label that was never placed");
            match &mut self.instrs[*idx] {
                Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        let loop_bounds = self
            .bounds
            .iter()
            .map(|(label, n)| (self.labels[label.0].expect("loop head label placed"), *n))
            .collect();
        Program::new(
            self.name,
            self.code_base,
            self.instrs,
            self.segments,
            self.code_base,
            self.symbols,
            loop_bounds,
            self.variants,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs::*;
    use crate::sim::Simulator;

    #[test]
    fn counted_loop_runs_exact_iterations() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let out = b.data_space("out", 1);
        b.li(R2, 0);
        b.counted_loop(7, R1, |b| {
            b.addi(R2, R2, 1);
        });
        b.li_addr(R3, out);
        b.st(R2, R3, 0);
        let p = b.build().unwrap();
        assert_eq!(p.loop_bounds().len(), 1);
        assert_eq!(*p.loop_bounds().values().next().unwrap(), 7);
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        assert_eq!(sim.memory().read(out).unwrap(), 7);
    }

    #[test]
    fn nested_loops() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let out = b.data_space("out", 1);
        b.li(R3, 0);
        b.counted_loop(4, R1, |b| {
            b.counted_loop(5, R2, |b| {
                b.addi(R3, R3, 1);
            });
        });
        b.li_addr(R4, out);
        b.st(R3, R4, 0);
        let p = b.build().unwrap();
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        assert_eq!(sim.memory().read(out).unwrap(), 20);
    }

    #[test]
    fn if_else_takes_correct_arm() {
        for (input, expected) in [(3, 100), (9, 200)] {
            let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
            let out = b.data_space("out", 1);
            b.li(R1, input);
            b.li(R2, 5);
            b.if_else(Cond::Lt, R1, R2, |b| b.li(R3, 100), |b| b.li(R3, 200));
            b.li_addr(R4, out);
            b.st(R3, R4, 0);
            let p = b.build().unwrap();
            let mut sim = Simulator::new(&p);
            sim.run_to_halt().unwrap();
            assert_eq!(sim.memory().read(out).unwrap(), expected, "input {input}");
        }
    }

    #[test]
    fn if_then_skips_when_false() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let out = b.data_space("out", 1);
        b.li(R1, 1);
        b.li(R3, 7);
        b.if_then(Cond::Eq, R1, R0, |b| b.li(R3, 99));
        b.li_addr(R4, out);
        b.st(R3, R4, 0);
        let p = b.build().unwrap();
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        assert_eq!(sim.memory().read(out).unwrap(), 7);
    }

    #[test]
    fn data_layout_and_symbols() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let a = b.data_words("a", &[1, 2]);
        let c = b.data_space("c", 3);
        b.data_align_to(0x9000);
        let d = b.data_words("d", &[9]);
        b.nop();
        let p = b.build().unwrap();
        assert_eq!(a, 0x8000);
        assert_eq!(c, 0x8008);
        assert_eq!(d, 0x9000);
        assert_eq!(p.symbol("a"), Some(0x8000));
        assert_eq!(p.symbol("d"), Some(0x9000));
    }

    #[test]
    fn zero_register_prologue() {
        let b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let p = b.build().unwrap();
        assert_eq!(p.code()[0], Instr::Li { rd: R0, imm: 0 });
        assert_eq!(*p.code().last().unwrap(), Instr::Halt);
    }

    #[test]
    #[should_panic(expected = "label placed twice")]
    fn double_place_panics() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let l = b.new_label();
        b.place(l);
        b.place(l);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_label_panics_at_build() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let l = b.new_label();
        b.jump(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn data_cursor_backwards_panics() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        b.data_space("x", 4);
        b.data_align_to(0x8000);
    }

    #[test]
    fn variants_recorded() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let flag = b.data_space("flag", 1);
        b.variant(InputVariant::named("on").with_write(flag, 1));
        b.variant(InputVariant::named("off").with_write(flag, 0));
        b.nop();
        let p = b.build().unwrap();
        assert_eq!(p.variants().len(), 2);
        assert_eq!(p.variants()[0].name, "on");
    }
}
