//! The static image of a task: code, initialized data, loop bounds and
//! input variants.

use std::collections::BTreeMap;
use std::fmt;

use crate::isa::Instr;

/// One contiguous, word-aligned region of initialized data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Symbolic name (for diagnostics).
    pub name: String,
    /// Base byte address (word aligned).
    pub base: u64,
    /// Initial word values; the segment spans `4 * words.len()` bytes.
    pub words: Vec<i32>,
}

impl DataSegment {
    /// One-past-the-end byte address.
    pub fn end(&self) -> u64 {
        self.base + 4 * self.words.len() as u64
    }

    /// `true` if `addr` lies within the segment.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// A named input assignment used to drive one feasible path of a program
/// (paper §VI: per-path memory traces are obtained by simulation, one run
/// per feasible path).
///
/// A variant is a list of word writes applied to data memory before the
/// program starts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InputVariant {
    /// Human-readable variant name (e.g. `"sobel"`, `"cauchy"`).
    pub name: String,
    /// `(byte address, value)` pairs written before execution.
    pub writes: Vec<(u64, i32)>,
}

impl InputVariant {
    /// A variant with a name and no writes.
    pub fn named(name: impl Into<String>) -> Self {
        InputVariant { name: name.into(), writes: Vec::new() }
    }

    /// Adds a word write (builder style).
    pub fn with_write(mut self, addr: u64, value: i32) -> Self {
        self.writes.push((addr, value));
        self
    }
}

/// Errors detected when a [`Program`] is validated at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Two data segments overlap.
    OverlappingSegments {
        /// First segment name.
        first: String,
        /// Second segment name.
        second: String,
    },
    /// A data segment base is not word aligned.
    UnalignedSegment {
        /// Segment name.
        name: String,
        /// Offending base address.
        base: u64,
    },
    /// A branch or jump targets an address outside the code region or not
    /// on an instruction boundary.
    BadTarget {
        /// Address of the offending instruction.
        pc: u64,
        /// The bad target.
        target: u64,
    },
    /// The entry point is outside the code region.
    BadEntry {
        /// The bad entry address.
        entry: u64,
    },
    /// The code region overlaps a data segment.
    CodeDataOverlap {
        /// Offending data segment name.
        name: String,
    },
    /// The program has no instructions.
    EmptyCode,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::OverlappingSegments { first, second } => {
                write!(f, "data segments `{first}` and `{second}` overlap")
            }
            ProgramError::UnalignedSegment { name, base } => {
                write!(f, "data segment `{name}` base {base:#x} is not word aligned")
            }
            ProgramError::BadTarget { pc, target } => {
                write!(f, "instruction at {pc:#x} targets invalid address {target:#x}")
            }
            ProgramError::BadEntry { entry } => {
                write!(f, "entry point {entry:#x} is outside the code region")
            }
            ProgramError::CodeDataOverlap { name } => {
                write!(f, "code region overlaps data segment `{name}`")
            }
            ProgramError::EmptyCode => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// The static image of a task program.
///
/// Holds the instruction stream (at `code_base`), the initialized data
/// segments, the symbol table, user-declared loop bounds (by loop-header
/// address) and the input variants that drive its feasible paths.
///
/// Programs are produced by the [assembler](crate::asm::assemble) or the
/// [`ProgramBuilder`](crate::builder::ProgramBuilder) and consumed by the
/// [`Simulator`](crate::sim::Simulator) and the
/// [`Cfg`](crate::cfg::Cfg) extractor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    code_base: u64,
    code: Vec<Instr>,
    data: Vec<DataSegment>,
    entry: u64,
    symbols: BTreeMap<String, u64>,
    loop_bounds: BTreeMap<u64, u32>,
    variants: Vec<InputVariant>,
}

impl Program {
    /// Assembles the parts into a validated program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if segments overlap, alignment is
    /// violated, a static branch target is invalid, or the entry point is
    /// outside the code.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        code_base: u64,
        code: Vec<Instr>,
        data: Vec<DataSegment>,
        entry: u64,
        symbols: BTreeMap<String, u64>,
        loop_bounds: BTreeMap<u64, u32>,
        variants: Vec<InputVariant>,
    ) -> Result<Self, ProgramError> {
        let mut variants = variants;
        if variants.is_empty() {
            variants.push(InputVariant::named("default"));
        }
        let p = Program {
            name: name.into(),
            code_base,
            code,
            data,
            entry,
            symbols,
            loop_bounds,
            variants,
        };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), ProgramError> {
        if self.code.is_empty() {
            return Err(ProgramError::EmptyCode);
        }
        let mut segs: Vec<&DataSegment> = self.data.iter().collect();
        segs.sort_by_key(|s| s.base);
        for s in &segs {
            if !s.base.is_multiple_of(4) {
                return Err(ProgramError::UnalignedSegment { name: s.name.clone(), base: s.base });
            }
        }
        for pair in segs.windows(2) {
            if pair[0].end() > pair[1].base {
                return Err(ProgramError::OverlappingSegments {
                    first: pair[0].name.clone(),
                    second: pair[1].name.clone(),
                });
            }
        }
        let code_end = self.code_end();
        for s in &segs {
            if s.base < code_end && self.code_base < s.end() {
                return Err(ProgramError::CodeDataOverlap { name: s.name.clone() });
            }
        }
        if !self.is_instr_addr(self.entry) {
            return Err(ProgramError::BadEntry { entry: self.entry });
        }
        for (i, instr) in self.code.iter().enumerate() {
            if let Some(t) = instr.target() {
                if !self.is_instr_addr(t) {
                    return Err(ProgramError::BadTarget {
                        pc: self.code_base + i as u64 * Instr::SIZE,
                        target: t,
                    });
                }
            }
        }
        Ok(())
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First byte address of the code region.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// One-past-the-end byte address of the code region.
    pub fn code_end(&self) -> u64 {
        self.code_base + self.code.len() as u64 * Instr::SIZE
    }

    /// The instruction stream.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` if the program has no instructions (never true for a
    /// validated program).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The entry point address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The initialized data segments.
    pub fn data_segments(&self) -> &[DataSegment] {
        &self.data
    }

    /// The symbol table (label name → address).
    pub fn symbols(&self) -> &BTreeMap<String, u64> {
        &self.symbols
    }

    /// Looks up a symbol address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Loop bounds, keyed by loop-header code address.
    pub fn loop_bounds(&self) -> &BTreeMap<u64, u32> {
        &self.loop_bounds
    }

    /// The input variants driving this program's feasible paths. Always
    /// non-empty.
    pub fn variants(&self) -> &[InputVariant] {
        &self.variants
    }

    /// `true` if `addr` is an instruction boundary within the code region.
    pub fn is_instr_addr(&self, addr: u64) -> bool {
        addr >= self.code_base
            && addr < self.code_end()
            && (addr - self.code_base).is_multiple_of(Instr::SIZE)
    }

    /// The instruction at code address `pc`, if valid.
    pub fn instr_at(&self, pc: u64) -> Option<Instr> {
        if !self.is_instr_addr(pc) {
            return None;
        }
        let idx = ((pc - self.code_base) / Instr::SIZE) as usize;
        self.code.get(idx).copied()
    }

    /// The code address of the `idx`-th instruction.
    pub fn addr_of_index(&self, idx: usize) -> u64 {
        self.code_base + idx as u64 * Instr::SIZE
    }

    /// The instruction index of a code address.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not an instruction boundary in this program.
    pub fn index_of_addr(&self, pc: u64) -> usize {
        assert!(self.is_instr_addr(pc), "{pc:#x} is not an instruction address");
        ((pc - self.code_base) / Instr::SIZE) as usize
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program `{}`: {} instrs at {:#x}, {} data segments, {} variants",
            self.name,
            self.code.len(),
            self.code_base,
            self.data.len(),
            self.variants.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs::*;
    use crate::isa::{Cond, Instr};

    fn tiny(code: Vec<Instr>) -> Result<Program, ProgramError> {
        Program::new("t", 0x1000, code, vec![], 0x1000, BTreeMap::new(), BTreeMap::new(), vec![])
    }

    #[test]
    fn default_variant_is_added() {
        let p = tiny(vec![Instr::Halt]).unwrap();
        assert_eq!(p.variants().len(), 1);
        assert_eq!(p.variants()[0].name, "default");
    }

    #[test]
    fn rejects_empty_code() {
        assert_eq!(tiny(vec![]).unwrap_err(), ProgramError::EmptyCode);
    }

    #[test]
    fn rejects_bad_entry() {
        let e = Program::new(
            "t",
            0x1000,
            vec![Instr::Halt],
            vec![],
            0x2000,
            BTreeMap::new(),
            BTreeMap::new(),
            vec![],
        )
        .unwrap_err();
        assert_eq!(e, ProgramError::BadEntry { entry: 0x2000 });
    }

    #[test]
    fn rejects_bad_branch_target() {
        let e = tiny(vec![
            Instr::Branch { cond: Cond::Eq, rs1: R1, rs2: R2, target: 0x1006 },
            Instr::Halt,
        ])
        .unwrap_err();
        assert_eq!(e, ProgramError::BadTarget { pc: 0x1000, target: 0x1006 });
    }

    #[test]
    fn rejects_overlapping_segments() {
        let e = Program::new(
            "t",
            0x1000,
            vec![Instr::Halt],
            vec![
                DataSegment { name: "a".into(), base: 0x8000, words: vec![0; 4] },
                DataSegment { name: "b".into(), base: 0x8008, words: vec![0; 4] },
            ],
            0x1000,
            BTreeMap::new(),
            BTreeMap::new(),
            vec![],
        )
        .unwrap_err();
        assert!(matches!(e, ProgramError::OverlappingSegments { .. }));
    }

    #[test]
    fn rejects_code_data_overlap() {
        let e = Program::new(
            "t",
            0x1000,
            vec![Instr::Halt, Instr::Halt],
            vec![DataSegment { name: "a".into(), base: 0x1004, words: vec![0; 2] }],
            0x1000,
            BTreeMap::new(),
            BTreeMap::new(),
            vec![],
        )
        .unwrap_err();
        assert_eq!(e, ProgramError::CodeDataOverlap { name: "a".into() });
    }

    #[test]
    fn rejects_unaligned_segment() {
        let e = Program::new(
            "t",
            0x1000,
            vec![Instr::Halt],
            vec![DataSegment { name: "a".into(), base: 0x8002, words: vec![0] }],
            0x1000,
            BTreeMap::new(),
            BTreeMap::new(),
            vec![],
        )
        .unwrap_err();
        assert_eq!(e, ProgramError::UnalignedSegment { name: "a".into(), base: 0x8002 });
    }

    #[test]
    fn addressing_round_trip() {
        let p = tiny(vec![Instr::Nop, Instr::Nop, Instr::Halt]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.code_end(), 0x100c);
        assert!(p.is_instr_addr(0x1008));
        assert!(!p.is_instr_addr(0x1002));
        assert!(!p.is_instr_addr(0x100c));
        assert_eq!(p.instr_at(0x1008), Some(Instr::Halt));
        assert_eq!(p.instr_at(0x100c), None);
        assert_eq!(p.addr_of_index(2), 0x1008);
        assert_eq!(p.index_of_addr(0x1004), 1);
    }

    #[test]
    fn segment_bounds() {
        let s = DataSegment { name: "a".into(), base: 0x8000, words: vec![1, 2, 3] };
        assert_eq!(s.end(), 0x800c);
        assert!(s.contains(0x8000));
        assert!(s.contains(0x800b));
        assert!(!s.contains(0x800c));
    }

    #[test]
    fn variant_builder() {
        let v = InputVariant::named("sobel").with_write(0x8000, 1);
        assert_eq!(v.name, "sobel");
        assert_eq!(v.writes, vec![(0x8000, 1)]);
    }

    #[test]
    fn error_display() {
        let e = ProgramError::BadTarget { pc: 0x10, target: 0x33 };
        assert!(e.to_string().contains("0x33"));
    }
}
