//! Binary encoding of TRISC-16 instructions.
//!
//! Every instruction encodes to one 32-bit little-endian word, so program
//! images can live in simulated memory, be hashed, or be shipped between
//! tools. Branch and jump targets are encoded **pc-relative** in units of
//! instruction words (±2²³ instructions of reach), which keeps images
//! position-independent.
//!
//! Layout (bit 31 = msb):
//!
//! ```text
//! opcode[31:26] | rd[25:22] | rs1[21:18] | rs2[17:14] | unused
//! opcode[31:26] | rd[25:22] | rs1[21:18] | imm18[17:0]      (addi, ld, st)
//! opcode[31:26] | rd[25:22] | imm22[21:0]                   (li: see note)
//! opcode[31:26] | rs1[25:22] | rs2[21:18] | rel18[17:0]     (branches)
//! ```
//!
//! `li` immediates use two encodings: values that fit 22 signed bits use
//! the short form; wider values use opcode `LI32` followed by the raw
//! 32-bit immediate in the **next** word (a two-word instruction would
//! break pc arithmetic, so instead the assembler-level `Instr::Li` is
//! split into `lui`-style halves: `LIHI` loads the upper 16 bits shifted,
//! and a paired `LILO` ors in the lower 16. [`encode_program`] performs
//! the split and [`decode_program`] re-fuses adjacent pairs).

use std::fmt;

use crate::isa::{AluOp, Cond, Instr, Reg};
use crate::program::Program;

/// Errors from decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode bits.
    BadOpcode {
        /// The word that failed to decode.
        word: u32,
    },
    /// A pc-relative target fell outside the decoded image.
    BadTarget {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A `LIHI` word was not followed by its `LILO` partner.
    DanglingLihi {
        /// Index of the offending instruction.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { word } => write!(f, "unknown opcode in word {word:#010x}"),
            DecodeError::BadTarget { index } => {
                write!(f, "relative target of instruction {index} leaves the image")
            }
            DecodeError::DanglingLihi { index } => {
                write!(f, "LIHI at instruction {index} has no LILO partner")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcodes (6 bits).
const OP_ALU_BASE: u32 = 0; // +0..=8 for the nine AluOps
const OP_ADDI: u32 = 16;
const OP_LI: u32 = 17;
const OP_LIHI: u32 = 18;
const OP_LILO: u32 = 19;
const OP_LD: u32 = 20;
const OP_ST: u32 = 21;
const OP_BEQ: u32 = 24;
const OP_BNE: u32 = 25;
const OP_BLT: u32 = 26;
const OP_BGE: u32 = 27;
const OP_JAL: u32 = 28;
const OP_JR: u32 = 29;
const OP_NOP: u32 = 30;
const OP_HALT: u32 = 31;

const IMM18_MIN: i32 = -(1 << 17);
const IMM18_MAX: i32 = (1 << 17) - 1;
const IMM22_MIN: i32 = -(1 << 21);
const IMM22_MAX: i32 = (1 << 21) - 1;

fn alu_code(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::And => 3,
        AluOp::Or => 4,
        AluOp::Xor => 5,
        AluOp::Shl => 6,
        AluOp::Sra => 7,
        AluOp::Slt => 8,
    }
}

fn alu_from_code(code: u32) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::And,
        4 => AluOp::Or,
        5 => AluOp::Xor,
        6 => AluOp::Shl,
        7 => AluOp::Sra,
        8 => AluOp::Slt,
        _ => return None,
    })
}

fn pack(opcode: u32, a: u32, b: u32, c18: u32) -> u32 {
    (opcode << 26) | (a << 22) | (b << 18) | (c18 & 0x3FFFF)
}

fn sign18(v: u32) -> i32 {
    ((v << 14) as i32) >> 14
}

fn sign22(v: u32) -> i32 {
    ((v << 10) as i32) >> 10
}

/// Encodes a program's instruction stream to 32-bit words. Wide `li`
/// immediates expand into `LIHI`/`LILO` pairs, so the output can be
/// longer than the input; branch targets are fixed up accordingly.
///
/// # Panics
///
/// Panics if a load/store offset or `addi` immediate exceeds 18 signed
/// bits, or a branch displacement exceeds the 18-bit relative range —
/// none of which the assembler or builder can produce for realistically
/// sized programs.
pub fn encode_program(program: &Program) -> Vec<u32> {
    // First map each source instruction to its output index (wide li
    // doubles), so targets can be rewritten.
    let mut out_index = Vec::with_capacity(program.len());
    let mut next = 0u32;
    for instr in program.code() {
        out_index.push(next);
        next += match instr {
            Instr::Li { imm, .. } if !(IMM22_MIN..=IMM22_MAX).contains(imm) => 2,
            _ => 1,
        };
    }
    let index_of = |addr: u64| -> u32 { out_index[program.index_of_addr(addr)] };

    let mut words = Vec::with_capacity(next as usize);
    for (i, instr) in program.code().iter().enumerate() {
        let here = out_index[i];
        let rel = |target: u64| -> u32 {
            let delta = i64::from(index_of(target)) - i64::from(here);
            assert!(
                (i64::from(IMM18_MIN)..=i64::from(IMM18_MAX)).contains(&delta),
                "branch displacement {delta} exceeds the 18-bit range"
            );
            delta as u32
        };
        let imm18 = |v: i32| -> u32 {
            assert!((IMM18_MIN..=IMM18_MAX).contains(&v), "immediate {v} exceeds 18 bits");
            v as u32
        };
        match *instr {
            Instr::Alu { op, rd, rs1, rs2 } => words.push(pack(
                OP_ALU_BASE + alu_code(op),
                rd.number().into(),
                rs1.number().into(),
                u32::from(rs2.number()) << 14,
            )),
            Instr::Addi { rd, rs1, imm } => {
                words.push(pack(OP_ADDI, rd.number().into(), rs1.number().into(), imm18(imm)))
            }
            Instr::Li { rd, imm } => {
                if (IMM22_MIN..=IMM22_MAX).contains(&imm) {
                    words.push(
                        (OP_LI << 26) | (u32::from(rd.number()) << 22) | (imm as u32 & 0x3FFFFF),
                    );
                } else {
                    let hi = (imm as u32) >> 16;
                    let lo = imm as u32 & 0xFFFF;
                    words.push((OP_LIHI << 26) | (u32::from(rd.number()) << 22) | hi);
                    words.push((OP_LILO << 26) | (u32::from(rd.number()) << 22) | lo);
                }
            }
            Instr::Ld { rd, base, offset } => {
                words.push(pack(OP_LD, rd.number().into(), base.number().into(), imm18(offset)))
            }
            Instr::St { src, base, offset } => {
                words.push(pack(OP_ST, src.number().into(), base.number().into(), imm18(offset)))
            }
            Instr::Branch { cond, rs1, rs2, target } => {
                let opcode = match cond {
                    Cond::Eq => OP_BEQ,
                    Cond::Ne => OP_BNE,
                    Cond::Lt => OP_BLT,
                    Cond::Ge => OP_BGE,
                };
                words.push(pack(opcode, rs1.number().into(), rs2.number().into(), rel(target)));
            }
            Instr::Jal { rd, target } => {
                words.push(pack(OP_JAL, rd.number().into(), 0, rel(target)))
            }
            Instr::Jr { rs1 } => words.push(pack(OP_JR, 0, rs1.number().into(), 0)),
            Instr::Nop => words.push(OP_NOP << 26),
            Instr::Halt => words.push(OP_HALT << 26),
        }
    }
    words
}

/// Decodes an instruction-word image back to instructions, resolving
/// pc-relative targets against `code_base` and re-fusing `LIHI`/`LILO`
/// pairs into `li`.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes, out-of-image targets or
/// unpaired `LIHI`.
pub fn decode_program(words: &[u32], code_base: u64) -> Result<Vec<Instr>, DecodeError> {
    // Decoded instructions keep one slot per word (fused pairs leave a
    // trailing `Nop` placeholder removed at the end is WRONG for targets),
    // so instead decode 1:1, turning LIHI/LILO into li + nop; targets stay
    // aligned.
    let mut out = Vec::with_capacity(words.len());
    let mut i = 0usize;
    while i < words.len() {
        let word = words[i];
        let opcode = word >> 26;
        let a = Reg::new(((word >> 22) & 0xF) as u8);
        let b = Reg::new(((word >> 18) & 0xF) as u8);
        let c18 = word & 0x3FFFF;
        let target = |index: usize| -> Result<u64, DecodeError> {
            let rel = i64::from(sign18(c18));
            let absolute = index as i64 + rel;
            if absolute < 0 || absolute as usize >= words.len() {
                return Err(DecodeError::BadTarget { index });
            }
            Ok(code_base + absolute as u64 * Instr::SIZE)
        };
        let instr = match opcode {
            op if op <= 8 => {
                let alu = alu_from_code(op).expect("op <= 8");
                let rs2 = Reg::new(((word >> 14) & 0xF) as u8);
                Instr::Alu { op: alu, rd: a, rs1: b, rs2 }
            }
            OP_ADDI => Instr::Addi { rd: a, rs1: b, imm: sign18(c18) },
            OP_LI => Instr::Li { rd: a, imm: sign22(word & 0x3FFFFF) },
            OP_LIHI => {
                let Some(next) = words.get(i + 1) else {
                    return Err(DecodeError::DanglingLihi { index: i });
                };
                if next >> 26 != OP_LILO {
                    return Err(DecodeError::DanglingLihi { index: i });
                }
                let hi = word & 0xFFFF;
                let lo = next & 0xFFFF;
                out.push(Instr::Li { rd: a, imm: ((hi << 16) | lo) as i32 });
                out.push(Instr::Nop); // keep word alignment for targets
                i += 2;
                continue;
            }
            OP_LILO => return Err(DecodeError::BadOpcode { word }),
            OP_LD => Instr::Ld { rd: a, base: b, offset: sign18(c18) },
            OP_ST => Instr::St { src: a, base: b, offset: sign18(c18) },
            OP_BEQ | OP_BNE | OP_BLT | OP_BGE => {
                let cond = match opcode {
                    OP_BEQ => Cond::Eq,
                    OP_BNE => Cond::Ne,
                    OP_BLT => Cond::Lt,
                    _ => Cond::Ge,
                };
                Instr::Branch { cond, rs1: a, rs2: b, target: target(i)? }
            }
            OP_JAL => Instr::Jal { rd: a, target: target(i)? },
            OP_JR => Instr::Jr { rs1: b },
            OP_NOP => Instr::Nop,
            OP_HALT => Instr::Halt,
            _ => return Err(DecodeError::BadOpcode { word }),
        };
        out.push(instr);
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::regs::*;

    #[test]
    fn narrow_program_round_trips_exactly() {
        let p = assemble(
            "t",
            ".text 0x1000\nstart: li r1, 100\nloop: addi r1, r1, -1\n add r2, r2, r1\n bne r1, r0, loop\n halt\n",
        )
        .unwrap();
        let words = encode_program(&p);
        assert_eq!(words.len(), p.len(), "no wide immediates here");
        let back = decode_program(&words, p.code_base()).unwrap();
        assert_eq!(back, p.code());
    }

    #[test]
    fn wide_li_splits_and_refuses() {
        let p = assemble("t", ".text 0x1000\nstart: li r1, 0x00300000\n ld r2, 0(r1)\n halt\n")
            .unwrap();
        let words = encode_program(&p);
        assert_eq!(words.len(), p.len() + 1, "wide li takes two words");
        let back = decode_program(&words, p.code_base()).unwrap();
        assert_eq!(back[0], Instr::Li { rd: R1, imm: 0x0030_0000 });
        assert_eq!(back[1], Instr::Nop, "padding preserves word alignment");
        assert_eq!(back[2], Instr::Ld { rd: R2, base: R1, offset: 0 });
    }

    #[test]
    fn branch_targets_survive_wide_li_insertion() {
        // A wide li *before* a backward branch shifts indices; the rewrite
        // must keep the loop intact, verified by executing both programs.
        let p = assemble(
            "t",
            ".data 0x300000\nbuf: .space 4\n.text 0x1000\nstart: li r5, buf\n li r1, 4\nloop: st r1, 0(r5)\n addi r1, r1, -1\n bne r1, r0, loop\n halt\n",
        )
        .unwrap();
        let words = encode_program(&p);
        let decoded = decode_program(&words, p.code_base()).unwrap();
        let q = Program::new(
            "t2",
            p.code_base(),
            decoded,
            p.data_segments().to_vec(),
            p.entry(),
            Default::default(),
            Default::default(),
            vec![],
        )
        .unwrap();
        let mut sp = crate::sim::Simulator::new(&p);
        let tp = sp.run_to_halt().unwrap();
        let mut sq = crate::sim::Simulator::new(&q);
        let tq = sq.run_to_halt().unwrap();
        // Same register outcome and same data result; the decoded image
        // has one extra nop per wide li.
        assert_eq!(sp.reg(R1), sq.reg(R1));
        assert_eq!(sp.memory().read(0x300000).unwrap(), sq.memory().read(0x300000).unwrap());
        assert_eq!(tq.instructions, tp.instructions + 1, "one pad nop executes");
    }

    #[test]
    fn negative_immediates_round_trip() {
        let p = assemble("t", "addi r1, r2, -131072\nld r3, -4(r1)\nli r4, -1\nhalt\n").unwrap();
        let words = encode_program(&p);
        let back = decode_program(&words, p.code_base()).unwrap();
        assert_eq!(back, p.code());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(decode_program(&[0xFFFF_FFFF], 0), Err(DecodeError::BadOpcode { .. })));
        // A branch pointing outside the image.
        let word = pack(OP_BEQ, 0, 0, 0x3FFFF); // rel = -1 from index 0
        assert!(matches!(decode_program(&[word], 0), Err(DecodeError::BadTarget { index: 0 })));
        // LIHI with no partner.
        let lihi = (OP_LIHI << 26) | 0x12;
        assert!(matches!(decode_program(&[lihi], 0), Err(DecodeError::DanglingLihi { index: 0 })));
        let lilo_alone = OP_LILO << 26;
        assert!(matches!(decode_program(&[lilo_alone], 0), Err(DecodeError::BadOpcode { .. })));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::BadOpcode { word: 0xFC00_0000 }.to_string().contains("opcode"));
        assert!(DecodeError::BadTarget { index: 3 }.to_string().contains('3'));
        assert!(DecodeError::DanglingLihi { index: 7 }.to_string().contains("LILO"));
    }

    use crate::program::Program;
}
