//! A two-pass assembler for TRISC-16.
//!
//! Syntax overview (see the crate-level docs for a complete program):
//!
//! ```text
//! ; comments run to end of line
//! .text 0x1000        ; switch to the code section (address on first use)
//! .data 0x8000        ; switch to the data section
//! table: .word 1, 2, 3
//! buf:   .space 16    ; 16 zeroed words
//! .text
//! start:
//!     li   r1, table  ; immediates may be symbols
//!     ld   r2, 0(r1)
//!     addi r2, r2, 1
//!     st   r2, 4(r1)
//! loop:               ; .bound declares the loop's iteration bound
//!     addi r3, r3, 1
//!     bne  r3, r2, loop
//! .bound loop, 64
//!     halt
//! ```
//!
//! Execution starts at the `start` label if present, otherwise at the
//! first instruction.

use std::collections::BTreeMap;
use std::fmt;

use crate::isa::{AluOp, Cond, Instr, Reg};
use crate::program::{DataSegment, Program, ProgramError};

/// Default code base when a bare `.text` appears first.
const DEFAULT_TEXT_BASE: u64 = 0x1000;
/// Default data base when a bare `.data` appears first.
const DEFAULT_DATA_BASE: u64 = 0x0010_0000;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The kinds of assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown mnemonic or directive.
    UnknownMnemonic(String),
    /// Operand list malformed for the mnemonic.
    BadOperands(String),
    /// An operand failed to parse as a register.
    BadRegister(String),
    /// An operand failed to parse as an immediate or known symbol.
    BadImmediate(String),
    /// Label defined twice.
    DuplicateLabel(String),
    /// A referenced symbol was never defined.
    UndefinedSymbol(String),
    /// A directive's argument is malformed.
    BadDirective(String),
    /// The assembled pieces failed whole-program validation.
    Program(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadOperands(m) => write!(f, "bad operands: {m}"),
            AsmErrorKind::BadRegister(r) => write!(f, "bad register `{r}`"),
            AsmErrorKind::BadImmediate(i) => write!(f, "bad immediate `{i}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::BadDirective(d) => write!(f, "bad directive: {d}"),
            AsmErrorKind::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// An instruction awaiting symbol resolution.
#[derive(Debug, Clone)]
enum PendingInstr {
    Ready(Instr),
    Branch { cond: Cond, rs1: Reg, rs2: Reg, target: String },
    Jal { rd: Reg, target: String },
    Li { rd: Reg, symbol: String },
}

/// Assembles TRISC-16 source text into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line for syntax errors,
/// undefined/duplicate symbols, or whole-program validation failures.
///
/// ```
/// use rtprogram::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("answer", ".text 0x1000\nstart: li r1, 42\n halt\n")?;
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.entry(), 0x1000);
/// # Ok(())
/// # }
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    Assembler::default().assemble(name, source)
}

/// Disassembles a program back to assembly text.
///
/// The listing re-assembles to an equivalent program: same code, same
/// entry point, same data image and same loop bounds (original symbol
/// names are replaced by generated labels). Branch and jump targets are
/// emitted as absolute hex addresses, which the assembler accepts
/// directly.
///
/// ```
/// use rtprogram::asm::{assemble, disassemble};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("t", "start: li r1, 3\nloop: addi r1, r1, -1\nbne r1, r0, loop\n.bound loop, 3\nhalt\n")?;
/// let q = assemble("t", &disassemble(&p))?;
/// assert_eq!(p.code(), q.code());
/// assert_eq!(p.loop_bounds(), q.loop_bounds());
/// # Ok(())
/// # }
/// ```
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "; disassembly of `{}`", program.name());
    let _ = writeln!(out, ".text {:#x}", program.code_base());
    for (i, instr) in program.code().iter().enumerate() {
        let addr = program.addr_of_index(i);
        if program.loop_bounds().contains_key(&addr) {
            let _ = writeln!(out, "addr_{addr:x}:");
        }
        if addr == program.entry() && addr != program.code_base() {
            let _ = writeln!(out, "start:");
        }
        let _ = writeln!(out, "    {instr}    ; {addr:#x}");
    }
    for (addr, bound) in program.loop_bounds() {
        let _ = writeln!(out, ".bound addr_{addr:x}, {bound}");
    }
    for segment in program.data_segments() {
        let _ = writeln!(out, ".data {:#x}    ; segment `{}`", segment.base, segment.name);
        for chunk in segment.words.chunks(8) {
            let words: Vec<String> = chunk.iter().map(i32::to_string).collect();
            let _ = writeln!(out, "    .word {}", words.join(", "));
        }
    }
    out
}

#[derive(Debug, Default)]
struct Assembler {
    text_base: Option<u64>,
    section: Option<Section>,
    instrs: Vec<(usize, PendingInstr)>,
    /// `(base, words)` per `.data ADDR` directive seen.
    data_segments: Vec<(u64, Vec<i32>)>,
    symbols: BTreeMap<String, u64>,
    bounds: Vec<(usize, String, u32)>,
}

impl Assembler {
    fn text_cursor(&self) -> u64 {
        self.text_base.unwrap_or(DEFAULT_TEXT_BASE) + self.instrs.len() as u64 * Instr::SIZE
    }

    /// Ensures a current data segment exists and returns its index.
    fn current_data_segment(&mut self) -> usize {
        if self.data_segments.is_empty() {
            self.data_segments.push((DEFAULT_DATA_BASE, Vec::new()));
        }
        self.data_segments.len() - 1
    }

    fn data_cursor(&mut self) -> u64 {
        let i = self.current_data_segment();
        let (base, words) = &self.data_segments[i];
        base + words.len() as u64 * 4
    }

    fn assemble(mut self, name: &str, source: &str) -> Result<Program, AsmError> {
        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let text = strip_comment(raw).trim();
            if text.is_empty() {
                continue;
            }
            self.line(line, text)?;
        }
        self.finish(name)
    }

    fn line(&mut self, line: usize, mut text: &str) -> Result<(), AsmError> {
        // Labels (possibly several) prefix the statement.
        while let Some(colon) = find_label(text) {
            let label = text[..colon].trim();
            if !is_ident(label) {
                return Err(AsmError {
                    line,
                    kind: AsmErrorKind::BadDirective(format!("bad label `{label}`")),
                });
            }
            let addr = match self.section.unwrap_or(Section::Text) {
                Section::Text => self.text_cursor(),
                Section::Data => self.data_cursor(),
            };
            if self.symbols.insert(label.to_string(), addr).is_some() {
                return Err(AsmError { line, kind: AsmErrorKind::DuplicateLabel(label.into()) });
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            return Ok(());
        }
        if let Some(rest) = text.strip_prefix('.') {
            return self.directive(line, rest);
        }
        self.instruction(line, text)
    }

    fn directive(&mut self, line: usize, text: &str) -> Result<(), AsmError> {
        let (name, args) = split_mnemonic(text);
        match name {
            "text" => {
                if !args.is_empty() {
                    let base = parse_literal(args).ok_or_else(|| AsmError {
                        line,
                        kind: AsmErrorKind::BadDirective(format!(".text {args}")),
                    })?;
                    if self.text_base.is_some() && !self.instrs.is_empty() {
                        return Err(AsmError {
                            line,
                            kind: AsmErrorKind::BadDirective(
                                ".text base set after instructions were emitted".into(),
                            ),
                        });
                    }
                    self.text_base = Some(base as u64);
                }
                self.section = Some(Section::Text);
                Ok(())
            }
            "data" => {
                if !args.is_empty() {
                    let base = parse_literal(args).ok_or_else(|| AsmError {
                        line,
                        kind: AsmErrorKind::BadDirective(format!(".data {args}")),
                    })?;
                    // Each addressed `.data` opens a fresh segment (an
                    // empty just-opened segment is re-based instead).
                    match self.data_segments.last_mut() {
                        Some((b, words)) if words.is_empty() => *b = base as u64,
                        _ => self.data_segments.push((base as u64, Vec::new())),
                    }
                }
                self.section = Some(Section::Data);
                Ok(())
            }
            "word" => {
                self.section = Some(Section::Data);
                let seg = self.current_data_segment();
                for part in args.split(',') {
                    let v = parse_literal(part.trim()).ok_or_else(|| AsmError {
                        line,
                        kind: AsmErrorKind::BadImmediate(part.trim().into()),
                    })?;
                    self.data_segments[seg].1.push(v as i32);
                }
                Ok(())
            }
            "space" => {
                self.section = Some(Section::Data);
                let n = parse_literal(args.trim()).ok_or_else(|| AsmError {
                    line,
                    kind: AsmErrorKind::BadDirective(format!(".space {args}")),
                })?;
                let seg = self.current_data_segment();
                self.data_segments[seg].1.extend(std::iter::repeat_n(0, n as usize));
                Ok(())
            }
            "bound" => {
                let mut parts = args.split(',').map(str::trim);
                let (Some(label), Some(count), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(AsmError {
                        line,
                        kind: AsmErrorKind::BadDirective(format!(".bound {args}")),
                    });
                };
                let n = parse_literal(count).ok_or_else(|| AsmError {
                    line,
                    kind: AsmErrorKind::BadImmediate(count.into()),
                })?;
                self.bounds.push((line, label.to_string(), n as u32));
                Ok(())
            }
            other => {
                Err(AsmError { line, kind: AsmErrorKind::UnknownMnemonic(format!(".{other}")) })
            }
        }
    }

    fn instruction(&mut self, line: usize, text: &str) -> Result<(), AsmError> {
        self.section = Some(Section::Text);
        let (mnemonic, args) = split_mnemonic(text);
        let ops: Vec<&str> =
            if args.is_empty() { Vec::new() } else { args.split(',').map(str::trim).collect() };
        let bad = |msg: &str| AsmError { line, kind: AsmErrorKind::BadOperands(msg.into()) };
        let alu = |op: AluOp, ops: &[&str]| -> Result<PendingInstr, AsmError> {
            let [rd, rs1, rs2] = ops else {
                return Err(bad("expected `rd, rs1, rs2`"));
            };
            Ok(PendingInstr::Ready(Instr::Alu {
                op,
                rd: parse_reg(rd).map_err(|k| AsmError { line, kind: k })?,
                rs1: parse_reg(rs1).map_err(|k| AsmError { line, kind: k })?,
                rs2: parse_reg(rs2).map_err(|k| AsmError { line, kind: k })?,
            }))
        };
        let branch = |cond: Cond, ops: &[&str]| -> Result<PendingInstr, AsmError> {
            let [rs1, rs2, target] = ops else {
                return Err(bad("expected `rs1, rs2, target`"));
            };
            Ok(PendingInstr::Branch {
                cond,
                rs1: parse_reg(rs1).map_err(|k| AsmError { line, kind: k })?,
                rs2: parse_reg(rs2).map_err(|k| AsmError { line, kind: k })?,
                target: (*target).to_string(),
            })
        };
        let pending = match mnemonic {
            "add" => alu(AluOp::Add, &ops)?,
            "sub" => alu(AluOp::Sub, &ops)?,
            "mul" => alu(AluOp::Mul, &ops)?,
            "and" => alu(AluOp::And, &ops)?,
            "or" => alu(AluOp::Or, &ops)?,
            "xor" => alu(AluOp::Xor, &ops)?,
            "shl" => alu(AluOp::Shl, &ops)?,
            "sra" => alu(AluOp::Sra, &ops)?,
            "slt" => alu(AluOp::Slt, &ops)?,
            "addi" => {
                let [rd, rs1, imm] = ops.as_slice() else {
                    return Err(bad("expected `rd, rs1, imm`"));
                };
                PendingInstr::Ready(Instr::Addi {
                    rd: parse_reg(rd).map_err(|k| AsmError { line, kind: k })?,
                    rs1: parse_reg(rs1).map_err(|k| AsmError { line, kind: k })?,
                    imm: parse_literal(imm).ok_or_else(|| AsmError {
                        line,
                        kind: AsmErrorKind::BadImmediate((*imm).into()),
                    })? as i32,
                })
            }
            "li" => {
                let [rd, imm] = ops.as_slice() else {
                    return Err(bad("expected `rd, imm`"));
                };
                let rd = parse_reg(rd).map_err(|k| AsmError { line, kind: k })?;
                match parse_literal(imm) {
                    Some(v) => PendingInstr::Ready(Instr::Li { rd, imm: v as i32 }),
                    None if is_ident(imm) => PendingInstr::Li { rd, symbol: (*imm).to_string() },
                    None => {
                        return Err(AsmError {
                            line,
                            kind: AsmErrorKind::BadImmediate((*imm).into()),
                        })
                    }
                }
            }
            "ld" | "st" => {
                let [r, mem] = ops.as_slice() else {
                    return Err(bad("expected `reg, off(base)`"));
                };
                let r = parse_reg(r).map_err(|k| AsmError { line, kind: k })?;
                let (offset, base) =
                    parse_mem_operand(mem).ok_or_else(|| bad("expected `off(base)`"))?;
                let base = parse_reg(base).map_err(|k| AsmError { line, kind: k })?;
                let offset = parse_literal(offset).ok_or_else(|| AsmError {
                    line,
                    kind: AsmErrorKind::BadImmediate(offset.into()),
                })? as i32;
                PendingInstr::Ready(if mnemonic == "ld" {
                    Instr::Ld { rd: r, base, offset }
                } else {
                    Instr::St { src: r, base, offset }
                })
            }
            "beq" => branch(Cond::Eq, &ops)?,
            "bne" => branch(Cond::Ne, &ops)?,
            "blt" => branch(Cond::Lt, &ops)?,
            "bge" => branch(Cond::Ge, &ops)?,
            "jal" => {
                let [rd, target] = ops.as_slice() else {
                    return Err(bad("expected `rd, target`"));
                };
                PendingInstr::Jal {
                    rd: parse_reg(rd).map_err(|k| AsmError { line, kind: k })?,
                    target: (*target).to_string(),
                }
            }
            "jr" => {
                let [rs1] = ops.as_slice() else {
                    return Err(bad("expected `rs1`"));
                };
                PendingInstr::Ready(Instr::Jr {
                    rs1: parse_reg(rs1).map_err(|k| AsmError { line, kind: k })?,
                })
            }
            "nop" => PendingInstr::Ready(Instr::Nop),
            "halt" => PendingInstr::Ready(Instr::Halt),
            other => {
                return Err(AsmError { line, kind: AsmErrorKind::UnknownMnemonic(other.into()) })
            }
        };
        self.instrs.push((line, pending));
        Ok(())
    }

    fn finish(self, name: &str) -> Result<Program, AsmError> {
        let symbols = self.symbols;
        let resolve = |line: usize, sym: &str| -> Result<u64, AsmError> {
            if let Some(v) = parse_literal(sym) {
                return Ok(v as u64);
            }
            symbols
                .get(sym)
                .copied()
                .ok_or_else(|| AsmError { line, kind: AsmErrorKind::UndefinedSymbol(sym.into()) })
        };
        let mut code = Vec::with_capacity(self.instrs.len());
        let mut last_line = 1;
        for (line, pending) in &self.instrs {
            last_line = *line;
            code.push(match pending {
                PendingInstr::Ready(i) => *i,
                PendingInstr::Branch { cond, rs1, rs2, target } => Instr::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: resolve(*line, target)?,
                },
                PendingInstr::Jal { rd, target } => {
                    Instr::Jal { rd: *rd, target: resolve(*line, target)? }
                }
                PendingInstr::Li { rd, symbol } => {
                    Instr::Li { rd: *rd, imm: resolve(*line, symbol)? as i32 }
                }
            });
        }
        let mut loop_bounds = BTreeMap::new();
        for (line, label, n) in &self.bounds {
            let addr = symbols.get(label).copied().ok_or_else(|| AsmError {
                line: *line,
                kind: AsmErrorKind::UndefinedSymbol(label.clone()),
            })?;
            loop_bounds.insert(addr, *n);
        }
        let text_base = self.text_base.unwrap_or(DEFAULT_TEXT_BASE);
        let entry = symbols.get("start").copied().unwrap_or(text_base);
        let data = self
            .data_segments
            .into_iter()
            .enumerate()
            .filter(|(_, (_, words))| !words.is_empty())
            .map(|(i, (base, words))| DataSegment { name: format!("{name}.data{i}"), base, words })
            .collect();
        Program::new(name, text_base, code, data, entry, symbols, loop_bounds, vec![])
            .map_err(|e| AsmError { line: last_line, kind: AsmErrorKind::Program(e) })
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds a label-terminating colon that is part of `ident:` at the start.
fn find_label(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    if is_ident(text[..colon].trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_mnemonic(text: &str) -> (&str, &str) {
    match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    }
}

fn parse_reg(s: &str) -> Result<Reg, AsmErrorKind> {
    let s = s.trim();
    s.strip_prefix(['r', 'R'])
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < Reg::COUNT as u8)
        .map(Reg::new)
        .ok_or_else(|| AsmErrorKind::BadRegister(s.into()))
}

fn parse_literal(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Splits `off(base)` into `("off", "base")`.
fn parse_mem_operand(s: &str) -> Option<(&str, &str)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close != s.len() - 1 || close <= open {
        return None;
    }
    let off = s[..open].trim();
    let base = s[open + 1..close].trim();
    Some((if off.is_empty() { "0" } else { off }, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs::*;
    use crate::sim::Simulator;

    #[test]
    fn assembles_and_runs_sum_loop() {
        let p = assemble(
            "sum",
            r#"
            .text 0x1000
            .data 0x8000
            nums:   .word 3, 1, 4, 1, 5
            result: .space 1
            .text
            start:
                li r1, nums
                li r2, 0        ; sum
                li r3, 5        ; count
            loop:
                ld r4, 0(r1)
                add r2, r2, r4
                addi r1, r1, 4
                addi r3, r3, -1
                bne r3, r0, loop
            .bound loop, 5
                li r5, result
                st r2, 0(r5)
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("nums"), Some(0x8000));
        assert_eq!(p.symbol("result"), Some(0x8014));
        assert_eq!(p.entry(), 0x1000);
        assert_eq!(p.loop_bounds().get(&p.symbol("loop").unwrap()), Some(&5));
        let mut sim = Simulator::new(&p);
        sim.run_to_halt().unwrap();
        assert_eq!(sim.memory().read(0x8014).unwrap(), 14);
    }

    #[test]
    fn symbols_usable_as_immediates_and_targets() {
        let p = assemble(
            "t",
            ".text 0x2000\nstart: li r1, start\n beq r0, r0, done\n nop\ndone: halt\n",
        )
        .unwrap();
        assert_eq!(p.code()[0], Instr::Li { rd: R1, imm: 0x2000 });
        assert_eq!(p.code()[1].target(), Some(0x200c));
    }

    #[test]
    fn numeric_branch_targets() {
        let p = assemble("t", ".text 0x1000\n beq r0, r0, 0x1008\n nop\n halt\n").unwrap();
        assert_eq!(p.code()[0].target(), Some(0x1008));
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let e = assemble("t", "frob r1, r2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn rejects_bad_register_and_immediate() {
        let e = assemble("t", "add r1, r2, r16\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadRegister(_)));
        let e = assemble("t", "li r1, zz-7\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadImmediate(_)));
    }

    #[test]
    fn rejects_duplicate_label() {
        let e = assemble("t", "a: nop\na: halt\n").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::DuplicateLabel("a".into()));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_undefined_symbol() {
        let e = assemble("t", "beq r0, r0, nowhere\nhalt\n").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::UndefinedSymbol("nowhere".into()));
    }

    #[test]
    fn rejects_bad_mem_operand() {
        let e = assemble("t", "ld r1, 4[r2]\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadOperands(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("t", "\n; nothing\n   # also nothing\n nop ; trailing\n halt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn negative_and_hex_literals() {
        let p = assemble("t", "addi r1, r0, -12\nli r2, 0x7f\nhalt\n").unwrap();
        assert_eq!(p.code()[0], Instr::Addi { rd: R1, rs1: R0, imm: -12 });
        assert_eq!(p.code()[1], Instr::Li { rd: R2, imm: 0x7f });
    }

    #[test]
    fn bare_offset_defaults_to_zero() {
        let p = assemble("t", "ld r1, (r2)\nhalt\n").unwrap();
        assert_eq!(p.code()[0], Instr::Ld { rd: R1, base: R2, offset: 0 });
    }

    #[test]
    fn data_label_addresses_advance() {
        let p = assemble("t", ".data 0x9000\na: .word 1\nb: .space 3\nc: .word 2\n.text\nhalt\n")
            .unwrap();
        assert_eq!(p.symbol("a"), Some(0x9000));
        assert_eq!(p.symbol("b"), Some(0x9004));
        assert_eq!(p.symbol("c"), Some(0x9010));
        assert_eq!(p.data_segments()[0].words, vec![1, 0, 0, 0, 2]);
    }

    #[test]
    fn error_display_includes_line() {
        let e = assemble("t", "nop\nfrob\n").unwrap_err();
        assert!(e.to_string().starts_with("line 2:"));
    }
}
