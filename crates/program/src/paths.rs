//! Dominators, natural loops and feasible-path enumeration.
//!
//! This module provides the structural side of the paper's path analysis
//! (§VI): loops with fixed bounds are collapsed (each back edge is removed
//! and the loop's blocks are weighted by their iteration factor), after
//! which the residual acyclic graph's entry→exit paths are the feasible
//! path skeletons of the program — the SFP-Prs path view of Fig. 4(b).

use std::collections::BTreeSet;
use std::fmt;

use crate::cfg::{BlockId, Cfg};
use crate::program::Program;

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// The back-edge sources (`tail → header` edges).
    pub tails: Vec<BlockId>,
    /// Iteration bound from the program's annotations, if declared.
    pub bound: Option<u32>,
}

/// Errors from [`enumerate_paths`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEnumError {
    /// More entry→exit paths exist than the supplied limit.
    TooManyPaths {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The CFG is irreducible (a retreating edge's target does not
    /// dominate its source), so back-edge removal is not well defined.
    Irreducible,
}

impl fmt::Display for PathEnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathEnumError::TooManyPaths { limit } => {
                write!(f, "more than {limit} feasible paths; raise the limit or coarsen the CFG")
            }
            PathEnumError::Irreducible => write!(f, "irreducible control flow"),
        }
    }
}

impl std::error::Error for PathEnumError {}

/// Computes the immediate dominator of every reachable block (the entry
/// dominates itself). Unreachable blocks get `None`.
///
/// Uses the Cooper–Harvey–Kennedy iterative algorithm over a reverse
/// post-order.
pub fn immediate_dominators(cfg: &Cfg) -> Vec<Option<BlockId>> {
    let n = cfg.len();
    // Reverse post-order.
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack = vec![(cfg.entry(), 0usize)];
    visited[cfg.entry().index()] = true;
    while let Some((b, child)) = stack.pop() {
        let succs = &cfg.block(b).succs;
        if child < succs.len() {
            stack.push((b, child + 1));
            let s = succs[child];
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            order.push(b);
        }
    }
    order.reverse();
    let mut rpo_number = vec![usize::MAX; n];
    for (i, b) in order.iter().enumerate() {
        rpo_number[b.index()] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[cfg.entry().index()] = Some(cfg.entry());
    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_number[a.index()] > rpo_number[b.index()] {
                a = idom[a.index()].expect("processed block has idom");
            }
            while rpo_number[b.index()] > rpo_number[a.index()] {
                b = idom[b.index()].expect("processed block has idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for b in &order {
            if *b == cfg.entry() {
                continue;
            }
            let mut new_idom: Option<BlockId> = None;
            for p in cfg.preds(*b) {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => *p,
                    Some(cur) => intersect(&idom, cur, *p),
                });
            }
            if new_idom.is_some() && idom[b.index()] != new_idom {
                idom[b.index()] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// `true` if `a` dominates `b` (reflexive).
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// Finds all natural loops of the CFG and attaches the program's declared
/// bounds (matched by header start address).
///
/// Back edges with a shared header are merged into one loop, following the
/// usual convention.
///
/// # Errors
///
/// Returns [`PathEnumError::Irreducible`] if a retreating edge's target
/// does not dominate its source.
pub fn natural_loops(cfg: &Cfg, program: &Program) -> Result<Vec<NaturalLoop>, PathEnumError> {
    let idom = immediate_dominators(cfg);
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for b in cfg.block_ids() {
        if idom[b.index()].is_none() {
            continue; // unreachable
        }
        for s in &cfg.block(b).succs {
            if dominates(&idom, *s, b) {
                // Back edge b -> s. Collect the body by walking predecessors
                // from the tail until the header.
                let header = *s;
                let mut body = BTreeSet::from([header, b]);
                let mut work = vec![b];
                while let Some(x) = work.pop() {
                    if x == header {
                        continue;
                    }
                    for p in cfg.preds(x) {
                        if body.insert(*p) {
                            work.push(*p);
                        }
                    }
                }
                if let Some(l) = loops.iter_mut().find(|l| l.header == header) {
                    l.body.extend(body);
                    l.tails.push(b);
                } else {
                    let bound = program.loop_bounds().get(&cfg.block(header).start).copied();
                    loops.push(NaturalLoop { header, body, tails: vec![b], bound });
                }
            }
        }
    }
    // Reducibility check: every cycle must be covered by a natural loop.
    // Remove all back edges and verify the residual graph is acyclic.
    let back_edges: BTreeSet<(BlockId, BlockId)> =
        loops.iter().flat_map(|l| l.tails.iter().map(move |t| (*t, l.header))).collect();
    if residual_has_cycle(cfg, &back_edges) {
        return Err(PathEnumError::Irreducible);
    }
    Ok(loops)
}

fn residual_has_cycle(cfg: &Cfg, back_edges: &BTreeSet<(BlockId, BlockId)>) -> bool {
    // Kahn's algorithm over the residual graph.
    let n = cfg.len();
    let mut indeg = vec![0usize; n];
    for b in cfg.block_ids() {
        for s in &cfg.block(b).succs {
            if !back_edges.contains(&(b, *s)) {
                indeg[s.index()] += 1;
            }
        }
    }
    let mut queue: Vec<BlockId> = cfg.block_ids().filter(|b| indeg[b.index()] == 0).collect();
    let mut seen = 0usize;
    while let Some(b) = queue.pop() {
        seen += 1;
        for s in &cfg.block(b).succs {
            if !back_edges.contains(&(b, *s)) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(*s);
                }
            }
        }
    }
    seen != n
}

/// Per-block iteration factor: the product of the bounds of every loop the
/// block belongs to. Blocks outside loops have factor 1; loops without a
/// declared bound contribute `default_bound`.
pub fn iteration_factors(cfg: &Cfg, loops: &[NaturalLoop], default_bound: u32) -> Vec<u64> {
    let mut factors = vec![1u64; cfg.len()];
    for l in loops {
        let bound = u64::from(l.bound.unwrap_or(default_bound));
        for b in &l.body {
            factors[b.index()] = factors[b.index()].saturating_mul(bound);
        }
    }
    factors
}

/// Enumerates every entry→exit path of the CFG with back edges removed
/// (each loop contributes its body once per path; iteration counts are
/// handled by [`iteration_factors`]).
///
/// # Errors
///
/// Returns [`PathEnumError::TooManyPaths`] if more than `limit` paths
/// exist, or [`PathEnumError::Irreducible`] for irreducible control flow.
pub fn enumerate_paths(
    cfg: &Cfg,
    program: &Program,
    limit: usize,
) -> Result<Vec<Vec<BlockId>>, PathEnumError> {
    let loops = natural_loops(cfg, program)?;
    let back_edges: BTreeSet<(BlockId, BlockId)> =
        loops.iter().flat_map(|l| l.tails.iter().map(move |t| (*t, l.header))).collect();
    let mut paths = Vec::new();
    let mut current = vec![cfg.entry()];
    dfs_paths(cfg, &back_edges, &mut current, &mut paths, limit)?;
    Ok(paths)
}

fn dfs_paths(
    cfg: &Cfg,
    back_edges: &BTreeSet<(BlockId, BlockId)>,
    current: &mut Vec<BlockId>,
    paths: &mut Vec<Vec<BlockId>>,
    limit: usize,
) -> Result<(), PathEnumError> {
    let b = *current.last().expect("path is non-empty");
    let succs: Vec<BlockId> =
        cfg.block(b).succs.iter().copied().filter(|s| !back_edges.contains(&(b, *s))).collect();
    if succs.is_empty() {
        if paths.len() >= limit {
            return Err(PathEnumError::TooManyPaths { limit });
        }
        paths.push(current.clone());
        return Ok(());
    }
    for s in succs {
        current.push(s);
        dfs_paths(cfg, back_edges, current, paths, limit)?;
        current.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::builder::ProgramBuilder;
    use crate::isa::regs::*;
    use crate::isa::Cond;

    #[test]
    fn dominators_of_diamond() {
        let p =
            assemble("t", "start: beq r1, r0, b\n nop\n beq r0, r0, j\nb: nop\nj: halt\n").unwrap();
        let cfg = Cfg::from_program(&p);
        let idom = immediate_dominators(&cfg);
        let entry = cfg.entry();
        let join = cfg.block_containing(p.symbol("j").unwrap()).unwrap();
        assert_eq!(idom[join.index()], Some(entry));
        assert!(dominates(&idom, entry, join));
        assert!(!dominates(&idom, join, entry));
    }

    #[test]
    fn simple_loop_detected_with_bound() {
        let p = assemble(
            "t",
            "start: li r1, 6\nloop: addi r1, r1, -1\n bne r1, r0, loop\n.bound loop, 6\n halt\n",
        )
        .unwrap();
        let cfg = Cfg::from_program(&p);
        let loops = natural_loops(&cfg, &p).unwrap();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].bound, Some(6));
        assert_eq!(loops[0].body.len(), 1); // single-block loop
        let factors = iteration_factors(&cfg, &loops, 1);
        assert_eq!(factors[loops[0].header.index()], 6);
    }

    #[test]
    fn nested_loops_multiply_factors() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        b.counted_loop(4, R1, |b| {
            b.counted_loop(5, R2, |b| {
                b.nop();
            });
        });
        let p = b.build().unwrap();
        let cfg = Cfg::from_program(&p);
        let loops = natural_loops(&cfg, &p).unwrap();
        assert_eq!(loops.len(), 2);
        let factors = iteration_factors(&cfg, &loops, 1);
        assert_eq!(factors.iter().max(), Some(&20));
    }

    #[test]
    fn two_arm_program_has_two_paths() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        let sel = b.data_space("sel", 1);
        b.li_addr(R1, sel);
        b.ld(R2, R1, 0);
        b.if_else(Cond::Eq, R2, R0, |b| b.counted_loop(3, R3, |b| b.nop()), |b| b.nop());
        let p = b.build().unwrap();
        let cfg = Cfg::from_program(&p);
        let paths = enumerate_paths(&cfg, &p, 100).unwrap();
        assert_eq!(paths.len(), 2);
        for path in &paths {
            assert_eq!(path[0], cfg.entry());
            assert!(cfg.block(*path.last().unwrap()).succs.is_empty());
        }
    }

    #[test]
    fn straight_line_single_path() {
        let p = assemble("t", "nop\nnop\nhalt\n").unwrap();
        let cfg = Cfg::from_program(&p);
        let paths = enumerate_paths(&cfg, &p, 10).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1);
    }

    #[test]
    fn loops_do_not_multiply_paths() {
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        b.counted_loop(100, R1, |b| b.nop());
        b.counted_loop(100, R2, |b| b.nop());
        let p = b.build().unwrap();
        let cfg = Cfg::from_program(&p);
        let paths = enumerate_paths(&cfg, &p, 10).unwrap();
        assert_eq!(paths.len(), 1, "loops collapse on paths");
    }

    #[test]
    fn path_limit_enforced() {
        // 2^4 = 16 paths from four sequential diamonds.
        let mut b = ProgramBuilder::new("t", 0x1000, 0x8000);
        for _ in 0..4 {
            b.if_else(Cond::Eq, R1, R0, |b| b.nop(), |b| b.nop());
        }
        let p = b.build().unwrap();
        let cfg = Cfg::from_program(&p);
        assert_eq!(enumerate_paths(&cfg, &p, 100).unwrap().len(), 16);
        assert_eq!(
            enumerate_paths(&cfg, &p, 7).unwrap_err(),
            PathEnumError::TooManyPaths { limit: 7 }
        );
    }

    #[test]
    fn default_bound_applies_when_unannotated() {
        let p = assemble("t", "start: li r1, 6\nloop: addi r1, r1, -1\n bne r1, r0, loop\n halt\n")
            .unwrap();
        let cfg = Cfg::from_program(&p);
        let loops = natural_loops(&cfg, &p).unwrap();
        assert_eq!(loops[0].bound, None);
        let factors = iteration_factors(&cfg, &loops, 42);
        assert_eq!(*factors.iter().max().unwrap(), 42);
    }

    #[test]
    fn error_display() {
        assert!(PathEnumError::TooManyPaths { limit: 3 }.to_string().contains('3'));
        assert!(PathEnumError::Irreducible.to_string().contains("irreducible"));
    }
}
