//! Property-based tests for the program substrate: random structured
//! programs must simulate deterministically, disassemble/reassemble to
//! equivalent programs, and attribute their traces completely.

use proptest::prelude::*;
use rtprogram::asm::{assemble, disassemble};
use rtprogram::builder::ProgramBuilder;
use rtprogram::cfg::Cfg;
use rtprogram::encoding::{decode_program, encode_program};
use rtprogram::isa::regs::*;
use rtprogram::isa::Cond;
use rtprogram::paths::{enumerate_paths, immediate_dominators, natural_loops};
use rtprogram::sim::Simulator;
use rtprogram::Program;

/// A tiny structured-program AST the strategy generates; rendered through
/// the builder so all control flow is well formed.
#[derive(Debug, Clone)]
enum Stmt {
    Arith(u8),
    LoadStore(u8),
    Loop(u8, Vec<Stmt>),
    If(Vec<Stmt>),
    IfElse(Vec<Stmt>, Vec<Stmt>),
}

fn arb_stmts(depth: u32) -> impl Strategy<Value = Vec<Stmt>> {
    let leaf = prop_oneof![(0u8..8).prop_map(Stmt::Arith), (0u8..16).prop_map(Stmt::LoadStore),];
    let stmt = leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            ((1u8..5), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(n, b)| Stmt::Loop(n, b)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Stmt::If),
            (prop::collection::vec(inner.clone(), 1..3), prop::collection::vec(inner, 1..3))
                .prop_map(|(t, e)| Stmt::IfElse(t, e)),
        ]
    });
    prop::collection::vec(stmt, 1..6)
}

/// Renders statements through the builder. Registers: r1 buffer pointer
/// base, r4/r5 scratch, r6 accumulator; loops use r8..r11 by depth.
fn emit(b: &mut ProgramBuilder, stmts: &[Stmt], buf: u64, depth: u8) {
    for stmt in stmts {
        match stmt {
            Stmt::Arith(k) => {
                b.addi(R6, R6, i32::from(*k) - 3);
                b.xor(R6, R6, R4);
            }
            Stmt::LoadStore(slot) => {
                b.li_addr(R1, buf + 4 * u64::from(*slot));
                b.ld(R4, R1, 0);
                b.add(R6, R6, R4);
                b.st(R6, R1, 0);
            }
            Stmt::Loop(n, body) => {
                if depth < 4 {
                    let counter = [R8, R9, R10, R11][usize::from(depth)];
                    b.counted_loop(u32::from(*n), counter, |b| {
                        emit(b, body, buf, depth + 1);
                    });
                }
            }
            Stmt::If(body) => {
                b.if_then(Cond::Ge, R6, R0, |b| emit(b, body, buf, depth));
            }
            Stmt::IfElse(t, e) => {
                b.if_else(Cond::Lt, R6, R0, |b| emit(b, t, buf, depth), |b| emit(b, e, buf, depth));
            }
        }
    }
}

fn build(stmts: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::new("prop", 0x1000, 0x0010_0000);
    let buf = b.data_words("buf", &(0..16).map(|i| i * 3 - 7).collect::<Vec<_>>());
    b.li(R6, 1);
    emit(&mut b, stmts, buf, 0);
    b.build().expect("structured programs are well formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulator is deterministic and always halts on structured
    /// programs.
    #[test]
    fn simulation_is_deterministic(stmts in arb_stmts(3)) {
        let p = build(&stmts);
        let mut a = Simulator::new(&p);
        let ta = a.run_to_halt_with_limit(2_000_000).expect("halts");
        let mut b = Simulator::new(&p);
        let tb = b.run_to_halt_with_limit(2_000_000).expect("halts");
        prop_assert_eq!(ta, tb);
    }

    /// Disassembling and reassembling preserves code, entry, data image
    /// and loop bounds.
    #[test]
    fn disassembly_round_trips(stmts in arb_stmts(3)) {
        let p = build(&stmts);
        let text = disassemble(&p);
        let q = assemble("prop", &text).expect("listing reassembles");
        prop_assert_eq!(p.code(), q.code());
        prop_assert_eq!(p.entry(), q.entry());
        prop_assert_eq!(p.loop_bounds(), q.loop_bounds());
        let p_data: Vec<(u64, &[i32])> =
            p.data_segments().iter().map(|s| (s.base, s.words.as_slice())).collect();
        let q_data: Vec<(u64, &[i32])> =
            q.data_segments().iter().map(|s| (s.base, s.words.as_slice())).collect();
        prop_assert_eq!(p_data, q_data);
        // And the reassembled program behaves identically.
        let mut sp = Simulator::new(&p);
        let tp = sp.run_to_halt_with_limit(2_000_000).expect("halts");
        let mut sq = Simulator::new(&q);
        let tq = sq.run_to_halt_with_limit(2_000_000).expect("halts");
        prop_assert_eq!(tp.accesses.len(), tq.accesses.len());
        prop_assert_eq!(tp.instructions, tq.instructions);
    }

    /// Binary encoding round-trips: decoding the encoded image yields a
    /// program with identical behaviour (wide `li`s leave pad nops, so
    /// compare execution outcomes rather than instruction streams).
    #[test]
    fn binary_encoding_round_trips(stmts in arb_stmts(3)) {
        let p = build(&stmts);
        let words = encode_program(&p);
        let decoded = decode_program(&words, p.code_base()).expect("decodes");
        prop_assert!(decoded.len() >= p.len());
        let q = Program::new(
            "decoded",
            p.code_base(),
            decoded,
            p.data_segments().to_vec(),
            p.entry(),
            Default::default(),
            Default::default(),
            vec![],
        )
        .expect("decoded image is valid");
        let mut sp = Simulator::new(&p);
        sp.run_to_halt_with_limit(2_000_000).expect("halts");
        let mut sq = Simulator::new(&q);
        sq.run_to_halt_with_limit(2_000_000).expect("halts");
        for r in 0..16u8 {
            let reg = rtprogram::Reg::new(r);
            prop_assert_eq!(sp.reg(reg), sq.reg(reg), "r{} differs", r);
        }
    }

    /// Every access of a trace is attributed to exactly one node
    /// execution, in order.
    #[test]
    fn attribution_is_a_partition(stmts in arb_stmts(3)) {
        let p = build(&stmts);
        let cfg = Cfg::from_program(&p);
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt_with_limit(2_000_000).expect("halts");
        let execs = cfg.attribute(&trace);
        let flattened: Vec<_> = execs.iter().flat_map(|e| e.accesses.iter().copied()).collect();
        prop_assert_eq!(flattened, trace.accesses.clone());
        for e in &execs {
            // Each execution's accesses belong to its block's pc range.
            let block = cfg.block(e.block);
            for a in &e.accesses {
                prop_assert!(block.contains(a.pc));
            }
        }
    }

    /// Structural invariants: the entry dominates every reachable block,
    /// loops have their declared bounds, and the executed block sequence
    /// is consistent with one enumerated path (per variant there is only
    /// one feasible path since branches depend on fixed data).
    #[test]
    fn structure_is_consistent(stmts in arb_stmts(2)) {
        let p = build(&stmts);
        let cfg = Cfg::from_program(&p);
        let idom = immediate_dominators(&cfg);
        let mut sim = Simulator::new(&p);
        let trace = sim.run_to_halt_with_limit(2_000_000).expect("halts");
        for e in cfg.attribute(&trace) {
            prop_assert!(
                rtprogram::paths::dominates(&idom, cfg.entry(), e.block),
                "executed block must be dominated by entry"
            );
        }
        let loops = natural_loops(&cfg, &p).expect("reducible");
        for l in &loops {
            prop_assert!(l.bound.is_some(), "builder loops carry bounds");
        }
        if let Ok(paths) = enumerate_paths(&cfg, &p, 4096) {
            prop_assert!(!paths.is_empty());
        }
    }
}
