//! Property-based tests for the CRPD analysis: invariants of the exact
//! useful-block sweep, ordering laws among the four approaches, and
//! monotonicity of the WCRT recurrence.

use proptest::prelude::*;

use crpd::{reload_lines, AnalyzedTask, CrpdApproach, TaskParams, UsefulTrace};
use rtcache::{CacheGeometry, Ciip, MemoryBlock};
use rtprogram::sim::{AccessKind, MemoryAccess, Trace};
use rtwcet::TimingModel;
use rtworkloads::synthetic::{synthetic_task, SyntheticSpec};

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    (0u32..=5, 1u32..=4).prop_map(|(set_log, ways)| {
        CacheGeometry::new(1 << set_log, ways, 16).expect("valid geometry")
    })
}

fn trace_of(blocks: &[u64], geometry: CacheGeometry) -> Trace {
    Trace {
        accesses: blocks
            .iter()
            .map(|b| MemoryAccess {
                pc: 0,
                addr: b << geometry.offset_bits(),
                kind: AccessKind::Load,
            })
            .collect(),
        instructions: blocks.len() as u64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The useful set at any point is a subset of the trace footprint,
    /// and the reload bound respects both the footprint and the cache.
    #[test]
    fn useful_blocks_are_within_footprint(geom in arb_geometry(),
                                          blocks in prop::collection::vec(0u64..96, 1..300)) {
        let t = UsefulTrace::from_trace(&trace_of(&blocks, geom), geom);
        let all = t.all_blocks();
        let (max, pos) = t.max_line_bound();
        prop_assert!(max <= all.line_bound());
        prop_assert!(max as u64 <= geom.total_lines());
        let useful = t.useful_at(pos);
        for b in useful.blocks() {
            prop_assert!(all.contains(b));
        }
        let mumbs = t.mumbs();
        prop_assert_eq!(mumbs.line_bound().min(geom.ways() as usize * geom.sets() as usize),
                        mumbs.line_bound());
    }

    /// `max_overlap_bound` is monotone in the preemptor footprint and
    /// bounded by `max_line_bound` and the preemptor's own occupancy.
    #[test]
    fn overlap_bound_laws(geom in arb_geometry(),
                          blocks in prop::collection::vec(0u64..96, 1..200),
                          mb1 in prop::collection::vec(0u64..96, 0..60),
                          extra in prop::collection::vec(0u64..96, 0..30)) {
        let t = UsefulTrace::from_trace(&trace_of(&blocks, geom), geom);
        let small = Ciip::from_blocks(geom, mb1.iter().map(|b| MemoryBlock::new(*b)));
        let big = small.union(&Ciip::from_blocks(geom, extra.iter().map(|b| MemoryBlock::new(*b))));
        let (with_small, _) = t.max_overlap_bound(&small);
        let (with_big, _) = t.max_overlap_bound(&big);
        prop_assert!(with_small <= with_big, "monotone in the preemptor footprint");
        prop_assert!(with_big <= t.max_line_bound().0);
        prop_assert!(with_small <= small.line_bound());
        prop_assert_eq!(t.max_overlap_bound(&Ciip::empty(geom)).0, 0);
    }

    /// Skyline pruning never changes the Eq. 3 maximum: the packed
    /// skyline search returns exactly `max_overlap_bound` for arbitrary
    /// traces and preemptor footprints (the tentpole's equivalence
    /// contract), and the pruned front is never larger than what it
    /// pruned from.
    #[test]
    fn skyline_preserves_max_overlap_bound(geom in arb_geometry(),
                                           blocks in prop::collection::vec(0u64..96, 1..300),
                                           mb in prop::collection::vec(0u64..96, 0..80)) {
        let t = UsefulTrace::from_trace(&trace_of(&blocks, geom), geom);
        prop_assert!(t.skyline_kept().is_some(), "small geometries always build a skyline");
        prop_assert!(t.skyline_kept() <= t.skyline_candidates());
        let ciip = Ciip::from_blocks(geom, mb.iter().map(|b| MemoryBlock::new(*b)));
        let packed = rtcache::PackedFootprint::from_ciip(&ciip).expect("ways <= 4 packs");
        prop_assert_eq!(t.max_packed_overlap(&packed), t.max_overlap_bound(&ciip).0);
    }

    /// A single-pass (no-reuse) trace has no useful blocks at all.
    #[test]
    fn streaming_traces_have_no_useful_blocks(geom in arb_geometry(), len in 1usize..200) {
        let blocks: Vec<u64> = (0..len as u64).collect(); // all distinct
        let t = UsefulTrace::from_trace(&trace_of(&blocks, geom), geom);
        prop_assert_eq!(t.max_line_bound().0, 0);
        prop_assert!(t.mumbs().is_empty());
    }

    /// A trace that fits its cache and repeats has every block useful at
    /// the loop point.
    #[test]
    fn resident_loops_are_fully_useful(set_log in 0u32..4, ways in 1u32..4, reps in 2usize..5) {
        let geom = CacheGeometry::new(1 << set_log, ways, 16).expect("valid geometry");
        // Exactly one block per way per set: fits precisely.
        let distinct: Vec<u64> = (0..(1u64 << set_log) * u64::from(ways)).collect();
        prop_assume!(!distinct.is_empty());
        let blocks: Vec<u64> =
            std::iter::repeat_n(distinct.clone(), reps).flatten().collect();
        let t = UsefulTrace::from_trace(&trace_of(&blocks, geom), geom);
        prop_assert_eq!(t.max_line_bound().0, distinct.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cross-approach ordering laws hold on random synthetic task pairs.
    #[test]
    fn approach_ordering_on_synthetic_pairs(seed in 0u64..1000, stagger in 0u64..8) {
        let geometry = CacheGeometry::new(64, 2, 16).expect("valid geometry");
        let model = TimingModel::default();
        let mut lo_spec = SyntheticSpec::new("lo", 0x0001_0000, 0x0010_0000);
        lo_spec.seed = seed;
        let mut hi_spec = SyntheticSpec::new("hi", 0x0002_0000, 0x0011_0000 + 0x100 * stagger);
        hi_spec.seed = seed.wrapping_mul(31);
        let lo = AnalyzedTask::analyze(
            &synthetic_task(&lo_spec),
            TaskParams { period: 1_000_000, priority: 3 },
            geometry,
            model,
        ).expect("analyzes");
        let hi = AnalyzedTask::analyze(
            &synthetic_task(&hi_spec),
            TaskParams { period: 100_000, priority: 2 },
            geometry,
            model,
        ).expect("analyzes");
        let a1 = reload_lines(CrpdApproach::AllPreemptingLines, &lo, &hi);
        let a2 = reload_lines(CrpdApproach::InterTask, &lo, &hi);
        let a3 = reload_lines(CrpdApproach::UsefulBlocks, &lo, &hi);
        let a4 = reload_lines(CrpdApproach::Combined, &lo, &hi);
        prop_assert!(a2 <= a1);
        prop_assert!(a4 <= a2);
        prop_assert!(a4 <= a3);
        prop_assert!(a3 <= lo.all_blocks().line_bound());
    }
}
