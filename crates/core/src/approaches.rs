//! The four CRPD estimation approaches compared in the paper's
//! experiments (§VIII) and the per-task-pair reload matrix.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::task::AnalyzedTask;
use crate::UsefulMethod;

/// How the number of cache lines reloaded after a preemption is bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrpdApproach {
    /// **Approach 1** (Busquets-Mataix et al. \[20\]): every cache line the
    /// preempting task uses is assumed reloaded.
    AllPreemptingLines,
    /// **Approach 2** (Tan & Mooney \[1\]): the CIIP overlap bound
    /// `S(Ma, Mb)` of Eq. 2 between the two tasks' full footprints.
    InterTask,
    /// **Approach 3** (Lee et al. \[21\]): the preempted task's useful
    /// memory blocks, ignoring the preempting task.
    UsefulBlocks,
    /// **Approach 4** (this paper, §V–VI): useful blocks of the preempted
    /// task intersected per set with the preempting task's per-path
    /// footprint, maximized over the preempting task's feasible paths
    /// (Eq. 4).
    Combined,
}

impl CrpdApproach {
    /// All four approaches, in the paper's order.
    pub const ALL: [CrpdApproach; 4] = [
        CrpdApproach::AllPreemptingLines,
        CrpdApproach::InterTask,
        CrpdApproach::UsefulBlocks,
        CrpdApproach::Combined,
    ];

    /// The paper's label ("App. 1" … "App. 4").
    pub fn label(self) -> &'static str {
        match self {
            CrpdApproach::AllPreemptingLines => "App. 1",
            CrpdApproach::InterTask => "App. 2",
            CrpdApproach::UsefulBlocks => "App. 3",
            CrpdApproach::Combined => "App. 4",
        }
    }
}

impl fmt::Display for CrpdApproach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Bounds the number of cache lines the `preempted` task must reload
/// after one preemption by `preempting` (one cell of the paper's
/// Table II).
///
/// # Panics
///
/// Panics if the two tasks were analyzed under different cache geometries.
pub fn reload_lines(
    approach: CrpdApproach,
    preempted: &AnalyzedTask,
    preempting: &AnalyzedTask,
) -> usize {
    reload_lines_with(approach, preempted, preempting, UsefulMethod::TraceExact)
}

/// [`reload_lines`] with an explicit useful-block method (the RMB/LMB
/// dataflow variant is looser; exposed for the tightness ablation).
///
/// # Panics
///
/// Panics if the two tasks were analyzed under different cache geometries,
/// or if the dataflow method is requested but fails to analyze the task's
/// program (it re-runs on stored traces, so this does not happen for
/// tasks produced by [`AnalyzedTask::analyze`]).
pub fn reload_lines_with(
    approach: CrpdApproach,
    preempted: &AnalyzedTask,
    preempting: &AnalyzedTask,
    method: UsefulMethod,
) -> usize {
    assert_eq!(
        preempted.geometry(),
        preempting.geometry(),
        "tasks analyzed under different cache geometries"
    );
    match approach {
        CrpdApproach::AllPreemptingLines => match preempting.all_blocks_packed() {
            // The packed artifact carries the line bound as a field.
            Some(packed) => packed.line_bound(),
            None => preempting.all_blocks().line_bound(),
        },
        CrpdApproach::InterTask => {
            match (preempted.all_blocks_packed(), preempting.all_blocks_packed()) {
                // The tree path also records per-set contributions into an
                // installed recorder; keep it when one is listening so the
                // overlap counters stay as rich as before.
                (Some(a), Some(b)) if !rtobs::enabled() => a.overlap_bound(b),
                _ => preempted.all_blocks().overlap_bound(preempting.all_blocks()),
            }
        }
        CrpdApproach::UsefulBlocks => match method {
            UsefulMethod::TraceExact => preempted.useful_line_bound(),
            UsefulMethod::Dataflow(df) => df.max_line_bound(),
        },
        CrpdApproach::Combined => {
            let per_path = |p: &crate::task::AnalyzedPath| match method {
                UsefulMethod::TraceExact => match p.packed.as_ref() {
                    Some(mb) => preempted.max_useful_overlap_packed(mb),
                    None => preempted.max_useful_overlap(&p.blocks),
                },
                UsefulMethod::Dataflow(df) => df.max_overlap_bound(&p.blocks),
            };
            preempting.paths().iter().map(per_path).max().unwrap_or(0)
        }
    }
}

/// The per-set terms behind the Combined (Approach 4) bound for one
/// preemption pair, for explainability: finds the worst (preempting
/// path, preempted path, execution point) combination — the one
/// [`reload_lines`] maximizes over — and returns the per-cache-set
/// contributions of `S(useful(t), m_b)` at that point, largest first
/// (ties broken by set index). The contributions sum to
/// `reload_lines(Combined, preempted, preempting)`.
///
/// Deterministic recomputation from the analysis artifacts, independent
/// of whether an `rtobs` recorder is installed.
///
/// # Panics
///
/// Panics if the two tasks were analyzed under different cache geometries.
pub fn combined_overlap_breakdown(
    preempted: &AnalyzedTask,
    preempting: &AnalyzedTask,
) -> Vec<rtcache::OverlapContribution> {
    assert_eq!(
        preempted.geometry(),
        preempting.geometry(),
        "tasks analyzed under different cache geometries"
    );
    type Pair<'a> = (usize, &'a crate::task::AnalyzedPath, &'a crate::task::AnalyzedPath);
    let mut best: Option<Pair<'_>> = None;
    for preempting_path in preempting.paths() {
        for own in preempted.paths() {
            // Pair selection runs on the packed kernel (same bound values
            // as the sweep); only the winning pair re-runs exactly below.
            let bound = match preempting_path.packed.as_ref() {
                Some(mb) => own.trace.max_packed_overlap(mb),
                None => own.trace.max_overlap_bound(&preempting_path.blocks).0,
            };
            // Strict `>` keeps the first maximum in path order, so the
            // result is deterministic.
            if best.is_none_or(|(b, ..)| bound > b) {
                best = Some((bound, own, preempting_path));
            }
        }
    }
    let Some((bound, own, preempting_path)) = best else { return Vec::new() };
    if bound == 0 {
        return Vec::new();
    }
    // The skyline discards execution points, so the exact sweep recovers
    // the maximizing position — for one pair instead of all of them —
    // keeping the per-set attribution bit-identical to the tree path.
    let (_, pos) = own.trace.max_overlap_bound(&preempting_path.blocks);
    let mut contributions = own.trace.useful_at(pos).overlap_contributions(&preempting_path.blocks);
    contributions.sort_by_key(|c| (std::cmp::Reverse(c.lines), c.set));
    contributions
}

/// A keyed cache of pairwise reload bounds: one cell per
/// `(approach, preempted fingerprint, preempting fingerprint)`.
///
/// Fingerprints ([`AnalyzedTask::fingerprint`]) content-address the
/// params-free [`crate::task::AnalyzedProgram`] artifacts, so a bound
/// computed once is reused across WCRT requests, parameter sweeps and
/// priority reassignments — only rows/columns of a task whose *program*
/// (or geometry/model) changed recompute. Scheduling parameters are not
/// part of the key: they decide *which* cells a matrix needs (who can
/// preempt whom), never a cell's value.
///
/// Thread-safe and deliberately not single-flight: cells are cheap
/// relative to full analysis and deterministic, so two threads racing on
/// one cell both compute the same value and the second insert is a no-op.
#[derive(Debug, Default)]
pub struct CrpdCellCache {
    cells: Mutex<HashMap<(CrpdApproach, u128, u128), usize>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CrpdCellCache {
    /// [`reload_lines`] through the cache: returns the memoized bound for
    /// the pair's content key, computing and inserting it on first use.
    ///
    /// Every lookup is recorded with `rtobs` as a `crpd_cell` stage
    /// lookup; only misses run (and record a span for) the actual
    /// computation.
    ///
    /// # Panics
    ///
    /// Panics if the two tasks were analyzed under different cache
    /// geometries.
    pub fn reload_lines(
        &self,
        approach: CrpdApproach,
        preempted: &AnalyzedTask,
        preempting: &AnalyzedTask,
    ) -> usize {
        let key = (approach, preempted.fingerprint(), preempting.fingerprint());
        if let Some(&lines) = self.cells.lock().expect("crpd cell cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            rtobs::record_stage_lookup("crpd_cell", true);
            return lines;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        rtobs::record_stage_lookup("crpd_cell", false);
        let lines = {
            let _span = rtobs::span_labeled("crpd", || {
                format!("{approach} {}<-{}", preempted.name(), preempting.name())
            });
            reload_lines(approach, preempted, preempting)
        };
        self.cells.lock().expect("crpd cell cache lock").insert(key, lines);
        lines
    }

    /// Number of lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute the bound.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cells currently held.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("crpd cell cache lock").len()
    }

    /// `true` if no cell has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reload-line matrix of a task set under one approach:
/// `lines[i][j]` is the bound for task `i` preempted by task `j`
/// (`usize::MAX` is never used; cells where `j` cannot preempt `i` hold
/// zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrpdMatrix {
    /// The approach the matrix was computed under.
    pub approach: CrpdApproach,
    /// `lines[i][j]`: reload bound for task `i` preempted by task `j`.
    pub lines: Vec<Vec<usize>>,
}

impl CrpdMatrix {
    /// Computes the matrix for `tasks` (any order); only pairs where
    /// `tasks[j]` has higher priority than `tasks[i]` get a non-zero
    /// bound.
    ///
    /// Accepts any slice of task-like values (`&[AnalyzedTask]`,
    /// `&[Arc<AnalyzedTask>]`, …) so callers that share analysis artifacts
    /// across threads need not clone them.
    ///
    /// All `n²` preemption-pair cells are independent, so they fan out
    /// over the current [`rtpar`] pool; the flat cell vector is folded
    /// back into rows in index order, keeping the matrix byte-identical
    /// at any thread count.
    pub fn compute<T: Borrow<AnalyzedTask> + Sync>(approach: CrpdApproach, tasks: &[T]) -> Self {
        Self::compute_inner(approach, tasks, None)
    }

    /// [`compute`](Self::compute) through a [`CrpdCellCache`]: cells whose
    /// `(approach, preempted, preempting)` content key was already bounded
    /// — by an earlier matrix, another request, or a different parameter
    /// binding of the same programs — are served from the cache; only
    /// fresh pairs run the pairwise analysis. The resulting matrix is
    /// byte-identical to an uncached [`compute`](Self::compute).
    pub fn compute_with<T: Borrow<AnalyzedTask> + Sync>(
        approach: CrpdApproach,
        tasks: &[T],
        cells: &CrpdCellCache,
    ) -> Self {
        Self::compute_inner(approach, tasks, Some(cells))
    }

    fn compute_inner<T: Borrow<AnalyzedTask> + Sync>(
        approach: CrpdApproach,
        tasks: &[T],
        cache: Option<&CrpdCellCache>,
    ) -> Self {
        let _span = rtobs::span_labeled("crpd", || format!("{approach} matrix"));
        let n = tasks.len();
        let cells = rtpar::par_map_range(n * n, |cell| {
            let (i, j) = (cell / n, cell % n);
            let (ti, tj) = (tasks[i].borrow(), tasks[j].borrow());
            if tj.params().priority < ti.params().priority {
                let lines = match cache {
                    Some(cache) => cache.reload_lines(approach, ti, tj),
                    None => {
                        let _span = rtobs::span_labeled("crpd", || {
                            format!("{approach} {}<-{}", ti.name(), tj.name())
                        });
                        reload_lines(approach, ti, tj)
                    }
                };
                rtobs::record_crpd_cell(approach.label(), i, j, lines as u64);
                lines
            } else {
                0
            }
        });
        let mut cells = cells.into_iter();
        let lines = (0..n).map(|_| cells.by_ref().take(n).collect()).collect();
        CrpdMatrix { approach, lines }
    }

    /// The bound for task `i` preempted by task `j`.
    pub fn reload(&self, i: usize, j: usize) -> usize {
        self.lines[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskParams;
    use rtcache::CacheGeometry;
    use rtwcet::TimingModel;

    fn analyze(p: &rtprogram::Program, priority: u32) -> AnalyzedTask {
        AnalyzedTask::analyze(
            p,
            TaskParams { period: 1_000_000, priority },
            CacheGeometry::paper_l1(),
            TimingModel::default(),
        )
        .unwrap()
    }

    fn small_pair() -> (AnalyzedTask, AnalyzedTask) {
        let ed = analyze(&rtworkloads::edge_detection_with_dim(10), 3);
        let mr = analyze(&rtworkloads::mobile_robot(), 2);
        (ed, mr)
    }

    #[test]
    fn approach4_is_tightest() {
        let (ed, mr) = small_pair();
        let a1 = reload_lines(CrpdApproach::AllPreemptingLines, &ed, &mr);
        let a2 = reload_lines(CrpdApproach::InterTask, &ed, &mr);
        let a3 = reload_lines(CrpdApproach::UsefulBlocks, &ed, &mr);
        let a4 = reload_lines(CrpdApproach::Combined, &ed, &mr);
        assert!(a4 <= a2, "combined must not exceed the inter-task bound ({a4} vs {a2})");
        assert!(a4 <= a3, "combined must not exceed the useful-block bound ({a4} vs {a3})");
        assert!(a1 > 0 && a2 > 0 && a3 > 0);
    }

    #[test]
    fn approach1_depends_only_on_preemptor() {
        let (ed, mr) = small_pair();
        let ofdm = analyze(&rtworkloads::ofdm_transmitter_with_points(16), 4);
        let by_mr_1 = reload_lines(CrpdApproach::AllPreemptingLines, &ed, &mr);
        let by_mr_2 = reload_lines(CrpdApproach::AllPreemptingLines, &ofdm, &mr);
        assert_eq!(by_mr_1, by_mr_2);
    }

    #[test]
    fn approach3_depends_only_on_preempted() {
        let (ed, mr) = small_pair();
        let ofdm = analyze(&rtworkloads::ofdm_transmitter_with_points(16), 4);
        let a = reload_lines(CrpdApproach::UsefulBlocks, &ofdm, &mr);
        let b = reload_lines(CrpdApproach::UsefulBlocks, &ofdm, &ed);
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_zeroes_impossible_preemptions() {
        let (ed, mr) = small_pair();
        let tasks = vec![mr, ed]; // mr prio 2 (higher), ed prio 3
        let m = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
        assert_eq!(m.reload(0, 1), 0, "ED cannot preempt MR");
        assert_eq!(m.reload(0, 0), 0);
        assert_eq!(m.reload(1, 1), 0);
        // MR can preempt ED; with overlapping footprints the bound is > 0.
        assert!(m.reload(1, 0) > 0);
    }

    #[test]
    fn combined_breakdown_sums_to_the_combined_bound() {
        let (ed, mr) = small_pair();
        let bound = reload_lines(CrpdApproach::Combined, &ed, &mr);
        let contributions = combined_overlap_breakdown(&ed, &mr);
        let total: usize = contributions.iter().map(|c| c.lines).sum();
        assert_eq!(total, bound, "per-set contributions must sum to the Eq. 4 bound");
        assert!(bound > 0, "this pair overlaps");
        // Sorted largest-first, ties by set index.
        for pair in contributions.windows(2) {
            assert!(
                pair[0].lines > pair[1].lines
                    || (pair[0].lines == pair[1].lines && pair[0].set < pair[1].set)
            );
        }
    }

    #[test]
    fn matrix_cells_are_recorded_per_pair() {
        let _serial = crate::obs_test_lock();
        let (ed, mr) = small_pair(); // ed prio 3, mr prio 2
        let tasks = vec![mr, ed];
        let session = rtobs::begin();
        let m = CrpdMatrix::compute(CrpdApproach::InterTask, &tasks);
        let counters = session.recorder().counters();
        drop(session);
        let cell = counters
            .crpd_cells
            .get(&("App. 2".to_string(), 1, 0))
            .expect("the one feasible preemption pair is recorded");
        assert_eq!(*cell, m.reload(1, 0) as u64);
        assert!(!counters.crpd_cells.contains_key(&("App. 2".to_string(), 0, 1)));
    }

    #[test]
    fn cell_cache_reuses_bounds_across_matrices_and_rebindings() {
        let (ed, mr) = small_pair(); // one feasible pair: ed preempted by mr
        let cache = CrpdCellCache::default();
        let tasks = vec![mr, ed];
        let m1 = CrpdMatrix::compute_with(CrpdApproach::Combined, &tasks, &cache);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        let m2 = CrpdMatrix::compute_with(CrpdApproach::Combined, &tasks, &cache);
        assert_eq!(m1, m2);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        // A param-only rebinding keeps the same preemption structure and
        // content keys, so the whole matrix is served from the cache.
        let rebound: Vec<_> = tasks
            .iter()
            .map(|t| t.rebind(TaskParams { period: 7_777, priority: t.params().priority }))
            .collect();
        let m3 = CrpdMatrix::compute_with(CrpdApproach::Combined, &rebound, &cache);
        assert_eq!(m1, m3);
        assert_eq!(cache.misses(), 1, "rebinding params must not recompute any cell");
        // A different approach keys different cells…
        CrpdMatrix::compute_with(CrpdApproach::InterTask, &tasks, &cache);
        assert_eq!((cache.misses(), cache.len()), (2, 2));
        // …and the cached matrix matches the uncached one byte-for-byte.
        assert_eq!(CrpdMatrix::compute(CrpdApproach::Combined, &tasks), m1);
    }

    /// The pre-PackedFootprint formulation of every approach, straight
    /// off the tree-structured artifacts — the reference side of the
    /// packed/tree differential tests.
    fn tree_reload_lines(
        approach: CrpdApproach,
        preempted: &AnalyzedTask,
        preempting: &AnalyzedTask,
    ) -> usize {
        match approach {
            CrpdApproach::AllPreemptingLines => preempting.all_blocks().line_bound(),
            CrpdApproach::InterTask => {
                preempted.all_blocks().overlap_bound(preempting.all_blocks())
            }
            CrpdApproach::UsefulBlocks => {
                preempted.paths().iter().map(|p| p.trace.max_line_bound().0).max().unwrap_or(0)
            }
            CrpdApproach::Combined => preempting
                .paths()
                .iter()
                .map(|pp| {
                    preempted
                        .paths()
                        .iter()
                        .map(|own| own.trace.max_overlap_bound(&pp.blocks).0)
                        .max()
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0),
        }
    }

    #[test]
    fn packed_pipeline_matches_tree_reference_on_workload_suite() {
        let tasks = [
            analyze(&rtworkloads::adpcm_decoder(), 1),
            analyze(&rtworkloads::edge_detection_with_dim(10), 3),
            analyze(&rtworkloads::mobile_robot(), 2),
            analyze(&rtworkloads::ofdm_transmitter_with_points(16), 4),
        ];
        for preempted in &tasks {
            for preempting in &tasks {
                for approach in CrpdApproach::ALL {
                    assert_eq!(
                        reload_lines(approach, preempted, preempting),
                        tree_reload_lines(approach, preempted, preempting),
                        "{approach}: {} <- {}",
                        preempted.name(),
                        preempting.name()
                    );
                }
            }
        }
    }

    #[test]
    fn reload_lines_is_unchanged_by_an_installed_recorder() {
        // The recorder-on path takes the tree kernel (for per-set
        // counters) while the recorder-off path takes the packed kernel,
        // so this doubles as a packed/tree differential check.
        let _serial = crate::obs_test_lock();
        let (ed, mr) = small_pair();
        let plain: Vec<usize> =
            CrpdApproach::ALL.iter().map(|a| reload_lines(*a, &ed, &mr)).collect();
        let session = rtobs::begin();
        let recorded: Vec<usize> =
            CrpdApproach::ALL.iter().map(|a| reload_lines(*a, &ed, &mr)).collect();
        drop(session);
        assert_eq!(plain, recorded);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(CrpdApproach::AllPreemptingLines.to_string(), "App. 1");
        assert_eq!(CrpdApproach::Combined.label(), "App. 4");
        assert_eq!(CrpdApproach::ALL.len(), 4);
    }

    #[test]
    fn unpackable_geometry_falls_back_to_the_tree_walk() {
        // A 300-way geometry cannot pack (saturated counts exceed a byte),
        // so `PackedFootprint::from_ciip` declines and every approach must
        // take the exact tree-structured path. The packed/tree parity
        // check degenerates gracefully: there is no packed side, and the
        // tree side still agrees with the reference formulation.
        use rtworkloads::synthetic::{synthetic_task, SyntheticSpec};
        let g = CacheGeometry::new(4, 300, 16).unwrap();
        assert!(g.ways() > 255, "the fallback only triggers for L > 255");
        let mk = |name: &str, prio: u32, code: u64, data: u64| {
            let mut s = SyntheticSpec::new(name, code, data);
            s.data_words = 128;
            AnalyzedTask::analyze(
                &synthetic_task(&s),
                TaskParams { period: 1_000_000 * u64::from(prio), priority: prio },
                g,
                TimingModel::default(),
            )
            .unwrap()
        };
        let lo = mk("wide-lo", 2, 0x0001_0000, 0x0010_0000);
        let hi = mk("wide-hi", 1, 0x0001_4000, 0x0010_4000);
        // No artifact packed: union and per-path footprints all fell back.
        for t in [&lo, &hi] {
            assert!(t.all_blocks_packed().is_none(), "{}: L > 255 must not pack", t.name());
            assert!(t.paths().iter().all(|p| p.packed.is_none()));
        }
        for approach in CrpdApproach::ALL {
            let bound = reload_lines(approach, &lo, &hi);
            assert_eq!(
                bound,
                tree_reload_lines(approach, &lo, &hi),
                "{approach}: tree fallback must match the reference formulation"
            );
            assert_eq!(bound, reload_lines(approach, &lo, &hi), "fallback is deterministic");
        }
        // The tightest bound ordering holds on the fallback path too.
        let a4 = reload_lines(CrpdApproach::Combined, &lo, &hi);
        assert!(a4 <= reload_lines(CrpdApproach::InterTask, &lo, &hi));
        assert!(a4 <= reload_lines(CrpdApproach::UsefulBlocks, &lo, &hi));
    }

    #[test]
    fn disjoint_tasks_have_zero_combined_cost() {
        // Build two synthetic tasks whose data AND code live in disjoint
        // index ranges; approaches 2 and 4 must report zero (the paper's
        // §II counter-example to Lee's assumption), approaches 1 and 3
        // stay positive.
        use rtworkloads::synthetic::{synthetic_task, SyntheticSpec};
        let g = CacheGeometry::new(512, 4, 16).unwrap();
        let mut lo = SyntheticSpec::new("lo", 0x0001_0000, 0x0010_0000);
        lo.data_words = 256;
        lo.two_paths = false;
        // hi shares neither code nor data indices: offset by 0x1000
        // within the 8 KiB index period and keep footprints < 4 KiB.
        let mut hi = SyntheticSpec::new("hi", 0x0001_1000, 0x0010_1000);
        hi.data_words = 256;
        hi.two_paths = false;
        let t_lo = AnalyzedTask::analyze(
            &synthetic_task(&lo),
            TaskParams { period: 1_000_000, priority: 2 },
            g,
            TimingModel::default(),
        )
        .unwrap();
        let t_hi = AnalyzedTask::analyze(
            &synthetic_task(&hi),
            TaskParams { period: 2_000_000, priority: 3 },
            g,
            TimingModel::default(),
        )
        .unwrap();
        assert_eq!(reload_lines(CrpdApproach::InterTask, &t_hi, &t_lo), 0);
        assert_eq!(reload_lines(CrpdApproach::Combined, &t_hi, &t_lo), 0);
        assert!(reload_lines(CrpdApproach::AllPreemptingLines, &t_hi, &t_lo) > 0);
        assert!(reload_lines(CrpdApproach::UsefulBlocks, &t_hi, &t_lo) > 0);
    }
}
