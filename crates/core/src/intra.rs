//! Intra-task cache access analysis: *useful memory blocks* (paper §IV,
//! after Lee et al. \[21\]).
//!
//! A memory block of the preempted task can only cause reload overhead if
//! it is in the cache at the preemption point **and** is referenced again
//! afterwards while it would still have been resident (otherwise it would
//! have been evicted anyway and the preemption adds nothing). Two
//! implementations are provided:
//!
//! * [`UsefulTrace`] — an **exact** per-execution-point computation over a
//!   concrete memory trace. The key observation: under LRU, a block is
//!   useful at point `t` exactly when its next access after `t` is a hit
//!   in the unpreempted run (a hit at `t'` implies residency over the
//!   whole interval, and a next-access miss means the block would have
//!   been evicted regardless). One forward cache simulation plus one
//!   backward sweep yields `useful(t)` incrementally for every instruction
//!   boundary.
//! * [`dataflow_useful`] — the RMB/LMB abstract-interpretation formulation
//!   of Lee's paper: reaching memory blocks (forward may-analysis of LRU
//!   ages) intersected with living memory blocks (backward may-analysis of
//!   first-`L`-distinct future references), evaluated at basic-block
//!   entries. It over-approximates the exact sweep and is kept for
//!   fidelity to \[21\] and for tightness ablations.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use rtcache::{CacheGeometry, CacheSim, Ciip, MemoryBlock, PackedFootprint, SetIndex};
use rtprogram::cfg::{BlockId, Cfg};
use rtprogram::sim::Trace;
use rtprogram::Program;

use crate::AnalysisError;

/// Process-wide skyline pruning totals, independent of any `rtobs`
/// session so that long-running servers can expose pruning
/// effectiveness without an ambient recorder. Write-only from analysis
/// code; read by [`skyline_stats`].
static SKYLINE_KEPT: AtomicU64 = AtomicU64::new(0);
static SKYLINE_PRUNED: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(kept, pruned)` totals over every useful-trace skyline
/// built since startup (the `ciip_pack` stage). Monotonic counters for
/// metrics exposition; never read back by the analysis itself.
pub fn skyline_stats() -> (u64, u64) {
    (SKYLINE_KEPT.load(Ordering::Relaxed), SKYLINE_PRUNED.load(Ordering::Relaxed))
}

/// Safety valve for pathological traces: beyond this many surviving
/// Pareto points the skyline is abandoned (the exact sweep remains as
/// fallback) so construction cost stays bounded.
const MAX_SKYLINE_POINTS: usize = 1024;

/// Upper bound on candidate peaks examined before giving up, bounding
/// worst-case build cost at `MAX_SKYLINE_CANDIDATES * MAX_SKYLINE_POINTS`
/// byte-vector comparisons.
const MAX_SKYLINE_CANDIDATES: usize = 1 << 16;

/// The dominance-pruned Pareto front of a trace's per-point saturated
/// useful-count vectors: every execution point's packed vector is
/// element-wise `<=` some retained point, so maximizing any monotone
/// per-set objective (Eq. 3's `S(useful(t), Mb)` for *every* preemptor
/// `Mb`) over the retained points equals maximizing over all points.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Skyline {
    /// Pareto-maximal packed vectors, in (deterministic) build order.
    points: Vec<PackedFootprint>,
    /// Candidate peaks the build examined, including pruned ones.
    candidates: usize,
}

/// A memory trace reduced to block granularity with per-access hit flags
/// from a cold-cache LRU simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsefulTrace {
    geometry: CacheGeometry,
    /// `(block, next-run-is-hit)` per access, in program order.
    accesses: Vec<(MemoryBlock, bool)>,
    /// Dominance-pruned packed vectors for the fast Eq. 3 maximum;
    /// `None` when the geometry does not pack (`L > 255`) or the trace
    /// blew the skyline size caps — callers fall back to the exact
    /// sweep. A deterministic function of `(geometry, accesses)`.
    skyline: Option<Skyline>,
}

impl UsefulTrace {
    /// Simulates `trace` against a cold cache and records each access's
    /// hit/miss outcome. With an `rtobs` recorder installed, the cold
    /// simulation's per-set hit/miss/eviction tallies are flushed into
    /// the recorder.
    pub fn from_trace(trace: &Trace, geometry: CacheGeometry) -> Self {
        let mut cache = CacheSim::new(geometry);
        let accesses = trace
            .accesses
            .iter()
            .map(|a| {
                let block = geometry.block_of_addr(a.addr);
                (block, cache.access_block(block).is_hit())
            })
            .collect();
        cache.flush_set_stats();
        let mut trace = UsefulTrace { geometry, accesses, skyline: None };
        trace.skyline = trace.build_skyline();
        trace
    }

    /// Rebuilds a trace from an already-classified access sequence, as
    /// produced by [`UsefulTrace::accesses`] on another node. The
    /// skyline is a deterministic function of `(geometry, accesses)`,
    /// so the result is indistinguishable from the [`from_trace`]
    /// original — the contract behind shipping artifacts between
    /// cluster peers without shipping programs.
    ///
    /// [`from_trace`]: UsefulTrace::from_trace
    pub fn from_accesses(geometry: CacheGeometry, accesses: Vec<(MemoryBlock, bool)>) -> Self {
        let mut trace = UsefulTrace { geometry, accesses, skyline: None };
        trace.skyline = trace.build_skyline();
        trace
    }

    /// The classified access sequence: `(block, hit)` in execution
    /// order. Together with the geometry this is the trace's entire
    /// identity (see [`UsefulTrace::from_accesses`]).
    pub fn accesses(&self) -> &[(MemoryBlock, bool)] {
        &self.accesses
    }

    /// Builds the dominance-pruned skyline of the trace's per-point
    /// saturated useful-count vectors in one extra backward sweep.
    ///
    /// Only "peaks" — vectors about to lose a line, plus the final state
    /// — are candidates: between two peaks the vector only grows, so
    /// every interior point is dominated by the peak that follows it in
    /// sweep order. Each candidate is then checked against the retained
    /// front (with a line-bound-sum prefilter) and dominated retained
    /// points are evicted in turn.
    fn build_skyline(&self) -> Option<Skyline> {
        let _span = rtobs::span("ciip_pack");
        let ways = usize::try_from(self.geometry.ways()).ok().filter(|w| *w <= 255)?;
        let mut current = vec![0u8; self.geometry.sets() as usize];
        let mut sum = 0usize;
        // `true` while `current` has grown since the last emitted peak.
        let mut dirty = false;
        let mut candidates = 0usize;
        let mut points: Vec<PackedFootprint> = Vec::new();
        // Line bounds of `points`, kept alongside as the cheap dominance
        // prefilter (element-wise dominance implies sum dominance).
        let mut sums: Vec<usize> = Vec::new();
        let mut overflow = false;
        let mut emit = |current: &[u8], sum: usize, candidates: &mut usize| {
            *candidates += 1;
            if *candidates > MAX_SKYLINE_CANDIDATES {
                return false;
            }
            let dominated = points.iter().zip(&sums).any(|(p, s)| {
                *s >= sum && p.counts().iter().zip(current).all(|(have, new)| have >= new)
            });
            if dominated {
                return true;
            }
            let mut i = 0;
            while i < points.len() {
                let beaten = sums[i] <= sum
                    && points[i].counts().iter().zip(current).all(|(have, new)| have <= new);
                if beaten {
                    points.swap_remove(i);
                    sums.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            let indexed =
                current.iter().enumerate().map(|(r, c)| (SetIndex::new(r as u32), *c as usize));
            points.push(
                PackedFootprint::from_counts(self.geometry, indexed)
                    .expect("ways checked to fit u8 above"),
            );
            sums.push(sum);
            points.len() <= MAX_SKYLINE_POINTS
        };
        self.sweep(|_pos, set, old, new| {
            if overflow {
                return;
            }
            let sold = old.min(ways);
            let snew = new.min(ways);
            if snew == sold {
                return;
            }
            if snew > sold {
                dirty = true;
            } else if dirty {
                // About to shrink a grown vector: it is a Pareto peak.
                overflow = !emit(&current, sum, &mut candidates);
                dirty = false;
            }
            current[set.as_usize()] = snew as u8;
            sum = sum + snew - sold;
        });
        if !overflow && dirty {
            overflow = !emit(&current, sum, &mut candidates);
        }
        if overflow {
            return None;
        }
        let kept = points.len();
        let pruned = candidates - kept;
        SKYLINE_KEPT.fetch_add(kept as u64, Ordering::Relaxed);
        SKYLINE_PRUNED.fetch_add(pruned as u64, Ordering::Relaxed);
        if rtobs::enabled() {
            rtobs::record_skyline_points(kept as u64, pruned as u64);
        }
        Some(Skyline { points, candidates })
    }

    /// The geometry the trace was simulated under.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of accesses (and hence execution points: one before each
    /// access).
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The distinct memory blocks of the whole trace (the task's `M`).
    pub fn all_blocks(&self) -> Ciip {
        Ciip::from_blocks(self.geometry, self.accesses.iter().map(|(b, _)| *b))
    }

    /// Runs the backward sweep, reporting `(position, set, old, new)`
    /// per-set useful-count changes to `visit`; `visit` is called after
    /// each access position's update, at which point the maintained counts
    /// describe `useful(position)` (the state just before that access
    /// executes).
    fn sweep(&self, mut visit: impl FnMut(usize, SetIndex, usize, usize)) {
        // BTreeMaps, not HashMaps: everything observable about the sweep
        // must be a pure function of the trace so that repeated analyses of
        // one program produce byte-identical artifacts (the server memoizes
        // and compares them across requests).
        let mut status: BTreeMap<MemoryBlock, bool> = BTreeMap::new();
        let mut counts: BTreeMap<SetIndex, usize> = BTreeMap::new();
        for (pos, (block, hit)) in self.accesses.iter().enumerate().rev() {
            let set = self.geometry.index_of_block(*block);
            let was = status.insert(*block, *hit).unwrap_or(false);
            if was != *hit {
                let count = counts.entry(set).or_insert(0);
                let old = *count;
                if *hit {
                    *count += 1;
                } else {
                    *count -= 1;
                }
                visit(pos, set, old, *count);
            } else {
                let current = counts.get(&set).copied().unwrap_or(0);
                visit(pos, set, current, current);
            }
        }
    }

    /// The maximum over all execution points of the reload bound
    /// `Σ_r min(|useful_r|, L)` — Approach 3's per-task count for this
    /// path — together with the position where it occurs.
    pub fn max_line_bound(&self) -> (usize, usize) {
        let ways = self.geometry.ways() as usize;
        let mut total = 0usize;
        let mut best = (0usize, 0usize);
        self.sweep(|pos, _set, old, new| {
            total = total - old.min(ways) + new.min(ways);
            if total > best.0 {
                best = (total, pos);
            }
        });
        best
    }

    /// The maximum over all execution points of the inter-task bound
    /// `S(useful(t), Mb)` of Eq. 3/4 against a preempting footprint `mb` —
    /// the combined approach's per-path count.
    ///
    /// # Panics
    ///
    /// Panics if `mb` was built for a different geometry.
    pub fn max_overlap_bound(&self, mb: &Ciip) -> (usize, usize) {
        assert_eq!(self.geometry, mb.geometry(), "geometry mismatch");
        let ways = self.geometry.ways() as usize;
        let mut total = 0usize;
        let mut best = (0usize, 0usize);
        self.sweep(|pos, set, old, new| {
            let limit = mb.subset_len(set).min(ways);
            total = total - old.min(limit) + new.min(limit);
            if total > best.0 {
                best = (total, pos);
            }
        });
        best
    }

    /// The maximum Eq. 3/4 bound `max_t S(useful(t), mb)` against a
    /// packed preempting footprint — identical to
    /// [`UsefulTrace::max_overlap_bound`]`.0` for the footprint `mb` was
    /// packed from, but evaluated over the dominance-pruned skyline
    /// instead of the full backward sweep. Traces without a skyline (the
    /// build blew its size caps) run the exact sweep against `mb`'s
    /// saturated per-set counts, which is all the sweep ever reads.
    ///
    /// Note the skyline carries no execution points: callers needing the
    /// maximizing *position* (per-set attribution, MUMBS extraction) must
    /// use [`UsefulTrace::max_overlap_bound`].
    ///
    /// # Panics
    ///
    /// Panics if `mb` was packed for a different geometry.
    pub fn max_packed_overlap(&self, mb: &PackedFootprint) -> usize {
        assert_eq!(self.geometry, mb.geometry(), "geometry mismatch");
        if let Some(skyline) = &self.skyline {
            return skyline.points.iter().map(|p| p.overlap_bound(mb)).max().unwrap_or(0);
        }
        // Exact fallback: same arithmetic as `max_overlap_bound`, whose
        // per-set limit `min(|m̂b,r|, L)` is exactly `mb`'s stored count.
        let mut total = 0usize;
        let mut best = 0usize;
        self.sweep(|_pos, set, old, new| {
            let limit = mb.count(set) as usize;
            total = total - old.min(limit) + new.min(limit);
            best = best.max(total);
        });
        best
    }

    /// Number of Pareto-maximal points the skyline retained, if one was
    /// built.
    pub fn skyline_kept(&self) -> Option<usize> {
        self.skyline.as_ref().map(|s| s.points.len())
    }

    /// Number of candidate peaks the skyline build examined (kept +
    /// pruned), if one was built.
    pub fn skyline_candidates(&self) -> Option<usize> {
        self.skyline.as_ref().map(|s| s.candidates)
    }

    /// Materializes the useful-block set at execution point `pos` (just
    /// before access `pos` executes).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn useful_at(&self, pos: usize) -> Ciip {
        assert!(pos < self.accesses.len(), "execution point out of range");
        // Replay the backward sweep down to `pos` and collect the set. The
        // ordered map keeps the Ciip input order — and hence every
        // downstream artifact — independent of hasher state.
        let mut status: BTreeMap<MemoryBlock, bool> = BTreeMap::new();
        for (block, hit) in self.accesses.iter().skip(pos).rev() {
            status.insert(*block, *hit);
        }
        Ciip::from_blocks(
            self.geometry,
            status.iter().filter(|(_, useful)| **useful).map(|(b, _)| *b),
        )
    }

    /// The Maximum Useful Memory Blocks Set of this path (paper
    /// Definition 4): the useful set at the execution point maximizing the
    /// reload bound.
    pub fn mumbs(&self) -> Ciip {
        if self.accesses.is_empty() {
            return Ciip::empty(self.geometry);
        }
        let (_, pos) = self.max_line_bound();
        self.useful_at(pos)
    }
}

// ---------------------------------------------------------------------------
// RMB/LMB dataflow formulation (Lee [21]), kept for fidelity and ablation.
// ---------------------------------------------------------------------------

/// An abstract LRU cache state: block → minimal possible age (RMB) or
/// minimal possible future-distinctness rank (LMB). Blocks at age/rank
/// `>= L` are dropped.
type AbstractState = BTreeMap<MemoryBlock, u8>;

/// The single-reference LRU update shared by the forward (RMB) and
/// backward (LMB) transfer functions.
fn lru_update(state: &mut AbstractState, block: MemoryBlock, geometry: CacheGeometry) {
    let ways = geometry.ways() as u8;
    let set = geometry.index_of_block(block);
    let old_age = state.get(&block).copied();
    let mut evicted = Vec::new();
    for (b, age) in state.iter_mut() {
        if *b == block || geometry.index_of_block(*b) != set {
            continue;
        }
        if old_age.is_none_or(|oa| *age < oa) {
            *age += 1;
            if *age >= ways {
                evicted.push(*b);
            }
        }
    }
    for b in evicted {
        state.remove(&b);
    }
    state.insert(block, 0);
}

/// Pointwise-minimum join (may analysis).
fn join(into: &mut AbstractState, from: &AbstractState) -> bool {
    let mut changed = false;
    for (b, age) in from {
        match into.get_mut(b) {
            Some(cur) if *cur <= *age => {}
            Some(cur) => {
                *cur = *age;
                changed = true;
            }
            None => {
                into.insert(*b, *age);
                changed = true;
            }
        }
    }
    changed
}

/// Per-node reference profile: the distinct block-reference sequences
/// observed across all executions of the node in all variants.
#[derive(Debug, Clone, Default)]
struct NodeSequences {
    seqs: BTreeSet<Vec<MemoryBlock>>,
}

/// The result of the RMB/LMB dataflow analysis: one useful-block set per
/// reachable basic-block entry.
#[derive(Debug, Clone)]
pub struct DataflowUseful {
    geometry: CacheGeometry,
    /// `(block entry, RMB ∩ LMB)` per executed node.
    pub points: Vec<(BlockId, Ciip)>,
}

impl DataflowUseful {
    /// Maximum over node entries of the reload bound `Σ_r min(|u_r|, L)`.
    pub fn max_line_bound(&self) -> usize {
        self.points.iter().map(|(_, c)| c.line_bound()).max().unwrap_or(0)
    }

    /// Maximum over node entries of `S(u, mb)` (Eq. 3).
    pub fn max_overlap_bound(&self, mb: &Ciip) -> usize {
        self.points.iter().map(|(_, c)| c.overlap_bound(mb)).max().unwrap_or(0)
    }

    /// The maximum useful memory blocks set (Definition 4) under this
    /// formulation.
    pub fn mumbs(&self) -> Ciip {
        self.points
            .iter()
            .max_by_key(|(_, c)| c.line_bound())
            .map(|(_, c)| c.clone())
            .unwrap_or_else(|| Ciip::empty(self.geometry))
    }
}

/// Runs Lee's RMB/LMB analysis over the program's CFG.
///
/// Node reference behaviour is profiled from one simulation per input
/// variant; nodes whose dynamic executions differ (data-dependent
/// addressing) contribute the join over all observed sequences, which is
/// a sound may-approximation.
///
/// # Errors
///
/// Returns [`AnalysisError`] if a variant simulation faults.
pub fn dataflow_useful(
    program: &Program,
    geometry: CacheGeometry,
) -> Result<DataflowUseful, AnalysisError> {
    let cfg = Cfg::from_program(program);
    let mut profiles: Vec<NodeSequences> = vec![NodeSequences::default(); cfg.len()];
    for variant in program.variants() {
        let trace = rtprogram::sim::trace_variant(program, variant)
            .map_err(|source| AnalysisError::Exec { task: program.name().to_string(), source })?;
        for exec in cfg.attribute(&trace) {
            let seq: Vec<MemoryBlock> =
                exec.accesses.iter().map(|a| geometry.block_of_addr(a.addr)).collect();
            profiles[exec.block.index()].seqs.insert(seq);
        }
    }

    let transfer = |state: &AbstractState, node: usize, reverse: bool| -> AbstractState {
        let seqs = &profiles[node].seqs;
        if seqs.is_empty() {
            return state.clone();
        }
        let mut out = AbstractState::new();
        for seq in seqs {
            let mut s = state.clone();
            if reverse {
                for b in seq.iter().rev() {
                    lru_update(&mut s, *b, geometry);
                }
            } else {
                for b in seq {
                    lru_update(&mut s, *b, geometry);
                }
            }
            join(&mut out, &s);
        }
        out
    };

    // Forward RMB fixpoint: in[v] = ⊔ out[p]; out[v] = transfer(in[v]).
    let _span = rtobs::span("dataflow");
    let n = cfg.len();
    let mut rmb_in: Vec<AbstractState> = vec![AbstractState::new(); n];
    let mut rmb_out: Vec<AbstractState> = vec![AbstractState::new(); n];
    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds <= 4 * n + 16, "RMB fixpoint failed to converge");
        for v in 0..n {
            let mut input = AbstractState::new();
            for p in cfg.preds(BlockId::from_index(v)) {
                join(&mut input, &rmb_out[p.index()]);
            }
            if input != rmb_in[v] || rounds == 1 {
                rmb_in[v] = input;
                let out = transfer(&rmb_in[v], v, false);
                if out != rmb_out[v] {
                    rmb_out[v] = out;
                    changed = true;
                }
            }
        }
    }

    let rmb_rounds = rounds;

    // Backward LMB fixpoint: out[v] = ⊔ in[s]; in[v] = transfer_rev(out[v]).
    let mut lmb_in: Vec<AbstractState> = vec![AbstractState::new(); n];
    let mut lmb_out: Vec<AbstractState> = vec![AbstractState::new(); n];
    changed = true;
    rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds <= 4 * n + 16, "LMB fixpoint failed to converge");
        for v in (0..n).rev() {
            let mut output = AbstractState::new();
            for s in &cfg.block(BlockId::from_index(v)).succs {
                join(&mut output, &lmb_in[s.index()]);
            }
            if output != lmb_out[v] || rounds == 1 {
                lmb_out[v] = output;
                let input = transfer(&lmb_out[v], v, true);
                if input != lmb_in[v] {
                    lmb_in[v] = input;
                    changed = true;
                }
            }
        }
    }

    rtobs::record_dataflow_rounds(rmb_rounds as u64, rounds as u64);

    let points = (0..n)
        .filter(|v| !profiles[*v].seqs.is_empty())
        .map(|v| {
            let useful = rmb_in[v]
                .keys()
                .filter(|b| lmb_in[v].contains_key(*b))
                .copied()
                .collect::<Vec<_>>();
            (BlockId::from_index(v), Ciip::from_blocks(geometry, useful))
        })
        .collect();
    Ok(DataflowUseful { geometry, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::sim::{AccessKind, MemoryAccess};

    fn geom(sets: u32, ways: u32) -> CacheGeometry {
        CacheGeometry::new(sets, ways, 16).unwrap()
    }

    fn trace_of(blocks: &[u64], geometry: CacheGeometry) -> Trace {
        Trace {
            accesses: blocks
                .iter()
                .map(|b| MemoryAccess {
                    pc: 0,
                    addr: b << geometry.offset_bits(),
                    kind: AccessKind::Load,
                })
                .collect(),
            instructions: blocks.len() as u64,
        }
    }

    #[test]
    fn single_reuse_one_useful_block() {
        // A B A C A with a 1-set 2-way cache: only A ever re-hits; at any
        // point at most one block is useful.
        let g = geom(1, 2);
        let t = UsefulTrace::from_trace(&trace_of(&[0, 1, 0, 2, 0], g), g);
        let (max, _) = t.max_line_bound();
        assert_eq!(max, 1);
        let mumbs = t.mumbs();
        assert_eq!(mumbs.block_count(), 1);
        assert!(mumbs.contains(MemoryBlock::new(0)));
    }

    #[test]
    fn two_live_blocks_both_useful() {
        // A B A B: before the third access both A and B will hit next.
        let g = geom(1, 2);
        let t = UsefulTrace::from_trace(&trace_of(&[0, 1, 0, 1], g), g);
        let (max, pos) = t.max_line_bound();
        assert_eq!(max, 2);
        let useful = t.useful_at(pos);
        assert_eq!(useful.block_count(), 2);
    }

    #[test]
    fn thrashing_blocks_are_never_useful() {
        // Three blocks round-robin in a 2-way set: every access misses, so
        // nothing is ever useful.
        let g = geom(1, 2);
        let t = UsefulTrace::from_trace(&trace_of(&[0, 1, 2, 0, 1, 2, 0, 1, 2], g), g);
        assert_eq!(t.max_line_bound().0, 0);
        assert!(t.mumbs().is_empty());
    }

    #[test]
    fn useful_capped_by_ways_in_line_bound() {
        // Four blocks in different sets, all re-hit: bound counts all 4.
        let g = geom(8, 2);
        let t = UsefulTrace::from_trace(&trace_of(&[0, 1, 2, 3, 0, 1, 2, 3], g), g);
        assert_eq!(t.max_line_bound().0, 4);
    }

    #[test]
    fn overlap_bound_respects_preemptor_footprint() {
        let g = geom(8, 2);
        let t = UsefulTrace::from_trace(&trace_of(&[0, 1, 2, 3, 0, 1, 2, 3], g), g);
        // Preemptor only touches sets 0 and 1.
        let mb = Ciip::from_blocks(g, [MemoryBlock::new(8), MemoryBlock::new(9)]);
        assert_eq!(t.max_overlap_bound(&mb).0, 2);
        let empty = Ciip::empty(g);
        assert_eq!(t.max_overlap_bound(&empty).0, 0);
    }

    #[test]
    fn overlap_never_exceeds_line_bound() {
        let g = geom(4, 2);
        let blocks: Vec<u64> = (0..40).map(|i| (i * 7) % 12).collect();
        let t = UsefulTrace::from_trace(&trace_of(&blocks, g), g);
        let mb = Ciip::from_blocks(g, (0..20u64).map(MemoryBlock::new));
        assert!(t.max_overlap_bound(&mb).0 <= t.max_line_bound().0);
    }

    #[test]
    fn skyline_matches_exact_overlap_on_many_footprints() {
        let g = geom(8, 2);
        // A trace with interleaved reuse so the useful set rises and falls.
        let blocks: Vec<u64> = (0..60).map(|i| (i * 13 + i / 7) % 24).collect();
        let t = UsefulTrace::from_trace(&trace_of(&blocks, g), g);
        assert!(t.skyline_kept().is_some(), "small geometry must pack");
        for seed in 0..16u64 {
            let mb = Ciip::from_blocks(g, (0..10).map(|i| MemoryBlock::new((i * seed + i) % 32)));
            let packed = PackedFootprint::from_ciip(&mb).unwrap();
            assert_eq!(t.max_packed_overlap(&packed), t.max_overlap_bound(&mb).0, "seed {seed}");
        }
    }

    #[test]
    fn skyline_prunes_monotone_traces_to_one_point() {
        // A B A B ...: the useful set only grows during the backward
        // sweep, so a single Pareto peak covers every execution point.
        let g = geom(1, 2);
        let t = UsefulTrace::from_trace(&trace_of(&[0, 1, 0, 1, 0, 1], g), g);
        assert_eq!(t.skyline_kept(), Some(1));
        assert!(t.skyline_candidates().unwrap() >= 1);
        let ciip = Ciip::from_blocks(g, [MemoryBlock::new(7)]);
        let mb = PackedFootprint::from_ciip(&ciip).unwrap();
        assert_eq!(t.max_packed_overlap(&mb), t.max_overlap_bound(&ciip).0);
    }

    #[test]
    fn empty_and_useless_traces_have_empty_skylines() {
        let g = geom(4, 2);
        let empty = UsefulTrace::from_trace(&trace_of(&[], g), g);
        assert_eq!(empty.skyline_kept(), Some(0));
        let mb = PackedFootprint::from_ciip(&Ciip::from_blocks(g, [MemoryBlock::new(0)])).unwrap();
        assert_eq!(empty.max_packed_overlap(&mb), 0);
        // All-miss thrashing: nothing useful, no peaks.
        let thrash = UsefulTrace::from_trace(&trace_of(&[0, 4, 8, 0, 4, 8], g), g);
        assert_eq!(thrash.skyline_kept(), Some(0));
        assert_eq!(thrash.max_packed_overlap(&mb), 0);
    }

    #[test]
    fn skyline_stats_accumulate() {
        let before = skyline_stats();
        let g = geom(8, 2);
        let blocks: Vec<u64> = (0..40).map(|i| (i * 7) % 12).collect();
        let t = UsefulTrace::from_trace(&trace_of(&blocks, g), g);
        let after = skyline_stats();
        assert!(after.0 >= before.0 + t.skyline_kept().unwrap() as u64);
        let expect_pruned = (t.skyline_candidates().unwrap() - t.skyline_kept().unwrap()) as u64;
        assert!(after.1 >= before.1 + expect_pruned);
    }

    #[test]
    fn all_blocks_collects_footprint() {
        let g = geom(4, 2);
        let t = UsefulTrace::from_trace(&trace_of(&[5, 6, 5, 7], g), g);
        assert_eq!(t.all_blocks().block_count(), 3);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn lru_update_ages_and_evicts() {
        let g = geom(1, 2);
        let mut s = AbstractState::new();
        lru_update(&mut s, MemoryBlock::new(0), g);
        lru_update(&mut s, MemoryBlock::new(1), g);
        assert_eq!(s.get(&MemoryBlock::new(0)), Some(&1));
        assert_eq!(s.get(&MemoryBlock::new(1)), Some(&0));
        lru_update(&mut s, MemoryBlock::new(2), g);
        assert!(!s.contains_key(&MemoryBlock::new(0)), "aged out at L");
        // Re-touching an existing block does not age blocks older than it.
        lru_update(&mut s, MemoryBlock::new(2), g);
        assert_eq!(s.get(&MemoryBlock::new(1)), Some(&1));
    }

    #[test]
    fn join_takes_minimum_age() {
        let mut a = AbstractState::from([(MemoryBlock::new(0), 1)]);
        let b = AbstractState::from([(MemoryBlock::new(0), 0), (MemoryBlock::new(1), 1)]);
        assert!(join(&mut a, &b));
        assert_eq!(a.get(&MemoryBlock::new(0)), Some(&0));
        assert_eq!(a.get(&MemoryBlock::new(1)), Some(&1));
        assert!(!join(&mut a.clone(), &b), "idempotent");
    }

    #[test]
    fn dataflow_on_loop_program_marks_loop_blocks_useful() {
        // A tight loop's code blocks are useful at the loop head: loaded,
        // and re-fetched every iteration.
        let p = rtprogram::asm::assemble(
            "t",
            ".text 0x1000\nstart: li r1, 10\nloop: addi r1, r1, -1\n bne r1, r0, loop\n halt\n",
        )
        .unwrap();
        let g = geom(16, 2);
        let df = dataflow_useful(&p, g).unwrap();
        assert!(df.max_line_bound() >= 1, "loop code must be useful somewhere");
        // And the dataflow bound dominates the exact trace bound.
        let trace = rtprogram::sim::trace_variant(&p, &p.variants()[0]).unwrap();
        let exact = UsefulTrace::from_trace(&trace, g);
        assert!(df.max_line_bound() >= exact.max_line_bound().0);
    }

    #[test]
    fn repeated_analysis_is_deterministic() {
        // Two independent analyses of the same workload must agree on
        // every artifact down to the Debug rendering: the server-side memo
        // store treats analyses as content-addressed values, so any
        // hasher-order leak here would surface as spurious cache
        // divergence.
        let p = rtworkloads::mobile_robot();
        let g = CacheGeometry::paper_l1();
        let variants = p.variants();
        let trace = rtprogram::sim::trace_variant(&p, &variants[0]).unwrap();
        let a = UsefulTrace::from_trace(&trace, g);
        let b = UsefulTrace::from_trace(&trace, g);
        assert_eq!(a, b);
        assert_eq!(a.max_line_bound(), b.max_line_bound());
        assert_eq!(format!("{:?}", a.mumbs()), format!("{:?}", b.mumbs()));
        let pos = a.max_line_bound().1;
        assert_eq!(
            a.useful_at(pos).blocks().collect::<Vec<_>>(),
            b.useful_at(pos).blocks().collect::<Vec<_>>(),
        );
        let da = dataflow_useful(&p, g).unwrap();
        let db = dataflow_useful(&p, g).unwrap();
        assert_eq!(format!("{:?}", da.points), format!("{:?}", db.points));
    }

    #[test]
    fn dataflow_straight_line_has_no_useful_blocks() {
        let p = rtprogram::asm::assemble("t", ".text 0x1000\nnop\nhalt\n").unwrap();
        let g = geom(16, 2);
        let df = dataflow_useful(&p, g).unwrap();
        assert_eq!(df.max_line_bound(), 0);
        assert!(df.mumbs().is_empty());
    }
}
