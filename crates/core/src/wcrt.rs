//! Worst Case Response Time analysis (paper §VII, Eq. 6/7).

use std::borrow::Borrow;
use std::fmt;

use crate::approaches::CrpdMatrix;
use crate::task::AnalyzedTask;

/// Cost parameters of the WCRT recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcrtParams {
    /// Cache miss penalty in cycles (`Cmiss`, Eq. 5).
    pub miss_penalty: u64,
    /// Context switch WCET in cycles (`Ccs`, charged twice per preemption
    /// in Eq. 7).
    pub ctx_switch: u64,
    /// Iteration cap (guards against pathological non-convergence).
    pub max_iterations: u32,
}

impl Default for WcrtParams {
    fn default() -> Self {
        WcrtParams { miss_penalty: 20, ctx_switch: 0, max_iterations: 10_000 }
    }
}

/// Why the Eq. 7 iteration stopped. `DeadlineExceeded` and
/// `IterationCap` both yield `schedulable == false` but mean different
/// things: the first is a divergence proof against the deadline, the
/// second only says the recurrence did not settle within the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The recurrence reached a fixed point (`R^{k+1} == R^k`).
    Converged,
    /// An iterate exceeded the deadline; the response time is unbounded
    /// for scheduling purposes.
    DeadlineExceeded,
    /// `max_iterations` was reached before convergence; the reported
    /// value is a lower bound on the true fixed point.
    IterationCap,
}

impl StopReason {
    /// Short human-readable form used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::DeadlineExceeded => "deadline exceeded",
            StopReason::IterationCap => "iteration cap",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of the response-time iteration for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcrtResult {
    /// The fixed point, or the first value past the deadline if the
    /// iteration diverged.
    pub cycles: u64,
    /// `true` when `cycles` converged at or below the deadline.
    pub schedulable: bool,
    /// Number of recurrence iterations performed.
    pub iterations: u32,
    /// Why the iteration stopped.
    pub stop: StopReason,
}

impl fmt::Display for WcrtResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R={} ({}, {} iterations, {})",
            self.cycles,
            if self.schedulable { "schedulable" } else { "NOT schedulable" },
            self.iterations,
            self.stop
        )
    }
}

/// Per-preemption cost imposed on task `i` by one preemption of task `j`:
/// `Cpre(Ti, Tj) + 2·Ccs` (Eq. 5 and Eq. 7).
fn preemption_cost(matrix: &CrpdMatrix, i: usize, j: usize, params: &WcrtParams) -> u64 {
    matrix.reload(i, j) as u64 * params.miss_penalty + 2 * params.ctx_switch
}

/// Runs the Eq. 7 recurrence for task `i` of `tasks`:
///
/// ```text
/// R_i^{k+1} = C_i + Σ_{j ∈ hp(i)} ⌈R_i^k / P_j⌉ · (C_j + Cpre(T_i, T_j) + 2·Ccs)
/// ```
///
/// iterating from `R_i^0 = C_i` until the value converges or exceeds the
/// deadline (= period). Setting every matrix cell to zero and
/// `ctx_switch = 0` recovers the classic cache-oblivious Eq. 6.
///
/// Like [`CrpdMatrix::compute`], `tasks` may be any slice of task-like
/// values (`&[AnalyzedTask]`, `&[Arc<AnalyzedTask>]`, …).
///
/// # Panics
///
/// Panics if `i` is out of range or two tasks share a priority level
/// (fixed-priority analysis requires a total order).
pub fn response_time<T: Borrow<AnalyzedTask>>(
    tasks: &[T],
    matrix: &CrpdMatrix,
    i: usize,
    params: &WcrtParams,
) -> WcrtResult {
    let _span = rtobs::span_labeled("wcrt", || format!("{} task{i}", matrix.approach));
    let wcets: Vec<u64> = tasks.iter().map(|t| t.borrow().wcet()).collect();
    let periods: Vec<u64> = tasks.iter().map(|t| t.borrow().params().period).collect();
    let priorities: Vec<u32> = tasks.iter().map(|t| t.borrow().params().priority).collect();
    run_recurrence(
        &wcets,
        &periods,
        &priorities,
        &|i, j| preemption_cost(matrix, i, j, params),
        i,
        params.max_iterations,
        matrix.approach.label(),
    )
}

/// The raw Eq. 7 recurrence over explicit task vectors: `wcets`,
/// `periods` (deadlines equal periods) and `priorities`, with an
/// arbitrary per-preemption cost function `cpre(i, j)` in cycles (which
/// should include context-switch charges). Exposed so extended analyses —
/// e.g. the two-level hierarchy in [`crate::hierarchy`] — can reuse the
/// exact iteration semantics.
///
/// # Panics
///
/// Panics if the vectors disagree in length, `i` is out of range, or two
/// tasks share a priority level.
pub fn response_time_generic(
    wcets: &[u64],
    periods: &[u64],
    priorities: &[u32],
    cpre: &dyn Fn(usize, usize) -> u64,
    i: usize,
    max_iterations: u32,
) -> WcrtResult {
    run_recurrence(wcets, periods, priorities, cpre, i, max_iterations, "generic")
}

/// The shared Eq. 7 loop. `context` labels the per-iteration `R_i^k`
/// trail recorded into an installed `rtobs` recorder (recording is
/// write-only: the iterates are never read back, so an installed
/// recorder cannot change the result).
fn run_recurrence(
    wcets: &[u64],
    periods: &[u64],
    priorities: &[u32],
    cpre: &dyn Fn(usize, usize) -> u64,
    i: usize,
    max_iterations: u32,
    context: &str,
) -> WcrtResult {
    assert_eq!(wcets.len(), periods.len());
    assert_eq!(wcets.len(), priorities.len());
    let hp: Vec<usize> = (0..wcets.len()).filter(|j| priorities[*j] < priorities[i]).collect();
    for j in 0..wcets.len() {
        assert!(j == i || priorities[j] != priorities[i], "duplicate priorities are not supported");
    }
    let recording = rtobs::enabled();
    let mut iterates: Vec<u64> = Vec::new();
    let deadline = periods[i];
    let mut r = wcets[i];
    if recording {
        iterates.push(r); // R_i^0 = C_i
    }
    let mut iterations = 0;
    let result = loop {
        iterations += 1;
        let interference: u64 =
            hp.iter().map(|&j| r.div_ceil(periods[j]) * (wcets[j] + cpre(i, j))).sum();
        let next = wcets[i] + interference;
        if recording && next != r {
            iterates.push(next);
        }
        if next == r {
            break WcrtResult {
                cycles: r,
                schedulable: r <= deadline,
                iterations,
                stop: StopReason::Converged,
            };
        }
        if next > deadline || iterations >= max_iterations {
            let stop = if next > deadline {
                StopReason::DeadlineExceeded
            } else {
                StopReason::IterationCap
            };
            break WcrtResult { cycles: next, schedulable: false, iterations, stop };
        }
        r = next;
    };
    if recording {
        rtobs::record_wcrt_iterations(context, i, &iterates);
    }
    result
}

/// Response times for every task (the highest-priority task's WCRT is its
/// WCET — it is never preempted).
///
/// Per-task recurrences are independent, so they fan out over the current
/// [`rtpar`] pool; results come back in task order, so the output is
/// byte-identical at any thread count.
pub fn analyze_all<T: Borrow<AnalyzedTask> + Sync>(
    tasks: &[T],
    matrix: &CrpdMatrix,
    params: &WcrtParams,
) -> Vec<WcrtResult> {
    rtpar::par_map_range(tasks.len(), |i| response_time(tasks, matrix, i, params))
}

/// The reported `R_i` of one task split into the Eq. 7 cost terms, all
/// evaluated at the iterate that produced `result.cycles`, so that
///
/// ```text
/// result.cycles == wcet + interference + crpd + ctx_switch
/// ```
///
/// holds *exactly* — converged or not. Produced by
/// [`explain_response_time`] for the `--explain` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcrtBreakdown {
    /// The plain iteration outcome (identical to [`response_time`]).
    pub result: WcrtResult,
    /// `C_i`: the task's own WCET.
    pub wcet: u64,
    /// `Σ_j ⌈R/P_j⌉ · C_j`: higher-priority execution demand.
    pub interference: u64,
    /// `Σ_j ⌈R/P_j⌉ · Cpre(T_i, T_j)`: cache reload delay.
    pub crpd: u64,
    /// `Σ_j ⌈R/P_j⌉ · 2·Ccs`: context-switch overhead.
    pub ctx_switch: u64,
    /// `Σ_j ⌈R/P_j⌉`: worst-case preemption (activation) count.
    pub preemptions: u64,
}

/// Runs the same Eq. 7 recurrence as [`response_time`] but keeps the
/// final iterate's cost terms separated. The `result` field is always
/// identical to what [`response_time`] returns for the same inputs; the
/// component sums are a deterministic recomputation, not recorder state,
/// so `--explain` output is byte-stable with tracing on or off.
///
/// # Panics
///
/// As [`response_time`].
pub fn explain_response_time<T: Borrow<AnalyzedTask>>(
    tasks: &[T],
    matrix: &CrpdMatrix,
    i: usize,
    params: &WcrtParams,
) -> WcrtBreakdown {
    let wcets: Vec<u64> = tasks.iter().map(|t| t.borrow().wcet()).collect();
    let periods: Vec<u64> = tasks.iter().map(|t| t.borrow().params().period).collect();
    let priorities: Vec<u32> = tasks.iter().map(|t| t.borrow().params().priority).collect();
    let hp: Vec<usize> = (0..wcets.len()).filter(|j| priorities[*j] < priorities[i]).collect();
    for j in 0..wcets.len() {
        assert!(j == i || priorities[j] != priorities[i], "duplicate priorities are not supported");
    }
    let deadline = periods[i];
    let mut r = wcets[i];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut interference = 0u64;
        let mut crpd = 0u64;
        let mut ctx_switch = 0u64;
        let mut preemptions = 0u64;
        for &j in &hp {
            let activations = r.div_ceil(periods[j]);
            preemptions += activations;
            interference += activations * wcets[j];
            crpd += activations * (matrix.reload(i, j) as u64 * params.miss_penalty);
            ctx_switch += activations * 2 * params.ctx_switch;
        }
        let next = wcets[i] + interference + crpd + ctx_switch;
        // Mirror `run_recurrence` exactly: on convergence `next == r`, on
        // overrun/cap `next` is the reported value — either way the
        // components above were computed for the value we return.
        let stop = if next == r {
            StopReason::Converged
        } else if next > deadline {
            StopReason::DeadlineExceeded
        } else if iterations >= params.max_iterations {
            StopReason::IterationCap
        } else {
            r = next;
            continue;
        };
        let schedulable = stop == StopReason::Converged && next <= deadline;
        return WcrtBreakdown {
            result: WcrtResult { cycles: next, schedulable, iterations, stop },
            wcet: wcets[i],
            interference,
            crpd,
            ctx_switch,
            preemptions,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approaches::{CrpdApproach, CrpdMatrix};
    use crate::task::TaskParams;
    use rtcache::CacheGeometry;
    use rtwcet::TimingModel;

    /// Builds a tiny analyzed task with a synthetic WCET by scaling a nop
    /// program — WCRT unit tests need exact arithmetic, so we build tasks
    /// whose WCETs we can read back.
    fn task(prio: u32, period: u64) -> AnalyzedTask {
        let p = rtworkloads::synthetic::synthetic_task(&{
            let mut s = rtworkloads::synthetic::SyntheticSpec::new(
                format!("t{prio}"),
                0x0001_0000 + 0x4000 * u64::from(prio),
                0x0010_0000 + 0x4800 * u64::from(prio),
            );
            s.two_paths = false;
            s.outer_iters = prio; // different sizes per priority
            s
        });
        AnalyzedTask::analyze(
            &p,
            TaskParams { period, priority: prio },
            CacheGeometry::paper_l1(),
            TimingModel::default(),
        )
        .unwrap()
    }

    fn zero_matrix(n: usize) -> CrpdMatrix {
        CrpdMatrix { approach: CrpdApproach::Combined, lines: vec![vec![0; n]; n] }
    }

    #[test]
    fn highest_priority_task_wcrt_is_wcet() {
        let tasks = vec![task(1, 1_000_000), task(2, 2_000_000)];
        let m = zero_matrix(2);
        let r = response_time(&tasks, &m, 0, &WcrtParams::default());
        assert_eq!(r.cycles, tasks[0].wcet());
        assert!(r.schedulable);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn eq6_hand_computed_fixed_point() {
        // Classic example: C1=?, with zero CRPD the recurrence matches the
        // hand-rolled iteration.
        let tasks = vec![task(1, 50_000), task(2, 1_000_000)];
        let m = zero_matrix(2);
        let r = response_time(&tasks, &m, 1, &WcrtParams::default());
        // Manually iterate.
        let (c1, p1, c2) = (tasks[0].wcet(), tasks[0].params().period, tasks[1].wcet());
        let mut manual = c2;
        loop {
            let next = c2 + manual.div_ceil(p1) * c1;
            if next == manual {
                break;
            }
            manual = next;
        }
        assert_eq!(r.cycles, manual);
        assert!(r.schedulable);
    }

    #[test]
    fn crpd_extends_response_time() {
        let tasks = vec![task(1, 50_000), task(2, 1_000_000)];
        let zero = zero_matrix(2);
        let mut with_crpd = zero_matrix(2);
        with_crpd.lines[1][0] = 100; // 100 lines reloaded per preemption
        let params = WcrtParams { miss_penalty: 20, ctx_switch: 0, max_iterations: 1000 };
        let r0 = response_time(&tasks, &zero, 1, &params);
        let r1 = response_time(&tasks, &with_crpd, 1, &params);
        assert!(r1.cycles > r0.cycles);
        // Exactly one preemption window difference per activation:
        let activations = r1.cycles.div_ceil(tasks[0].params().period);
        assert!(r1.cycles - r0.cycles >= activations * 100 * 20 / 2);
    }

    #[test]
    fn context_switch_charged_twice_per_preemption() {
        let tasks = vec![task(1, 100_000), task(2, 10_000_000)];
        let m = zero_matrix(2);
        let base = response_time(&tasks, &m, 1, &WcrtParams::default());
        let params = WcrtParams { miss_penalty: 20, ctx_switch: 500, max_iterations: 1000 };
        let with_cs = response_time(&tasks, &m, 1, &params);
        assert!(with_cs.cycles >= base.cycles + 2 * 500);
    }

    #[test]
    fn unschedulable_when_deadline_exceeded() {
        // Give the low task a period barely above its own WCET so the
        // interference pushes it over.
        let hi = task(1, 6_000);
        let lo_wcet = task(2, 1).wcet(); // probe the WCET
        let lo = task(2, lo_wcet + 10);
        let tasks = vec![hi, lo];
        let m = zero_matrix(2);
        let r = response_time(&tasks, &m, 1, &WcrtParams::default());
        assert!(!r.schedulable);
        assert!(r.cycles > tasks[1].params().period);
    }

    #[test]
    fn analyze_all_covers_every_task() {
        let tasks = vec![task(1, 100_000), task(2, 500_000), task(3, 2_000_000)];
        let m = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
        let results = analyze_all(&tasks, &m, &WcrtParams::default());
        assert_eq!(results.len(), 3);
        // Response times grow (weakly) with falling priority here because
        // lower-priority tasks absorb all higher-priority interference.
        assert!(results[2].cycles >= results[1].cycles);
        assert!(results[1].cycles >= results[0].cycles);
    }

    #[test]
    fn monotone_in_miss_penalty() {
        let tasks = vec![task(1, 100_000), task(2, 2_000_000)];
        let m = CrpdMatrix::compute(CrpdApproach::AllPreemptingLines, &tasks);
        let mut last = 0;
        for penalty in [10, 20, 30, 40] {
            let params =
                WcrtParams { miss_penalty: penalty, ctx_switch: 100, max_iterations: 1000 };
            let r = response_time(&tasks, &m, 1, &params);
            assert!(r.cycles >= last, "WCRT must grow with Cmiss");
            last = r.cycles;
        }
    }

    #[test]
    fn result_display() {
        let r = WcrtResult {
            cycles: 100,
            schedulable: true,
            iterations: 3,
            stop: StopReason::Converged,
        };
        assert_eq!(r.to_string(), "R=100 (schedulable, 3 iterations, converged)");
        let r = WcrtResult {
            cycles: 100,
            schedulable: false,
            iterations: 3,
            stop: StopReason::IterationCap,
        };
        assert!(r.to_string().contains("NOT schedulable"));
        assert!(r.to_string().contains("iteration cap"));
    }

    #[test]
    fn stop_reason_distinguishes_deadline_from_cap() {
        let tasks = vec![task(1, 6_000), task(2, 1_000_000)];
        let m = zero_matrix(2);
        // Plenty of budget: either converges or provably misses.
        let converged = response_time(&tasks, &m, 1, &WcrtParams::default());
        assert_eq!(converged.stop, StopReason::Converged);
        assert!(converged.schedulable);
        // One-iteration budget: the recurrence cannot settle.
        let params = WcrtParams { miss_penalty: 20, ctx_switch: 0, max_iterations: 1 };
        let capped = response_time(&tasks, &m, 1, &params);
        assert_eq!(capped.stop, StopReason::IterationCap);
        assert!(!capped.schedulable);
        // A deadline barely above the WCET: divergence past the deadline.
        let lo_wcet = tasks[1].wcet();
        let tight = vec![task(1, 6_000), task(2, lo_wcet + 10)];
        let missed = response_time(&tight, &m, 1, &WcrtParams::default());
        assert_eq!(missed.stop, StopReason::DeadlineExceeded);
        assert!(!missed.schedulable);
    }

    #[test]
    fn breakdown_components_sum_to_the_reported_wcrt() {
        let tasks = vec![task(1, 50_000), task(2, 500_000), task(3, 2_000_000)];
        for approach in CrpdApproach::ALL {
            let m = CrpdMatrix::compute(approach, &tasks);
            let params = WcrtParams { miss_penalty: 20, ctx_switch: 50, max_iterations: 10_000 };
            for i in 0..tasks.len() {
                let plain = response_time(&tasks, &m, i, &params);
                let b = explain_response_time(&tasks, &m, i, &params);
                assert_eq!(b.result, plain, "{approach} task {i}: breakdown must agree");
                assert_eq!(
                    b.wcet + b.interference + b.crpd + b.ctx_switch,
                    plain.cycles,
                    "{approach} task {i}: components must sum to R_i"
                );
            }
        }
    }

    #[test]
    fn breakdown_agrees_even_when_unschedulable() {
        let lo_wcet = task(2, 1).wcet();
        let tasks = vec![task(1, 6_000), task(2, lo_wcet + 10)];
        let m = zero_matrix(2);
        let b = explain_response_time(&tasks, &m, 1, &WcrtParams::default());
        let plain = response_time(&tasks, &m, 1, &WcrtParams::default());
        assert_eq!(b.result, plain);
        assert_eq!(b.result.stop, StopReason::DeadlineExceeded);
        assert_eq!(b.wcet + b.interference + b.crpd + b.ctx_switch, plain.cycles);
    }

    #[test]
    fn recurrence_iterates_are_recorded_and_do_not_perturb() {
        let _serial = crate::obs_test_lock();
        let tasks = vec![task(1, 50_000), task(2, 1_000_000)];
        // InterTask: no other test in this binary records under "App. 2",
        // so a concurrently-running test cannot overwrite the key while
        // our session has recording enabled.
        let m = CrpdMatrix::compute(CrpdApproach::InterTask, &tasks);
        let plain = response_time(&tasks, &m, 1, &WcrtParams::default());
        let session = rtobs::begin();
        let traced = response_time(&tasks, &m, 1, &WcrtParams::default());
        let counters = session.recorder().counters();
        drop(session);
        assert_eq!(traced, plain, "an installed recorder must not change the result");
        let iterates = counters
            .wcrt_iterations
            .get(&("App. 2".to_string(), 1))
            .expect("iterates recorded under the approach label");
        assert_eq!(*iterates.first().unwrap(), tasks[1].wcet(), "trail starts at R^0 = C_i");
        assert_eq!(*iterates.last().unwrap(), plain.cycles, "trail ends at the fixed point");
    }
}
