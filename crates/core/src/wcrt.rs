//! Worst Case Response Time analysis (paper §VII, Eq. 6/7).

use std::borrow::Borrow;
use std::fmt;

use crate::approaches::CrpdMatrix;
use crate::task::AnalyzedTask;

/// Cost parameters of the WCRT recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcrtParams {
    /// Cache miss penalty in cycles (`Cmiss`, Eq. 5).
    pub miss_penalty: u64,
    /// Context switch WCET in cycles (`Ccs`, charged twice per preemption
    /// in Eq. 7).
    pub ctx_switch: u64,
    /// Iteration cap (guards against pathological non-convergence).
    pub max_iterations: u32,
}

impl Default for WcrtParams {
    fn default() -> Self {
        WcrtParams { miss_penalty: 20, ctx_switch: 0, max_iterations: 10_000 }
    }
}

/// Outcome of the response-time iteration for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcrtResult {
    /// The fixed point, or the first value past the deadline if the
    /// iteration diverged.
    pub cycles: u64,
    /// `true` when `cycles` converged at or below the deadline.
    pub schedulable: bool,
    /// Number of recurrence iterations performed.
    pub iterations: u32,
}

impl fmt::Display for WcrtResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R={} ({}, {} iterations)",
            self.cycles,
            if self.schedulable { "schedulable" } else { "NOT schedulable" },
            self.iterations
        )
    }
}

/// Per-preemption cost imposed on task `i` by one preemption of task `j`:
/// `Cpre(Ti, Tj) + 2·Ccs` (Eq. 5 and Eq. 7).
fn preemption_cost(matrix: &CrpdMatrix, i: usize, j: usize, params: &WcrtParams) -> u64 {
    matrix.reload(i, j) as u64 * params.miss_penalty + 2 * params.ctx_switch
}

/// Runs the Eq. 7 recurrence for task `i` of `tasks`:
///
/// ```text
/// R_i^{k+1} = C_i + Σ_{j ∈ hp(i)} ⌈R_i^k / P_j⌉ · (C_j + Cpre(T_i, T_j) + 2·Ccs)
/// ```
///
/// iterating from `R_i^0 = C_i` until the value converges or exceeds the
/// deadline (= period). Setting every matrix cell to zero and
/// `ctx_switch = 0` recovers the classic cache-oblivious Eq. 6.
///
/// Like [`CrpdMatrix::compute`], `tasks` may be any slice of task-like
/// values (`&[AnalyzedTask]`, `&[Arc<AnalyzedTask>]`, …).
///
/// # Panics
///
/// Panics if `i` is out of range or two tasks share a priority level
/// (fixed-priority analysis requires a total order).
pub fn response_time<T: Borrow<AnalyzedTask>>(
    tasks: &[T],
    matrix: &CrpdMatrix,
    i: usize,
    params: &WcrtParams,
) -> WcrtResult {
    let wcets: Vec<u64> = tasks.iter().map(|t| t.borrow().wcet()).collect();
    let periods: Vec<u64> = tasks.iter().map(|t| t.borrow().params().period).collect();
    let priorities: Vec<u32> = tasks.iter().map(|t| t.borrow().params().priority).collect();
    response_time_generic(
        &wcets,
        &periods,
        &priorities,
        &|i, j| preemption_cost(matrix, i, j, params),
        i,
        params.max_iterations,
    )
}

/// The raw Eq. 7 recurrence over explicit task vectors: `wcets`,
/// `periods` (deadlines equal periods) and `priorities`, with an
/// arbitrary per-preemption cost function `cpre(i, j)` in cycles (which
/// should include context-switch charges). Exposed so extended analyses —
/// e.g. the two-level hierarchy in [`crate::hierarchy`] — can reuse the
/// exact iteration semantics.
///
/// # Panics
///
/// Panics if the vectors disagree in length, `i` is out of range, or two
/// tasks share a priority level.
pub fn response_time_generic(
    wcets: &[u64],
    periods: &[u64],
    priorities: &[u32],
    cpre: &dyn Fn(usize, usize) -> u64,
    i: usize,
    max_iterations: u32,
) -> WcrtResult {
    assert_eq!(wcets.len(), periods.len());
    assert_eq!(wcets.len(), priorities.len());
    let hp: Vec<usize> = (0..wcets.len()).filter(|j| priorities[*j] < priorities[i]).collect();
    for j in 0..wcets.len() {
        assert!(j == i || priorities[j] != priorities[i], "duplicate priorities are not supported");
    }
    let deadline = periods[i];
    let mut r = wcets[i];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let interference: u64 =
            hp.iter().map(|&j| r.div_ceil(periods[j]) * (wcets[j] + cpre(i, j))).sum();
        let next = wcets[i] + interference;
        if next == r {
            return WcrtResult { cycles: r, schedulable: r <= deadline, iterations };
        }
        if next > deadline || iterations >= max_iterations {
            return WcrtResult { cycles: next, schedulable: false, iterations };
        }
        r = next;
    }
}

/// Response times for every task (the highest-priority task's WCRT is its
/// WCET — it is never preempted).
///
/// Per-task recurrences are independent, so they fan out over the current
/// [`rtpar`] pool; results come back in task order, so the output is
/// byte-identical at any thread count.
pub fn analyze_all<T: Borrow<AnalyzedTask> + Sync>(
    tasks: &[T],
    matrix: &CrpdMatrix,
    params: &WcrtParams,
) -> Vec<WcrtResult> {
    rtpar::par_map_range(tasks.len(), |i| response_time(tasks, matrix, i, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approaches::{CrpdApproach, CrpdMatrix};
    use crate::task::TaskParams;
    use rtcache::CacheGeometry;
    use rtwcet::TimingModel;

    /// Builds a tiny analyzed task with a synthetic WCET by scaling a nop
    /// program — WCRT unit tests need exact arithmetic, so we build tasks
    /// whose WCETs we can read back.
    fn task(prio: u32, period: u64) -> AnalyzedTask {
        let p = rtworkloads::synthetic::synthetic_task(&{
            let mut s = rtworkloads::synthetic::SyntheticSpec::new(
                format!("t{prio}"),
                0x0001_0000 + 0x4000 * u64::from(prio),
                0x0010_0000 + 0x4800 * u64::from(prio),
            );
            s.two_paths = false;
            s.outer_iters = prio; // different sizes per priority
            s
        });
        AnalyzedTask::analyze(
            &p,
            TaskParams { period, priority: prio },
            CacheGeometry::paper_l1(),
            TimingModel::default(),
        )
        .unwrap()
    }

    fn zero_matrix(n: usize) -> CrpdMatrix {
        CrpdMatrix { approach: CrpdApproach::Combined, lines: vec![vec![0; n]; n] }
    }

    #[test]
    fn highest_priority_task_wcrt_is_wcet() {
        let tasks = vec![task(1, 1_000_000), task(2, 2_000_000)];
        let m = zero_matrix(2);
        let r = response_time(&tasks, &m, 0, &WcrtParams::default());
        assert_eq!(r.cycles, tasks[0].wcet());
        assert!(r.schedulable);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn eq6_hand_computed_fixed_point() {
        // Classic example: C1=?, with zero CRPD the recurrence matches the
        // hand-rolled iteration.
        let tasks = vec![task(1, 50_000), task(2, 1_000_000)];
        let m = zero_matrix(2);
        let r = response_time(&tasks, &m, 1, &WcrtParams::default());
        // Manually iterate.
        let (c1, p1, c2) = (tasks[0].wcet(), tasks[0].params().period, tasks[1].wcet());
        let mut manual = c2;
        loop {
            let next = c2 + manual.div_ceil(p1) * c1;
            if next == manual {
                break;
            }
            manual = next;
        }
        assert_eq!(r.cycles, manual);
        assert!(r.schedulable);
    }

    #[test]
    fn crpd_extends_response_time() {
        let tasks = vec![task(1, 50_000), task(2, 1_000_000)];
        let zero = zero_matrix(2);
        let mut with_crpd = zero_matrix(2);
        with_crpd.lines[1][0] = 100; // 100 lines reloaded per preemption
        let params = WcrtParams { miss_penalty: 20, ctx_switch: 0, max_iterations: 1000 };
        let r0 = response_time(&tasks, &zero, 1, &params);
        let r1 = response_time(&tasks, &with_crpd, 1, &params);
        assert!(r1.cycles > r0.cycles);
        // Exactly one preemption window difference per activation:
        let activations = r1.cycles.div_ceil(tasks[0].params().period);
        assert!(r1.cycles - r0.cycles >= activations * 100 * 20 / 2);
    }

    #[test]
    fn context_switch_charged_twice_per_preemption() {
        let tasks = vec![task(1, 100_000), task(2, 10_000_000)];
        let m = zero_matrix(2);
        let base = response_time(&tasks, &m, 1, &WcrtParams::default());
        let params = WcrtParams { miss_penalty: 20, ctx_switch: 500, max_iterations: 1000 };
        let with_cs = response_time(&tasks, &m, 1, &params);
        assert!(with_cs.cycles >= base.cycles + 2 * 500);
    }

    #[test]
    fn unschedulable_when_deadline_exceeded() {
        // Give the low task a period barely above its own WCET so the
        // interference pushes it over.
        let hi = task(1, 6_000);
        let lo_wcet = task(2, 1).wcet(); // probe the WCET
        let lo = task(2, lo_wcet + 10);
        let tasks = vec![hi, lo];
        let m = zero_matrix(2);
        let r = response_time(&tasks, &m, 1, &WcrtParams::default());
        assert!(!r.schedulable);
        assert!(r.cycles > tasks[1].params().period);
    }

    #[test]
    fn analyze_all_covers_every_task() {
        let tasks = vec![task(1, 100_000), task(2, 500_000), task(3, 2_000_000)];
        let m = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
        let results = analyze_all(&tasks, &m, &WcrtParams::default());
        assert_eq!(results.len(), 3);
        // Response times grow (weakly) with falling priority here because
        // lower-priority tasks absorb all higher-priority interference.
        assert!(results[2].cycles >= results[1].cycles);
        assert!(results[1].cycles >= results[0].cycles);
    }

    #[test]
    fn monotone_in_miss_penalty() {
        let tasks = vec![task(1, 100_000), task(2, 2_000_000)];
        let m = CrpdMatrix::compute(CrpdApproach::AllPreemptingLines, &tasks);
        let mut last = 0;
        for penalty in [10, 20, 30, 40] {
            let params =
                WcrtParams { miss_penalty: penalty, ctx_switch: 100, max_iterations: 1000 };
            let r = response_time(&tasks, &m, 1, &params);
            assert!(r.cycles >= last, "WCRT must grow with Cmiss");
            last = r.cycles;
        }
    }

    #[test]
    fn result_display() {
        let r = WcrtResult { cycles: 100, schedulable: true, iterations: 3 };
        assert!(r.to_string().contains("schedulable"));
    }
}
