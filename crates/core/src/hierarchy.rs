//! Two-level (L1 + L2) CRPD and WCRT analysis — the extension the paper
//! names as future work (§IX: "expand our analysis approach for systems
//! with more than two-level memory hierarchy").
//!
//! # How the bound extends
//!
//! With an L2 behind the L1, a preemption-displaced useful block is not
//! necessarily fetched from memory when reloaded: if it still sits in the
//! L2 the reload costs only `l2_penalty`. A reload goes all the way to
//! memory only when the block was *also* displaced from the L2, which
//! requires an L2-set conflict with the preemptor. Hence, per preemption
//! of task `a` by task `b`:
//!
//! ```text
//! Cpre(a, b) ≤ S₄(a, b | L1) · l2_penalty
//!            + min(S₄(a, b | L1), S₂(a, b | L2)) · (mem_penalty − l2_penalty)
//! ```
//!
//! where `S₄(·|L1)` is the paper's combined per-preemption line bound at
//! the L1 geometry (Eq. 4) and `S₂(·|L2)` is the Eq. 2 footprint-overlap
//! bound evaluated at the L2 geometry. Because memory blocks share the
//! line size across levels, the same block sets re-partition directly
//! under the L2's index function.

use rtcache::{CacheGeometry, Ciip};
use rtwcet::{estimate_wcet_hierarchy, HierarchyTimingModel, WcetError};

use crate::approaches::{reload_lines, CrpdApproach};
use crate::task::AnalyzedTask;
use crate::wcrt::{response_time_generic, WcrtResult};
use crate::AnalysisError;

/// Parameters of the two-level analysis.
#[derive(Debug, Clone, Copy)]
pub struct TwoLevelParams {
    /// The L2 geometry (the L1 geometry is the one the tasks were
    /// analyzed under).
    pub l2_geometry: CacheGeometry,
    /// Hierarchy timing (`l2_penalty`, `mem_penalty`).
    pub model: HierarchyTimingModel,
    /// Context switch WCET, charged twice per preemption.
    pub ctx_switch: u64,
    /// Iteration cap for the recurrence.
    pub max_iterations: u32,
}

/// The per-preemption delay bound in cycles for task `preempted` being
/// preempted once by `preempting` under a two-level hierarchy (without
/// the context-switch term).
///
/// # Panics
///
/// Panics if the tasks were analyzed under different L1 geometries, the
/// L2 line size differs from the L1's, or `mem_penalty < l2_penalty`.
pub fn two_level_preemption_delay(
    preempted: &AnalyzedTask,
    preempting: &AnalyzedTask,
    params: &TwoLevelParams,
) -> u64 {
    assert_eq!(
        preempted.geometry().line_bytes(),
        params.l2_geometry.line_bytes(),
        "L1 and L2 must share a line size"
    );
    assert!(
        params.model.mem_penalty >= params.model.l2_penalty,
        "memory cannot be faster than the L2"
    );
    let s4_l1 = reload_lines(CrpdApproach::Combined, preempted, preempting) as u64;
    let a_l2 = Ciip::from_blocks(params.l2_geometry, preempted.all_blocks().blocks());
    let b_l2 = Ciip::from_blocks(params.l2_geometry, preempting.all_blocks().blocks());
    let s2_l2 = a_l2.overlap_bound(&b_l2) as u64;
    s4_l1 * params.model.l2_penalty
        + s4_l1.min(s2_l2) * (params.model.mem_penalty - params.model.l2_penalty)
}

/// Two-level WCRT of every task: the Eq. 7 recurrence with hierarchy
/// WCETs and the two-level per-preemption delay.
///
/// `programs` supplies each task's program so the hierarchy WCET can be
/// estimated; order must match `tasks`.
///
/// # Errors
///
/// Returns [`AnalysisError::Wcet`] if a hierarchy WCET estimation fails.
///
/// # Panics
///
/// Panics under the same conditions as [`two_level_preemption_delay`], or
/// if `programs` and `tasks` disagree in length.
pub fn two_level_analyze_all(
    tasks: &[AnalyzedTask],
    programs: &[rtprogram::Program],
    params: &TwoLevelParams,
) -> Result<Vec<WcrtResult>, AnalysisError> {
    assert_eq!(tasks.len(), programs.len(), "one program per task");
    let mut wcets = Vec::with_capacity(tasks.len());
    for (task, program) in tasks.iter().zip(programs) {
        let est: Result<_, WcetError> =
            estimate_wcet_hierarchy(program, task.geometry(), params.l2_geometry, params.model);
        wcets.push(
            est.map_err(|source| AnalysisError::Wcet { task: task.name().to_string(), source })?
                .cycles,
        );
    }
    let periods: Vec<u64> = tasks.iter().map(|t| t.params().period).collect();
    let priorities: Vec<u32> = tasks.iter().map(|t| t.params().priority).collect();
    let cpre = |i: usize, j: usize| {
        two_level_preemption_delay(&tasks[i], &tasks[j], params) + 2 * params.ctx_switch
    };
    Ok((0..tasks.len())
        .map(|i| {
            response_time_generic(&wcets, &periods, &priorities, &cpre, i, params.max_iterations)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskParams;
    use crate::wcrt::WcrtParams;
    use crate::CrpdMatrix;
    use rtwcet::TimingModel;

    fn l1() -> CacheGeometry {
        CacheGeometry::new(64, 2, 16).unwrap()
    }

    fn l2() -> CacheGeometry {
        CacheGeometry::new(1024, 8, 16).unwrap()
    }

    fn analyze(p: &rtprogram::Program, period: u64, prio: u32) -> AnalyzedTask {
        AnalyzedTask::analyze(
            p,
            TaskParams { period, priority: prio },
            l1(),
            TimingModel { cpi: 1, miss_penalty: 40 },
        )
        .unwrap()
    }

    fn params() -> TwoLevelParams {
        TwoLevelParams {
            l2_geometry: l2(),
            model: HierarchyTimingModel { cpi: 1, l2_penalty: 6, mem_penalty: 40 },
            ctx_switch: 300,
            max_iterations: 10_000,
        }
    }

    #[test]
    fn delay_bounded_by_single_level_worst_case() {
        let mr = analyze(&rtworkloads::mobile_robot(), 100_000, 2);
        let ed = analyze(&rtworkloads::edge_detection_with_dim(10), 500_000, 3);
        let two = two_level_preemption_delay(&ed, &mr, &params());
        // All-memory reloads would cost S4 * mem_penalty.
        let s4 = reload_lines(CrpdApproach::Combined, &ed, &mr) as u64;
        assert!(two <= s4 * 40);
        assert!(two >= s4 * 6, "every reload pays at least the L2 penalty");
    }

    #[test]
    fn big_l2_absorbs_most_of_the_crpd() {
        // With an L2 holding both footprints comfortably, the L2-overlap
        // term shrinks and the two-level delay approaches S4 * l2_penalty.
        let mr = analyze(&rtworkloads::mobile_robot(), 100_000, 2);
        let ed = analyze(&rtworkloads::edge_detection_with_dim(10), 500_000, 3);
        let mut p = params();
        let small_l2 = CacheGeometry::new(128, 2, 16).unwrap();
        p.l2_geometry = small_l2;
        let with_small = two_level_preemption_delay(&ed, &mr, &p);
        p.l2_geometry = CacheGeometry::new(4096, 8, 16).unwrap();
        let with_big = two_level_preemption_delay(&ed, &mr, &p);
        assert!(with_big <= with_small);
    }

    #[test]
    fn two_level_wcrt_beats_memory_only_analysis() {
        let programs = vec![rtworkloads::mobile_robot(), rtworkloads::edge_detection_with_dim(10)];
        let tasks = vec![analyze(&programs[0], 200_000, 2), analyze(&programs[1], 2_000_000, 3)];
        let two = two_level_analyze_all(&tasks, &programs, &params()).unwrap();
        // Single-level analysis at the memory penalty.
        let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
        let single = crate::analyze_all(
            &tasks,
            &matrix,
            &WcrtParams { miss_penalty: 40, ctx_switch: 300, max_iterations: 10_000 },
        );
        for (t, s) in two.iter().zip(&single) {
            assert!(
                t.cycles <= s.cycles,
                "an L2 can only improve the bound: {} vs {}",
                t.cycles,
                s.cycles
            );
        }
        assert!(two.iter().all(|r| r.schedulable));
    }

    #[test]
    #[should_panic(expected = "share a line size")]
    fn mismatched_line_size_panics() {
        let mr = analyze(&rtworkloads::mobile_robot(), 100_000, 2);
        let ed = analyze(&rtworkloads::edge_detection_with_dim(10), 500_000, 3);
        let mut p = params();
        p.l2_geometry = CacheGeometry::new(512, 8, 32).unwrap();
        let _ = two_level_preemption_delay(&ed, &mr, &p);
    }
}
