//! Partitioned-multiprocessor analysis — the paper's second future-work
//! item (§IX: "we will research on the cache eviction problem in
//! multi-processor systems").
//!
//! The model is *partitioned fixed-priority scheduling*: every task is
//! statically assigned to one core, each core has a private L1, and each
//! core schedules its tasks preemptively. Within a core the paper's
//! single-processor CRPD/WCRT analysis applies unchanged; across cores
//! there is no L1 interference by construction.
//!
//! With an optional **shared L2**, co-running tasks on other cores can
//! displace a task's L2 lines at *any* time (not only at preemptions).
//! The analysis charges a sound inflation on each task's WCET: every L2
//! hit of its isolated hierarchy run may degrade to a memory access, but
//! no more of them than the task's L2 footprint can conflict with the
//! other cores' combined footprints:
//!
//! ```text
//! ΔC_i = min(l2_hits_i, Σ_{j on other cores} S₂(i, j | L2)) · (mem − l2)
//! ```

use rtcache::{CacheGeometry, Ciip};
use rtwcet::{estimate_wcet_hierarchy, HierarchyTimingModel};

use crate::task::AnalyzedTask;
use crate::wcrt::{response_time_generic, WcrtResult};
use crate::{AnalysisError, CrpdApproach, CrpdMatrix, WcrtParams};

/// A static task-to-core assignment: `cores[c]` lists the indices of the
/// tasks placed on core `c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAssignment {
    /// Task indices per core.
    pub cores: Vec<Vec<usize>>,
}

impl CoreAssignment {
    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The core a task is assigned to.
    ///
    /// # Panics
    ///
    /// Panics if the task is not assigned.
    pub fn core_of(&self, task: usize) -> usize {
        self.cores
            .iter()
            .position(|c| c.contains(&task))
            .unwrap_or_else(|| panic!("task {task} is not assigned to any core"))
    }

    /// Validates that every one of `n` tasks appears exactly once.
    pub fn is_complete_for(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for t in self.cores.iter().flatten() {
            if *t >= n || seen[*t] {
                return false;
            }
            seen[*t] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

/// Errors from multicore analysis.
#[derive(Debug)]
pub enum MulticoreError {
    /// No cores requested, or no capacity for the tasks.
    NoCores,
    /// First-fit could not place a task (utilization over capacity).
    Unplaceable {
        /// The task that did not fit.
        task: String,
    },
    /// The assignment does not cover every task exactly once.
    BadAssignment,
    /// An underlying analysis failed.
    Analysis(AnalysisError),
}

impl std::fmt::Display for MulticoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MulticoreError::NoCores => write!(f, "at least one core is required"),
            MulticoreError::Unplaceable { task } => {
                write!(f, "task `{task}` does not fit on any core (utilization)")
            }
            MulticoreError::BadAssignment => {
                write!(f, "assignment must place every task exactly once")
            }
            MulticoreError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MulticoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MulticoreError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for MulticoreError {
    fn from(e: AnalysisError) -> Self {
        MulticoreError::Analysis(e)
    }
}

/// First-fit-decreasing assignment by utilization: tasks are sorted by
/// falling `C/P` and placed on the first core whose accumulated
/// utilization stays at or below `capacity` (1.0 for a plain bound;
/// lower to leave headroom for preemption overheads).
///
/// # Errors
///
/// Returns [`MulticoreError::NoCores`] or
/// [`MulticoreError::Unplaceable`].
pub fn first_fit_assignment(
    tasks: &[AnalyzedTask],
    cores: usize,
    capacity: f64,
) -> Result<CoreAssignment, MulticoreError> {
    if cores == 0 {
        return Err(MulticoreError::NoCores);
    }
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    let util = |i: usize| tasks[i].wcet() as f64 / tasks[i].params().period as f64;
    order.sort_by(|a, b| util(*b).partial_cmp(&util(*a)).expect("utilizations are finite"));
    let mut assignment = CoreAssignment { cores: vec![Vec::new(); cores] };
    let mut load = vec![0f64; cores];
    for t in order {
        let Some(c) = (0..cores).find(|c| load[*c] + util(t) <= capacity) else {
            return Err(MulticoreError::Unplaceable { task: tasks[t].name().to_string() });
        };
        load[c] += util(t);
        assignment.cores[c].push(t);
    }
    Ok(assignment)
}

/// Shared-L2 configuration for cross-core interference bounding.
#[derive(Debug, Clone, Copy)]
pub struct SharedL2 {
    /// The shared L2's geometry.
    pub geometry: CacheGeometry,
    /// Hierarchy timing (`l2_penalty`, `mem_penalty`).
    pub model: HierarchyTimingModel,
}

/// Per-core analysis results.
#[derive(Debug, Clone)]
pub struct CoreReport {
    /// Core index.
    pub core: usize,
    /// `(task index, WCET used, result)` per task on this core, in input
    /// order.
    pub tasks: Vec<(usize, u64, WcrtResult)>,
}

/// Analyzes a partitioned multicore system: per-core single-processor
/// CRPD/WCRT (the paper's combined approach among same-core tasks), with
/// an optional shared-L2 interference inflation of every WCET.
///
/// `programs` must parallel `tasks` when `shared_l2` is given (the
/// hierarchy WCET is re-estimated); pass an empty slice otherwise.
///
/// # Errors
///
/// Returns [`MulticoreError::BadAssignment`] for incomplete assignments
/// or [`MulticoreError::Analysis`] for underlying failures.
pub fn multicore_analyze(
    tasks: &[AnalyzedTask],
    programs: &[rtprogram::Program],
    assignment: &CoreAssignment,
    shared_l2: Option<SharedL2>,
    params: &WcrtParams,
) -> Result<Vec<CoreReport>, MulticoreError> {
    if !assignment.is_complete_for(tasks.len()) {
        return Err(MulticoreError::BadAssignment);
    }
    // Effective WCETs: the L1-analysis WCET, or the hierarchy WCET plus
    // the cross-core L2 interference inflation.
    let mut wcets: Vec<u64> = tasks.iter().map(AnalyzedTask::wcet).collect();
    if let Some(l2) = shared_l2 {
        assert_eq!(programs.len(), tasks.len(), "shared-L2 analysis needs one program per task");
        let l2_footprints: Vec<Ciip> =
            tasks.iter().map(|t| Ciip::from_blocks(l2.geometry, t.all_blocks().blocks())).collect();
        for (i, task) in tasks.iter().enumerate() {
            let est = estimate_wcet_hierarchy(&programs[i], task.geometry(), l2.geometry, l2.model)
                .map_err(|source| AnalysisError::Wcet { task: task.name().to_string(), source })?;
            let worst =
                est.per_variant.iter().max_by_key(|v| v.cycles).expect("at least one variant");
            let my_core = assignment.core_of(i);
            let foreign_overlap: u64 = (0..tasks.len())
                .filter(|j| *j != i && assignment.core_of(*j) != my_core)
                .map(|j| l2_footprints[i].overlap_bound(&l2_footprints[j]) as u64)
                .sum();
            let degradable = worst.l2_hits.min(foreign_overlap);
            wcets[i] = est.cycles + degradable * (l2.model.mem_penalty - l2.model.l2_penalty);
        }
    }

    let mut reports = Vec::with_capacity(assignment.core_count());
    for (core, members) in assignment.cores.iter().enumerate() {
        // Per-core CRPD matrix among this core's tasks only.
        let core_tasks: Vec<AnalyzedTask> = members.iter().map(|i| tasks[*i].clone()).collect();
        let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &core_tasks);
        let periods: Vec<u64> = core_tasks.iter().map(|t| t.params().period).collect();
        let priorities: Vec<u32> = core_tasks.iter().map(|t| t.params().priority).collect();
        let core_wcets: Vec<u64> = members.iter().map(|i| wcets[*i]).collect();
        let cpre = |i: usize, j: usize| {
            matrix.reload(i, j) as u64 * params.miss_penalty + 2 * params.ctx_switch
        };
        let results = (0..core_tasks.len())
            .map(|k| {
                response_time_generic(
                    &core_wcets,
                    &periods,
                    &priorities,
                    &cpre,
                    k,
                    params.max_iterations,
                )
            })
            .collect::<Vec<_>>();
        reports.push(CoreReport {
            core,
            tasks: members
                .iter()
                .zip(core_wcets)
                .zip(results)
                .map(|((i, w), r)| (*i, w, r))
                .collect(),
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskParams;
    use rtwcet::TimingModel;

    fn l1() -> CacheGeometry {
        CacheGeometry::new(64, 2, 16).unwrap()
    }

    fn analyze(p: &rtprogram::Program, period: u64, prio: u32) -> AnalyzedTask {
        AnalyzedTask::analyze(
            p,
            TaskParams { period, priority: prio },
            l1(),
            TimingModel::default(),
        )
        .unwrap()
    }

    fn four_tasks() -> (Vec<rtprogram::Program>, Vec<AnalyzedTask>) {
        let programs = vec![
            rtworkloads::kernels::fir_filter(0x0005_0000, 0x0030_0000, 4, 16),
            rtworkloads::kernels::histogram(0x0005_4000, 0x0031_0000, 64, 16),
            rtworkloads::kernels::crc32(0x0005_8000, 0x0032_0000, 32),
            rtworkloads::kernels::matrix_multiply(0x0005_c000, 0x0033_0000, 6),
        ];
        let tasks = programs
            .iter()
            .zip([40_000u64, 80_000, 120_000, 400_000])
            .zip([1u32, 2, 3, 4])
            .map(|((p, period), prio)| analyze(p, period, prio))
            .collect();
        (programs, tasks)
    }

    #[test]
    fn first_fit_covers_all_tasks() {
        let (_, tasks) = four_tasks();
        let a = first_fit_assignment(&tasks, 2, 1.0).unwrap();
        assert!(a.is_complete_for(tasks.len()));
        assert_eq!(a.core_count(), 2);
        for t in 0..tasks.len() {
            let _ = a.core_of(t); // must not panic
        }
    }

    #[test]
    fn first_fit_respects_capacity() {
        let (_, tasks) = four_tasks();
        // With absurdly low capacity nothing fits.
        assert!(matches!(
            first_fit_assignment(&tasks, 2, 1e-9),
            Err(MulticoreError::Unplaceable { .. })
        ));
        assert!(matches!(first_fit_assignment(&tasks, 0, 1.0), Err(MulticoreError::NoCores)));
    }

    #[test]
    fn partitioned_analysis_matches_per_core_single_processor() {
        let (programs, tasks) = four_tasks();
        let assignment = CoreAssignment { cores: vec![vec![0, 2], vec![1, 3]] };
        let params = WcrtParams { miss_penalty: 20, ctx_switch: 200, max_iterations: 10_000 };
        let reports = multicore_analyze(&tasks, &programs, &assignment, None, &params).unwrap();
        assert_eq!(reports.len(), 2);
        // Core 0 = tasks {0, 2}: identical to a single-processor analysis
        // of just those two tasks.
        let solo: Vec<AnalyzedTask> = vec![tasks[0].clone(), tasks[2].clone()];
        let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &solo);
        let expect = crate::analyze_all(&solo, &matrix, &params);
        assert_eq!(reports[0].tasks[0].2.cycles, expect[0].cycles);
        assert_eq!(reports[0].tasks[1].2.cycles, expect[1].cycles);
    }

    #[test]
    fn shared_l2_inflates_wcets_but_keeps_them_bounded() {
        let (programs, tasks) = four_tasks();
        let assignment = CoreAssignment { cores: vec![vec![0, 1], vec![2, 3]] };
        let params = WcrtParams { miss_penalty: 40, ctx_switch: 200, max_iterations: 10_000 };
        let shared = SharedL2 {
            geometry: CacheGeometry::new(1024, 8, 16).unwrap(),
            model: HierarchyTimingModel { cpi: 1, l2_penalty: 6, mem_penalty: 40 },
        };
        let without = multicore_analyze(&tasks, &programs, &assignment, None, &params).unwrap();
        let with =
            multicore_analyze(&tasks, &programs, &assignment, Some(shared), &params).unwrap();
        for (a, b) in without.iter().zip(&with) {
            for ((_, w_without, _), (_, w_with, _)) in a.tasks.iter().zip(&b.tasks) {
                // The hierarchy WCET plus inflation can exceed or undercut
                // the flat-L1 WCET (the L2 also absorbs self-misses), but
                // it must stay within the all-memory worst case.
                let _ = w_without;
                assert!(*w_with > 0);
            }
        }
        // Inflation really applies: with a *tiny* shared L2 the cross-core
        // overlap is large, so WCETs must not shrink when the L2 shrinks.
        let tiny =
            SharedL2 { geometry: CacheGeometry::new(64, 2, 16).unwrap(), model: shared.model };
        let with_tiny =
            multicore_analyze(&tasks, &programs, &assignment, Some(tiny), &params).unwrap();
        for (big, small) in with.iter().zip(&with_tiny) {
            for ((_, w_big, _), (_, w_small, _)) in big.tasks.iter().zip(&small.tasks) {
                assert!(w_small >= w_big, "smaller shared L2 cannot reduce the bound");
            }
        }
    }

    #[test]
    fn bad_assignment_rejected() {
        let (programs, tasks) = four_tasks();
        let params = WcrtParams::default();
        for cores in [
            vec![vec![0usize, 1], vec![2]],  // missing 3
            vec![vec![0, 1, 2, 3], vec![3]], // duplicate 3
            vec![vec![0, 1, 2, 9]],          // out of range
        ] {
            let a = CoreAssignment { cores };
            assert!(matches!(
                multicore_analyze(&tasks, &programs, &a, None, &params),
                Err(MulticoreError::BadAssignment)
            ));
        }
    }

    #[test]
    fn error_display() {
        assert!(MulticoreError::NoCores.to_string().contains("core"));
        assert!(MulticoreError::BadAssignment.to_string().contains("exactly once"));
    }
}
