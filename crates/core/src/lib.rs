//! CRPD/WCRT analysis for preemptive multi-tasking real-time systems with
//! caches — the primary contribution of Tan & Mooney (DATE 2004).
//!
//! The analysis bounds the *cache-related preemption delay* (CRPD) a
//! preempting task imposes on a preempted task and folds it into the
//! fixed-priority response-time recurrence:
//!
//! 1. **Intra-task analysis** ([`intra`]): which of the preempted task's
//!    memory blocks are *useful* — cached at the preemption point and
//!    re-referenced soon enough to have hit (Lee et al. \[21\], §IV).
//! 2. **Inter-task analysis** ([`rtcache::Ciip`]): the Cache Index
//!    Induced Partition and the per-set conflict bound
//!    `S(Ma, Mb) = Σ_r min(|m̂a,r|, |m̂b,r|, L)` (Eq. 2/3, §V).
//! 3. **Path analysis of the preempting task** (§VI): the bound is
//!    maximized over the preempting task's feasible paths (Eq. 4).
//! 4. **WCRT** ([`wcrt`]): Eq. 7's recurrence with per-preemption cost
//!    `Cpre(Ti,Tj) + 2·Ccs`.
//!
//! [`approaches`] implements the four bounds compared in the paper's
//! Table II; [`task::AnalyzedTask`] packages a program's traces, footprint
//! CIIPs and WCET for the analysis.
//!
//! # Example
//!
//! ```
//! use crpd::approaches::{reload_lines, CrpdApproach};
//! use crpd::task::{AnalyzedTask, TaskParams};
//! use rtcache::CacheGeometry;
//! use rtwcet::TimingModel;
//!
//! # fn main() -> Result<(), crpd::AnalysisError> {
//! let geometry = CacheGeometry::paper_l1();
//! let model = TimingModel::default();
//! let ed = AnalyzedTask::analyze(
//!     &rtworkloads::edge_detection_with_dim(8),
//!     TaskParams { period: 650_000, priority: 3 },
//!     geometry,
//!     model,
//! )?;
//! let mr = AnalyzedTask::analyze(
//!     &rtworkloads::mobile_robot(),
//!     TaskParams { period: 350_000, priority: 2 },
//!     geometry,
//!     model,
//! )?;
//! let combined = reload_lines(CrpdApproach::Combined, &ed, &mr);
//! let naive = reload_lines(CrpdApproach::AllPreemptingLines, &ed, &mr);
//! assert!(combined <= naive);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approaches;
pub mod hierarchy;
pub mod intra;
pub mod multicore;
pub mod partition;
pub mod schedutil;
pub mod task;
pub mod wcrt;

/// Serializes unit tests that install an `rtobs` session: the recorder
/// is process-global, so a concurrently-running test could otherwise
/// record into (and collide with) another test's counters.
#[cfg(test)]
pub(crate) fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    match LOCK.get_or_init(std::sync::Mutex::default).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

use std::fmt;

pub use approaches::{
    combined_overlap_breakdown, reload_lines, CrpdApproach, CrpdCellCache, CrpdMatrix,
};
pub use hierarchy::{two_level_analyze_all, two_level_preemption_delay, TwoLevelParams};
pub use intra::{dataflow_useful, skyline_stats, DataflowUseful, UsefulTrace};
pub use multicore::{first_fit_assignment, multicore_analyze, CoreAssignment, SharedL2};
pub use partition::{even_way_partition, partitioned_analyze_all, PartitionedTask};
pub use schedutil::{hyperperiod, liu_layland_bound, rate_monotonic_priorities, total_utilization};
pub use task::{
    content_hash128, program_fingerprint, AnalyzedPath, AnalyzedProgram, AnalyzedTask, TaskParams,
};
pub use wcrt::{
    analyze_all, explain_response_time, response_time, response_time_generic, StopReason,
    WcrtBreakdown, WcrtParams, WcrtResult,
};

/// Which useful-block formulation Approaches 3 and 4 use.
#[derive(Debug, Clone, Copy)]
pub enum UsefulMethod<'a> {
    /// The exact per-execution-point trace sweep (default).
    TraceExact,
    /// Lee's RMB/LMB dataflow over the preempted task's CFG (looser;
    /// for fidelity comparisons and ablations).
    Dataflow(&'a DataflowUseful),
}

/// Errors from the CRPD analysis pipeline.
#[derive(Debug)]
pub enum AnalysisError {
    /// A task's path simulation faulted.
    Exec {
        /// The task whose simulation faulted.
        task: String,
        /// The underlying fault.
        source: rtprogram::ExecError,
    },
    /// WCET estimation failed.
    Wcet {
        /// The task whose WCET estimation failed.
        task: String,
        /// The underlying error.
        source: rtwcet::WcetError,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Exec { task, source } => write!(f, "simulating task `{task}`: {source}"),
            AnalysisError::Wcet { task, source } => {
                write!(f, "estimating WCET of task `{task}`: {source}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Exec { source, .. } => Some(source),
            AnalysisError::Wcet { source, .. } => Some(source),
        }
    }
}
