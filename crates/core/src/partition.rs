//! Cache-partitioning analysis — the *other* category of cache
//! predictability techniques the paper surveys in §II (SMART-style
//! hardware partitioning \[2\], \[3\]).
//!
//! Giving each task a private slice of the cache ways eliminates
//! inter-task eviction entirely — `Cpre ≡ 0` — but every task then runs
//! against a smaller cache, inflating its WCET. This module quantifies
//! that trade-off so the `repro` ablation can compare partitioning
//! against the paper's shared-cache combined analysis.

use rtcache::{CacheGeometry, GeometryError};
use rtprogram::Program;
use rtwcet::{estimate_wcet, TimingModel};

use crate::task::TaskParams;
use crate::wcrt::{response_time_generic, WcrtResult};
use crate::AnalysisError;

/// Errors from partition construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// More tasks than ways: someone would get an empty partition.
    TooManyTasks {
        /// Number of tasks to place.
        tasks: usize,
        /// Ways available.
        ways: u32,
    },
    /// The per-task geometry was invalid.
    Geometry(GeometryError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::TooManyTasks { tasks, ways } => {
                write!(f, "{tasks} tasks cannot share {ways} ways (each needs at least one)")
            }
            PartitionError::Geometry(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<GeometryError> for PartitionError {
    fn from(e: GeometryError) -> Self {
        PartitionError::Geometry(e)
    }
}

/// Splits the cache ways evenly across `tasks` tasks; leftover ways go to
/// the earliest tasks (input order — by convention the highest-priority
/// tasks, which benefit most from extra capacity).
///
/// # Errors
///
/// Returns [`PartitionError::TooManyTasks`] if there are fewer ways than
/// tasks.
pub fn even_way_partition(
    geometry: CacheGeometry,
    tasks: usize,
) -> Result<Vec<u32>, PartitionError> {
    if tasks == 0 {
        return Ok(Vec::new());
    }
    if (tasks as u64) > u64::from(geometry.ways()) {
        return Err(PartitionError::TooManyTasks { tasks, ways: geometry.ways() });
    }
    let base = geometry.ways() / tasks as u32;
    let extra = geometry.ways() as usize % tasks;
    Ok((0..tasks).map(|i| base + u32::from(i < extra)).collect())
}

/// The outcome of analyzing one task under its partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedTask {
    /// Task name.
    pub name: String,
    /// Ways assigned to the task.
    pub ways: u32,
    /// WCET against the partitioned (smaller) cache.
    pub wcet: u64,
    /// Response time under Eq. 6 with `Cpre = 0` (context switches still
    /// charged twice per preemption).
    pub response: WcrtResult,
}

/// Analyzes a task system under way-partitioning: each task gets
/// `ways[i]` ways of the cache's sets, its WCET is re-estimated against
/// that private geometry, and response times are computed with zero CRPD.
///
/// # Errors
///
/// Returns [`AnalysisError::Wcet`] if a WCET estimation fails.
///
/// # Panics
///
/// Panics if the input lengths disagree, a partition has zero ways, or
/// priorities are not distinct.
pub fn partitioned_analyze_all(
    programs: &[Program],
    params: &[TaskParams],
    geometry: CacheGeometry,
    model: TimingModel,
    ways: &[u32],
    ctx_switch: u64,
    max_iterations: u32,
) -> Result<Vec<PartitionedTask>, AnalysisError> {
    assert_eq!(programs.len(), params.len(), "one parameter set per program");
    assert_eq!(programs.len(), ways.len(), "one partition per program");
    let mut wcets = Vec::with_capacity(programs.len());
    for (program, w) in programs.iter().zip(ways) {
        assert!(*w > 0, "every task needs at least one way");
        let private = CacheGeometry::new(geometry.sets(), *w, geometry.line_bytes())
            .expect("sets and line size come from a valid geometry");
        let est = estimate_wcet(program, private, model)
            .map_err(|source| AnalysisError::Wcet { task: program.name().to_string(), source })?;
        wcets.push(est.cycles);
    }
    let periods: Vec<u64> = params.iter().map(|p| p.period).collect();
    let priorities: Vec<u32> = params.iter().map(|p| p.priority).collect();
    let cpre = |_i: usize, _j: usize| 2 * ctx_switch;
    Ok((0..programs.len())
        .map(|i| PartitionedTask {
            name: programs[i].name().to_string(),
            ways: ways[i],
            wcet: wcets[i],
            response: response_time_generic(
                &wcets,
                &periods,
                &priorities,
                &cpre,
                i,
                max_iterations,
            ),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approaches::{CrpdApproach, CrpdMatrix};
    use crate::task::AnalyzedTask;
    use crate::wcrt::WcrtParams;

    #[test]
    fn even_partition_distributes_remainder() {
        let g = CacheGeometry::paper_l1(); // 4 ways
        assert_eq!(even_way_partition(g, 3).unwrap(), vec![2, 1, 1]);
        assert_eq!(even_way_partition(g, 2).unwrap(), vec![2, 2]);
        assert_eq!(even_way_partition(g, 4).unwrap(), vec![1, 1, 1, 1]);
        assert!(even_way_partition(g, 0).unwrap().is_empty());
        assert!(matches!(
            even_way_partition(g, 5),
            Err(PartitionError::TooManyTasks { tasks: 5, ways: 4 })
        ));
    }

    #[test]
    fn partitioning_inflates_wcet_but_zeroes_crpd() {
        let geometry = CacheGeometry::new(64, 4, 16).unwrap();
        let model = TimingModel::default();
        let programs = vec![rtworkloads::mobile_robot(), rtworkloads::edge_detection_with_dim(10)];
        let params = vec![
            TaskParams { period: 300_000, priority: 2 },
            TaskParams { period: 3_000_000, priority: 3 },
        ];
        let ways = even_way_partition(geometry, 2).unwrap();
        let parted =
            partitioned_analyze_all(&programs, &params, geometry, model, &ways, 300, 10_000)
                .unwrap();
        // Shared-cache WCETs for comparison.
        for (p, pt) in programs.iter().zip(&parted) {
            let shared = estimate_wcet(p, geometry, model).unwrap().cycles;
            assert!(pt.wcet >= shared, "{}: fewer ways cannot be faster", pt.name);
        }
        assert!(parted.iter().all(|t| t.response.schedulable));
        // Against the shared-cache combined analysis: same recurrence
        // structure, different cost split.
        let tasks: Vec<AnalyzedTask> = programs
            .iter()
            .zip(&params)
            .map(|(p, prm)| AnalyzedTask::analyze(p, prm.clone(), geometry, model).unwrap())
            .collect();
        let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
        let shared = crate::analyze_all(
            &tasks,
            &matrix,
            &WcrtParams { miss_penalty: 20, ctx_switch: 300, max_iterations: 10_000 },
        );
        // Both are valid analyses; neither dominates universally — just
        // check both produce sensible, schedulable results here.
        assert!(shared.iter().all(|r| r.schedulable));
    }

    #[test]
    fn error_display() {
        let e = PartitionError::TooManyTasks { tasks: 9, ways: 4 };
        assert!(e.to_string().contains('9'));
    }
}
