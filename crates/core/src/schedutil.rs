//! Schedulability utilities around the WCRT analysis: rate-monotonic
//! priority assignment (the paper assumes RMA, §II), utilization,
//! hyperperiods and the Liu–Layland bound.

use crate::task::AnalyzedTask;

/// Total processor utilization `Σ C_i / P_i` (preemption overheads not
/// included, as in the classic test).
pub fn total_utilization(tasks: &[AnalyzedTask]) -> f64 {
    tasks.iter().map(|t| t.wcet() as f64 / t.params().period as f64).sum()
}

/// The Liu–Layland rate-monotonic utilization bound `n(2^{1/n} − 1)`:
/// below it, a task set is schedulable under RMA regardless of phasing.
///
/// Returns 0 for `n == 0`.
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        n as f64 * ((2f64).powf(1.0 / n as f64) - 1.0)
    }
}

/// Rate-monotonic priorities for the given periods: the shortest period
/// gets priority 1 (highest), ties broken by input order. The result is
/// parallel to `periods`.
pub fn rate_monotonic_priorities(periods: &[u64]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..periods.len()).collect();
    order.sort_by_key(|i| (periods[*i], *i));
    let mut priorities = vec![0u32; periods.len()];
    for (rank, task) in order.into_iter().enumerate() {
        priorities[task] = rank as u32 + 1;
    }
    priorities
}

/// The hyperperiod (least common multiple of the periods), or `None` on
/// overflow or an empty/zero-period input.
pub fn hyperperiod(periods: &[u64]) -> Option<u64> {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    let mut acc = 1u64;
    if periods.is_empty() {
        return None;
    }
    for &p in periods {
        if p == 0 {
            return None;
        }
        acc = acc.checked_mul(p / gcd(acc, p))?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskParams;
    use rtcache::CacheGeometry;
    use rtwcet::TimingModel;

    #[test]
    fn rm_orders_by_period() {
        assert_eq!(rate_monotonic_priorities(&[40_000, 6_500, 3_500]), vec![3, 2, 1]);
        assert_eq!(rate_monotonic_priorities(&[5, 5, 1]), vec![2, 3, 1], "ties by input order");
        assert!(rate_monotonic_priorities(&[]).is_empty());
    }

    #[test]
    fn paper_task_sets_follow_rm() {
        // Table I's priorities (2, 3, 4 from shortest to longest period)
        // are exactly rate monotonic.
        let rm = rate_monotonic_priorities(&[3_500, 6_500, 40_000]);
        assert_eq!(rm, vec![1, 2, 3]);
    }

    #[test]
    fn hyperperiod_basics() {
        assert_eq!(hyperperiod(&[4, 6]), Some(12));
        assert_eq!(hyperperiod(&[7]), Some(7));
        assert_eq!(hyperperiod(&[2, 3, 5]), Some(30));
        assert_eq!(hyperperiod(&[]), None);
        assert_eq!(hyperperiod(&[0, 3]), None);
        assert_eq!(hyperperiod(&[u64::MAX, u64::MAX - 1]), None, "overflow detected");
    }

    #[test]
    fn liu_layland_values() {
        assert_eq!(liu_layland_bound(0), 0.0);
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
        assert!(liu_layland_bound(100) > 2f64.ln() - 1e-3);
    }

    #[test]
    fn utilization_sums_ratios() {
        let g = CacheGeometry::paper_l1();
        let model = TimingModel::default();
        let p = rtworkloads::mobile_robot();
        let t = AnalyzedTask::analyze(&p, TaskParams { period: 100_000, priority: 1 }, g, model)
            .unwrap();
        let u = total_utilization(&[t.clone(), t.clone()]);
        let single = t.wcet() as f64 / 100_000.0;
        assert!((u - 2.0 * single).abs() < 1e-12);
    }
}
