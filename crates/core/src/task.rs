//! Analyzed tasks: a program plus everything the CRPD/WCRT analysis needs.
//!
//! The analysis artifacts are split into two layers so that scheduling
//! parameters never invalidate cache-state work:
//!
//! * [`AnalyzedProgram`] — the params-free artifact: per-variant
//!   [`UsefulTrace`]s, per-path and union [`Ciip`] footprints, and the
//!   WCET. It depends only on `(program content, geometry, model)` and
//!   carries a 128-bit content [`AnalyzedProgram::fingerprint`] over
//!   exactly those inputs, so it can be content-addressed in artifact
//!   stores and reused across parameter sweeps.
//! * [`AnalyzedTask`] — a thin binding of an `Arc<AnalyzedProgram>` plus
//!   [`TaskParams`]. Rebinding new params ([`AnalyzedTask::rebind`]) is
//!   O(1) and shares the underlying artifact.

use std::fmt;
use std::sync::Arc;

use rtcache::{CacheGeometry, Ciip, PackedFootprint};
use rtprogram::Program;
use rtwcet::{estimate_wcet, TimingModel};

use crate::intra::UsefulTrace;
use crate::AnalysisError;

/// Scheduling parameters of a task (paper Table I). Smaller `priority`
/// values denote **higher** priority (MR, priority 2, preempts OFDM,
/// priority 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskParams {
    /// Task period in cycles; the deadline equals the period (§III-A).
    pub period: u64,
    /// Fixed priority; smaller is higher.
    pub priority: u32,
}

/// 128-bit content hash over length-prefixed fields: two independent
/// 64-bit FNV-1a streams (distinct offset bases, the second fed a
/// bytewise-transformed copy of the input) concatenated into a `u128`.
///
/// Each field is prefixed with its little-endian 64-bit length, so field
/// boundaries are part of the content — `["ab","c"]` and `["a","bc"]`
/// hash differently. A single 64-bit FNV is birthday-bound at ~2³²
/// artifacts; the doubled stream pushes collisions beyond anything a
/// long-running artifact server will hold.
pub fn content_hash128<'a>(fields: impl IntoIterator<Item = &'a [u8]>) -> u128 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const BASIS_LO: u64 = 0xcbf2_9ce4_8422_2325;
    // Low half of the 128-bit FNV offset basis — independent of BASIS_LO.
    const BASIS_HI: u64 = 0x6c62_272e_07bb_0142;
    let (mut lo, mut hi) = (BASIS_LO, BASIS_HI);
    let mut eat = |byte: u8| {
        lo = (lo ^ u64::from(byte)).wrapping_mul(PRIME);
        hi = (hi ^ u64::from(byte ^ 0xa5)).wrapping_mul(PRIME);
    };
    for field in fields {
        for byte in (field.len() as u64).to_le_bytes() {
            eat(byte);
        }
        for &byte in field {
            eat(byte);
        }
    }
    (u128::from(hi) << 64) | u128::from(lo)
}

/// The 128-bit content key of an analysis artifact: everything
/// [`AnalyzedProgram::analyze`] depends on — the program name, its
/// canonical disassembly, entry point, every input variant (name and
/// writes; the disassembly does not list variants), the cache geometry
/// and the timing model.
pub fn program_fingerprint(program: &Program, geometry: CacheGeometry, model: TimingModel) -> u128 {
    let listing = rtprogram::asm::disassemble(program);
    let mut fields: Vec<Vec<u8>> = vec![
        program.name().as_bytes().to_vec(),
        listing.into_bytes(),
        program.entry().to_le_bytes().to_vec(),
        format!("{geometry:?}").into_bytes(),
        format!("{model:?}").into_bytes(),
    ];
    for variant in program.variants() {
        fields.push(variant.name.as_bytes().to_vec());
        let mut writes = Vec::with_capacity(variant.writes.len() * 12);
        for (addr, value) in &variant.writes {
            writes.extend_from_slice(&addr.to_le_bytes());
            writes.extend_from_slice(&value.to_le_bytes());
        }
        fields.push(writes);
    }
    content_hash128(fields.iter().map(Vec::as_slice))
}

/// The params-free analysis artifact of one program under one cache
/// geometry and timing model: per-feasible-path traces with hit
/// classification, the union footprint `M`, per-path footprints `M^k`,
/// and the program's WCET.
///
/// Scheduling parameters are deliberately absent — bind them with
/// [`AnalyzedTask::bind`]. This is the unit of content-addressed caching:
/// two tasks with the same program, geometry and model share one
/// `AnalyzedProgram` regardless of their periods and priorities.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    name: String,
    wcet: u64,
    geometry: CacheGeometry,
    model: TimingModel,
    fingerprint: u128,
    /// One entry per input variant (feasible path).
    paths: Vec<AnalyzedPath>,
    /// Union footprint over all paths (`Ma`).
    all_blocks: Ciip,
    /// `all_blocks` packed for the dense Eq. 2 kernel; `None` only when
    /// the geometry does not pack (`L > 255`).
    all_packed: Option<PackedFootprint>,
}

/// One feasible path's artifacts.
#[derive(Debug, Clone)]
pub struct AnalyzedPath {
    /// Variant name.
    pub name: String,
    /// Block-level trace with hit flags (drives the useful-block sweep).
    pub trace: UsefulTrace,
    /// The path's footprint (`M^k` in §VI).
    pub blocks: Ciip,
    /// `blocks` packed for the dense Eq. 3 kernel; `None` only when the
    /// geometry does not pack (`L > 255`).
    pub packed: Option<PackedFootprint>,
}

impl AnalyzedProgram {
    /// Simulates every feasible path of `program`, classifies its accesses
    /// against a cold cache and estimates the WCET.
    ///
    /// The WCET estimation and the per-variant trace analyses are
    /// independent, so they fan out over the current [`rtpar`] pool; the
    /// union footprint is folded in variant order afterwards, keeping the
    /// artifact byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if a path simulation faults.
    pub fn analyze(
        program: &Program,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<Self, AnalysisError> {
        let _span = rtobs::span_labeled("analyze", || program.name().to_string());
        let (wcet, traced) = rtpar::join(
            || {
                let _span = rtobs::span_labeled("wcet", || program.name().to_string());
                estimate_wcet(program, geometry, model).map_err(|e| AnalysisError::Wcet {
                    task: program.name().to_string(),
                    source: e,
                })
            },
            || {
                rtpar::par_map(program.variants(), |variant| {
                    let _span = rtobs::span_labeled("trace", || {
                        format!("{}/{}", program.name(), variant.name)
                    });
                    let trace =
                        rtprogram::sim::trace_variant(program, variant).map_err(|source| {
                            AnalysisError::Exec { task: program.name().to_string(), source }
                        })?;
                    let trace = UsefulTrace::from_trace(&trace, geometry);
                    let blocks = trace.all_blocks();
                    let packed = PackedFootprint::from_ciip(&blocks);
                    Ok(AnalyzedPath { name: variant.name.clone(), trace, blocks, packed })
                })
            },
        );
        let wcet = wcet?;
        let ciip_span = rtobs::span_labeled("ciip", || program.name().to_string());
        let mut paths = Vec::with_capacity(traced.len());
        let mut all_blocks = Ciip::empty(geometry);
        for path in traced {
            let path: AnalyzedPath = path?;
            all_blocks = all_blocks.union(&path.blocks);
            paths.push(path);
        }
        let all_packed = {
            let _pack = rtobs::span_labeled("ciip_pack", || program.name().to_string());
            PackedFootprint::from_ciip(&all_blocks)
        };
        drop(ciip_span);
        Ok(AnalyzedProgram {
            name: program.name().to_string(),
            wcet: wcet.cycles,
            geometry,
            model,
            fingerprint: program_fingerprint(program, geometry, model),
            paths,
            all_blocks,
            all_packed,
        })
    }

    /// Rebuilds an artifact from its wire core: the name, WCET,
    /// fingerprint and per-path classified access sequences, as shipped
    /// between cluster peers.
    ///
    /// Everything else — per-path CIIPs, packed footprints, skylines and
    /// the union footprint — is a deterministic function of `(geometry,
    /// accesses)` and is recomputed here exactly as [`analyze`] computes
    /// it (same fold order), so the result is indistinguishable from the
    /// original. The fingerprint *cannot* be recomputed without the
    /// program, so the caller must only pass one it obtained from a
    /// trusted [`AnalyzedProgram::fingerprint`] for the same inputs.
    ///
    /// [`analyze`]: AnalyzedProgram::analyze
    pub fn from_parts(
        name: String,
        wcet: u64,
        geometry: CacheGeometry,
        model: TimingModel,
        fingerprint: u128,
        path_accesses: Vec<(String, Vec<(rtcache::MemoryBlock, bool)>)>,
    ) -> Self {
        let mut paths = Vec::with_capacity(path_accesses.len());
        let mut all_blocks = Ciip::empty(geometry);
        for (path_name, accesses) in path_accesses {
            let trace = UsefulTrace::from_accesses(geometry, accesses);
            let blocks = trace.all_blocks();
            let packed = PackedFootprint::from_ciip(&blocks);
            all_blocks = all_blocks.union(&blocks);
            paths.push(AnalyzedPath { name: path_name, trace, blocks, packed });
        }
        let all_packed = PackedFootprint::from_ciip(&all_blocks);
        AnalyzedProgram { name, wcet, geometry, model, fingerprint, paths, all_blocks, all_packed }
    }

    /// The program (task) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The WCET in cycles (without preemption costs), per Eq. 6's `C_i`.
    pub fn wcet(&self) -> u64 {
        self.wcet
    }

    /// The cache geometry the analysis ran under.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The timing model the analysis ran under.
    pub fn model(&self) -> TimingModel {
        self.model
    }

    /// The 128-bit content key of this artifact (see
    /// [`program_fingerprint`]): equal fingerprints mean equal program
    /// content, geometry and model, so analysis results are
    /// interchangeable.
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// Per-feasible-path artifacts.
    pub fn paths(&self) -> &[AnalyzedPath] {
        &self.paths
    }

    /// The union footprint `Ma` over all feasible paths.
    pub fn all_blocks(&self) -> &Ciip {
        &self.all_blocks
    }

    /// The union footprint packed for the dense Eq. 2 kernel, when the
    /// geometry packs (`L <= 255`). Built once at analysis time.
    pub fn all_blocks_packed(&self) -> Option<&PackedFootprint> {
        self.all_packed.as_ref()
    }

    /// Approach 3's per-task reload count: the maximum over feasible paths
    /// and execution points of `Σ_r min(|useful_r|, L)` (Definition 4
    /// evaluated per path).
    pub fn useful_line_bound(&self) -> usize {
        let _span = rtobs::span_labeled("mumbs", || format!("{}: line bound", self.name));
        self.paths.iter().map(|p| p.trace.max_line_bound().0).max().unwrap_or(0)
    }

    /// The maximum useful memory blocks set (`M̃a`, Definition 4): the
    /// useful set at the worst execution point of the worst path.
    pub fn mumbs(&self) -> Ciip {
        let _span = rtobs::span_labeled("mumbs", || self.name.clone());
        self.paths
            .iter()
            .map(|p| p.trace.mumbs())
            .max_by_key(Ciip::line_bound)
            .unwrap_or_else(|| Ciip::empty(self.geometry))
    }

    /// The combined bound of §V–VI against a preempting footprint `mb`:
    /// maximum over this program's paths and execution points of
    /// `S(useful(t), mb)`.
    ///
    /// Packs `mb` once and searches each path's dominance-pruned skyline
    /// when available; traces without a skyline fall back to the exact
    /// backward sweep. The result is identical either way.
    pub fn max_useful_overlap(&self, mb: &Ciip) -> usize {
        match PackedFootprint::from_ciip(mb) {
            Some(packed) => self.max_useful_overlap_packed(&packed),
            None => {
                let _span = rtobs::span_labeled("mumbs", || format!("{}: overlap", self.name));
                self.paths.iter().map(|p| p.trace.max_overlap_bound(mb).0).max().unwrap_or(0)
            }
        }
    }

    /// [`AnalyzedProgram::max_useful_overlap`] against an already-packed
    /// preempting footprint, skipping the per-call packing — the hot form
    /// used by the Approach 4 matrix loop, where the preemptor's per-path
    /// footprints are packed once at analysis time.
    ///
    /// # Panics
    ///
    /// Panics if `mb` was packed for a different geometry.
    pub fn max_useful_overlap_packed(&self, mb: &PackedFootprint) -> usize {
        let _span = rtobs::span_labeled("mumbs", || format!("{}: overlap", self.name));
        self.paths.iter().map(|p| p.trace.max_packed_overlap(mb)).max().unwrap_or(0)
    }
}

/// A schedulable task: a shared [`AnalyzedProgram`] artifact bound to
/// [`TaskParams`]. Cloning or [`rebind`](AnalyzedTask::rebind)ing shares
/// the artifact; only the thin params differ.
#[derive(Debug, Clone)]
pub struct AnalyzedTask {
    program: Arc<AnalyzedProgram>,
    params: TaskParams,
}

impl AnalyzedTask {
    /// Analyzes `program` and binds `params` in one step — the
    /// convenience constructor for callers without an artifact store.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if a path simulation faults.
    pub fn analyze(
        program: &Program,
        params: TaskParams,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<Self, AnalysisError> {
        Ok(Self::bind(Arc::new(AnalyzedProgram::analyze(program, geometry, model)?), params))
    }

    /// Binds scheduling parameters to an existing analysis artifact.
    /// O(1); no pipeline stage re-runs.
    pub fn bind(program: Arc<AnalyzedProgram>, params: TaskParams) -> Self {
        AnalyzedTask { program, params }
    }

    /// This task with different scheduling parameters, sharing the same
    /// underlying artifact. O(1); no pipeline stage re-runs.
    pub fn rebind(&self, params: TaskParams) -> Self {
        AnalyzedTask { program: Arc::clone(&self.program), params }
    }

    /// Binds one parameter set per artifact in index order — the batch
    /// entry point for parameter sweeps, where a sweep point supplies a
    /// fresh `TaskParams` vector over the same cached
    /// [`AnalyzedProgram`]s. O(n) `Arc` clones; no pipeline stage
    /// re-runs.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn bind_all(programs: &[Arc<AnalyzedProgram>], params: &[TaskParams]) -> Vec<AnalyzedTask> {
        assert_eq!(
            programs.len(),
            params.len(),
            "bind_all needs exactly one parameter set per program"
        );
        programs
            .iter()
            .zip(params)
            .map(|(program, params)| AnalyzedTask::bind(Arc::clone(program), params.clone()))
            .collect()
    }

    /// The shared params-free analysis artifact.
    pub fn program(&self) -> &Arc<AnalyzedProgram> {
        &self.program
    }

    /// The task name.
    pub fn name(&self) -> &str {
        self.program.name()
    }

    /// Scheduling parameters.
    pub fn params(&self) -> &TaskParams {
        &self.params
    }

    /// The task's WCET in cycles (without preemption costs), per Eq. 6's
    /// `C_i`.
    pub fn wcet(&self) -> u64 {
        self.program.wcet()
    }

    /// The cache geometry the analysis ran under.
    pub fn geometry(&self) -> CacheGeometry {
        self.program.geometry()
    }

    /// The content fingerprint of the underlying [`AnalyzedProgram`].
    pub fn fingerprint(&self) -> u128 {
        self.program.fingerprint()
    }

    /// Per-feasible-path artifacts.
    pub fn paths(&self) -> &[AnalyzedPath] {
        self.program.paths()
    }

    /// The union footprint `Ma` over all feasible paths.
    pub fn all_blocks(&self) -> &Ciip {
        self.program.all_blocks()
    }

    /// The union footprint packed for the dense Eq. 2 kernel, when the
    /// geometry packs (`L <= 255`).
    pub fn all_blocks_packed(&self) -> Option<&PackedFootprint> {
        self.program.all_blocks_packed()
    }

    /// Approach 3's per-task reload count: the maximum over feasible paths
    /// and execution points of `Σ_r min(|useful_r|, L)` (Definition 4
    /// evaluated per path).
    pub fn useful_line_bound(&self) -> usize {
        self.program.useful_line_bound()
    }

    /// The maximum useful memory blocks set (`M̃a`, Definition 4): the
    /// useful set at the worst execution point of the worst path.
    pub fn mumbs(&self) -> Ciip {
        self.program.mumbs()
    }

    /// The combined bound of §V–VI against a preempting footprint `mb`:
    /// maximum over this task's paths and execution points of
    /// `S(useful(t), mb)`.
    pub fn max_useful_overlap(&self, mb: &Ciip) -> usize {
        self.program.max_useful_overlap(mb)
    }

    /// [`AnalyzedTask::max_useful_overlap`] against an already-packed
    /// preempting footprint (no per-call packing).
    ///
    /// # Panics
    ///
    /// Panics if `mb` was packed for a different geometry.
    pub fn max_useful_overlap_packed(&self, mb: &PackedFootprint) -> usize {
        self.program.max_useful_overlap_packed(mb)
    }
}

impl fmt::Display for AnalyzedTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: C={} cycles, P={}, prio={}, footprint={} lines",
            self.name(),
            self.wcet(),
            self.params.period,
            self.params.priority,
            self.all_blocks().line_bound()
        )
    }
}

// The analysis server shares `Arc<AnalyzedProgram>` across worker
// threads; keep the artifacts thread-safe by construction.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnalyzedProgram>();
    assert_send_sync::<AnalyzedTask>();
    assert_send_sync::<AnalyzedPath>();
    assert_send_sync::<TaskParams>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rtcache::CacheGeometry;

    fn analyze(p: &Program) -> AnalyzedTask {
        AnalyzedTask::analyze(
            p,
            TaskParams { period: 1_000_000, priority: 1 },
            CacheGeometry::paper_l1(),
            TimingModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn paths_cover_variants() {
        let p = rtworkloads::edge_detection_with_dim(8);
        let t = analyze(&p);
        assert_eq!(t.paths().len(), 2);
        assert_eq!(t.paths()[0].name, "sobel");
        assert!(t.wcet() > 0);
    }

    #[test]
    fn union_footprint_contains_each_path() {
        let p = rtworkloads::edge_detection_with_dim(8);
        let t = analyze(&p);
        for path in t.paths() {
            for b in path.blocks.blocks() {
                assert!(t.all_blocks().contains(b));
            }
        }
        // The Cauchy path touches tables the Sobel path does not, so the
        // union is strictly larger than the Sobel footprint.
        assert!(t.all_blocks().block_count() > t.paths()[0].blocks.block_count());
    }

    #[test]
    fn useful_bound_at_most_footprint() {
        let p = rtworkloads::mobile_robot();
        let t = analyze(&p);
        assert!(t.useful_line_bound() <= t.all_blocks().line_bound());
        assert!(t.useful_line_bound() > 0, "a looping task reuses blocks");
    }

    #[test]
    fn mumbs_is_a_subset_of_the_footprint() {
        let p = rtworkloads::mobile_robot();
        let t = analyze(&p);
        let mumbs = t.mumbs();
        for b in mumbs.blocks() {
            assert!(t.all_blocks().contains(b));
        }
    }

    #[test]
    fn overlap_bound_never_exceeds_either_side() {
        let p1 = rtworkloads::mobile_robot();
        let p2 = rtworkloads::edge_detection_with_dim(8);
        let a = analyze(&p1);
        let b = analyze(&p2);
        let s = a.max_useful_overlap(b.all_blocks());
        assert!(s <= a.useful_line_bound());
        assert!(s <= b.all_blocks().line_bound());
    }

    #[test]
    fn from_parts_round_trips_the_whole_artifact() {
        // The cluster peer-fetch contract: shipping only (name, wcet,
        // fingerprint, per-path access sequences) and rebuilding with
        // `from_parts` must reproduce the artifact exactly — CIIPs,
        // packed footprints and skylines included. Debug formatting
        // covers every field, private ones included.
        for p in [rtworkloads::mobile_robot(), rtworkloads::edge_detection_with_dim(8)] {
            let geometry = CacheGeometry::paper_l1();
            let model = TimingModel::default();
            let original = AnalyzedProgram::analyze(&p, geometry, model).unwrap();
            let core: Vec<(String, Vec<(rtcache::MemoryBlock, bool)>)> = original
                .paths()
                .iter()
                .map(|path| (path.name.clone(), path.trace.accesses().to_vec()))
                .collect();
            let rebuilt = AnalyzedProgram::from_parts(
                original.name().to_string(),
                original.wcet(),
                geometry,
                model,
                original.fingerprint(),
                core,
            );
            assert_eq!(format!("{original:?}"), format!("{rebuilt:?}"), "{}", p.name());
        }
    }

    #[test]
    fn display_mentions_wcet() {
        let p = rtworkloads::mobile_robot();
        let t = analyze(&p);
        assert!(t.to_string().contains("mr"));
        assert!(t.to_string().contains("cycles"));
    }

    #[test]
    fn rebind_shares_the_artifact_and_changes_only_params() {
        let p = rtworkloads::mobile_robot();
        let t1 = analyze(&p);
        let t2 = t1.rebind(TaskParams { period: 42, priority: 9 });
        assert!(Arc::ptr_eq(t1.program(), t2.program()), "rebind must share the artifact");
        assert_eq!(t2.params(), &TaskParams { period: 42, priority: 9 });
        assert_eq!(t1.wcet(), t2.wcet());
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        assert_eq!(t1.params().period, 1_000_000, "the original binding is untouched");
    }

    #[test]
    fn bind_all_shares_artifacts_in_index_order() {
        let mr = analyze(&rtworkloads::mobile_robot());
        let ed = analyze(&rtworkloads::edge_detection_with_dim(8));
        let programs = vec![Arc::clone(mr.program()), Arc::clone(ed.program())];
        let params = vec![
            TaskParams { period: 100_000, priority: 2 },
            TaskParams { period: 800_000, priority: 3 },
        ];
        let bound = AnalyzedTask::bind_all(&programs, &params);
        assert_eq!(bound.len(), 2);
        for (i, task) in bound.iter().enumerate() {
            assert!(Arc::ptr_eq(task.program(), &programs[i]), "bind_all must share artifacts");
            assert_eq!(task.params(), &params[i]);
        }
        assert_eq!(bound[0].name(), mr.name());
        assert_eq!(bound[1].name(), ed.name());
    }

    #[test]
    #[should_panic(expected = "one parameter set per program")]
    fn bind_all_rejects_mismatched_lengths() {
        let mr = analyze(&rtworkloads::mobile_robot());
        AnalyzedTask::bind_all(&[Arc::clone(mr.program())], &[]);
    }

    #[test]
    fn content_hash_is_length_prefixed_and_two_streamed() {
        // Field boundaries are content.
        assert_ne!(
            content_hash128([b"ab".as_slice(), b"c"]),
            content_hash128([b"a".as_slice(), b"bc"])
        );
        assert_ne!(content_hash128([b"x".as_slice()]), content_hash128([b"y".as_slice()]));
        assert_eq!(content_hash128([b"x".as_slice()]), content_hash128([b"x".as_slice()]));
        // The two streams are independent: equal low halves (single FNV-1a
        // collision surface) must not imply equal high halves.
        let h = content_hash128([b"x".as_slice()]);
        assert_ne!((h >> 64) as u64, h as u64);
    }

    #[test]
    fn fingerprint_distinguishes_every_analysis_input() {
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        let mr = rtworkloads::mobile_robot();
        let ed = rtworkloads::edge_detection_with_dim(8);
        let base = program_fingerprint(&mr, g, m);
        assert_ne!(base, program_fingerprint(&ed, g, m), "different programs");
        assert_ne!(
            base,
            program_fingerprint(&mr, CacheGeometry::new(64, 2, 16).unwrap(), m),
            "different geometry"
        );
        assert_ne!(
            base,
            program_fingerprint(&mr, g, TimingModel::with_miss_penalty(40)),
            "different timing model"
        );
        assert_eq!(base, program_fingerprint(&mr, g, m), "fingerprints are deterministic");
        assert_eq!(base, analyze(&mr).fingerprint(), "analyze records the same fingerprint");
    }

    #[test]
    fn fingerprint_covers_variants_not_just_the_listing() {
        // `disassemble` does not list input variants, so two programs
        // differing only in variant writes must still get distinct keys.
        use rtprogram::InputVariant;
        let base = rtworkloads::mobile_robot();
        let variants: Vec<InputVariant> =
            base.variants().iter().cloned().map(|v| v.with_write(0x10_0000, 7)).collect();
        let tweaked = Program::new(
            base.name(),
            base.code_base(),
            base.code().to_vec(),
            base.data_segments().to_vec(),
            base.entry(),
            base.symbols().clone(),
            base.loop_bounds().clone(),
            variants,
        )
        .unwrap();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        assert_ne!(program_fingerprint(&base, g, m), program_fingerprint(&tweaked, g, m));
    }
}
