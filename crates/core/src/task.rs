//! Analyzed tasks: a program plus everything the CRPD/WCRT analysis needs.

use std::fmt;

use rtcache::{CacheGeometry, Ciip};
use rtprogram::Program;
use rtwcet::{estimate_wcet, TimingModel};

use crate::intra::UsefulTrace;
use crate::AnalysisError;

/// Scheduling parameters of a task (paper Table I). Smaller `priority`
/// values denote **higher** priority (MR, priority 2, preempts OFDM,
/// priority 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskParams {
    /// Task period in cycles; the deadline equals the period (§III-A).
    pub period: u64,
    /// Fixed priority; smaller is higher.
    pub priority: u32,
}

/// A task with its memory-trace analysis artifacts for one cache
/// geometry: per-feasible-path traces with hit classification, the union
/// footprint `M`, per-path footprints `M^k`, and the task's WCET.
#[derive(Debug, Clone)]
pub struct AnalyzedTask {
    name: String,
    params: TaskParams,
    wcet: u64,
    geometry: CacheGeometry,
    /// One entry per input variant (feasible path).
    paths: Vec<AnalyzedPath>,
    /// Union footprint over all paths (`Ma`).
    all_blocks: Ciip,
}

/// One feasible path's artifacts.
#[derive(Debug, Clone)]
pub struct AnalyzedPath {
    /// Variant name.
    pub name: String,
    /// Block-level trace with hit flags (drives the useful-block sweep).
    pub trace: UsefulTrace,
    /// The path's footprint (`M^k` in §VI).
    pub blocks: Ciip,
}

impl AnalyzedTask {
    /// Simulates every feasible path of `program`, classifies its accesses
    /// against a cold cache and estimates the WCET.
    ///
    /// The WCET estimation and the per-variant trace analyses are
    /// independent, so they fan out over the current [`rtpar`] pool; the
    /// union footprint is folded in variant order afterwards, keeping the
    /// artifact byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if a path simulation faults.
    pub fn analyze(
        program: &Program,
        params: TaskParams,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<Self, AnalysisError> {
        let _span = rtobs::span_labeled("analyze", || program.name().to_string());
        let (wcet, traced) = rtpar::join(
            || {
                let _span = rtobs::span_labeled("wcet", || program.name().to_string());
                estimate_wcet(program, geometry, model).map_err(|e| AnalysisError::Wcet {
                    task: program.name().to_string(),
                    source: e,
                })
            },
            || {
                rtpar::par_map(program.variants(), |variant| {
                    let _span = rtobs::span_labeled("trace", || {
                        format!("{}/{}", program.name(), variant.name)
                    });
                    let trace =
                        rtprogram::sim::trace_variant(program, variant).map_err(|source| {
                            AnalysisError::Exec { task: program.name().to_string(), source }
                        })?;
                    let trace = UsefulTrace::from_trace(&trace, geometry);
                    let blocks = trace.all_blocks();
                    Ok(AnalyzedPath { name: variant.name.clone(), trace, blocks })
                })
            },
        );
        let wcet = wcet?;
        let ciip_span = rtobs::span_labeled("ciip", || program.name().to_string());
        let mut paths = Vec::with_capacity(traced.len());
        let mut all_blocks = Ciip::empty(geometry);
        for path in traced {
            let path: AnalyzedPath = path?;
            all_blocks = all_blocks.union(&path.blocks);
            paths.push(path);
        }
        drop(ciip_span);
        Ok(AnalyzedTask {
            name: program.name().to_string(),
            params,
            wcet: wcet.cycles,
            geometry,
            paths,
            all_blocks,
        })
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scheduling parameters.
    pub fn params(&self) -> &TaskParams {
        &self.params
    }

    /// The task's WCET in cycles (without preemption costs), per Eq. 6's
    /// `C_i`.
    pub fn wcet(&self) -> u64 {
        self.wcet
    }

    /// The cache geometry the analysis ran under.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Per-feasible-path artifacts.
    pub fn paths(&self) -> &[AnalyzedPath] {
        &self.paths
    }

    /// The union footprint `Ma` over all feasible paths.
    pub fn all_blocks(&self) -> &Ciip {
        &self.all_blocks
    }

    /// Approach 3's per-task reload count: the maximum over feasible paths
    /// and execution points of `Σ_r min(|useful_r|, L)` (Definition 4
    /// evaluated per path).
    pub fn useful_line_bound(&self) -> usize {
        let _span = rtobs::span_labeled("mumbs", || format!("{}: line bound", self.name));
        self.paths.iter().map(|p| p.trace.max_line_bound().0).max().unwrap_or(0)
    }

    /// The maximum useful memory blocks set (`M̃a`, Definition 4): the
    /// useful set at the worst execution point of the worst path.
    pub fn mumbs(&self) -> Ciip {
        let _span = rtobs::span_labeled("mumbs", || self.name.clone());
        self.paths
            .iter()
            .map(|p| p.trace.mumbs())
            .max_by_key(Ciip::line_bound)
            .unwrap_or_else(|| Ciip::empty(self.geometry))
    }

    /// The combined bound of §V–VI against a preempting footprint `mb`:
    /// maximum over this task's paths and execution points of
    /// `S(useful(t), mb)`.
    pub fn max_useful_overlap(&self, mb: &Ciip) -> usize {
        let _span = rtobs::span_labeled("mumbs", || format!("{}: overlap", self.name));
        self.paths.iter().map(|p| p.trace.max_overlap_bound(mb).0).max().unwrap_or(0)
    }
}

impl fmt::Display for AnalyzedTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: C={} cycles, P={}, prio={}, footprint={} lines",
            self.name,
            self.wcet,
            self.params.period,
            self.params.priority,
            self.all_blocks.line_bound()
        )
    }
}

// The analysis server shares `Arc<AnalyzedTask>` across worker threads;
// keep the artifact thread-safe by construction.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnalyzedTask>();
    assert_send_sync::<AnalyzedPath>();
    assert_send_sync::<TaskParams>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rtcache::CacheGeometry;

    fn analyze(p: &Program) -> AnalyzedTask {
        AnalyzedTask::analyze(
            p,
            TaskParams { period: 1_000_000, priority: 1 },
            CacheGeometry::paper_l1(),
            TimingModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn paths_cover_variants() {
        let p = rtworkloads::edge_detection_with_dim(8);
        let t = analyze(&p);
        assert_eq!(t.paths().len(), 2);
        assert_eq!(t.paths()[0].name, "sobel");
        assert!(t.wcet() > 0);
    }

    #[test]
    fn union_footprint_contains_each_path() {
        let p = rtworkloads::edge_detection_with_dim(8);
        let t = analyze(&p);
        for path in t.paths() {
            for b in path.blocks.blocks() {
                assert!(t.all_blocks().contains(b));
            }
        }
        // The Cauchy path touches tables the Sobel path does not, so the
        // union is strictly larger than the Sobel footprint.
        assert!(t.all_blocks().block_count() > t.paths()[0].blocks.block_count());
    }

    #[test]
    fn useful_bound_at_most_footprint() {
        let p = rtworkloads::mobile_robot();
        let t = analyze(&p);
        assert!(t.useful_line_bound() <= t.all_blocks().line_bound());
        assert!(t.useful_line_bound() > 0, "a looping task reuses blocks");
    }

    #[test]
    fn mumbs_is_a_subset_of_the_footprint() {
        let p = rtworkloads::mobile_robot();
        let t = analyze(&p);
        let mumbs = t.mumbs();
        for b in mumbs.blocks() {
            assert!(t.all_blocks().contains(b));
        }
    }

    #[test]
    fn overlap_bound_never_exceeds_either_side() {
        let p1 = rtworkloads::mobile_robot();
        let p2 = rtworkloads::edge_detection_with_dim(8);
        let a = analyze(&p1);
        let b = analyze(&p2);
        let s = a.max_useful_overlap(b.all_blocks());
        assert!(s <= a.useful_line_bound());
        assert!(s <= b.all_blocks().line_bound());
    }

    #[test]
    fn display_mentions_wcet() {
        let p = rtworkloads::mobile_robot();
        let t = analyze(&p);
        assert!(t.to_string().contains("mr"));
        assert!(t.to_string().contains("cycles"));
    }
}
