//! Property-based tests for the scheduler co-simulation: timeline and
//! accounting invariants over randomized synthetic task systems.

use proptest::prelude::*;
use rtcache::CacheGeometry;
use rtsched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use rtwcet::TimingModel;
use rtworkloads::synthetic::{synthetic_task, SyntheticSpec};

fn system(seed: u64, hi_period: u64, lo_period: u64) -> Vec<SchedTask> {
    let mut hi_spec = SyntheticSpec::new("hi", 0x0001_0000, 0x0010_0000);
    hi_spec.seed = seed;
    hi_spec.outer_iters = 2;
    let mut lo_spec = SyntheticSpec::new("lo", 0x0002_0000, 0x0010_0200);
    lo_spec.seed = seed.wrapping_mul(7);
    lo_spec.outer_iters = 6;
    vec![
        SchedTask::new(synthetic_task(&hi_spec), hi_period, 1),
        SchedTask::new(synthetic_task(&lo_spec), lo_period, 2),
    ]
}

fn config(horizon: u64, ctx: u64) -> SchedConfig {
    SchedConfig {
        geometry: CacheGeometry::new(64, 2, 16).expect("valid geometry"),
        model: TimingModel::default(),
        ctx_switch: ctx,
        horizon,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Execution slices never overlap, never exceed the simulation end,
    /// and the total busy time fits in the elapsed time.
    #[test]
    fn slices_are_a_valid_schedule(seed in 0u64..500,
                                   hi_period in 3_000u64..20_000,
                                   ctx in 0u64..400) {
        let tasks = system(seed, hi_period, 200_000);
        let report = simulate(&tasks, &config(400_000, ctx)).expect("simulates");
        let mut sorted = report.slices.clone();
        sorted.sort_by_key(|s| s.start);
        let mut busy = 0u64;
        for w in sorted.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "slices overlap: {w:?}");
        }
        for s in &sorted {
            prop_assert!(s.start < s.end);
            prop_assert!(s.end <= report.end_time);
            prop_assert!(s.task < tasks.len());
            busy += s.end - s.start;
        }
        prop_assert!(busy <= report.end_time);
    }

    /// Job accounting: completions never exceed releases, misses never
    /// exceed completions, and every preemption record is well formed.
    #[test]
    fn accounting_invariants(seed in 0u64..500, hi_period in 3_000u64..20_000) {
        let tasks = system(seed, hi_period, 150_000);
        let report = simulate(&tasks, &config(450_000, 100)).expect("simulates");
        for t in &report.tasks {
            prop_assert!(t.completed <= t.released);
            prop_assert!(t.deadline_misses <= t.completed);
            prop_assert!(t.mean_response <= t.max_response);
        }
        let total_lines = 64u64 * 2;
        for p in &report.preemptions {
            prop_assert!(p.preempted < tasks.len());
            prop_assert!(p.preempting < tasks.len());
            prop_assert!(
                tasks[p.preempting].priority < tasks[p.preempted].priority,
                "only higher priority tasks preempt"
            );
            prop_assert!(p.reloaded_lines <= p.evicted_lines);
            prop_assert!(p.evicted_lines as u64 <= total_lines);
            prop_assert!(p.time <= report.end_time);
        }
        // Preemption records match the per-task counters.
        let recorded = report.preemptions.len() as u64;
        let counted: u64 = report.tasks.iter().map(|t| t.preemptions).sum();
        prop_assert!(recorded <= counted, "records are resumes of counted preemptions");
    }

    /// The simulation is deterministic.
    #[test]
    fn deterministic(seed in 0u64..200) {
        let tasks = system(seed, 8_000, 120_000);
        let a = simulate(&tasks, &config(240_000, 50)).expect("simulates");
        let b = simulate(&tasks, &config(240_000, 50)).expect("simulates");
        prop_assert_eq!(a.tasks, b.tasks);
        prop_assert_eq!(a.slices, b.slices);
        prop_assert_eq!(a.end_time, b.end_time);
    }

    /// Interference monotonicity: shortening the high task's period can
    /// only lengthen (or keep) the low task's worst response.
    #[test]
    fn more_interference_never_helps(seed in 0u64..200) {
        let relaxed = simulate(&system(seed, 40_000, 150_000), &config(450_000, 100))
            .expect("simulates");
        let pressed = simulate(&system(seed, 5_000, 150_000), &config(450_000, 100))
            .expect("simulates");
        prop_assert!(
            pressed.tasks[1].max_response >= relaxed.tasks[1].max_response,
            "pressed {} < relaxed {}",
            pressed.tasks[1].max_response,
            relaxed.tasks[1].max_response
        );
    }
}
