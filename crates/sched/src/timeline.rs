//! ASCII rendering of execution timelines (the paper's Fig. 1).

use crate::ExecSlice;

/// Renders execution slices as one ASCII Gantt row per task, covering
/// `[0, until)` with `width` character cells. A cell is marked `█` when
/// the task occupies the CPU for most of the cell, `▌` when it occupies
/// part of it, and `.` when idle. Release ticks (every `period` cycles)
/// are marked with `|` on a separate ruler row per task.
///
/// `names` and `periods` are indexed by task id as used in the slices.
pub fn render_timeline(
    slices: &[ExecSlice],
    names: &[&str],
    periods: &[u64],
    until: u64,
    width: usize,
) -> String {
    assert_eq!(names.len(), periods.len(), "one period per task name");
    let width = width.max(10);
    let until = until.max(1);
    let cell = |x: u64| -> usize { ((x as u128 * width as u128) / until as u128) as usize };
    let name_pad = names.iter().map(|n| n.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    for (task, (name, period)) in names.iter().zip(periods).enumerate() {
        // Occupancy per cell in 1/2 units: 0 idle, 1 partial, 2 full-ish.
        let mut occupancy = vec![0u8; width];
        for s in slices.iter().filter(|s| s.task == task && s.start < until) {
            let end = s.end.min(until);
            let (c0, c1) = (cell(s.start), cell(end.saturating_sub(1)).min(width - 1));
            for slot in &mut occupancy[c0..=c1] {
                *slot = (*slot).max(1);
            }
            // A cell fully covered by the slice is "full".
            for (c, slot) in occupancy.iter_mut().enumerate().take(c1 + 1).skip(c0) {
                let cell_start = (c as u128 * until as u128 / width as u128) as u64;
                let cell_end = ((c + 1) as u128 * until as u128 / width as u128) as u64;
                if s.start <= cell_start && end >= cell_end {
                    *slot = 2;
                }
            }
        }
        out.push_str(&format!("{name:>name_pad$} "));
        for o in &occupancy {
            out.push(match o {
                0 => '.',
                1 => '▌',
                _ => '█',
            });
        }
        out.push('\n');
        // Release ruler.
        let mut ruler = vec![' '; width];
        let mut t = 0u64;
        while t < until {
            ruler[cell(t).min(width - 1)] = '|';
            t += *period;
        }
        out.push_str(&format!("{:>name_pad$} ", ""));
        out.extend(ruler);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_per_task() {
        let slices = vec![
            ExecSlice { task: 0, start: 0, end: 50 },
            ExecSlice { task: 1, start: 50, end: 100 },
        ];
        let s = render_timeline(&slices, &["hi", "lo"], &[50, 100], 100, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "task row + ruler row per task");
        assert!(lines[0].trim_start().starts_with("hi"));
        assert!(lines[2].trim_start().starts_with("lo"));
        // hi occupies the first half, lo the second.
        assert!(lines[0].contains('█'));
        assert!(lines[2].contains('█'));
    }

    #[test]
    fn idle_cells_are_dots() {
        let slices = vec![ExecSlice { task: 0, start: 0, end: 10 }];
        let s = render_timeline(&slices, &["t"], &[100], 100, 20);
        let row = s.lines().next().unwrap();
        assert!(row.contains('.'), "{row}");
    }

    #[test]
    fn release_ticks_follow_period() {
        let s = render_timeline(&[], &["t"], &[25], 100, 20);
        let ruler = s.lines().nth(1).unwrap();
        assert_eq!(ruler.matches('|').count(), 4, "releases at 0,25,50,75");
    }

    #[test]
    fn clamps_past_horizon() {
        let slices = vec![ExecSlice { task: 0, start: 90, end: 500 }];
        let s = render_timeline(&slices, &["t"], &[1000], 100, 10);
        assert!(
            s.lines().next().unwrap().ends_with('▌') || s.lines().next().unwrap().ends_with('█')
        );
    }
}
