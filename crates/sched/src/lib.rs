//! Preemptive fixed-priority scheduler co-simulation — the ground truth
//! the paper obtains from its Seamless CVE hardware/software setup
//! (Fig. 5): tasks run on the instruction-set simulator, share one L1
//! cache, preempt each other under fixed priorities, and the *Actual
//! Response Time* (ART) of every job is measured.
//!
//! # Model
//!
//! * All tasks are released together at time 0 (the critical instant of
//!   Example 1) and re-released every period.
//! * Execution is replayed from each task's pre-computed memory trace;
//!   every instruction costs `cpi` cycles plus `miss_penalty` per cache
//!   miss, and preemption happens at instruction boundaries.
//! * A context switch costs a constant `ctx_switch` cycles and is charged
//!   twice per preemption — once when switching to the preempting task
//!   and once when resuming the preempted one (paper Example 6 / Eq. 7).
//! * Per-preemption cache damage is recorded: how many of the preempted
//!   task's resident blocks were displaced while it was off the CPU.
//!
//! # Example
//!
//! ```
//! use rtsched::{SchedConfig, SchedTask, simulate, VariantPolicy};
//! use rtcache::CacheGeometry;
//! use rtwcet::TimingModel;
//!
//! # fn main() -> Result<(), rtsched::SimError> {
//! let tasks = vec![
//!     SchedTask::new(rtworkloads::mobile_robot(), 200_000, 2),
//!     SchedTask::new(rtworkloads::edge_detection_with_dim(8), 400_000, 3),
//! ];
//! let config = SchedConfig {
//!     geometry: CacheGeometry::paper_l1(),
//!     model: TimingModel::default(),
//!     ctx_switch: 400,
//!     horizon: 800_000,
//!     variant_policy: VariantPolicy::Worst,
//!     cache_mode: rtsched::CacheMode::Shared,
//!     replacement: Default::default(),
//!     l2: None,
//! };
//! let report = simulate(&tasks, &config)?;
//! assert_eq!(report.tasks.len(), 2);
//! assert!(report.tasks[1].max_response > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod timeline;

pub use timeline::render_timeline;

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use rtcache::{
    CacheGeometry, CacheHierarchy, CacheSim, LevelOutcome, MemoryBlock, ReplacementPolicy,
};
use rtprogram::sim::{trace_variant, AccessKind, MemoryAccess};
use rtprogram::{ExecError, Program};
use rtwcet::TimingModel;

/// An optional L2 behind the L1 (the paper's future-work hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// L2 geometry (same line size as the L1, at least as large).
    pub geometry: CacheGeometry,
    /// Cycles for an access satisfied by the L2; accesses that miss both
    /// levels cost the timing model's `miss_penalty`.
    pub penalty: u64,
}

/// Whether tasks contend for one cache or each gets its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// One L1 shared by every task — inter-task eviction happens (the
    /// paper's Fig. 1(B) reality).
    #[default]
    Shared,
    /// Each task keeps a private cache that survives preemptions — the
    /// counterfactual without inter-task eviction (Fig. 1(A)).
    Private,
}

/// Which input variant (feasible path) each released job executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantPolicy {
    /// Every job runs the given variant index.
    Fixed(usize),
    /// Jobs cycle through the task's variants.
    RoundRobin,
    /// Every job runs the variant with the largest cold-cache cycle count
    /// (the WCET path).
    Worst,
}

/// A task as seen by the scheduler.
#[derive(Debug, Clone)]
pub struct SchedTask {
    /// The task's program.
    pub program: Program,
    /// Release period (= deadline) in cycles.
    pub period: u64,
    /// Fixed priority; smaller is higher.
    pub priority: u32,
}

impl SchedTask {
    /// Creates a task.
    pub fn new(program: Program, period: u64, priority: u32) -> Self {
        SchedTask { program, period, priority }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Cache geometry shared by all tasks.
    pub geometry: CacheGeometry,
    /// Instruction/miss timing.
    pub model: TimingModel,
    /// Constant context-switch cost in cycles (`Ccs`).
    pub ctx_switch: u64,
    /// Simulate until this time; jobs released before the horizon still
    /// run to completion.
    pub horizon: u64,
    /// Path selection per job.
    pub variant_policy: VariantPolicy,
    /// Shared or private caches (Fig. 1(B) vs Fig. 1(A)).
    pub cache_mode: CacheMode,
    /// Cache replacement policy (the analysis assumes LRU; other policies
    /// are for measurement ablations).
    pub replacement: ReplacementPolicy,
    /// Optional L2 cache level. `None` models the paper's single-level
    /// setup; `Some` enables the two-level hierarchy extension.
    pub l2: Option<L2Config>,
}

/// Per-task simulation results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Jobs released within the horizon.
    pub released: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Maximum observed response time (the ART of Tables III/V).
    pub max_response: u64,
    /// Mean response time over completed jobs.
    pub mean_response: u64,
    /// Jobs whose response exceeded the period.
    pub deadline_misses: u64,
    /// Times a job of this task was preempted.
    pub preemptions: u64,
}

/// One preemption's measured cache damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptionRecord {
    /// Index of the preempted task.
    pub preempted: usize,
    /// Index of the directly preempting task.
    pub preempting: usize,
    /// Preemption time.
    pub time: u64,
    /// Blocks of the preempted task resident at switch-out but displaced
    /// by the time it resumed (nested preemptions by even higher-priority
    /// tasks are attributed to the direct preemptor).
    pub evicted_lines: usize,
    /// Displaced blocks the preempted job subsequently missed on at a
    /// position where its isolated (unpreempted, cold-start) run would
    /// have hit — the paper's per-preemption cache reload overhead
    /// t1, t2, t3 of Fig. 1, in lines.
    pub reloaded_lines: usize,
}

/// A contiguous interval during which one task occupied the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSlice {
    /// Task index.
    pub task: usize,
    /// Slice start time.
    pub start: u64,
    /// Slice end time.
    pub end: u64,
}

/// The simulation outcome.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-task aggregates, in input order.
    pub tasks: Vec<TaskReport>,
    /// Per-preemption cache damage (capped at 100 000 records).
    pub preemptions: Vec<PreemptionRecord>,
    /// Execution timeline (capped at 100 000 slices).
    pub slices: Vec<ExecSlice>,
    /// Time at which the simulation finished.
    pub end_time: u64,
}

/// Errors from the co-simulation.
#[derive(Debug)]
pub enum SimError {
    /// No tasks supplied.
    NoTasks,
    /// Two tasks share a priority level.
    DuplicatePriority(u32),
    /// A variant index in [`VariantPolicy::Fixed`] is out of range.
    BadVariant {
        /// Offending task.
        task: String,
        /// The requested variant index.
        index: usize,
    },
    /// Tracing a task's program faulted.
    Exec {
        /// Offending task.
        task: String,
        /// The underlying fault.
        source: ExecError,
    },
    /// The L1/L2 pair was ill-formed.
    Hierarchy(rtcache::HierarchyError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoTasks => write!(f, "no tasks to simulate"),
            SimError::DuplicatePriority(p) => write!(f, "duplicate priority level {p}"),
            SimError::BadVariant { task, index } => {
                write!(f, "task `{task}` has no variant {index}")
            }
            SimError::Exec { task, source } => write!(f, "tracing task `{task}`: {source}"),
            SimError::Hierarchy(e) => write!(f, "cache hierarchy: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Exec { source, .. } => Some(source),
            SimError::Hierarchy(e) => Some(e),
            _ => None,
        }
    }
}

const RECORD_CAP: usize = 100_000;

/// One task's (or the shared) memory system: a bare L1 or an L1 + L2
/// hierarchy.
#[derive(Debug, Clone)]
enum MemorySystem {
    Single(CacheSim),
    Two(CacheHierarchy),
}

impl MemorySystem {
    fn build(config: &SchedConfig) -> Result<Self, SimError> {
        match config.l2 {
            None => {
                Ok(MemorySystem::Single(CacheSim::with_policy(config.geometry, config.replacement)))
            }
            Some(l2) => {
                CacheHierarchy::with_policy(config.geometry, l2.geometry, config.replacement)
                    .map(MemorySystem::Two)
                    .map_err(SimError::Hierarchy)
            }
        }
    }

    /// Accesses a block; returns the extra cycles beyond the base CPI and
    /// whether the access missed the L1.
    fn access_block(&mut self, block: MemoryBlock, config: &SchedConfig) -> (u64, bool) {
        match self {
            MemorySystem::Single(cache) => {
                if cache.access_block(block).is_miss() {
                    (config.model.miss_penalty, true)
                } else {
                    (0, false)
                }
            }
            MemorySystem::Two(h) => match h.access_block(block) {
                LevelOutcome::L1Hit => (0, false),
                LevelOutcome::L2Hit => (config.l2.expect("two-level config present").penalty, true),
                LevelOutcome::MemMiss => (config.model.miss_penalty, true),
            },
        }
    }

    /// `true` if the block is resident in the L1 (the level whose
    /// preemption damage the analysis bounds).
    fn is_resident_l1(&self, block: MemoryBlock) -> bool {
        match self {
            MemorySystem::Single(cache) => cache.is_resident(block),
            MemorySystem::Two(h) => h.l1().is_resident(block),
        }
    }
}

/// A released, possibly partially-executed job.
#[derive(Debug)]
struct Job {
    release: u64,
    variant: usize,
    /// Position in the task's trace (index of the next access to replay).
    pos: usize,
    /// Set when the job has been switched away from mid-execution.
    preempted_state: Option<PreemptedState>,
    /// Blocks displaced by past preemptions, mapped to the preemption
    /// record awaiting their reload accounting.
    lost: std::collections::BTreeMap<MemoryBlock, usize>,
    started: bool,
}

#[derive(Debug)]
struct PreemptedState {
    /// The preempted task's resident footprint blocks at switch-out.
    resident: BTreeSet<MemoryBlock>,
    /// Who preempted it.
    by: usize,
    /// When.
    at: u64,
}

/// Pre-traced task data.
struct TaskRuntime {
    traces: Vec<Vec<MemoryAccess>>,
    /// Per-variant, per-access hit/miss outcome of the isolated cold-start
    /// run (the reference for counting preemption-induced reloads).
    isolated_hits: Vec<Vec<bool>>,
    /// Distinct blocks per variant (for eviction attribution).
    footprints: Vec<BTreeSet<MemoryBlock>>,
    worst_variant: usize,
    next_release: u64,
    released: u64,
    queue: VecDeque<Job>,
    report: TaskReport,
    responses_sum: u64,
}

/// Runs the co-simulation.
///
/// # Errors
///
/// Returns [`SimError`] for empty/ill-formed task sets or faulting
/// programs.
pub fn simulate(tasks: &[SchedTask], config: &SchedConfig) -> Result<SimReport, SimError> {
    if tasks.is_empty() {
        return Err(SimError::NoTasks);
    }
    {
        let mut prios: Vec<u32> = tasks.iter().map(|t| t.priority).collect();
        prios.sort_unstable();
        for w in prios.windows(2) {
            if w[0] == w[1] {
                return Err(SimError::DuplicatePriority(w[0]));
            }
        }
    }

    // Pre-trace every variant of every task.
    let mut runtimes: Vec<TaskRuntime> = Vec::with_capacity(tasks.len());
    for t in tasks {
        let mut traces = Vec::new();
        let mut isolated_hits = Vec::new();
        let mut footprints = Vec::new();
        let mut timings = Vec::new();
        for variant in t.program.variants() {
            let trace = trace_variant(&t.program, variant)
                .map_err(|source| SimError::Exec { task: t.program.name().into(), source })?;
            let blocks: BTreeSet<MemoryBlock> =
                trace.accesses.iter().map(|a| config.geometry.block_of_addr(a.addr)).collect();
            // Cold classification: drives Worst selection and the
            // reload-counting reference (L1 hit/miss per access).
            let mut memory = MemorySystem::build(config)?;
            let mut cycles = trace.instructions * config.model.cpi;
            let hits: Vec<bool> = trace
                .accesses
                .iter()
                .map(|a| {
                    let (extra, l1_miss) =
                        memory.access_block(config.geometry.block_of_addr(a.addr), config);
                    cycles += extra;
                    !l1_miss
                })
                .collect();
            timings.push(cycles);
            traces.push(trace.accesses);
            isolated_hits.push(hits);
            footprints.push(blocks);
        }
        if let VariantPolicy::Fixed(i) = config.variant_policy {
            if i >= traces.len() {
                return Err(SimError::BadVariant { task: t.program.name().into(), index: i });
            }
        }
        let worst_variant = (0..timings.len()).max_by_key(|i| timings[*i]).unwrap_or(0);
        runtimes.push(TaskRuntime {
            traces,
            isolated_hits,
            footprints,
            worst_variant,
            next_release: 0,
            released: 0,
            queue: VecDeque::new(),
            report: TaskReport {
                name: t.program.name().to_string(),
                released: 0,
                completed: 0,
                max_response: 0,
                mean_response: 0,
                deadline_misses: 0,
                preemptions: 0,
            },
            responses_sum: 0,
        });
    }

    // Priority order: indices sorted by ascending priority value.
    let mut prio_order: Vec<usize> = (0..tasks.len()).collect();
    prio_order.sort_by_key(|i| tasks[*i].priority);

    // Shared mode uses caches[0] for everyone; private mode one per task.
    let mut caches: Vec<MemorySystem> = match config.cache_mode {
        CacheMode::Shared => vec![MemorySystem::build(config)?],
        CacheMode::Private => {
            tasks.iter().map(|_| MemorySystem::build(config)).collect::<Result<_, _>>()?
        }
    };
    let cache_of = |task: usize| match config.cache_mode {
        CacheMode::Shared => 0,
        CacheMode::Private => task,
    };
    let mut time: u64 = 0;
    let mut current: Option<usize> = None; // task index of the running job
    let mut slice_start: u64 = 0;
    let mut preemption_records = Vec::new();
    let mut slices: Vec<ExecSlice> = Vec::new();

    let close_slice = |slices: &mut Vec<ExecSlice>, task: usize, start: u64, end: u64| {
        if end > start && slices.len() < RECORD_CAP {
            slices.push(ExecSlice { task, start, end });
        }
    };

    loop {
        // Release jobs due by `time` (only while inside the horizon).
        for (ti, rt) in runtimes.iter_mut().enumerate() {
            while rt.next_release <= time && rt.next_release < config.horizon {
                let variant = match config.variant_policy {
                    VariantPolicy::Fixed(i) => i,
                    VariantPolicy::RoundRobin => (rt.released as usize) % rt.traces.len(),
                    VariantPolicy::Worst => rt.worst_variant,
                };
                rt.queue.push_back(Job {
                    release: rt.next_release,
                    variant,
                    pos: 0,
                    preempted_state: None,
                    lost: std::collections::BTreeMap::new(),
                    started: false,
                });
                rt.released += 1;
                rt.report.released += 1;
                rt.next_release += tasks[ti].period;
            }
        }

        // Pick the highest-priority task with a pending job.
        let Some(&next) = prio_order.iter().find(|i| !runtimes[**i].queue.is_empty()) else {
            // Idle: jump to the next release inside the horizon, or stop.
            let upcoming =
                runtimes.iter().map(|rt| rt.next_release).filter(|r| *r < config.horizon).min();
            match upcoming {
                Some(t) if t > time => {
                    if let Some(cur) = current.take() {
                        close_slice(&mut slices, cur, slice_start, time);
                    }
                    time = t;
                    continue;
                }
                Some(_) => continue,
                None => break,
            }
        };

        // Context switching bookkeeping.
        if current != Some(next) {
            if let Some(cur) = current {
                close_slice(&mut slices, cur, slice_start, time);
                // Switching away from an unfinished job = a preemption of
                // `cur` by `next` (cur still has a job at queue front).
                let started_variant =
                    runtimes[cur].queue.front().filter(|job| job.started).map(|job| job.variant);
                if let Some(variant) = started_variant {
                    let cache = &caches[cache_of(cur)];
                    let resident: BTreeSet<MemoryBlock> = runtimes[cur].footprints[variant]
                        .iter()
                        .filter(|b| cache.is_resident_l1(**b))
                        .copied()
                        .collect();
                    let rt = &mut runtimes[cur];
                    rt.queue.front_mut().expect("checked above").preempted_state =
                        Some(PreemptedState { resident, by: next, at: time });
                    rt.report.preemptions += 1;
                }
            }
            // Resuming a previously-preempted job costs the second switch.
            if let Some(job) = runtimes[next].queue.front_mut() {
                if let Some(state) = job.preempted_state.take() {
                    // Both switches of the preemption (to the preemptor and
                    // back) are charged to the preempted task's response,
                    // matching the 2·Ccs accounting of Eq. 7.
                    time += 2 * config.ctx_switch;
                    let cache = &caches[cache_of(next)];
                    let displaced: Vec<MemoryBlock> = state
                        .resident
                        .iter()
                        .filter(|b| !cache.is_resident_l1(**b))
                        .copied()
                        .collect();
                    if preemption_records.len() < RECORD_CAP {
                        let rec_idx = preemption_records.len();
                        for b in &displaced {
                            job.lost.insert(*b, rec_idx);
                        }
                        preemption_records.push(PreemptionRecord {
                            preempted: next,
                            preempting: state.by,
                            time: state.at,
                            evicted_lines: displaced.len(),
                            reloaded_lines: 0,
                        });
                    }
                }
            }
            current = Some(next);
            slice_start = time;
        }

        // Execute exactly one instruction of the current job.
        let cache = &mut caches[cache_of(next)];
        let rt = &mut runtimes[next];
        let job = rt.queue.front_mut().expect("picked task has a job");
        job.started = true;
        let trace = &rt.traces[job.variant];
        debug_assert_eq!(trace[job.pos].kind, AccessKind::Fetch);
        let mut cycles = config.model.cpi;
        loop {
            let access = &trace[job.pos];
            let block = config.geometry.block_of_addr(access.addr);
            let (extra, l1_miss) = cache.access_block(block, config);
            cycles += extra;
            if l1_miss {
                if let Some(rec_idx) = job.lost.remove(&block) {
                    // Only an access the isolated run would have hit is an
                    // *extra* miss caused by the preemption; a block that
                    // was about to self-evict anyway costs nothing.
                    if rt.isolated_hits[job.variant][job.pos] {
                        preemption_records[rec_idx].reloaded_lines += 1;
                    }
                }
            } else {
                // A hit means the block was never actually reloaded-after
                // -eviction; if it was marked lost, the mark was stale.
                job.lost.remove(&block);
            }
            job.pos += 1;
            if job.pos >= trace.len() || trace[job.pos].kind == AccessKind::Fetch {
                break;
            }
        }
        time += cycles;

        if job.pos >= trace.len() {
            // Job complete.
            let response = time - job.release;
            rt.report.completed += 1;
            rt.responses_sum += response;
            rt.report.max_response = rt.report.max_response.max(response);
            if response > tasks[next].period {
                rt.report.deadline_misses += 1;
            }
            rt.queue.pop_front();
            close_slice(&mut slices, next, slice_start, time);
            current = None;
        }
    }

    if let Some(cur) = current {
        close_slice(&mut slices, cur, slice_start, time);
    }
    let tasks_report = runtimes
        .into_iter()
        .map(|mut rt| {
            rt.report.mean_response =
                rt.responses_sum.checked_div(rt.report.completed).unwrap_or(0);
            rt.report
        })
        .collect();
    Ok(SimReport { tasks: tasks_report, preemptions: preemption_records, slices, end_time: time })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtprogram::builder::ProgramBuilder;
    use rtprogram::isa::regs::*;

    /// A busy-loop task with a configurable footprint and length.
    fn busy(name: &str, code_base: u64, data_base: u64, iters: u32, words: usize) -> Program {
        let mut b = ProgramBuilder::new(name, code_base, data_base);
        let buf = b.data_space("buf", words.max(1));
        b.counted_loop(iters, R2, |b| {
            b.li_addr(R1, buf);
            for w in 0..words.min(16) {
                b.ld(R3, R1, 4 * w as i32);
            }
        });
        b.build().unwrap()
    }

    fn config(horizon: u64, ctx: u64) -> SchedConfig {
        SchedConfig {
            geometry: CacheGeometry::new(64, 2, 16).unwrap(),
            model: TimingModel::with_miss_penalty(10),
            ctx_switch: ctx,
            horizon,
            variant_policy: VariantPolicy::Worst,
            cache_mode: CacheMode::Shared,
            replacement: ReplacementPolicy::Lru,
            l2: None,
        }
    }

    #[test]
    fn single_task_response_equals_isolated_cost() {
        let t = busy("a", 0x1000, 0x100000, 10, 8);
        let report = simulate(&[SchedTask::new(t, 100_000, 1)], &config(100, 0)).unwrap();
        assert_eq!(report.tasks[0].completed, 1);
        assert_eq!(report.tasks[0].preemptions, 0);
        assert_eq!(report.tasks[0].deadline_misses, 0);
        assert!(report.tasks[0].max_response > 0);
    }

    #[test]
    fn periodic_releases_within_horizon() {
        let t = busy("a", 0x1000, 0x100000, 2, 2);
        let report = simulate(&[SchedTask::new(t, 1_000, 1)], &config(10_000, 0)).unwrap();
        assert_eq!(report.tasks[0].released, 10);
        assert_eq!(report.tasks[0].completed, 10);
    }

    #[test]
    fn high_priority_preempts_low() {
        // A long low-priority task and a short frequent high-priority one.
        let lo = busy("lo", 0x1000, 0x100000, 2_000, 8);
        let hi = busy("hi", 0x8000, 0x110000, 5, 2);
        let report = simulate(
            &[SchedTask::new(hi, 2_000, 1), SchedTask::new(lo, 1_000_000, 2)],
            &config(1_000_000, 0),
        )
        .unwrap();
        assert!(report.tasks[1].preemptions > 0, "low task must be preempted");
        assert!(!report.preemptions.is_empty());
        for p in &report.preemptions {
            assert_eq!(p.preempted, 1);
            assert_eq!(p.preempting, 0);
        }
    }

    #[test]
    fn response_grows_with_interference() {
        let lo = busy("lo", 0x1000, 0x100000, 500, 8);
        let solo = simulate(&[SchedTask::new(lo.clone(), 10_000_000, 2)], &config(1, 0)).unwrap();
        let hi = busy("hi", 0x8000, 0x110000, 5, 2);
        let both = simulate(
            &[SchedTask::new(hi, 3_000, 1), SchedTask::new(lo, 10_000_000, 2)],
            &config(1, 0),
        )
        .unwrap();
        assert!(both.tasks[1].max_response > solo.tasks[0].max_response);
    }

    #[test]
    fn context_switch_cost_lengthens_response() {
        let lo = busy("lo", 0x1000, 0x100000, 500, 8);
        let hi = busy("hi", 0x8000, 0x110000, 5, 2);
        let base = simulate(
            &[SchedTask::new(hi.clone(), 3_000, 1), SchedTask::new(lo.clone(), 10_000_000, 2)],
            &config(200_000, 0),
        )
        .unwrap();
        let with_cs = simulate(
            &[SchedTask::new(hi, 3_000, 1), SchedTask::new(lo, 10_000_000, 2)],
            &config(200_000, 500),
        )
        .unwrap();
        let n = with_cs.tasks[1].preemptions;
        assert!(n > 0);
        assert!(
            with_cs.tasks[1].max_response >= base.tasks[1].max_response + 2 * 500,
            "at least one preemption adds 2 Ccs"
        );
    }

    #[test]
    fn eviction_records_are_bounded_by_footprint() {
        let lo = busy("lo", 0x1000, 0x100000, 500, 16);
        let hi = busy("hi", 0x1400, 0x100400, 5, 16); // overlapping indices
        let report = simulate(
            &[SchedTask::new(hi, 3_000, 1), SchedTask::new(lo, 10_000_000, 2)],
            &config(200_000, 0),
        )
        .unwrap();
        assert!(!report.preemptions.is_empty());
        for p in &report.preemptions {
            assert!(p.evicted_lines <= 64 * 2, "cannot exceed the cache");
        }
        assert!(
            report.preemptions.iter().any(|p| p.evicted_lines > 0),
            "overlapping tasks must evict something"
        );
    }

    #[test]
    fn duplicate_priorities_rejected() {
        let a = busy("a", 0x1000, 0x100000, 1, 1);
        let b = busy("b", 0x8000, 0x110000, 1, 1);
        let err = simulate(
            &[SchedTask::new(a, 1_000, 1), SchedTask::new(b, 1_000, 1)],
            &config(1_000, 0),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::DuplicatePriority(1)));
    }

    #[test]
    fn empty_task_set_rejected() {
        assert!(matches!(simulate(&[], &config(1_000, 0)), Err(SimError::NoTasks)));
    }

    #[test]
    fn bad_fixed_variant_rejected() {
        let a = busy("a", 0x1000, 0x100000, 1, 1);
        let mut cfg = config(1_000, 0);
        cfg.variant_policy = VariantPolicy::Fixed(7);
        assert!(matches!(
            simulate(&[SchedTask::new(a, 1_000, 1)], &cfg),
            Err(SimError::BadVariant { .. })
        ));
    }

    #[test]
    fn slices_cover_disjoint_intervals() {
        let lo = busy("lo", 0x1000, 0x100000, 200, 8);
        let hi = busy("hi", 0x8000, 0x110000, 5, 2);
        let report = simulate(
            &[SchedTask::new(hi, 3_000, 1), SchedTask::new(lo, 10_000_000, 2)],
            &config(1, 0),
        )
        .unwrap();
        let mut sorted = report.slices.clone();
        sorted.sort_by_key(|s| s.start);
        for w in sorted.windows(2) {
            assert!(w[0].end <= w[1].start, "slices must not overlap: {w:?}");
        }
    }

    #[test]
    fn round_robin_cycles_variants() {
        // A program with two variants of very different length; round
        // robin must produce alternating responses.
        let mut b = ProgramBuilder::new("v", 0x1000, 0x100000);
        let sel = b.data_space("sel", 1);
        b.li_addr(R1, sel);
        b.ld(R2, R1, 0);
        b.if_else(
            rtprogram::Cond::Eq,
            R2,
            R0,
            |b| b.counted_loop(100, R3, |b| b.nop()),
            |b| b.nop(),
        );
        b.variant(rtprogram::InputVariant::named("long").with_write(sel, 0));
        b.variant(rtprogram::InputVariant::named("short").with_write(sel, 1));
        let p = b.build().unwrap();
        let mut cfg = config(40_000, 0);
        cfg.variant_policy = VariantPolicy::RoundRobin;
        let report = simulate(&[SchedTask::new(p, 10_000, 1)], &cfg).unwrap();
        assert_eq!(report.tasks[0].completed, 4);
        assert!(report.tasks[0].max_response > report.tasks[0].mean_response);
    }

    #[test]
    fn error_display() {
        assert!(SimError::NoTasks.to_string().contains("no tasks"));
        assert!(SimError::DuplicatePriority(3).to_string().contains('3'));
    }

    #[test]
    fn l2_reduces_response_under_thrashing() {
        // A task whose footprint exceeds the L1 but fits the L2: with an
        // L2 each self-eviction reload costs 2 instead of 10 cycles.
        let mut b = ProgramBuilder::new("big", 0x1000, 0x100000);
        let buf = b.data_space("buf", 512); // 2 KiB on a 1 KiB L1
        b.counted_loop(4, R2, |b| {
            b.li_addr(R1, buf);
            b.counted_loop(512, R3, |b| {
                b.ld(R4, R1, 0);
                b.addi(R1, R1, 4);
            });
        });
        let big = b.build().unwrap();
        let mut cfg = config(1, 0);
        cfg.geometry = CacheGeometry::new(32, 2, 16).unwrap();
        let flat = simulate(&[SchedTask::new(big.clone(), 10_000_000, 1)], &cfg).unwrap();
        cfg.l2 = Some(L2Config { geometry: CacheGeometry::new(512, 4, 16).unwrap(), penalty: 2 });
        let layered = simulate(&[SchedTask::new(big, 10_000_000, 1)], &cfg).unwrap();
        assert!(
            layered.tasks[0].max_response < flat.tasks[0].max_response,
            "L2 must absorb the reload traffic: {} vs {}",
            layered.tasks[0].max_response,
            flat.tasks[0].max_response
        );
    }

    #[test]
    fn l2_misconfiguration_is_rejected() {
        let t = busy("a", 0x1000, 0x100000, 1, 1);
        let mut cfg = config(1_000, 0);
        cfg.l2 = Some(L2Config {
            geometry: CacheGeometry::new(4, 2, 32).unwrap(), // line mismatch
            penalty: 2,
        });
        assert!(matches!(
            simulate(&[SchedTask::new(t, 1_000, 1)], &cfg),
            Err(SimError::Hierarchy(_))
        ));
    }
}
