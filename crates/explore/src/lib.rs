//! `rtexplore`: design-space exploration sweeps over the artifact DAG.
//!
//! A sweep takes one base system spec plus a [`Grid`] declaring swept
//! axes — cache sets × ways × line size, miss penalty, context-switch
//! cost, per-task period scaling, priority rotation, and CRPD approach —
//! and evaluates the full cross product:
//!
//! * **Deduplicated analysis.** Points are batched and each batch's
//!   unique `(task, geometry, model)` combinations are bound once
//!   through an analysis provider (the in-process [`LocalStore`] or the
//!   server's single-flight artifact store); every point then rebinds
//!   the shared [`crpd::AnalyzedProgram`] artifacts in O(1) via
//!   [`crpd::AnalyzedTask::bind_all`]. A 1000-point sweep re-runs
//!   assemble/trace/CIIP/WCET once per unique key, not per point.
//! * **Deterministic streaming.** Points fan out over the current
//!   [`rtpar`] pool but reduce in index order, so the per-point rows,
//!   the running [`ParetoFront`] and the final report are byte-identical
//!   at any thread count.
//! * **A streamed Pareto front** over (schedulable, total cache bytes,
//!   utilization, min WCRT slack), with the binding-constraint
//!   explanation of each front point rendered through the same
//!   machinery as `trisc wcrt --explain`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod front;
mod grid;
mod local;
mod plan;

use std::fmt::Write as _;
use std::path::Path;

use crpd::CrpdCellCache;
use rtcli::{CliError, SystemSpec};

pub use engine::{
    evaluate_point, explain_front, render_point, run_sweep, AnalyzeProvider, SweepOutcome,
    BATCH_POINTS,
};
pub use front::{dominates, ParetoFront, PointOutcome};
pub use grid::Grid;
pub use local::LocalStore;
pub use plan::{Plan, PointConfig, MAX_POINTS};

/// `trisc explore GRID`: loads the grid file, its base spec and task
/// sources from disk, runs the sweep in-process, and renders the header,
/// every per-point row and the explained Pareto front as one report.
///
/// # Errors
///
/// Returns [`CliError`] on grid/spec parse failures, missing sources, or
/// analysis errors.
pub fn cmd_explore(grid_path: &Path) -> Result<String, CliError> {
    let text = std::fs::read_to_string(grid_path)
        .map_err(|e| CliError::Io(format!("{}: {e}", grid_path.display())))?;
    let grid = Grid::parse(&text)?;
    let spec_rel = grid.spec.clone().ok_or_else(|| {
        CliError::Spec("grid declares no `spec PATH`; `trisc explore` needs one".into())
    })?;
    let base_dir = grid_path.parent().unwrap_or_else(|| Path::new("."));
    let spec = SystemSpec::load(&base_dir.join(spec_rel))?;
    let sources = spec
        .tasks
        .iter()
        .map(|t| {
            let source = std::fs::read_to_string(&t.source)
                .map_err(|e| CliError::Io(format!("{}: {e}", t.source.display())))?;
            Ok((t.name.clone(), source))
        })
        .collect::<Result<Vec<_>, CliError>>()?;
    cmd_explore_with(&spec, sources, &grid)
}

/// The in-process half of [`cmd_explore`], over already-resolved task
/// sources — the entry point the invariance tests and the bench drive
/// directly.
///
/// # Errors
///
/// Returns [`CliError`] on plan validation or analysis failure.
pub fn cmd_explore_with(
    spec: &SystemSpec,
    sources: Vec<(String, String)>,
    grid: &Grid,
) -> Result<String, CliError> {
    let plan = Plan::new(spec, grid)?;
    let store = LocalStore::new(sources);
    let cells = CrpdCellCache::default();
    let provider = |task: usize, geometry, model| store.analyzed_program(task, geometry, model);
    let mut out = String::new();
    let _ = writeln!(out, "explore: {} points ({})", plan.len(), plan.describe_axes());
    let outcome = run_sweep(&plan, &provider, &cells, |batch, _front| {
        for point in batch {
            let _ = writeln!(out, "{}", render_point(point));
        }
    })?;
    let _ = writeln!(out);
    out.push_str(&explain_front(&plan, &provider, &cells, &outcome.front)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str =
        "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n";
    const TASK_HI: &str = ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\n\
                           li r3, 4\nloop: ld r2, 0(r1)\naddi r1, r1, 4\naddi r3, r3, -1\n\
                           bne r3, r0, loop\n.bound loop, 4\nhalt\n";
    const TASK_LO: &str = ".data 0x100400\nbuf: .word 7,8\n.text 0x2000\nstart: li r1, buf\n\
                           ld r2, 0(r1)\nld r4, 4(r1)\nadd r2, r2, r4\nhalt\n";

    fn spec() -> SystemSpec {
        SystemSpec::parse(SPEC, Path::new("")).unwrap()
    }

    fn sources() -> Vec<(String, String)> {
        vec![("hi".into(), TASK_HI.into()), ("lo".into(), TASK_LO.into())]
    }

    #[test]
    fn single_point_sweep_matches_the_wcrt_pipeline() {
        // An empty grid sweeps exactly the base configuration; its WCRT
        // vector must agree with what `trisc wcrt` computes.
        let spec = spec();
        let plan = Plan::new(&spec, &Grid::default()).unwrap();
        let store = LocalStore::new(sources());
        let cells = CrpdCellCache::default();
        let provider = |task: usize, geometry, model| store.analyzed_program(task, geometry, model);
        let outcome = run_sweep(&plan, &provider, &cells, |_, _| {}).unwrap();
        assert_eq!(outcome.points, 1);
        assert_eq!(outcome.front.len(), 1, "a single point is trivially non-dominated");
        let point = &outcome.front.members()[0];
        let reference: Vec<crpd::AnalyzedTask> = sources()
            .iter()
            .zip(&spec.tasks)
            .map(|((name, source), t)| {
                crpd::AnalyzedTask::analyze(
                    &rtprogram::asm::assemble(name, source).unwrap(),
                    crpd::TaskParams { period: t.period, priority: t.priority },
                    spec.cache.geometry().unwrap(),
                    spec.cache.model(),
                )
                .unwrap()
            })
            .collect();
        let matrix = crpd::CrpdMatrix::compute(crpd::CrpdApproach::Combined, &reference);
        let params = crpd::WcrtParams { miss_penalty: 20, ctx_switch: 50, max_iterations: 10_000 };
        assert_eq!(point.wcrt, crpd::analyze_all(&reference, &matrix, &params));
        assert!(point.schedulable);
    }

    #[test]
    fn sweep_report_streams_points_and_explains_the_front() {
        let grid = Grid::parse("sets 32 64\nways 1 2\ncmiss 20 40\napproach all\n").unwrap();
        let report = cmd_explore_with(&spec(), sources(), &grid).unwrap();
        assert!(report.contains("explore: 32 points"), "{report}");
        assert!(report.contains("point 0 [App. 1 32x1x16"), "{report}");
        assert!(report.contains("point 31 [App. 4 64x2x16"), "{report}");
        assert!(report.contains("Pareto front ("), "{report}");
        assert!(report.contains("binding task `"), "{report}");
        // Front indices appear in ascending order.
        let mut last = None;
        for line in report.lines().skip_while(|l| !l.starts_with("Pareto front")) {
            if let Some(rest) = line.trim().strip_prefix("point ") {
                let index: usize = rest.split_whitespace().next().unwrap().parse().unwrap();
                assert!(last.is_none_or(|prev| prev < index), "front out of order: {report}");
                last = Some(index);
            }
        }
        assert!(last.is_some(), "front rendered at least one point: {report}");
    }

    #[test]
    fn artifacts_bind_once_per_unique_geometry_and_model() {
        // 2 geometries x 2 cmiss x 2 ccs x 2 pscale x 4 approaches = 64
        // points, but only 2x2 unique (geometry, model) keys per task:
        // the recorder must see exactly one analyze span per unique key
        // and a stage hit rate >= 0.9 across the sweep.
        let _serial = obs_serial();
        let grid =
            Grid::parse("sets 32 64\ncmiss 20 40\nccs 50 150\nperiod-scale 0.5 1\napproach all\n")
                .unwrap();
        let spec = spec();
        let plan = Plan::new(&spec, &grid).unwrap();
        assert_eq!(plan.len(), 64);
        let store = LocalStore::new(sources());
        let cells = CrpdCellCache::default();
        let provider = |task: usize, geometry, model| store.analyzed_program(task, geometry, model);
        let session = rtobs::begin();
        run_sweep(&plan, &provider, &cells, |_, _| {}).unwrap();
        let stages = session.recorder().stage_durations();
        let counters = session.recorder().counters();
        drop(session);
        let span_count = |stage: &str| stages.get(stage).map(|(count, _)| *count).unwrap_or(0);
        assert_eq!(span_count("analyze"), 2 * 2 * 2, "one analyze per (task, geometry, model)");
        assert_eq!(span_count("assemble"), 2, "one assemble per task");
        assert_eq!(counters.explore.points, 64);
        let analyze = counters.stage_lookups.get("analyze").copied().unwrap_or_default();
        let rate = analyze.hits as f64 / (analyze.hits + analyze.misses) as f64;
        assert!(rate >= 0.9, "analyze stage hit rate {rate} below 0.9");
    }

    /// Serializes recorder-dependent tests within this binary.
    fn obs_serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        match LOCK.get_or_init(std::sync::Mutex::default).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn cmd_explore_reads_grid_spec_and_sources_from_disk() {
        let dir = std::env::temp_dir().join(format!("rtexplore-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("hi.s"), TASK_HI).unwrap();
        std::fs::write(dir.join("lo.s"), TASK_LO).unwrap();
        std::fs::write(dir.join("system.spec"), SPEC).unwrap();
        std::fs::write(dir.join("sweep.grid"), "spec system.spec\nsets 32 64\n").unwrap();
        let report = cmd_explore(&dir.join("sweep.grid")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(report.contains("explore: 2 points"), "{report}");
        // A grid without a spec line is rejected with the fix named.
        let err = {
            let dir = std::env::temp_dir().join(format!("rtexplore-nospec-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("bare.grid"), "sets 32\n").unwrap();
            let err = cmd_explore(&dir.join("bare.grid")).unwrap_err();
            std::fs::remove_dir_all(&dir).ok();
            err
        };
        assert!(err.to_string().contains("spec"), "{err}");
    }
}
