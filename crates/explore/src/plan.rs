//! The resolved sweep plan: a [`Grid`] crossed with a base
//! [`SystemSpec`], validated eagerly, with a fixed mixed-radix point
//! enumeration.

use crpd::{CrpdApproach, TaskParams};
use rtcache::CacheGeometry;
use rtcli::{CliError, SystemSpec};
use rtwcet::TimingModel;

use crate::Grid;

/// Hard cap on the cross-product size: a runaway grid declaration fails
/// fast instead of enumerating forever.
pub const MAX_POINTS: usize = 1_000_000;

/// One fully-resolved sweep point: every axis pinned to a value.
#[derive(Debug, Clone, PartialEq)]
pub struct PointConfig {
    /// The point's index in the plan's enumeration order.
    pub index: usize,
    /// The CRPD approach bounding preemption costs at this point.
    pub approach: CrpdApproach,
    /// The cache geometry (validated at plan build time).
    pub geometry: CacheGeometry,
    /// Cache miss penalty (`Cmiss`) in cycles.
    pub cmiss: u64,
    /// Context-switch cost (`Ccs`) in cycles.
    pub ccs: u64,
    /// Period scaling factor applied to every task.
    pub period_scale: f64,
    /// Priority rotation (already reduced mod the task count).
    pub priority_rot: u32,
}

impl PointConfig {
    /// The timing model of this point: the base model with the point's
    /// miss penalty. Part of the analysis dedup key together with
    /// [`PointConfig::geometry`].
    pub fn model(&self) -> TimingModel {
        TimingModel::with_miss_penalty(self.cmiss)
    }

    /// Compact one-line rendering of the swept axes, used in point rows
    /// and front headers.
    pub fn describe(&self) -> String {
        format!(
            "{} {}x{}x{} cmiss={} ccs={} pscale={} prot={}",
            self.approach,
            self.geometry.sets(),
            self.geometry.ways(),
            self.geometry.line_bytes(),
            self.cmiss,
            self.ccs,
            self.period_scale,
            self.priority_rot
        )
    }
}

/// A validated sweep: the base spec's tasks plus the resolved axis value
/// lists. Points are enumerated in mixed-radix order — approach slowest,
/// then sets, ways, line, cmiss, ccs, period-scale, and priority-rot
/// fastest — so a point's index alone identifies its configuration.
#[derive(Debug, Clone)]
pub struct Plan {
    approach: Vec<CrpdApproach>,
    sets: Vec<u32>,
    ways: Vec<u32>,
    line: Vec<u32>,
    cmiss: Vec<u64>,
    ccs: Vec<u64>,
    period_scale: Vec<f64>,
    priority_rot: Vec<u32>,
    base_params: Vec<TaskParams>,
}

impl Plan {
    /// Resolves `grid` against `spec`: absent axes inherit the spec's
    /// single value, every swept cache shape is validated eagerly, and
    /// the cross-product size is bounded by [`MAX_POINTS`].
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Spec`] for duplicate base priorities or an
    /// oversized grid, and [`CliError::Options`] for an invalid swept
    /// cache shape.
    pub fn new(spec: &SystemSpec, grid: &Grid) -> Result<Plan, CliError> {
        let base_params: Vec<TaskParams> = spec
            .tasks
            .iter()
            .map(|t| TaskParams { period: t.period, priority: t.priority })
            .collect();
        for (i, a) in base_params.iter().enumerate() {
            if base_params[..i].iter().any(|b| b.priority == a.priority) {
                return Err(CliError::Spec(format!(
                    "duplicate priority {} in the base spec; fixed-priority analysis \
                     needs a total order",
                    a.priority
                )));
            }
        }
        let or = |axis: &[u32], base: u32| {
            if axis.is_empty() {
                vec![base]
            } else {
                axis.to_vec()
            }
        };
        let n = base_params.len() as u32;
        let plan = Plan {
            approach: if grid.approach.is_empty() {
                vec![CrpdApproach::Combined]
            } else {
                grid.approach.clone()
            },
            sets: or(&grid.sets, spec.cache.sets),
            ways: or(&grid.ways, spec.cache.ways),
            line: or(&grid.line, spec.cache.line),
            cmiss: if grid.cmiss.is_empty() { vec![spec.cache.cmiss] } else { grid.cmiss.clone() },
            ccs: if grid.ccs.is_empty() { vec![spec.ctx_switch] } else { grid.ccs.clone() },
            period_scale: if grid.period_scale.is_empty() {
                vec![1.0]
            } else {
                grid.period_scale.clone()
            },
            priority_rot: if grid.priority_rot.is_empty() {
                vec![0]
            } else {
                grid.priority_rot.iter().map(|k| k % n).collect()
            },
            base_params,
        };
        // Validate every swept cache shape before any analysis runs.
        for &sets in &plan.sets {
            for &ways in &plan.ways {
                for &line in &plan.line {
                    CacheGeometry::new(sets, ways, line)
                        .map_err(|e| CliError::Options(format!("swept cache shape: {e}")))?;
                }
            }
        }
        let len = plan
            .axis_lens()
            .iter()
            .try_fold(1usize, |acc, &l| acc.checked_mul(l))
            .filter(|&l| l <= MAX_POINTS);
        if len.is_none() {
            return Err(CliError::Spec(format!(
                "grid enumerates more than {MAX_POINTS} points; shrink an axis"
            )));
        }
        Ok(plan)
    }

    /// Axis lengths in enumeration order (slowest first).
    fn axis_lens(&self) -> [usize; 8] {
        [
            self.approach.len(),
            self.sets.len(),
            self.ways.len(),
            self.line.len(),
            self.cmiss.len(),
            self.ccs.len(),
            self.period_scale.len(),
            self.priority_rot.len(),
        ]
    }

    /// Total number of sweep points (the axis cross product).
    pub fn len(&self) -> usize {
        self.axis_lens().iter().product()
    }

    /// `true` when the plan has no points (never: every axis holds at
    /// least one value).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tasks in the base spec.
    pub fn task_count(&self) -> usize {
        self.base_params.len()
    }

    /// Human-readable axis summary for report headers.
    pub fn describe_axes(&self) -> String {
        let [a, s, w, l, cm, cc, ps, pr] = self.axis_lens();
        format!(
            "{} approaches x {} sets x {} ways x {} lines x {} cmiss x {} ccs \
             x {} period-scales x {} priority-rots",
            a, s, w, l, cm, cc, ps, pr
        )
    }

    /// Decodes point `index` into its per-axis values (the mixed-radix
    /// digits of `index`, priority-rot varying fastest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn point(&self, index: usize) -> PointConfig {
        assert!(index < self.len(), "point {index} out of range ({} points)", self.len());
        let mut rest = index;
        let mut digit = |len: usize| {
            let d = rest % len;
            rest /= len;
            d
        };
        // Fastest axis first: peel digits from the least significant end.
        let priority_rot = self.priority_rot[digit(self.priority_rot.len())];
        let period_scale = self.period_scale[digit(self.period_scale.len())];
        let ccs = self.ccs[digit(self.ccs.len())];
        let cmiss = self.cmiss[digit(self.cmiss.len())];
        let line = self.line[digit(self.line.len())];
        let ways = self.ways[digit(self.ways.len())];
        let sets = self.sets[digit(self.sets.len())];
        let approach = self.approach[digit(self.approach.len())];
        PointConfig {
            index,
            approach,
            geometry: CacheGeometry::new(sets, ways, line)
                .expect("plan construction validated every swept shape"),
            cmiss,
            ccs,
            period_scale,
            priority_rot,
        }
    }

    /// The scheduling parameters of every task at `config`: periods are
    /// scaled (rounded, floored at 1 cycle) and priorities rotated —
    /// task `i` takes the base priority of task `(i + rot) mod n`, so
    /// the priority levels stay pairwise distinct.
    pub fn params_for(&self, config: &PointConfig) -> Vec<TaskParams> {
        let n = self.base_params.len();
        (0..n)
            .map(|i| TaskParams {
                period: ((self.base_params[i].period as f64 * config.period_scale).round() as u64)
                    .max(1),
                priority: self.base_params[(i + config.priority_rot as usize) % n].priority,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn spec() -> SystemSpec {
        SystemSpec::parse(
            "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n",
            Path::new(""),
        )
        .unwrap()
    }

    #[test]
    fn empty_grid_is_a_single_point_inheriting_the_spec() {
        let plan = Plan::new(&spec(), &Grid::default()).unwrap();
        assert_eq!(plan.len(), 1);
        let p = plan.point(0);
        assert_eq!(p.approach, CrpdApproach::Combined);
        assert_eq!((p.geometry.sets(), p.geometry.ways(), p.geometry.line_bytes()), (64, 2, 16));
        assert_eq!((p.cmiss, p.ccs), (20, 50));
        assert_eq!(
            plan.params_for(&p),
            vec![
                TaskParams { period: 5_000, priority: 1 },
                TaskParams { period: 50_000, priority: 2 },
            ]
        );
    }

    #[test]
    fn indices_decode_in_mixed_radix_order() {
        let grid = Grid::parse(
            "sets 32 64\nways 1 2\ncmiss 20 40\nperiod-scale 1 2\npriority-rot 0 1\napproach all\n",
        )
        .unwrap();
        let plan = Plan::new(&spec(), &grid).unwrap();
        assert_eq!(plan.len(), 4 * 2 * 2 * 2 * 2 * 2);
        // Point 0 takes the first value of every axis.
        let p0 = plan.point(0);
        assert_eq!(p0.approach, CrpdApproach::AllPreemptingLines);
        assert_eq!((p0.geometry.sets(), p0.geometry.ways()), (32, 1));
        assert_eq!((p0.cmiss, p0.period_scale, p0.priority_rot), (20, 1.0, 0));
        // The fastest axis is priority-rot: index 1 bumps only it.
        let p1 = plan.point(1);
        assert_eq!(p1.priority_rot, 1);
        assert_eq!((p1.approach, p1.geometry.sets(), p1.cmiss), (p0.approach, 32, 20));
        // The slowest axis is the approach: the second half of the range
        // switches it while lower axes wrap around.
        let mid = plan.point(plan.len() / 4);
        assert_eq!(mid.approach, CrpdApproach::InterTask);
        assert_eq!((mid.geometry.sets(), mid.priority_rot), (32, 0));
        // Every index decodes to a distinct configuration.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..plan.len() {
            let p = plan.point(i);
            assert!(seen.insert(p.describe().to_string()), "duplicate point {i}");
        }
    }

    #[test]
    fn params_scale_periods_and_rotate_priorities() {
        let grid = Grid::parse("period-scale 0.5\npriority-rot 1\n").unwrap();
        let plan = Plan::new(&spec(), &grid).unwrap();
        let params = plan.params_for(&plan.point(0));
        assert_eq!(
            params,
            vec![
                TaskParams { period: 2_500, priority: 2 },
                TaskParams { period: 25_000, priority: 1 },
            ]
        );
        // Rotation permutes priorities: always pairwise distinct.
        let mut prios: Vec<u32> = params.iter().map(|p| p.priority).collect();
        prios.sort_unstable();
        prios.dedup();
        assert_eq!(prios.len(), 2);
    }

    #[test]
    fn tiny_scaled_periods_floor_at_one_cycle() {
        let grid = Grid::parse("period-scale 0.00001\n").unwrap();
        let plan = Plan::new(&spec(), &grid).unwrap();
        let params = plan.params_for(&plan.point(0));
        assert!(params.iter().all(|p| p.period >= 1));
    }

    #[test]
    fn rejects_bad_shapes_duplicate_priorities_and_oversized_grids() {
        let bad_shape = Grid::parse("sets 3\n").unwrap();
        assert!(matches!(Plan::new(&spec(), &bad_shape), Err(CliError::Options(_))));

        let dup =
            SystemSpec::parse("task a a.s 1000 1\ntask b b.s 2000 1\n", Path::new("")).unwrap();
        let err = Plan::new(&dup, &Grid::default()).unwrap_err();
        assert!(err.to_string().contains("duplicate priority"), "{err}");

        let huge = Grid {
            cmiss: (0..2_000u64).collect(),
            ccs: (0..2_000u64).collect(),
            ..Grid::default()
        };
        let err = Plan::new(&spec(), &huge).unwrap_err();
        assert!(err.to_string().contains("points"), "{err}");
    }

    #[test]
    fn priority_rotation_wraps_modulo_the_task_count() {
        let grid = Grid::parse("priority-rot 0 2 5\n").unwrap();
        let plan = Plan::new(&spec(), &grid).unwrap();
        // n = 2, so rotations reduce to 0, 0, 1.
        assert_eq!(plan.point(0).priority_rot, 0);
        assert_eq!(plan.point(1).priority_rot, 0);
        assert_eq!(plan.point(2).priority_rot, 1);
    }
}
