//! An in-process artifact store for storeless sweeps (CLI and bench):
//! the same two content-addressed stages the analysis server keeps —
//! assemble and analyze — minus the cross-request machinery.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crpd::AnalyzedProgram;
use rtcache::CacheGeometry;
use rtcli::CliError;
use rtprogram::Program;
use rtwcet::TimingModel;

/// Memoizes each task's assembled [`Program`] and its
/// [`AnalyzedProgram`] per `(task, geometry, model)`. Every lookup is
/// recorded as an rtobs stage lookup (`assemble` / `analyze`), so sweep
/// hit rates are measurable exactly like the server's `StageStore` path.
///
/// Misses compute outside the map lock so distinct artifacts build in
/// parallel; the sweep engine pre-warms each batch's unique
/// combinations, so concurrent lookups for the *same* key only happen
/// once the key is already present.
pub struct LocalStore {
    /// `(name, source)` per task, in spec order.
    tasks: Vec<(String, String)>,
    programs: Mutex<HashMap<usize, Arc<Program>>>,
    analyses: Mutex<HashMap<AnalysisKey, Arc<AnalyzedProgram>>>,
}

/// The analyze-stage key. The timing model enters through the miss
/// penalty — the only model axis a sweep varies.
type AnalysisKey = (usize, CacheGeometry, u64);

impl LocalStore {
    /// Creates a store over the sweep's tasks: `(name, assembly source)`
    /// in spec order.
    pub fn new(tasks: Vec<(String, String)>) -> Self {
        LocalStore { tasks, programs: Mutex::default(), analyses: Mutex::default() }
    }

    /// Number of tasks the store serves.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    fn program(&self, task: usize) -> Result<Arc<Program>, CliError> {
        if let Some(hit) = self.programs.lock().expect("program store").get(&task) {
            rtobs::record_stage_lookup("assemble", true);
            return Ok(Arc::clone(hit));
        }
        rtobs::record_stage_lookup("assemble", false);
        let (name, source) = &self.tasks[task];
        let program = {
            let _span = rtobs::span_labeled("assemble", || name.clone());
            rtprogram::asm::assemble(name, source)
                .map_err(|e| CliError::Asm(format!("{name}: {e}")))?
        };
        let mut programs = self.programs.lock().expect("program store");
        Ok(Arc::clone(programs.entry(task).or_insert_with(|| Arc::new(program))))
    }

    /// The analyzed artifact of `task` under `(geometry, model)`,
    /// computed on first request and served from the store afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Asm`] or [`CliError::Analysis`] when the
    /// underlying stage fails; failures are not cached.
    pub fn analyzed_program(
        &self,
        task: usize,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<Arc<AnalyzedProgram>, CliError> {
        let key: AnalysisKey = (task, geometry, model.miss_penalty);
        if let Some(hit) = self.analyses.lock().expect("analysis store").get(&key) {
            rtobs::record_stage_lookup("analyze", true);
            return Ok(Arc::clone(hit));
        }
        rtobs::record_stage_lookup("analyze", false);
        let program = self.program(task)?;
        let analyzed = AnalyzedProgram::analyze(&program, geometry, model)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let mut analyses = self.analyses.lock().expect("analysis store");
        Ok(Arc::clone(analyses.entry(key).or_insert_with(|| Arc::new(analyzed))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = ".data 0x100000\nbuf: .word 1,2\n.text 0x1000\n\
                       start: li r1, buf\nld r2, 0(r1)\nhalt\n";

    #[test]
    fn memoizes_per_task_geometry_and_model() {
        let store = LocalStore::new(vec![("a".into(), SRC.into())]);
        let g64 = CacheGeometry::new(64, 2, 16).unwrap();
        let g32 = CacheGeometry::new(32, 2, 16).unwrap();
        let m20 = TimingModel::with_miss_penalty(20);
        let m40 = TimingModel::with_miss_penalty(40);
        let first = store.analyzed_program(0, g64, m20).unwrap();
        let again = store.analyzed_program(0, g64, m20).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "repeat lookups share the artifact");
        let other_geom = store.analyzed_program(0, g32, m20).unwrap();
        assert!(!Arc::ptr_eq(&first, &other_geom), "geometry is part of the key");
        let other_model = store.analyzed_program(0, g64, m40).unwrap();
        assert!(!Arc::ptr_eq(&first, &other_model), "the model is part of the key");
        assert_ne!(first.fingerprint(), other_geom.fingerprint());
    }

    #[test]
    fn assembly_errors_surface_and_are_not_cached() {
        let store = LocalStore::new(vec![("bad".into(), "not assembly".into())]);
        let g = CacheGeometry::new(64, 2, 16).unwrap();
        let err = store.analyzed_program(0, g, TimingModel::default()).unwrap_err();
        assert!(matches!(err, CliError::Asm(_)), "{err}");
        // Still fails (and still reports the assembler) on retry.
        assert!(store.analyzed_program(0, g, TimingModel::default()).is_err());
    }
}
