//! The sweep engine: batch-deduplicated artifact binding, parallel point
//! evaluation, and a deterministic index-ordered reduction into the
//! streamed [`ParetoFront`].

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

use crpd::{analyze_all, AnalyzedProgram, AnalyzedTask, CrpdCellCache, CrpdMatrix, WcrtParams};
use rtcache::CacheGeometry;
use rtcli::CliError;
use rtwcet::TimingModel;

use crate::{ParetoFront, Plan, PointConfig, PointOutcome};

/// The analysis provider a sweep runs against: maps `(task index,
/// geometry, model)` to the task's params-free artifact. The CLI and
/// bench pass a [`crate::LocalStore`] adapter; the server passes its
/// single-flight `ArtifactStore`, sharing artifacts across requests.
pub type AnalyzeProvider<'a> = &'a (dyn Fn(usize, CacheGeometry, TimingModel) -> Result<Arc<AnalyzedProgram>, CliError>
         + Sync);

/// Points evaluated per streamed batch: large enough to amortize the
/// fan-out, small enough that results stream while the sweep runs.
pub const BATCH_POINTS: usize = 128;

/// Maximum WCRT fixpoint iterations per point (matches `trisc wcrt`).
const MAX_ITERATIONS: u32 = 10_000;

/// Final tallies of one sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Total points evaluated (= the plan's length).
    pub points: usize,
    /// The final Pareto front.
    pub front: ParetoFront,
}

/// Runs every point of `plan` through `provider` and `cells`, streaming
/// each evaluated batch — outcomes in point-index order plus the running
/// front — into `on_batch`.
///
/// Within a batch the unique `(task, geometry, model)` combinations are
/// pre-bound first (each artifact analyzes exactly once per unique key,
/// in deduplicated key order), then the batch's points fan out over the
/// current [`rtpar`] pool against the now-warm provider. The reduction
/// folds in index order, so the front and every streamed byte are
/// identical at any pool size.
///
/// # Errors
///
/// Propagates the first provider or analysis error in point order.
pub fn run_sweep(
    plan: &Plan,
    provider: AnalyzeProvider<'_>,
    cells: &CrpdCellCache,
    mut on_batch: impl FnMut(&[PointOutcome], &ParetoFront),
) -> Result<SweepOutcome, CliError> {
    let _span = rtobs::span_labeled("explore", || format!("{} points", plan.len()));
    let mut front = ParetoFront::default();
    let mut done = 0usize;
    while done < plan.len() {
        let batch = done..plan.len().min(done + BATCH_POINTS);
        // Dedup this batch's artifact demand and warm each unique
        // (task, geometry, model) once, in key order.
        let unique: BTreeSet<(usize, u32, u32, u32, u64)> = batch
            .clone()
            .flat_map(|index| {
                let config = plan.point(index);
                let g = config.geometry;
                (0..plan.task_count())
                    .map(move |t| (t, g.sets(), g.ways(), g.line_bytes(), config.cmiss))
            })
            .collect();
        let unique: Vec<_> = unique.into_iter().collect();
        let warmed = rtpar::par_map(&unique, |&(task, sets, ways, line, cmiss)| {
            let geometry = CacheGeometry::new(sets, ways, line)
                .expect("plan construction validated every swept shape");
            provider(task, geometry, TimingModel::with_miss_penalty(cmiss)).map(|_| ())
        });
        for result in warmed {
            result?;
        }
        // Evaluate the batch against the warm provider; results come
        // back in index order.
        let outcomes = rtpar::par_map_range(batch.len(), |offset| {
            evaluate_point(plan, provider, cells, batch.start + offset)
        });
        let outcomes: Vec<PointOutcome> = outcomes.into_iter().collect::<Result<_, _>>()?;
        for outcome in &outcomes {
            front.offer(outcome);
        }
        rtobs::record_explore_points(outcomes.len() as u64);
        rtobs::record_explore_front(front.len() as u64);
        done = batch.end;
        on_batch(&outcomes, &front);
    }
    Ok(SweepOutcome { points: done, front })
}

/// Evaluates one sweep point: rebinds the cached artifacts to the
/// point's parameters, bounds the CRPD matrix through the shared cell
/// cache, and runs the Eq. 7 recurrence for every task.
pub fn evaluate_point(
    plan: &Plan,
    provider: AnalyzeProvider<'_>,
    cells: &CrpdCellCache,
    index: usize,
) -> Result<PointOutcome, CliError> {
    let config = plan.point(index);
    let (tasks, matrix, params) = bind_point(plan, provider, cells, &config)?;
    let wcrt = analyze_all(&tasks, &matrix, &params);
    let min_slack = tasks
        .iter()
        .zip(&wcrt)
        .map(|(t, r)| {
            i64::try_from(i128::from(t.params().period) - i128::from(r.cycles))
                .unwrap_or(if r.cycles > t.params().period { i64::MIN } else { i64::MAX })
        })
        .min()
        .unwrap_or(0);
    Ok(PointOutcome {
        schedulable: wcrt.iter().all(|r| r.schedulable),
        utilization: crpd::total_utilization(&tasks),
        cache_bytes: config.geometry.size_bytes(),
        min_slack,
        wcrt,
        config,
    })
}

/// Rebinds a point's tasks and computes its CRPD matrix — the shared
/// prefix of [`evaluate_point`] and [`explain_front`].
fn bind_point(
    plan: &Plan,
    provider: AnalyzeProvider<'_>,
    cells: &CrpdCellCache,
    config: &PointConfig,
) -> Result<(Vec<AnalyzedTask>, CrpdMatrix, WcrtParams), CliError> {
    let programs: Vec<Arc<AnalyzedProgram>> = (0..plan.task_count())
        .map(|t| provider(t, config.geometry, config.model()))
        .collect::<Result<_, _>>()?;
    let tasks = AnalyzedTask::bind_all(&programs, &plan.params_for(config));
    let matrix = CrpdMatrix::compute_with(config.approach, &tasks, cells);
    let params = WcrtParams {
        miss_penalty: config.cmiss,
        ctx_switch: config.ccs,
        max_iterations: MAX_ITERATIONS,
    };
    Ok((tasks, matrix, params))
}

/// Renders one point outcome as the sweep's compact per-point row.
pub fn render_point(outcome: &PointOutcome) -> String {
    let wcrt: Vec<String> = outcome.wcrt.iter().map(|r| r.cycles.to_string()).collect();
    format!(
        "point {} [{}] sched={} util={:.4} bytes={} slack={} R=[{}]",
        outcome.config.index,
        outcome.config.describe(),
        if outcome.schedulable { "yes" } else { "no" },
        outcome.utilization,
        outcome.cache_bytes,
        outcome.min_slack,
        wcrt.join(" ")
    )
}

/// How many cache sets the front explanation names per preemption pair.
const EXPLAIN_TOP_SETS: usize = 3;

/// Renders the binding-constraint explanation for every front point, in
/// point-index order: the slack-binding task's Eq. 7 breakdown (the
/// `--explain` machinery) plus the top cache sets of each preemption
/// pair's combined overlap bound. Re-binds each point through the (now
/// fully warm) provider, so no pipeline stage re-runs.
///
/// # Errors
///
/// Propagates provider errors (none occur after a completed sweep).
pub fn explain_front(
    plan: &Plan,
    provider: AnalyzeProvider<'_>,
    cells: &CrpdCellCache,
    front: &ParetoFront,
) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(out, "Pareto front ({} points):", front.len());
    for member in front.members() {
        let _ = writeln!(out, "  {}", render_point(member));
        let (tasks, matrix, params) = bind_point(plan, provider, cells, &member.config)?;
        // The binding constraint: the task with the least slack (ties go
        // to the lowest index).
        let binding = tasks
            .iter()
            .zip(&member.wcrt)
            .enumerate()
            .min_by_key(|(_, (t, r))| i128::from(t.params().period) - i128::from(r.cycles))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let b = crpd::explain_response_time(&tasks, &matrix, binding, &params);
        let t = &tasks[binding];
        let _ = writeln!(
            out,
            "    binding task `{}`: R={} = {} + {} + {} + {} ({} preemptions, {})",
            t.name(),
            b.result.cycles,
            b.wcet,
            b.interference,
            b.crpd,
            b.ctx_switch,
            b.preemptions,
            b.result.stop
        );
        for hp in &tasks {
            if hp.params().priority >= t.params().priority {
                continue;
            }
            let contributions = crpd::combined_overlap_breakdown(t, hp);
            if contributions.is_empty() {
                continue;
            }
            let shown: Vec<String> = contributions
                .iter()
                .take(EXPLAIN_TOP_SETS)
                .map(|c| format!("set {}: {} (min: {})", c.set.as_usize(), c.lines, c.cap.label()))
                .collect();
            let _ = writeln!(
                out,
                "    top sets vs `{}` (of {} overlapping): {}",
                hp.name(),
                contributions.len(),
                shown.join(", ")
            );
        }
    }
    Ok(out)
}
