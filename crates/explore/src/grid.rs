//! The grid file format for `trisc explore`.
//!
//! A grid declares the swept axes of a design-space exploration over one
//! base system spec:
//!
//! ```text
//! # sweep the paper's Experiment I system across cache shapes
//! spec system.spec
//! sets 64 128 256 512
//! ways 1 2 4
//! line 16
//! cmiss 20 40
//! ccs 50 376
//! period-scale 0.5 1 2
//! priority-rot 0 1
//! approach all
//! ```
//!
//! Every directive is optional except that the CLI path needs `spec`
//! (the server supplies the spec inline instead). Absent axes inherit a
//! single value from the base spec: its cache shape, `cmiss`, and `ccs`;
//! `period-scale` defaults to `[1.0]`, `priority-rot` to `[0]`, and
//! `approach` to `[4]` (the combined bound). The sweep enumerates the
//! full cross product of all axes.

use std::path::PathBuf;

use crpd::CrpdApproach;
use rtcli::CliError;

/// A parsed grid declaration: the swept axes, each possibly empty
/// (= inherit one value from the base spec).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Grid {
    /// Path to the base system spec, resolved against the grid file's
    /// directory by the CLI. `None` when the spec arrives out of band
    /// (the server inlines it in the request).
    pub spec: Option<PathBuf>,
    /// Cache set counts to sweep (powers of two).
    pub sets: Vec<u32>,
    /// Way (associativity) counts to sweep.
    pub ways: Vec<u32>,
    /// Line sizes in bytes to sweep (powers of two >= 4).
    pub line: Vec<u32>,
    /// Cache miss penalties (`Cmiss`) in cycles to sweep.
    pub cmiss: Vec<u64>,
    /// Context-switch costs (`Ccs`) in cycles to sweep.
    pub ccs: Vec<u64>,
    /// Period scaling factors applied to every task (must be > 0).
    pub period_scale: Vec<f64>,
    /// Priority rotations: rotation `k` gives task `i` the base priority
    /// of task `(i + k) mod n`, permuting — never duplicating — the
    /// priority levels.
    pub priority_rot: Vec<u32>,
    /// CRPD approaches to sweep.
    pub approach: Vec<CrpdApproach>,
}

impl Grid {
    /// Parses grid text. `#` starts a comment; blank lines are ignored;
    /// repeating a directive replaces its earlier value.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Spec`] with the offending line for malformed
    /// input.
    pub fn parse(text: &str) -> Result<Grid, CliError> {
        let mut grid = Grid::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let fields: Vec<&str> = content.split_whitespace().collect();
            let bad = |msg: String| CliError::Spec(format!("grid line {line}: {msg}"));
            let values = &fields[1..];
            if fields[0] != "spec" && values.is_empty() {
                return Err(bad(format!("`{}` needs at least one value", fields[0])));
            }
            match fields[0] {
                "spec" => {
                    let [path] = values else {
                        return Err(bad("expected `spec PATH`".into()));
                    };
                    grid.spec = Some(PathBuf::from(path));
                }
                "sets" => grid.sets = parse_list(values, "sets", line)?,
                "ways" => grid.ways = parse_list(values, "ways", line)?,
                "line" => grid.line = parse_list(values, "line size", line)?,
                "cmiss" => grid.cmiss = parse_list(values, "cmiss", line)?,
                "ccs" => grid.ccs = parse_list(values, "ccs", line)?,
                "period-scale" => {
                    grid.period_scale = values
                        .iter()
                        .map(|v| match v.parse::<f64>() {
                            Ok(scale) if scale > 0.0 && scale.is_finite() => Ok(scale),
                            _ => Err(bad(format!("bad period scale `{v}` (need finite > 0)"))),
                        })
                        .collect::<Result<_, _>>()?;
                }
                "priority-rot" => {
                    grid.priority_rot = parse_list(values, "priority rotation", line)?
                }
                "approach" => {
                    if values == ["all"] {
                        grid.approach = CrpdApproach::ALL.to_vec();
                    } else {
                        grid.approach = values
                            .iter()
                            .map(|v| match *v {
                                "1" => Ok(CrpdApproach::AllPreemptingLines),
                                "2" => Ok(CrpdApproach::InterTask),
                                "3" => Ok(CrpdApproach::UsefulBlocks),
                                "4" => Ok(CrpdApproach::Combined),
                                other => Err(bad(format!(
                                    "bad approach `{other}` (expected 1-4 or all)"
                                ))),
                            })
                            .collect::<Result<_, _>>()?;
                    }
                }
                other => return Err(bad(format!("unknown directive `{other}`"))),
            }
        }
        Ok(grid)
    }
}

/// Parses a whitespace-separated list of unsigned integers.
fn parse_list<T: std::str::FromStr>(
    values: &[&str],
    what: &str,
    line: usize,
) -> Result<Vec<T>, CliError> {
    values
        .iter()
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| CliError::Spec(format!("grid line {line}: bad {what} `{v}`")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        let g = Grid::parse(
            "# comment\nspec sys.spec\nsets 64 128\nways 1 2 4\nline 16 32\n\
             cmiss 20 40\nccs 50\nperiod-scale 0.5 1 2\npriority-rot 0 1\napproach 2 4\n",
        )
        .unwrap();
        assert_eq!(g.spec.as_deref(), Some(std::path::Path::new("sys.spec")));
        assert_eq!(g.sets, [64, 128]);
        assert_eq!(g.ways, [1, 2, 4]);
        assert_eq!(g.line, [16, 32]);
        assert_eq!(g.cmiss, [20, 40]);
        assert_eq!(g.ccs, [50]);
        assert_eq!(g.period_scale, [0.5, 1.0, 2.0]);
        assert_eq!(g.priority_rot, [0, 1]);
        assert_eq!(g.approach, [CrpdApproach::InterTask, CrpdApproach::Combined]);
    }

    #[test]
    fn approach_all_expands() {
        let g = Grid::parse("approach all\n").unwrap();
        assert_eq!(g.approach, CrpdApproach::ALL);
    }

    #[test]
    fn empty_grid_inherits_everything() {
        let g = Grid::parse("# nothing swept\n").unwrap();
        assert_eq!(g, Grid::default());
        assert!(g.spec.is_none());
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "sets\n",
            "sets x\n",
            "period-scale 0\n",
            "period-scale -1\n",
            "period-scale nan\n",
            "approach 5\n",
            "approach\n",
            "spec a b\n",
            "frobnicate 1\n",
        ] {
            let err = Grid::parse(bad).unwrap_err();
            assert!(matches!(err, CliError::Spec(_)), "{bad}");
            assert!(err.to_string().contains("grid line 1"), "{bad}: {err}");
        }
    }
}
