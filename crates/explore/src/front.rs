//! The streamed Pareto front over sweep-point outcomes.

use crpd::WcrtResult;

use crate::PointConfig;

/// Everything the sweep records about one evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// The point's resolved configuration (carries the index).
    pub config: PointConfig,
    /// `true` when every task converged at or below its deadline under
    /// the point's approach.
    pub schedulable: bool,
    /// Total task-set utilization `Σ C_i / P_i` at the point's periods.
    pub utilization: f64,
    /// Total cache capacity in bytes (`sets * ways * line`).
    pub cache_bytes: u64,
    /// Worst WCRT slack across tasks: `min_i (P_i - R_i)`, negative when
    /// some task overruns its deadline.
    pub min_slack: i64,
    /// Per-task WCRT results, in task order.
    pub wcrt: Vec<WcrtResult>,
}

impl PointOutcome {
    /// The objective vector the Pareto dominance rule compares.
    fn objectives(&self) -> (bool, u64, f64, i64) {
        (self.schedulable, self.cache_bytes, self.utilization, self.min_slack)
    }
}

/// `true` when `a` weakly dominates `b` on every objective — schedulable
/// and slack maximized, cache bytes and utilization minimized — and
/// strictly improves at least one.
pub fn dominates(a: &PointOutcome, b: &PointOutcome) -> bool {
    let (a_sched, a_bytes, a_util, a_slack) = a.objectives();
    let (b_sched, b_bytes, b_util, b_slack) = b.objectives();
    let weakly =
        (a_sched || !b_sched) && a_bytes <= b_bytes && a_util <= b_util && a_slack >= b_slack;
    weakly && ((a_sched && !b_sched) || a_bytes < b_bytes || a_util < b_util || a_slack > b_slack)
}

/// The set of non-dominated outcomes seen so far, kept in point-index
/// order. Offering points in index order keeps the front — membership
/// *and* ordering — independent of how the sweep was parallelized.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    members: Vec<PointOutcome>,
}

impl ParetoFront {
    /// Offers one outcome: rejected if any current member dominates it
    /// (or ties it exactly — the earlier point wins), otherwise admitted
    /// after evicting every member it dominates. Returns `true` when the
    /// point joined the front.
    pub fn offer(&mut self, candidate: &PointOutcome) -> bool {
        if self
            .members
            .iter()
            .any(|m| dominates(m, candidate) || m.objectives() == candidate.objectives())
        {
            return false;
        }
        self.members.retain(|m| !dominates(candidate, m));
        // Offers arrive in index order, so pushing keeps the order.
        self.members.push(candidate.clone());
        true
    }

    /// The current front, in point-index order.
    pub fn members(&self) -> &[PointOutcome] {
        &self.members
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no point has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpd::CrpdApproach;
    use rtcache::CacheGeometry;

    fn outcome(index: usize, schedulable: bool, bytes: u64, util: f64, slack: i64) -> PointOutcome {
        PointOutcome {
            config: PointConfig {
                index,
                approach: CrpdApproach::Combined,
                geometry: CacheGeometry::new(64, 2, 16).unwrap(),
                cmiss: 20,
                ccs: 50,
                period_scale: 1.0,
                priority_rot: 0,
            },
            schedulable,
            utilization: util,
            cache_bytes: bytes,
            min_slack: slack,
            wcrt: Vec::new(),
        }
    }

    #[test]
    fn dominance_requires_weak_everywhere_and_strict_somewhere() {
        let a = outcome(0, true, 1024, 0.5, 100);
        let b = outcome(1, true, 2048, 0.6, 50);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        // Equal vectors dominate in neither direction.
        assert!(!dominates(&a, &outcome(2, true, 1024, 0.5, 100)));
        // Trade-offs (cheaper cache vs. more slack) are incomparable.
        let cheap = outcome(3, true, 512, 0.5, 10);
        let roomy = outcome(4, true, 4096, 0.5, 500);
        assert!(!dominates(&cheap, &roomy));
        assert!(!dominates(&roomy, &cheap));
        // Schedulability is the first-class objective.
        assert!(dominates(&outcome(5, true, 1024, 0.5, 100), &outcome(6, false, 1024, 0.5, 100)));
    }

    #[test]
    fn front_admits_evicts_and_preserves_index_order() {
        let mut front = ParetoFront::default();
        assert!(front.is_empty());
        assert!(front.offer(&outcome(0, true, 2048, 0.6, 50)));
        assert!(front.offer(&outcome(1, true, 512, 0.7, 10))); // cheaper: incomparable
                                                               // Dominated by point 0: rejected.
        assert!(!front.offer(&outcome(2, true, 4096, 0.8, 20)));
        // An exact objective tie keeps the earlier point.
        assert!(!front.offer(&outcome(3, true, 2048, 0.6, 50)));
        // Dominates point 0: evicts it, front stays index-ordered.
        assert!(front.offer(&outcome(4, true, 1024, 0.5, 100)));
        let indices: Vec<usize> = front.members().iter().map(|m| m.config.index).collect();
        assert_eq!(indices, [1, 4]);
        assert_eq!(front.len(), 2);
    }
}
