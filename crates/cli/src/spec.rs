//! The system-spec file format for `trisc wcrt` / `trisc sim`.
//!
//! A spec describes a fixed-priority task system in plain text:
//!
//! ```text
//! # three tasks sharing the paper's L1
//! cache 512 4 16
//! cmiss 20
//! ccs   376
//! task mr   mr.s   100000 2
//! task ed   ed.s   800000 3
//! task ofdm ofdm.s 4000000 4
//! ```
//!
//! Task source paths are resolved relative to the spec file's directory.

use std::path::{Path, PathBuf};

use crpd::{AnalyzedTask, TaskParams};
use rtprogram::Program;

use crate::options::{CacheOptions, CliError};

/// One `task` line of the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecTask {
    /// Task name.
    pub name: String,
    /// Path to the assembly source (resolved against the spec dir).
    pub source: PathBuf,
    /// Period (= deadline) in cycles.
    pub period: u64,
    /// Fixed priority (smaller = higher).
    pub priority: u32,
}

/// A parsed system spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSpec {
    /// Cache and miss-penalty configuration.
    pub cache: CacheOptions,
    /// Context-switch cost in cycles.
    pub ctx_switch: u64,
    /// The tasks, in file order.
    pub tasks: Vec<SpecTask>,
}

impl SystemSpec {
    /// Parses spec text; `base_dir` anchors relative source paths.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Spec`] with the offending line for malformed
    /// input.
    pub fn parse(text: &str, base_dir: &Path) -> Result<SystemSpec, CliError> {
        let mut spec =
            SystemSpec { cache: CacheOptions::default(), ctx_switch: 0, tasks: Vec::new() };
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let fields: Vec<&str> = content.split_whitespace().collect();
            let bad = |msg: &str| CliError::Spec(format!("line {line}: {msg}"));
            let parse_u64 = |s: &str, what: &str| -> Result<u64, CliError> {
                s.parse().map_err(|_| bad(&format!("bad {what} `{s}`")))
            };
            match fields[0] {
                "cache" => {
                    let [_, sets, ways, line_bytes] = fields.as_slice() else {
                        return Err(bad("expected `cache SETS WAYS LINE`"));
                    };
                    spec.cache.sets = parse_u64(sets, "sets")? as u32;
                    spec.cache.ways = parse_u64(ways, "ways")? as u32;
                    spec.cache.line = parse_u64(line_bytes, "line size")? as u32;
                }
                "cmiss" => {
                    let [_, v] = fields.as_slice() else {
                        return Err(bad("expected `cmiss CYCLES`"));
                    };
                    spec.cache.cmiss = parse_u64(v, "cmiss")?;
                }
                "ccs" => {
                    let [_, v] = fields.as_slice() else {
                        return Err(bad("expected `ccs CYCLES`"));
                    };
                    spec.ctx_switch = parse_u64(v, "ccs")?;
                }
                "task" => {
                    let [_, name, source, period, priority] = fields.as_slice() else {
                        return Err(bad("expected `task NAME FILE PERIOD PRIORITY`"));
                    };
                    spec.tasks.push(SpecTask {
                        name: (*name).to_string(),
                        source: base_dir.join(source),
                        period: parse_u64(period, "period")?,
                        priority: parse_u64(priority, "priority")? as u32,
                    });
                }
                other => return Err(bad(&format!("unknown directive `{other}`"))),
            }
        }
        if spec.tasks.is_empty() {
            return Err(CliError::Spec(
                "spec declares no tasks; at least one `task NAME FILE PERIOD PRIORITY` line is required"
                    .into(),
            ));
        }
        Ok(spec)
    }

    /// Loads a spec from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] or [`CliError::Spec`].
    pub fn load(path: &Path) -> Result<SystemSpec, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        SystemSpec::parse(&text, base)
    }

    /// Assembles every task's program.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] or [`CliError::Asm`].
    pub fn programs(&self) -> Result<Vec<Program>, CliError> {
        self.programs_with(&mut |t| {
            std::fs::read_to_string(&t.source)
                .map_err(|e| CliError::Io(format!("{}: {e}", t.source.display())))
        })
    }

    /// Assembles every task's program, resolving each task's source text
    /// through `read_source`. The analysis server uses this to serve specs
    /// whose sources arrive inline over the wire instead of on disk.
    ///
    /// # Errors
    ///
    /// Propagates `read_source` errors and returns [`CliError::Asm`] on
    /// assembly failure.
    pub fn programs_with(
        &self,
        read_source: &mut dyn FnMut(&SpecTask) -> Result<String, CliError>,
    ) -> Result<Vec<Program>, CliError> {
        self.tasks.iter().map(|t| crate::assemble_named(&t.name, &read_source(t)?)).collect()
    }

    /// Assembles and analyzes every task. Per-task analyses fan out over
    /// the current `rtpar` pool; the first error in task order wins, so
    /// outputs do not depend on the thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] on assembly or analysis failure.
    pub fn analyzed_tasks(&self) -> Result<Vec<AnalyzedTask>, CliError> {
        let geometry = self.cache.geometry()?;
        let model = self.cache.model();
        let programs = self.programs()?;
        rtpar::par_map_range(programs.len(), |i| {
            let task = &self.tasks[i];
            AnalyzedTask::analyze(
                &programs[i],
                TaskParams { period: task.period, priority: task.priority },
                geometry,
                model,
            )
            .map_err(|e| CliError::Analysis(e.to_string()))
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# demo
cache 64 2 16
cmiss 40
ccs 100
task a a.s 10000 1
task b b.s 100000 2
";

    #[test]
    fn parses_directives_and_tasks() {
        let s = SystemSpec::parse(SPEC, Path::new("/tmp/x")).unwrap();
        assert_eq!(s.cache.sets, 64);
        assert_eq!(s.cache.cmiss, 40);
        assert_eq!(s.ctx_switch, 100);
        assert_eq!(s.tasks.len(), 2);
        assert_eq!(s.tasks[0].name, "a");
        assert_eq!(s.tasks[0].source, Path::new("/tmp/x/a.s"));
        assert_eq!(s.tasks[1].period, 100_000);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = SystemSpec::parse("# only\n\ntask a a.s 1 1 # trailing\n", Path::new(".")).unwrap();
        assert_eq!(s.tasks.len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "cache 64 2\ntask a a.s 1 1\n",
            "cmiss\ntask a a.s 1 1\n",
            "task a a.s 1\n",
            "task a a.s one 1\n",
            "frob\ntask a a.s 1 1\n",
            "cmiss 20\n",
        ] {
            let err = SystemSpec::parse(bad, Path::new(".")).unwrap_err();
            assert!(matches!(err, CliError::Spec(_)), "{bad}");
        }
    }

    #[test]
    fn empty_task_set_is_rejected() {
        // A task system with zero tasks has no meaningful WCRT question;
        // reject it at parse time with a message naming the fix.
        for text in ["", "# comments only\n", "cache 64 2 16\ncmiss 20\nccs 100\n"] {
            let err = SystemSpec::parse(text, Path::new(".")).unwrap_err();
            let CliError::Spec(msg) = &err else {
                panic!("expected CliError::Spec for {text:?}, got {err:?}");
            };
            assert!(msg.contains("no tasks"), "{msg}");
            assert!(msg.contains("task NAME FILE PERIOD PRIORITY"), "{msg}");
        }
    }

    #[test]
    fn programs_with_resolves_inline_sources() {
        let spec = SystemSpec::parse("task a a.s 1000 1\n", Path::new("")).unwrap();
        assert_eq!(spec.tasks[0].source, Path::new("a.s"));
        let mut programs = spec
            .programs_with(&mut |t| {
                assert_eq!(t.source, Path::new("a.s"));
                Ok("start: li r1, 7\nhalt\n".to_string())
            })
            .unwrap();
        assert_eq!(programs.len(), 1);
        assert_eq!(programs.remove(0).name(), "a");
        // Errors from the resolver propagate unchanged.
        let err = spec.programs_with(&mut |_| Err(CliError::Io("nope".into()))).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn end_to_end_with_real_files() {
        let dir = std::env::temp_dir().join(format!("trisc-spec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("a.s"),
            ".data 0x100000\nbuf: .word 1,2,3\n.text 0x1000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 0(r1)\nhalt\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("b.s"),
            ".data 0x100400\nbuf: .word 7\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nhalt\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("sys.spec"),
            "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
        )
        .unwrap();
        let spec = SystemSpec::load(&dir.join("sys.spec")).unwrap();
        let wcrt = crate::cmd_wcrt(&spec).unwrap();
        assert!(wcrt.contains("App. 4"), "{wcrt}");
        assert!(wcrt.contains("hi"));
        let sim = crate::cmd_sim(&spec, Some(60_000)).unwrap();
        assert!(sim.contains("max response"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SystemSpec::load(Path::new("/nonexistent/x.spec")).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
